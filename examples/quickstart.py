#!/usr/bin/env python3
"""Quickstart: the four problems of the paper through the unified facade.

One call builds any registered scheme on any registered workload:

    repro.api.build("<scheme>", workload="<workload>", n=..., seed=...)

The facade memoizes the workload per (name, n, seed, params), so the
four builds below generate the 128-point metric once and share its
scale structures.  Runs, in order:

1. Theorem 3.2 — (0,δ)-triangulation: estimate a distance from labels.
2. Theorem 3.4 — id-free distance labels, with the bit count.
3. Theorem 2.1 — compact (1+δ)-stretch routing on a doubling graph.
4. Theorem 5.2(a) — a searchable small world with O(log n)-hop queries.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import api


def main() -> None:
    from repro.metrics import doubling_dimension

    workload = api.build_workload("hypercube", n=128, dim=2, seed=7)
    metric = workload.metric
    print(f"metric: n={metric.n}, aspect ratio Δ={metric.aspect_ratio():.1f}, "
          f"doubling dim ≈ {doubling_dimension(metric, sample_centers=24):.2f}")

    # -- 1. Triangulation (Theorem 3.2) --------------------------------
    tri = api.build("triangulation", workload=workload, delta=0.25)
    u, v = 3, 99
    d = metric.distance(u, v)
    print(f"\n[Thm 3.2] triangulation order={tri.inner.order}")
    print(f"  d({u},{v}) = {d:.4f}, estimate D+ = {tri.query(u, v):.4f} "
          f"(certified ratio ≤ {tri.inner.certified_ratio_bound():.2f})")

    # -- 2. Distance labeling (Theorem 3.4) ----------------------------
    # Shares the workload's ScaleStructure with the triangulation above.
    dls = api.build("labels", workload=workload, delta=0.25)
    print(f"\n[Thm 3.4] id-free labels, max {dls.inner.max_label_bits():,} bits")
    print(f"  estimate from labels alone: {dls.query(u, v):.4f}")

    # -- 3. Compact routing (Theorem 2.1) ------------------------------
    route = api.build("route-thm2.1", workload="knn-graph", n=128, seed=7,
                      delta=0.25)
    stats = route.stats(samples=400, seed=1)
    print(f"\n[Thm 2.1] routing: delivery {stats['delivery_rate']:.0%}, "
          f"max stretch {stats['max_stretch']:.3f}, "
          f"header ≤ {stats['max_header_bits']} bits, "
          f"table ≤ {stats['max_table_bits']:,} bits")

    # -- 4. Small world (Theorem 5.2a) ----------------------------------
    sw = api.build("sw-5.2a", workload=workload, seed=0, c=2)
    sw_stats = sw.stats(samples=400, seed=0)
    print(f"\n[Thm 5.2a] small world: completion {sw_stats['completion_rate']:.0%}, "
          f"max hops {sw_stats['max_hops']} (log2 n = {np.log2(metric.n):.0f}), "
          f"out-degree ≤ {sw_stats['max_out_degree']}")

    print(f"\n(the triangulation, labels and small world all shared one "
          f"generated workload; `python -m repro list` shows all "
          f"{len(api.scheme_names())} schemes x "
          f"{len(api.workload_names())} workloads)")


if __name__ == "__main__":
    main()
