#!/usr/bin/env python3
"""Quickstart: the four problems of the paper on one small metric.

Builds a 128-point doubling metric and runs, in order:

1. Theorem 3.2 — (0,δ)-triangulation: estimate a distance from labels.
2. Theorem 3.4 — id-free distance labels, with the bit count.
3. Theorem 2.1 — compact (1+δ)-stretch routing on a doubling graph.
4. Theorem 5.2(a) — a searchable small world with O(log n)-hop queries.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.graphs import knn_geometric_graph
from repro.labeling import RingDLS, RingTriangulation
from repro.metrics import doubling_dimension, random_hypercube_metric
from repro.metrics.graphmetric import ShortestPathMetric
from repro.routing import RingRouting, evaluate_scheme
from repro.smallworld import GreedyRingsModel, evaluate_model


def main() -> None:
    rng = np.random.default_rng(0)
    metric = random_hypercube_metric(128, dim=2, seed=7)
    print(f"metric: n={metric.n}, aspect ratio Δ={metric.aspect_ratio():.1f}, "
          f"doubling dim ≈ {doubling_dimension(metric, sample_centers=24):.2f}")

    # -- 1. Triangulation (Theorem 3.2) --------------------------------
    tri = RingTriangulation(metric, delta=0.25)
    u, v = 3, 99
    d = metric.distance(u, v)
    print(f"\n[Thm 3.2] triangulation order={tri.order}")
    print(f"  d({u},{v}) = {d:.4f}, estimate D+ = {tri.estimate(u, v):.4f} "
          f"(certified ratio ≤ {tri.certified_ratio_bound():.2f})")

    # -- 2. Distance labeling (Theorem 3.4) ----------------------------
    dls = RingDLS(metric, delta=0.25, scales=tri.scales)
    print(f"\n[Thm 3.4] id-free labels, max {dls.max_label_bits():,} bits")
    print(f"  estimate from labels alone: {dls.estimate(u, v):.4f}")

    # -- 3. Compact routing (Theorem 2.1) ------------------------------
    graph = knn_geometric_graph(128, k=4, seed=7)
    sp_metric = ShortestPathMetric(graph)
    scheme = RingRouting(graph, delta=0.25, metric=sp_metric)
    stats = evaluate_scheme(scheme, sp_metric.matrix, sample_pairs=400, seed=1)
    print(f"\n[Thm 2.1] routing: delivery {stats.delivery_rate:.0%}, "
          f"max stretch {stats.max_stretch:.3f}, "
          f"header ≤ {stats.max_header_bits} bits, "
          f"table ≤ {stats.max_table_bits:,} bits")

    # -- 4. Small world (Theorem 5.2a) ----------------------------------
    model = GreedyRingsModel(metric, c=2)
    sw = evaluate_model(model, sample_queries=400, seed=rng)
    print(f"\n[Thm 5.2a] small world: completion {sw.completion_rate:.0%}, "
          f"max hops {sw.max_hops} (log2 n = {np.log2(metric.n):.0f}), "
          f"out-degree ≤ {sw.max_out_degree}")


if __name__ == "__main__":
    main()
