#!/usr/bin/env python3
"""Internet latency estimation: (0,δ)-triangulation vs common beacons.

The motivating application of §3 ([29, 26, 35, 20, 33]): estimate
pairwise latencies of a large node set from small per-node labels.  We
simulate an internet-like latency matrix (hierarchical clusters +
jitter — see DESIGN.md for the substitution note), then compare:

* the [33, 50] baseline — every node measures the same k random beacons:
  an (ε,δ)-triangulation where an ε-fraction of pairs has a bad
  certificate;
* Theorem 3.2 — rings of neighbors as beacon sets: ε = 0, every pair is
  certified.

Run:  python examples/internet_latency.py
"""

from __future__ import annotations

import numpy as np

from repro import api


def main() -> None:
    workload = api.build_workload("internet", n=160, seed=5)
    metric = workload.metric
    delta = 0.3
    print(f"simulated latency matrix: n={metric.n}, "
          f"Δ={metric.aspect_ratio():.0f}\n")

    ring = api.build("triangulation", workload=workload, delta=delta).inner
    print(f"Theorem 3.2 rings triangulation: order {ring.order}")
    print(f"  pairs with D+/D- > {1 + 2 * delta:.2f}: "
          f"{sum(1 for u, v in metric.pairs() if ring.bounds(u, v)[1] / max(ring.bounds(u, v)[0], 1e-12) > 1 + 2 * delta)}"
          f" / {metric.n * (metric.n - 1) // 2}")
    errors = [
        ring.estimate(u, v) / metric.distance(u, v) - 1.0
        for u, v in metric.pairs()
    ]
    print(f"  estimate error: median {np.median(errors):.2%}, "
          f"worst {max(errors):.2%}")

    for k in (8, 16, ring.order):
        beacon = api.build("beacons", workload=workload, seed=1,
                           config={"beacons": k}).inner
        eps = beacon.epsilon_for_delta(2 * delta)
        errors = [
            beacon.estimate(u, v) / metric.distance(u, v) - 1.0
            for u, v in metric.pairs()
        ]
        print(f"\ncommon-beacon baseline, k={k}:")
        print(f"  ε (pairs failing δ={2 * delta}): {eps:.1%}")
        print(f"  estimate error: median {np.median(errors):.2%}, "
              f"worst {max(errors):.2%}")

    print("\n=> same label budget, but the rings construction certifies "
          "every pair (ε = 0), as Theorem 3.2 promises.")


if __name__ == "__main__":
    main()
