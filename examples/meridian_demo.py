#!/usr/bin/env python3
"""Meridian closest-node discovery (§6 / [57]).

A CDN operator wants each client routed to its nearest server.  Servers
form a Meridian overlay (multi-resolution rings of neighbors); a query
for a client (here: a held-out node) hops through rings until no ring
member improves the latency by the β factor.

Sweeps ring capacity and β to show the accuracy/state trade-off.

Run:  python examples/meridian_demo.py
"""

from __future__ import annotations

import numpy as np

from repro import api
from repro.meridian import closest_node_search
from repro.rng import ensure_rng


def main() -> None:
    workload = api.build_workload("internet", n=200, seed=31)
    metric = workload.metric
    rng = ensure_rng(0)
    queries = [(int(s), int(t)) for s, t in rng.integers(0, 200, size=(150, 2)) if s != t]

    print(f"latency metric: n={metric.n}, Δ={metric.aspect_ratio():.0f}\n")
    print(f"{'nodes/ring':>10s} {'beta':>6s} {'mean approx':>12s} "
          f"{'p95 approx':>11s} {'mean hops':>10s} {'max degree':>11s}")
    for nodes_per_ring in (2, 4, 8, 16):
        # beta only affects query-time search, so one overlay serves both.
        scheme = api.build("meridian", workload=workload, seed=1,
                           nodes_per_ring=nodes_per_ring)
        for beta in (0.5, 0.8):
            approx, hops = [], []
            for start, target in queries:
                result = closest_node_search(scheme.inner, start, target,
                                             beta=beta)
                approx.append(result.approximation)
                hops.append(result.hops)
            print(f"{nodes_per_ring:>10d} {beta:>6.2f} "
                  f"{np.mean(approx):>12.3f} {np.quantile(approx, 0.95):>11.3f} "
                  f"{np.mean(hops):>10.2f} {scheme.inner.max_out_degree():>11d}")

    print("\n=> bigger rings and a laxer β give near-exact discovery; "
          "even 4 nodes/ring lands within a few percent of optimal, "
          "matching Meridian's reported behaviour.")


if __name__ == "__main__":
    main()
