#!/usr/bin/env python3
"""Peer-to-peer overlay design: small-world models head to head (§5).

A P2P network whose node latencies form a doubling metric with a *huge*
aspect ratio (the exponential line — think a few nodes per continent,
per city, per rack, per host).  The designer picks a contact
distribution and a routing rule; we compare:

* naive single-scale contacts (uniform random) — greedy stalls;
* Theorem 5.2(a) rings — greedy, O(log n) hops, degree ~ log n · log Δ;
* Theorem 5.2(b) pruned rings + Z-contacts — the non-greedy step (**),
  degree ~ log² n · sqrt(log Δ);
* Theorem 5.5 — one long-range link per node over a local ring.

Run:  python examples/p2p_overlay.py
"""

from __future__ import annotations

import math


from repro import api
from repro.smallworld import ContactGraph, evaluate_model
from repro.smallworld.base import SmallWorldModel
from repro.rng import ensure_rng


class UniformContactsModel(SmallWorldModel):
    """Strawman: k contacts uniform over the node set, greedy routing."""

    def __init__(self, metric, k: int) -> None:
        self.metric = metric
        self.k = k

    def sample_contacts(self, seed=None) -> ContactGraph:
        rng = ensure_rng(seed)
        contacts = []
        for u in range(self.metric.n):
            picks = set(int(x) for x in rng.choice(self.metric.n, size=self.k))
            picks.discard(u)
            contacts.append(tuple(sorted(picks)))
        return ContactGraph(contacts=contacts)


def report(name: str, stats) -> None:
    """Accepts either a facade stats dict or a SmallWorldStats object."""
    if not isinstance(stats, dict):
        stats = {key: getattr(stats, key) for key in
                 ("completion_rate", "max_hops", "mean_hops", "max_out_degree")}
    print(f"  {name:<28s} completion {stats['completion_rate']:6.1%}   "
          f"max hops {stats['max_hops']:4d}   mean {stats['mean_hops']:6.1f}   "
          f"degree {stats['max_out_degree']:4d}")


def main() -> None:
    n = 192
    workload = api.build_workload("expline", n=n, base=1.7)
    metric = workload.metric
    log_delta = math.log2(metric.aspect_ratio())
    print(f"latency metric: exponential line, n={n}, "
          f"log2 Δ = {log_delta:.0f}, log2 n = {math.log2(n):.1f}\n")

    print("routing 500 random queries per model:")
    report("uniform contacts (k=24)",
           evaluate_model(UniformContactsModel(metric, k=24),
                          sample_queries=500, seed=3))
    for name, key in (("Thm 5.2(a) greedy rings", "sw-5.2a"),
                      ("Thm 5.2(b) pruned + (**)", "sw-5.2b")):
        fitted = api.build(key, workload=workload, seed=3, c=1.5)
        report(name, fitted.stats(samples=500, seed=3))

    print("\nTheorem 5.5 needs a local-contact graph; use a nearest-"
          "neighbor chain:")
    from repro.graphs import WeightedGraph
    from repro.smallworld import SingleLinkModel

    chain = WeightedGraph(n)
    for i in range(n - 1):
        chain.add_edge(i, i + 1, metric.distance(i, i + 1))
    single = SingleLinkModel(metric, chain)
    report("Thm 5.5 single long link",
           evaluate_model(single, sample_queries=300, seed=4))
    print(f"\n  (5.5's bound is 2^O(α) log² Δ ≈ {log_delta ** 2:.0f} hops — "
          "cheap per node, slow per query;\n   the ring models trade degree "
          "for O(log n)-hop queries.)")


if __name__ == "__main__":
    main()
