#!/usr/bin/env python3
"""Compact routing on a road-network-like doubling graph (§2, §4).

Compares the three schemes of the paper plus the trivial baseline on a
k-nearest-neighbor geometric graph (a standard doubling-graph stand-in
for road/AS topologies): delivery, stretch, and the storage split the
paper's Tables 1 and 3 are about.

Run:  python examples/compact_routing.py
"""

from __future__ import annotations

from repro.graphs import knn_geometric_graph
from repro.metrics.graphmetric import ShortestPathMetric
from repro.routing import (
    LabelRouting,
    RingRouting,
    TrivialRouting,
    TwoModeRouting,
    evaluate_scheme,
)


def main() -> None:
    n, delta = 150, 0.25
    graph = knn_geometric_graph(n, k=4, seed=21)
    metric = ShortestPathMetric(graph)
    print(f"graph: n={n}, m={graph.m}, Dout={graph.max_out_degree()}, "
          f"Δ={metric.aspect_ratio():.1f}\n")

    schemes = [
        ("trivial (stretch 1)", TrivialRouting(graph)),
        ("Thm 2.1 rings", RingRouting(graph, delta=delta, metric=metric)),
        ("Thm 4.1 labels", LabelRouting(graph, delta=delta,
                                        estimator="triangulation", metric=metric)),
        ("Thm 4.2 two-mode", TwoModeRouting(graph, delta=delta, metric=metric)),
    ]

    print(f"{'scheme':<22s} {'delivery':>8s} {'max stretch':>12s} "
          f"{'table bits':>12s} {'header bits':>12s}")
    for name, scheme in schemes:
        stats = evaluate_scheme(scheme, metric.matrix, sample_pairs=600, seed=2)
        print(f"{name:<22s} {stats.delivery_rate:8.1%} "
              f"{stats.max_stretch:12.4f} {stats.max_table_bits:12,d} "
              f"{stats.max_header_bits:12,d}")

    print("\nTheorem 4.2 storage split (mode M1 vs M2, Table 3's shape):")
    twomode = schemes[3][1]
    account = twomode.table_bits(0)
    m1 = sum(bits for k, bits in account.components.items() if k.startswith("m1_"))
    m2 = sum(bits for k, bits in account.components.items() if k.startswith("m2_"))
    print(f"  node 0: M1 {m1:,} bits, M2 {m2:,} bits")
    print(account.describe())


if __name__ == "__main__":
    main()
