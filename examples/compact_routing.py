#!/usr/bin/env python3
"""Compact routing on a road-network-like doubling graph (§2, §4).

Compares the three schemes of the paper plus the trivial baseline on a
k-nearest-neighbor geometric graph (a standard doubling-graph stand-in
for road/AS topologies): delivery, stretch, and the storage split the
paper's Tables 1 and 3 are about.  All four builds go through the
facade and share one cached workload.

Run:  python examples/compact_routing.py
"""

from __future__ import annotations

from repro import api


def main() -> None:
    n, delta = 150, 0.25
    workload = api.build_workload("knn-graph", n=n, k=4, seed=21)
    graph, metric = workload.graph, workload.metric
    print(f"graph: n={n}, m={graph.m}, Dout={graph.max_out_degree()}, "
          f"Δ={metric.aspect_ratio():.1f}\n")

    schemes = [
        ("trivial (stretch 1)", "route-trivial"),
        ("Thm 2.1 rings", "route-thm2.1"),
        ("Thm 4.1 labels", "route-thm4.1"),
        ("Thm 4.2 two-mode", "route-thm4.2"),
    ]

    print(f"{'scheme':<22s} {'delivery':>8s} {'max stretch':>12s} "
          f"{'table bits':>12s} {'header bits':>12s}")
    fitted = {}
    for name, key in schemes:
        scheme = api.build(key, workload=workload, delta=delta)
        fitted[key] = scheme
        stats = scheme.stats(samples=600, seed=2)
        print(f"{name:<22s} {stats['delivery_rate']:8.1%} "
              f"{stats['max_stretch']:12.4f} {stats['max_table_bits']:12,d} "
              f"{stats['max_header_bits']:12,d}")

    print("\nTheorem 4.2 storage split (mode M1 vs M2, Table 3's shape):")
    twomode = fitted["route-thm4.2"].inner
    account = twomode.table_bits(0)
    m1 = sum(bits for k, bits in account.components.items() if k.startswith("m1_"))
    m2 = sum(bits for k, bits in account.components.items() if k.startswith("m2_"))
    print(f"  node 0: M1 {m1:,} bits, M2 {m2:,} bits")
    print(account.describe())


if __name__ == "__main__":
    main()
