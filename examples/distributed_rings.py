#!/usr/bin/env python3
"""Distributed construction of rings of neighbors (§6's open question).

Three acts:

1. build an r-net with a Luby-style message-passing protocol and compare
   it to the centralized greedy construction;
2. discover rings by gossip and watch coverage climb — and plateau below
   the theoretical rings (the §6 gap);
3. run a Meridian overlay through churn, with and without repair.

Run:  python examples/distributed_rings.py
"""

from __future__ import annotations

from repro.distributed import (
    ChurnSimulation,
    DistributedNetProtocol,
    GossipRingProtocol,
    SynchronousNetwork,
    ring_coverage,
)
from repro import api
from repro.meridian import MeridianOverlay
from repro.metrics.nets import greedy_net, is_r_net


def main() -> None:
    metric = api.build_workload("hypercube", n=64, dim=2, seed=17).metric

    print("=== 1. distributed r-net (r = 0.2) ===")
    proto = DistributedNetProtocol(r=0.2)
    network = SynchronousNetwork(metric, proto, seed=1)
    stats = network.run(max_rounds=100)
    members = proto.net_members(network.ctx)
    central = greedy_net(metric, 0.2)
    print(f"  converged in {stats.rounds} rounds, "
          f"{stats.messages:,} messages, {stats.probes:,} probes")
    print(f"  distributed net: {len(members)} nodes "
          f"(valid r-net: {is_r_net(metric, members, 0.2)}); "
          f"centralized greedy: {len(central)} nodes")

    print("\n=== 2. gossip ring discovery vs theoretical rings ===")
    print(f"  {'rounds':>7s} {'messages':>9s} {'scale coverage':>15s} {'member recall':>14s}")
    for rounds in (1, 4, 16):
        gossip = GossipRingProtocol(bootstrap=3, exchange=8, ring_capacity=6,
                                    rounds=rounds)
        network = SynchronousNetwork(metric, gossip, seed=2)
        gstats = network.run(max_rounds=10 * rounds + 10)
        scale_cov, recall = ring_coverage(metric, gossip, network.ctx)
        print(f"  {rounds:>7d} {gstats.messages:>9,d} {scale_cov:>15.2f} {recall:>14.2f}")
    print("  -> recall plateaus below 1.0: the paper's Section-6 coverage gap.")

    print("\n=== 3. Meridian overlay under 15% churn per epoch ===")
    latency = api.build_workload("internet", n=72, seed=18).metric
    for label, repair in (("no repair", 0), ("6 repair probes/epoch", 6)):
        sim = ChurnSimulation(latency, MeridianOverlay(latency, seed=3),
                              churn_rate=0.15, repair_probes=repair, seed=4)
        reports = sim.run(6, quality_queries=80)
        first, last = reports[0], reports[-1]
        print(f"  {label:<24s} approx {first.mean_approximation:.2f} -> "
              f"{last.mean_approximation:.2f}   ring members "
              f"{first.mean_ring_members:.1f} -> {last.mean_ring_members:.1f}")


if __name__ == "__main__":
    main()
