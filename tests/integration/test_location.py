"""Object location via nets (the title problem)."""

import numpy as np
import pytest

from repro.location import RingObjectLocation
from repro.metrics import exponential_line


@pytest.fixture(scope="module")
def directory(hypercube64):
    d = RingObjectLocation(hypercube64)
    for key in range(12):
        d.publish(f"obj-{key}", owner=(key * 5 + 3) % 64)
    return d


class TestPublish:
    def test_pointers_per_object_logarithmic(self, directory, hypercube64):
        """O(1) pointers per scale -> O(log Δ) per object."""
        levels = directory.nets.levels
        for key in directory.published_keys():
            count = directory.pointers_per_object(key)
            assert 1 <= count <= 40 * levels

    def test_owner_always_holds_pointer(self, directory):
        """The owner's nearest level-0 net point is the owner itself."""
        for key in directory.published_keys():
            owner = directory._owners[key]
            assert directory._directory[owner][key] == owner

    def test_duplicate_publish_rejected(self, directory):
        with pytest.raises(KeyError):
            directory.publish("obj-0", owner=0)

    def test_unpublish_removes_everywhere(self, hypercube64):
        d = RingObjectLocation(hypercube64)
        d.publish("temp", owner=10)
        d.unpublish("temp")
        assert all("temp" not in entry for entry in d._directory.values())
        assert d.locate("temp", 0).owner is None

    def test_bad_params(self, hypercube64):
        d = RingObjectLocation(hypercube64)
        with pytest.raises(ValueError):
            d.publish("x", owner=999)
        with pytest.raises(ValueError):
            RingObjectLocation(hypercube64, pointer_radius_factor=1.0)
        with pytest.raises(KeyError):
            d.unpublish("never")


class TestLocate:
    def test_every_lookup_succeeds(self, directory, hypercube64):
        for key in directory.published_keys():
            for source in range(0, 64, 7):
                result = directory.locate(key, source)
                assert result.found, (key, source)
                assert result.owner == directory._owners[key]

    def test_constant_stretch(self, directory, hypercube64):
        """The doubling argument: lookup cost = O(d(source, owner))."""
        stretches = []
        for key in directory.published_keys():
            owner = directory._owners[key]
            for source in range(64):
                if source == owner:
                    continue
                result = directory.locate(key, source)
                stretches.append(result.stretch(hypercube64))
        assert max(stretches) <= 16.0
        assert float(np.median(stretches)) <= 8.0

    def test_source_is_owner(self, directory):
        key = "obj-0"
        owner = directory._owners[key]
        result = directory.locate(key, owner)
        assert result.found
        assert result.cost == pytest.approx(0.0)

    def test_exponential_line(self):
        metric = exponential_line(48)
        d = RingObjectLocation(metric)
        d.publish("far", owner=47)
        d.publish("near", owner=0)
        for source in (0, 20, 47):
            for key in ("far", "near"):
                result = d.locate(key, source)
                assert result.found
                assert result.stretch(metric) <= 16.0

    def test_directory_bits(self, directory):
        account = directory.directory_bits(0)
        assert set(account.components) == {"directory_keys", "directory_owners"}

    def test_missing_object_not_found(self, directory):
        result = directory.locate("ghost", 0)
        assert not result.found
