"""Every construction on degenerate/tiny inputs (n=2, n=3, collinear).

The theory's constants assume n large; the code must still behave
sensibly at the smallest sizes.
"""

import numpy as np
import pytest

from repro.graphs import WeightedGraph
from repro.labeling import BeaconTriangulation, RingDLS, RingTriangulation
from repro.metrics import (
    EuclideanMetric,
    doubling_measure,
    eps_mu_packing,
    greedy_net,
    uniform_line,
)
from repro.routing import RingRouting, TrivialRouting, TwoModeRouting
from repro.smallworld import GreedyRingsModel, evaluate_model


@pytest.fixture(scope="module")
def pair_metric():
    return uniform_line(2)


@pytest.fixture(scope="module")
def triple_metric():
    return EuclideanMetric(np.array([0.0, 1.0, 10.0])[:, None])


class TestTinyMetrics:
    def test_substrates_on_two_nodes(self, pair_metric):
        assert greedy_net(pair_metric, 0.5) == [0, 1]
        mu = doubling_measure(pair_metric)
        assert mu.weights.sum() == pytest.approx(1.0)
        packing = eps_mu_packing(pair_metric, 0.5)
        assert packing.verify_disjoint()

    def test_triangulation_on_two_nodes(self, pair_metric):
        tri = RingTriangulation(pair_metric, delta=0.3)
        assert tri.has_close_common_beacon(0, 1)
        assert tri.estimate(0, 1) >= 1.0 - 1e-12

    def test_dls_on_two_nodes(self, pair_metric):
        dls = RingDLS(pair_metric, delta=0.3)
        est = dls.estimate(0, 1)
        assert 1.0 - 1e-9 <= est <= 2.0

    def test_dls_on_three_nodes(self, triple_metric):
        dls = RingDLS(triple_metric, delta=0.3)
        for u, v in triple_metric.pairs():
            d = triple_metric.distance(u, v)
            assert d - 1e-9 <= dls.estimate(u, v) <= 2.0 * d

    def test_beacons_on_three_nodes(self, triple_metric):
        tri = BeaconTriangulation(triple_metric, k=2, seed=0)
        assert tri.estimate(0, 2) >= 10.0 - 1e-6

    def test_smallworld_on_three_nodes(self, triple_metric):
        model = GreedyRingsModel(triple_metric, c=2)
        stats = evaluate_model(model, sample_queries=20, seed=0)
        assert stats.completion_rate == 1.0


class TestTinyGraphs:
    @pytest.fixture(scope="class")
    def edge_graph(self):
        g = WeightedGraph(2)
        g.add_edge(0, 1, 3.0)
        return g

    def test_trivial_on_edge(self, edge_graph):
        scheme = TrivialRouting(edge_graph)
        assert scheme.route(0, 1).reached

    def test_ring_routing_on_edge(self, edge_graph):
        scheme = RingRouting(edge_graph, delta=0.3)
        result = scheme.route(0, 1)
        assert result.reached
        assert result.length(edge_graph) == 3.0

    def test_twomode_on_triangle(self):
        g = WeightedGraph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        g.add_edge(0, 2, 1.5)
        scheme = TwoModeRouting(g, delta=0.3)
        for u in range(3):
            for v in range(3):
                if u != v:
                    assert scheme.route(u, v).reached

    def test_single_node_metric_queries(self):
        m = uniform_line(1)
        assert m.diameter() == 1.0  # degenerate convention
        assert m.radius_for_count(0, 1) == 0.0
