"""Smoke tests: the shipped examples run end to end."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def _run(script: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "[Thm 2.1]" in out
        assert "[Thm 5.2a]" in out
        assert "delivery 100%" in out

    def test_compact_routing(self):
        out = _run("compact_routing.py")
        assert "Thm 4.2 two-mode" in out
        assert "100.0%" in out

    def test_meridian_demo(self):
        out = _run("meridian_demo.py")
        assert "nodes/ring" in out
