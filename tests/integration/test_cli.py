"""CLI commands run end to end."""

import pytest

from repro.cli import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info", "--workload", "hypercube", "--n", "40"]) == 0
        out = capsys.readouterr().out
        assert "aspect ratio" in out
        assert "doubling dim" in out

    def test_info_expline(self, capsys):
        assert main(["info", "--workload", "expline", "--n", "32"]) == 0
        assert "log2 = 31" in capsys.readouterr().out

    def test_triangulate(self, capsys):
        code = main(
            ["triangulate", "--workload", "uline", "--n", "32", "--pair", "0", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "order" in out and "estimate" in out

    def test_labels(self, capsys):
        code = main(["labels", "--workload", "uline", "--n", "32"])
        assert code == 0
        assert "max label bits" in capsys.readouterr().out

    def test_route(self, capsys):
        code = main(["route", "--scheme", "thm2.1", "--n", "48", "--packets", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "delivery      100.0%" in out

    def test_smallworld(self, capsys):
        code = main(
            ["smallworld", "--model", "5.2a", "--workload", "uline", "--n", "48",
             "--queries", "60"]
        )
        assert code == 0
        assert "completion" in capsys.readouterr().out

    def test_smallworld_55(self, capsys):
        code = main(["smallworld", "--model", "5.5", "--n", "49", "--queries", "40"])
        assert code == 0

    def test_list_enumerates_registries(self, capsys):
        from repro import api

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert len(api.workload_names()) >= 5
        assert len(api.scheme_names()) >= 8
        for name in api.workload_names():
            assert name in out
        for name in api.scheme_names():
            assert name in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestServeCommands:
    def test_save_then_load(self, tmp_path, capsys):
        path = tmp_path / "tri.repro"
        code = main(["save", str(path), "--scheme", "triangulation",
                     "--workload", "uline", "--n", "32", "--delta", "0.3"])
        assert code == 0
        assert path.is_file()
        assert "saved triangulation" in capsys.readouterr().out

        code = main(["load", str(path), "--pair", "0", "20"])
        assert code == 0
        out = capsys.readouterr().out
        assert "sha256:" in out
        assert "triangulation" in out
        assert "estimate(0,20)" in out

    def test_save_routing_scheme(self, tmp_path, capsys):
        path = tmp_path / "router.repro"
        code = main(["save", str(path), "--scheme", "route-thm2.1",
                     "--workload", "knn-graph", "--n", "32", "--k", "4",
                     "--delta", "0.3"])
        assert code == 0
        code = main(["load", str(path), "--verify"])
        assert code == 0
        assert "route-thm2.1" in capsys.readouterr().out

    def test_load_rejects_non_container(self, tmp_path):
        path = tmp_path / "garbage.repro"
        path.write_bytes(b"not a container at all")
        with pytest.raises(Exception, match="magic"):
            main(["load", str(path)])

    def test_results_diff_missing_suite_warns(self, tmp_path, capsys):
        code = main(["results", "--out", str(tmp_path),
                     "--diff", "missing-a", "missing-b"])
        assert code == 2
        err = capsys.readouterr().err
        assert "warning" in err
        assert "missing-a" in err

    def test_cache_reports_row_cache_stats(self, capsys):
        from repro import api

        api.clear_cache()
        api.build_workload("knn-graph", n=24, seed=1)
        try:
            assert main(["cache"]) == 0
            out = capsys.readouterr().out
            assert "entries" in out
            assert "row-cache" in out
        finally:
            api.clear_cache()
