"""CLI commands run end to end."""

import pytest

from repro.cli import main


class TestCli:
    def test_info(self, capsys):
        assert main(["info", "--workload", "hypercube", "--n", "40"]) == 0
        out = capsys.readouterr().out
        assert "aspect ratio" in out
        assert "doubling dim" in out

    def test_info_expline(self, capsys):
        assert main(["info", "--workload", "expline", "--n", "32"]) == 0
        assert "log2 = 31" in capsys.readouterr().out

    def test_triangulate(self, capsys):
        code = main(
            ["triangulate", "--workload", "uline", "--n", "32", "--pair", "0", "20"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "order" in out and "estimate" in out

    def test_labels(self, capsys):
        code = main(["labels", "--workload", "uline", "--n", "32"])
        assert code == 0
        assert "max label bits" in capsys.readouterr().out

    def test_route(self, capsys):
        code = main(["route", "--scheme", "thm2.1", "--n", "48", "--packets", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "delivery      100.0%" in out

    def test_smallworld(self, capsys):
        code = main(
            ["smallworld", "--model", "5.2a", "--workload", "uline", "--n", "48",
             "--queries", "60"]
        )
        assert code == 0
        assert "completion" in capsys.readouterr().out

    def test_smallworld_55(self, capsys):
        code = main(["smallworld", "--model", "5.5", "--n", "49", "--queries", "40"])
        assert code == 0

    def test_list_enumerates_registries(self, capsys):
        from repro import api

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert len(api.workload_names()) >= 5
        assert len(api.scheme_names()) >= 8
        for name in api.workload_names():
            assert name in out
        for name in api.scheme_names():
            assert name in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
