"""Cross-module integration: the Figure-1 idea-flow realized in code.

The paper's Figure 1 shows how results feed each other: rings -> Thm 2.1
-> Thm 3.2 -> Thm 3.4 -> Thm 4.1/4.2, and rings -> Thm 5.1.  These tests
exercise each arrow end to end on one shared workload.
"""

import pytest

from repro.graphs import knn_geometric_graph
from repro.labeling import RingDLS, RingTriangulation, TriangulationDLS
from repro.labeling._scales import ScaleStructure
from repro.metrics.graphmetric import ShortestPathMetric
from repro.routing import (
    LabelRouting,
    RingRouting,
    TrivialRouting,
    TwoModeRouting,
    evaluate_scheme,
)


@pytest.fixture(scope="module")
def workload():
    graph = knn_geometric_graph(48, k=4, seed=77)
    metric = ShortestPathMetric(graph)
    return graph, metric


@pytest.fixture(scope="module")
def shared_scales(workload):
    _graph, metric = workload
    return ScaleStructure(metric, delta=0.3)


class TestSharedScaleStructure:
    def test_triangulation_and_dls_share_scales(self, workload, shared_scales):
        """Thm 3.2 and Thm 3.4 built on the same ScaleStructure agree on
        neighbor sets, and their estimates are consistent (3.4's D+ can
        only use a subset of 3.2's common neighbors)."""
        _graph, metric = workload
        tri = RingTriangulation(metric, delta=0.3, scales=shared_scales)
        dls = RingDLS(metric, delta=0.3, scales=shared_scales)
        slack = 1 + 2 * dls.codec.relative_error
        for u, v in [(0, 47), (3, 30), (11, 12)]:
            assert dls.estimate(u, v) >= tri.estimate(u, v) / slack - 1e-9

    def test_all_schemes_deliver_on_same_graph(self, workload):
        _graph, metric = workload
        graph = metric.graph
        schemes = [
            TrivialRouting(graph),
            RingRouting(graph, delta=0.3, metric=metric),
            LabelRouting(graph, delta=0.3, estimator="exact", metric=metric),
            TwoModeRouting(graph, delta=0.3, metric=metric),
        ]
        for scheme in schemes:
            stats = evaluate_scheme(scheme, metric.matrix, sample_pairs=150, seed=8)
            assert stats.delivery_rate == 1.0, type(scheme).__name__
            assert stats.max_stretch <= 1 + 6 * 0.3, type(scheme).__name__

    def test_stretch_ordering(self, workload):
        """Trivial routing is exact; compact schemes trade stretch for
        table size."""
        _graph, metric = workload
        graph = metric.graph
        trivial = evaluate_scheme(
            TrivialRouting(graph), metric.matrix, sample_pairs=100, seed=9
        )
        ring = evaluate_scheme(
            RingRouting(graph, delta=0.3, metric=metric),
            metric.matrix,
            sample_pairs=100,
            seed=9,
        )
        assert trivial.max_stretch == pytest.approx(1.0)
        assert ring.max_stretch >= trivial.max_stretch - 1e-12


class TestLabelingIntoRouting:
    def test_theorem_4_1_uses_theorem_3_2_labels(self, workload):
        """The Fig-1 'black box' arrow: Thm 3.4/3.2 labels drive Thm 4.1."""
        _graph, metric = workload
        scheme = LabelRouting(
            metric.graph, delta=0.3, estimator="triangulation", metric=metric
        )
        stats = evaluate_scheme(scheme, metric.matrix, sample_pairs=150, seed=10)
        assert stats.delivery_rate == 1.0

    def test_dls_estimates_feed_header_sizes(self, workload):
        _graph, metric = workload
        scheme = LabelRouting(
            metric.graph, delta=0.3, estimator="triangulation", metric=metric
        )
        tri = RingTriangulation(metric, delta=0.45)
        dls = TriangulationDLS(tri)
        # Header carries one label: consistent order of magnitude.
        assert scheme._label_payload_bits <= dls.max_label_bits() * 4
