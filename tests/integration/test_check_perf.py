"""The perf-regression gate: compares timings, fails on >2x slowdowns."""

import json
import subprocess
import sys
from pathlib import Path

SCRIPT = Path(__file__).resolve().parents[2] / "benchmarks" / "check_perf.py"


def run_gate(baseline_dir, fresh_dir, *extra):
    return subprocess.run(
        [sys.executable, str(SCRIPT), "--baseline", str(baseline_dir),
         "--fresh", str(fresh_dir), *extra],
        capture_output=True, text=True,
    )


def write(path, payload):
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload))


BASE = {
    "results": [
        {"n": 1000, "serial_s": 1.0, "legacy_seconds": {"build": 2.0},
         "peak_resident_bytes": 123456}
    ]
}


class TestCheckPerf:
    def test_clean_pass(self, tmp_path):
        write(tmp_path / "base" / "x_perf.json", BASE)
        write(tmp_path / "fresh" / "x_perf.json", BASE)
        proc = run_gate(tmp_path / "base", tmp_path / "fresh")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 regression(s)" in proc.stdout

    def test_regression_fails(self, tmp_path):
        slow = json.loads(json.dumps(BASE))
        slow["results"][0]["serial_s"] = 2.5  # 2.5x the 1.0s baseline
        write(tmp_path / "base" / "x_perf.json", BASE)
        write(tmp_path / "fresh" / "x_perf.json", slow)
        proc = run_gate(tmp_path / "base", tmp_path / "fresh")
        assert proc.returncode == 1
        assert "FAIL" in proc.stdout and "serial_s" in proc.stdout

    def test_non_timing_fields_ignored(self, tmp_path):
        changed = json.loads(json.dumps(BASE))
        changed["results"][0]["peak_resident_bytes"] = 10**9  # not a timing
        write(tmp_path / "base" / "x_perf.json", BASE)
        write(tmp_path / "fresh" / "x_perf.json", changed)
        proc = run_gate(tmp_path / "base", tmp_path / "fresh")
        assert proc.returncode == 0

    def test_absolute_floor_masks_micro_jitter(self, tmp_path):
        tiny = {"results": [{"serial_s": 0.001}]}
        jitter = {"results": [{"serial_s": 0.004}]}  # 4x but only +3ms
        write(tmp_path / "base" / "x_perf.json", tiny)
        write(tmp_path / "fresh" / "x_perf.json", jitter)
        proc = run_gate(tmp_path / "base", tmp_path / "fresh")
        assert proc.returncode == 0

    def test_nested_seconds_dict_gated(self, tmp_path):
        slow = json.loads(json.dumps(BASE))
        slow["results"][0]["legacy_seconds"]["build"] = 10.0
        write(tmp_path / "base" / "x_perf.json", BASE)
        write(tmp_path / "fresh" / "x_perf.json", slow)
        proc = run_gate(tmp_path / "base", tmp_path / "fresh")
        assert proc.returncode == 1
        assert "legacy_seconds.build" in proc.stdout

    def test_empty_fresh_dir_errors(self, tmp_path):
        write(tmp_path / "base" / "x_perf.json", BASE)
        (tmp_path / "fresh").mkdir()
        proc = run_gate(tmp_path / "base", tmp_path / "fresh")
        assert proc.returncode == 2

    def test_committed_baselines_self_compare(self, tmp_path):
        """The real committed baselines pass the gate against themselves."""
        results = Path(__file__).resolve().parents[2] / "benchmarks" / "results"
        proc = run_gate(results, results)
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_zero_baseline_reports_instead_of_crashing(self, tmp_path):
        write(tmp_path / "base" / "x_perf.json", {"results": [{"query_s": 0.0}]})
        write(tmp_path / "fresh" / "x_perf.json", {"results": [{"query_s": 0.2}]})
        proc = run_gate(tmp_path / "base", tmp_path / "fresh")
        assert proc.returncode == 1
        assert "inf" in proc.stdout and "Traceback" not in proc.stderr
