"""Top-level package API surface."""

import importlib

import pytest

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_subpackages_exported(self):
        for name in (
            "metrics",
            "graphs",
            "core",
            "labeling",
            "routing",
            "smallworld",
            "meridian",
            "distributed",
        ):
            assert hasattr(repro, name), name

    def test_all_dunder_resolves(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    @pytest.mark.parametrize(
        "module",
        [
            "repro.metrics",
            "repro.graphs",
            "repro.core",
            "repro.labeling",
            "repro.routing",
            "repro.smallworld",
            "repro.meridian",
            "repro.distributed",
            "repro.location",
        ],
    )
    def test_subpackage_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name}"

    def test_docstrings_everywhere_public(self):
        """Every public item reachable from __all__ has a docstring."""
        for module_name in (
            "repro.metrics",
            "repro.graphs",
            "repro.core",
            "repro.labeling",
            "repro.routing",
            "repro.smallworld",
            "repro.meridian",
            "repro.distributed",
        ):
            mod = importlib.import_module(module_name)
            assert mod.__doc__
            for name in mod.__all__:
                obj = getattr(mod, name)
                assert getattr(obj, "__doc__", None), f"{module_name}.{name}"
