"""Property-based tests: distance codec and bit accounting."""


from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bits import SizeAccount, bits_for_count, bits_for_value
from repro.labeling.encoding import DistanceCodec


@settings(max_examples=200, deadline=None)
@given(
    st.floats(min_value=1e-6, max_value=1e9, allow_nan=False),
    st.integers(min_value=2, max_value=16),
)
def test_codec_rounds_up_within_bound(d, mantissa_bits):
    codec = DistanceCodec(1e-6, 1e9, mantissa_bits=mantissa_bits)
    approx = codec.roundtrip(d)
    assert approx >= d * (1 - 1e-12)
    assert approx <= d * (1 + codec.relative_error) * (1 + 1e-12)


@settings(max_examples=200, deadline=None)
@given(st.floats(min_value=1e-3, max_value=1e3), st.floats(min_value=1e-3, max_value=1e3))
def test_codec_order_preserving(a, b):
    codec = DistanceCodec(1e-3, 1e3, mantissa_bits=8)
    if a <= b:
        assert codec.roundtrip(a) <= codec.roundtrip(b) * (1 + 1e-12)


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_bits_for_count_sufficient(k):
    bits = bits_for_count(k)
    assert 2**bits >= max(1, k)
    if k >= 2:
        assert 2 ** (bits - 1) < k


@settings(max_examples=200, deadline=None)
@given(st.integers(min_value=0, max_value=10**9))
def test_bits_for_value_sufficient(v):
    assert 2 ** bits_for_value(v) > v


@settings(max_examples=100, deadline=None)
@given(st.dictionaries(st.text(min_size=1, max_size=5), st.integers(0, 1000), max_size=6))
def test_size_account_total(components):
    account = SizeAccount(dict(components))
    assert account.total_bits == sum(components.values())
    assert account.total_bytes * 8 == account.total_bits


@settings(max_examples=100, deadline=None)
@given(
    st.dictionaries(st.text(min_size=1, max_size=3), st.integers(0, 100), max_size=4),
    st.dictionaries(st.text(min_size=1, max_size=3), st.integers(0, 100), max_size=4),
)
def test_size_account_merge_commutes_on_total(a, b):
    left = SizeAccount(dict(a)) + SizeAccount(dict(b))
    right = SizeAccount(dict(b)) + SizeAccount(dict(a))
    assert left.total_bits == right.total_bits
