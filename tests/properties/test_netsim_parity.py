"""Zero-latency event engine ≡ synchronous simulator, bit for bit.

The compatibility contract of :class:`repro.netsim.RoundAdapter`: with
the default ideal network (zero constant latency, no loss, no faults)
every existing §6 round-based protocol must reproduce its
:class:`~repro.distributed.simulator.SynchronousNetwork` run exactly at
equal seeds — same RunStats counters, same per-node protocol state, same
derived results.  This is what makes the degraded scenarios meaningful:
any difference under loss or faults is attributable to the environment,
never to the engine.
"""

import pytest

from repro.api.facade import build_workload
from repro.distributed import (
    ChurnRoundProtocol,
    DistributedNetProtocol,
    GossipRingProtocol,
    SynchronousNetwork,
)
from repro.netsim import EventNetwork, RoundAdapter

SEEDS = (3, 11, 42)


@pytest.fixture(scope="module")
def metric():
    return build_workload("hypercube", n=40, seed=5).metric


def run_both(metric, make_protocol, seed, max_rounds=200):
    sync_proto = make_protocol()
    sync_net = SynchronousNetwork(metric, sync_proto, seed=seed)
    sync_stats = sync_net.run(max_rounds=max_rounds)

    event_proto = make_protocol()
    event_net = EventNetwork(metric, seed=seed)
    adapter = RoundAdapter(event_net, event_proto, max_rounds=max_rounds)
    event_stats = adapter.run()
    return (sync_proto, sync_net.ctx, sync_stats), (event_proto, adapter.ctx, event_stats)


def assert_stats_equal(sync_stats, event_stats):
    assert event_stats.rounds == sync_stats.rounds
    assert event_stats.messages == sync_stats.messages
    assert event_stats.probes == sync_stats.probes
    assert event_stats.converged == sync_stats.converged
    assert event_stats.delivered == sync_stats.delivered
    assert event_stats.dropped == sync_stats.dropped == 0
    assert event_stats.undelivered == sync_stats.undelivered
    assert event_stats.wall_clock == sync_stats.wall_clock
    assert event_stats.seed == sync_stats.seed


@pytest.mark.parametrize("seed", SEEDS)
class TestGossipParity:
    def test_bit_for_bit(self, metric, seed):
        make = lambda: GossipRingProtocol(  # noqa: E731
            bootstrap=3, exchange=8, ring_capacity=6, rounds=6
        )
        (p1, ctx1, s1), (p2, ctx2, s2) = run_both(metric, make, seed)
        assert_stats_equal(s1, s2)
        for u in range(metric.n):
            assert p1.rings_of(ctx1, u) == p2.rings_of(ctx2, u)
            assert ctx1.state[u]["known"] == ctx2.state[u]["known"]


@pytest.mark.parametrize("seed", SEEDS)
class TestNetProtocolParity:
    def test_bit_for_bit(self, metric, seed):
        r = metric.min_distance() * 2
        make = lambda: DistributedNetProtocol(r=r)  # noqa: E731
        (p1, ctx1, s1), (p2, ctx2, s2) = run_both(metric, make, seed)
        assert_stats_equal(s1, s2)
        assert p1.net_members(ctx1) == p2.net_members(ctx2)
        for u in range(metric.n):
            assert ctx1.state[u]["status"] == ctx2.state[u]["status"]


@pytest.mark.parametrize("seed", SEEDS)
class TestChurnParity:
    def test_bit_for_bit(self, metric, seed):
        make = lambda: ChurnRoundProtocol(epochs=3, quality_queries=40)  # noqa: E731
        (p1, _, s1), (p2, _, s2) = run_both(metric, make, seed, max_rounds=20)
        assert_stats_equal(s1, s2)
        assert p1.reports == p2.reports
        for a, b in zip(p1.sim.overlay.nodes, p2.sim.overlay.nodes):
            assert a.rings == b.rings
