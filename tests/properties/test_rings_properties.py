"""Property-based tests: rings, estimates and routing on random instances."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.labeling import BeaconTriangulation, RingTriangulation
from repro.metrics import EuclideanMetric


@st.composite
def small_metrics(draw, min_n=4, max_n=16):
    """1-d point sets snapped to a 0.1 grid (realistic aspect ratios)."""
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    xs = draw(
        st.lists(
            st.integers(min_value=0, max_value=10000),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return EuclideanMetric(np.array(sorted(xs), dtype=float)[:, None] * 0.1)


@settings(max_examples=15, deadline=None)
@given(small_metrics(), st.sampled_from([0.2, 0.4]))
def test_triangulation_zero_eps_on_random_lines(metric, delta):
    """Theorem 3.2's all-pairs guarantee on arbitrary 1-d metrics."""
    tri = RingTriangulation(metric, delta=delta)
    for u, v in metric.pairs():
        assert tri.has_close_common_beacon(u, v)
        d = metric.distance(u, v)
        assert d - 1e-9 <= tri.estimate(u, v) <= (1 + 2 * delta) * d + 1e-9


@settings(max_examples=20, deadline=None)
@given(small_metrics(min_n=5), st.integers(min_value=1, max_value=5))
def test_beacon_bounds_always_sandwich(metric, k):
    tri = BeaconTriangulation(metric, k=k, seed=0, mantissa_bits=16)
    # Quantization error is relative to the *beacon* distances, which can
    # be much larger than d, so the D- slack is absolute in the diameter.
    slack = 2 * tri.codec.relative_error * metric.diameter()
    for u, v in metric.pairs():
        lower, upper = tri.bounds(u, v)
        d = metric.distance(u, v)
        assert lower <= d + slack + 1e-9
        assert upper >= d - 1e-9


@settings(max_examples=10, deadline=None)
@given(small_metrics(min_n=6, max_n=12))
def test_greedy_rings_route_everything(metric):
    from repro.smallworld import GreedyRingsModel, evaluate_model

    model = GreedyRingsModel(metric, c=2)
    stats = evaluate_model(model, sample_queries=40, seed=1)
    assert stats.completion_rate == 1.0
