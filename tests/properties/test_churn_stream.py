"""Streaming-churn properties of the patch-buffered structures.

Two contracts, checked on euclidean and lazy-graph metrics across
several trace seeds:

1. **Compaction parity** — streaming a join/leave trace event-by-event
   through ``apply_update`` and then compacting yields a structure
   bit-for-bit identical to a fresh pristine build bulk-updated to the
   same final active set (the fixed-universe model: derived state is a
   pure function of (pristine build, active set), independent of the
   arrival order of the churn).

2. **IVL bounds mid-patch** — with auto-merge disabled, reads
   interleaved between updates overlap pending patches; every such read
   is bracketed by the structure's intermediate-value check (pre-merge
   vs post-merge answer) and the violation counter must stay zero.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.patch import InactiveNode
from repro.distributed.trace import ChurnTrace
from repro.graphs.generators import knn_geometric_graph
from repro.labeling.beacons import BeaconTriangulation
from repro.labeling.triangulation import RingTriangulation
from repro.metrics.graphmetric import ShortestPathMetric
from repro.metrics.synthetic import random_hypercube_metric
from repro.routing.ring_scheme import RingRouting

SEEDS = (0, 1, 2)
N = 40


def _metric(kind: str, seed: int):
    if kind == "euclidean":
        return random_hypercube_metric(N, dim=2, seed=seed)
    graph = knn_geometric_graph(N, k=4, seed=seed)
    return ShortestPathMetric(graph, dense=False, row_cache_bytes=1 << 20)


def _disable_auto_merge(struct) -> None:
    # consulted at patch creation: keeps every patch pending so reads
    # stay on the dirty-row (IVL-checked) path until compact()
    struct.merge_threshold = 1.1
    struct.staleness_limit = 10**9


def _stream(struct, trace, read=None):
    for event in trace.events:
        struct.apply_update(joins=event.joins, leaves=event.leaves)
        if read is not None:
            read(struct)


def _bulk(struct, trace):
    gone = np.flatnonzero(~trace.final_active())
    if gone.size:
        struct.apply_update(joins=(), leaves=[int(x) for x in gone])
    struct.compact()
    return struct


def _sample_active_pairs(trace, seed=99, pairs=200):
    ids = np.flatnonzero(trace.final_active())
    rng = np.random.default_rng(seed)
    us = rng.choice(ids, size=pairs)
    vs = rng.choice(ids, size=pairs)
    keep = us != vs
    return us[keep], vs[keep]


@pytest.mark.parametrize("kind", ["euclidean", "graph-lazy"])
@pytest.mark.parametrize("seed", SEEDS)
class TestCompactionParity:
    def test_triangulation_bitwise(self, kind, seed):
        metric = _metric(kind, seed)
        trace = ChurnTrace.generate(n=N, events=10, rate=0.08, seed=seed)

        streamed = RingTriangulation(metric, delta=0.3)
        _disable_auto_merge(streamed)
        _stream(streamed, trace)
        streamed.compact()

        ref = _bulk(RingTriangulation(metric, delta=0.3), trace)

        assert np.array_equal(streamed._indptr, ref._indptr)
        assert np.array_equal(streamed._ids, ref._ids)
        assert np.array_equal(streamed._dist, ref._dist)
        us, vs = _sample_active_pairs(trace)
        assert np.array_equal(
            streamed.estimate_many(us, vs), ref.estimate_many(us, vs)
        )

    def test_beacons_bitwise(self, kind, seed):
        metric = _metric(kind, seed)
        trace = ChurnTrace.generate(n=N, events=10, rate=0.08, seed=seed)

        streamed = BeaconTriangulation(metric, k=12, seed=5)
        _disable_auto_merge(streamed)
        _stream(streamed, trace)
        streamed.compact()

        ref = _bulk(BeaconTriangulation(metric, k=12, seed=5), trace)

        assert np.array_equal(streamed.beacons, ref.beacons)
        assert np.array_equal(streamed._labels, ref._labels)
        us, vs = _sample_active_pairs(trace)
        lo_a, up_a = streamed.bounds_many(us, vs)
        lo_b, up_b = ref.bounds_many(us, vs)
        assert np.array_equal(lo_a, lo_b)
        assert np.array_equal(up_a, up_b)

    def test_routing_bitwise(self, kind, seed):
        if kind == "euclidean":
            pytest.skip("RingRouting runs on graphs")
        graph = knn_geometric_graph(N, k=4, seed=seed)
        metric = ShortestPathMetric(graph, dense=False,
                                    row_cache_bytes=1 << 20)
        trace = ChurnTrace.generate(n=N, events=6, rate=0.06, seed=seed)

        streamed = RingRouting(graph, delta=0.3, metric=metric)
        _disable_auto_merge(streamed)
        _stream(streamed, trace)
        streamed.compact()

        ref_metric = ShortestPathMetric(graph, dense=False,
                                        row_cache_bytes=1 << 20)
        ref = _bulk(RingRouting(graph, delta=0.3, metric=ref_metric), trace)

        assert np.array_equal(streamed._indptr, ref._indptr)
        assert np.array_equal(streamed._members, ref._members)
        assert np.array_equal(streamed._zoom, ref._zoom)
        assert streamed._zeta_triples == ref._zeta_triples
        us, vs = _sample_active_pairs(trace, pairs=60)
        for u, v in zip(us, vs):
            assert (
                streamed.route(int(u), int(v)).path
                == ref.route(int(u), int(v)).path
            )


@pytest.mark.parametrize("kind", ["euclidean", "graph-lazy"])
@pytest.mark.parametrize("seed", SEEDS)
class TestIVLMidPatch:
    def _active_reader(self, trace):
        # replay the active mask alongside the stream so reads only name
        # live nodes (inactive reads raise by contract, tested below)
        state = {"i": 0, "active": np.ones(N, dtype=bool)}
        events = trace.events

        def advance():
            e = events[state["i"]]
            state["active"][list(e.joins)] = True
            state["active"][list(e.leaves)] = False
            state["i"] += 1
            return np.flatnonzero(state["active"])

        return advance

    def test_triangulation_ivl_zero_violations(self, kind, seed):
        metric = _metric(kind, seed)
        trace = ChurnTrace.generate(n=N, events=10, rate=0.08, seed=seed)
        tri = RingTriangulation(metric, delta=0.3)
        _disable_auto_merge(tri)
        advance = self._active_reader(trace)
        rng = np.random.default_rng(seed)

        def read(struct):
            ids = advance()
            us = rng.choice(ids, size=40)
            vs = rng.choice(ids, size=40)
            struct.estimate_many(us[us != vs], vs[us != vs])

        _stream(tri, trace, read=read)
        assert tri.ivl_checks > 0
        assert tri.ivl_violations == 0

    def test_beacons_ivl_zero_violations(self, kind, seed):
        metric = _metric(kind, seed)
        trace = ChurnTrace.generate(n=N, events=10, rate=0.08, seed=seed)
        tri = BeaconTriangulation(metric, k=12, seed=5)
        _disable_auto_merge(tri)
        advance = self._active_reader(trace)
        rng = np.random.default_rng(seed)

        def read(struct):
            ids = advance()
            us = rng.choice(ids, size=40)
            vs = rng.choice(ids, size=40)
            struct.bounds_many(us[us != vs], vs[us != vs])

        _stream(tri, trace, read=read)
        assert tri.ivl_checks > 0
        assert tri.ivl_violations == 0

    def test_routing_ivl_zero_violations(self, kind, seed):
        if kind == "euclidean":
            pytest.skip("RingRouting runs on graphs")
        graph = knn_geometric_graph(N, k=4, seed=seed)
        metric = ShortestPathMetric(graph, dense=False,
                                    row_cache_bytes=1 << 20)
        trace = ChurnTrace.generate(n=N, events=6, rate=0.06, seed=seed)
        scheme = RingRouting(graph, delta=0.3, metric=metric)
        _disable_auto_merge(scheme)
        advance = self._active_reader(trace)
        rng = np.random.default_rng(seed)

        def read(struct):
            ids = advance()
            us = rng.choice(ids, size=12)
            vs = rng.choice(ids, size=12)
            for u, v in zip(us, vs):
                if u != v:
                    struct.route(int(u), int(v))

        _stream(scheme, trace, read=read)
        assert scheme.ivl_checks > 0
        assert scheme.ivl_violations == 0


class TestInactiveReads:
    def test_estimate_raises_for_departed_node(self):
        metric = _metric("euclidean", 0)
        tri = RingTriangulation(metric, delta=0.3)
        tri.apply_update(joins=(), leaves=[3])
        with pytest.raises(InactiveNode):
            tri.estimate(3, 5)
        with pytest.raises(InactiveNode):
            tri.estimate_many(np.array([3]), np.array([5]))

    def test_route_raises_for_departed_endpoint(self):
        graph = knn_geometric_graph(N, k=4, seed=0)
        scheme = RingRouting(graph, delta=0.3)
        scheme.apply_update(joins=(), leaves=[3])
        with pytest.raises(InactiveNode):
            scheme.route(3, 5)
        with pytest.raises(InactiveNode):
            scheme.route(5, 3)
