"""Property-based tests: metric axioms and derived-query invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import DistanceMatrixMetric, EuclideanMetric


@st.composite
def point_sets(draw, max_n=12, max_dim=3):
    n = draw(st.integers(min_value=2, max_value=max_n))
    dim = draw(st.integers(min_value=1, max_value=max_dim))
    flat = draw(
        st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=n * dim,
            max_size=n * dim,
        )
    )
    points = np.array(flat).reshape(n, dim)
    # Nudge duplicate points apart so aspect-ratio queries are defined.
    for i in range(n):
        points[i, 0] += i * 1e-6
    return points


@settings(max_examples=40, deadline=None)
@given(point_sets(), st.floats(min_value=1.0, max_value=4.0))
def test_lp_triangle_inequality(points, p):
    metric = EuclideanMetric(points, p=p)
    n = metric.n
    for a in range(n):
        row_a = metric.distances_from(a)
        for b in range(n):
            for c in range(n):
                assert row_a[b] <= row_a[c] + metric.distance(c, b) + 1e-8


@settings(max_examples=40, deadline=None)
@given(point_sets())
def test_symmetry_and_identity(points):
    metric = EuclideanMetric(points)
    for u in range(metric.n):
        assert metric.distance(u, u) == 0.0
        for v in range(metric.n):
            assert np.isclose(metric.distance(u, v), metric.distance(v, u))


@settings(max_examples=40, deadline=None)
@given(point_sets(), st.integers(min_value=1, max_value=12))
def test_radius_for_count_is_minimal(points, k):
    metric = EuclideanMetric(points)
    k = min(k, metric.n)
    for u in range(metric.n):
        r = metric.radius_for_count(u, k)
        assert metric.ball_size(u, r) >= k
        if r > 0:
            assert metric.ball_size(u, r, open_ball=True) < k


@settings(max_examples=40, deadline=None)
@given(point_sets())
def test_ball_nested_monotone(points):
    metric = EuclideanMetric(points)
    diam = metric.diameter()
    for u in range(min(3, metric.n)):
        inner = set(metric.ball(u, diam / 4))
        outer = set(metric.ball(u, diam / 2))
        assert inner <= outer


@settings(max_examples=30, deadline=None)
@given(point_sets())
def test_matrix_roundtrip(points):
    """Materializing an l_2 metric as a matrix preserves all queries."""
    euclid = EuclideanMetric(points)
    rows = np.vstack([euclid.distances_from(u) for u in range(euclid.n)])
    rows = (rows + rows.T) / 2  # exact symmetry for the validator
    matrix = DistanceMatrixMetric(rows)
    for u in range(euclid.n):
        assert np.allclose(matrix.distances_from(u), rows[u])
    assert np.isclose(matrix.diameter(), euclid.diameter())
