"""Sharded construction is bit-for-bit identical to the sequential scan.

The contract of :mod:`repro.construction`: executors change scheduling,
never results.  These tests pin it three ways:

* a literal re-implementation of the pre-batching sequential greedy scan
  is the reference — the shipped ``greedy_net`` must reproduce it
  exactly for shard counts {1, 2, 3, 7} on euclidean, graph (dense and
  lazy backends) and synthetic matrix workloads;
* whole ``NestedNets`` hierarchies (which additionally carry the
  distance-to-net array between levels) must match level-for-level;
* a process-pool executor must match too (2 workers — correctness, not
  speed, is under test).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.construction import (
    ChunkedExecutor,
    ProcessPoolBuildExecutor,
    SerialExecutor,
)
from repro.core.rings import net_rings
from repro.graphs.generators import knn_geometric_graph
from repro.metrics.graphmetric import ShortestPathMetric
from repro.metrics.nets import NestedNets, greedy_net, is_r_net
from repro.metrics.synthetic import (
    clustered_metric,
    exponential_line,
    random_hypercube_metric,
)

SHARD_COUNTS = (1, 2, 3, 7)


def sequential_greedy_net(metric, r, seed_points=None):
    """The pre-batching reference: one full distance row per admission."""
    n = metric.n
    net = list(seed_points) if seed_points else []
    min_dist = np.full(n, np.inf)
    for s in net:
        np.minimum(min_dist, metric.distances_from(s), out=min_dist)
    pos = 0
    while pos < n:
        candidates = np.flatnonzero(min_dist[pos:] >= r)
        if candidates.size == 0:
            break
        v = pos + int(candidates[0])
        net.append(v)
        np.minimum(min_dist, metric.distances_from(v), out=min_dist)
        pos = v + 1
    return net


def _metrics():
    graph = knn_geometric_graph(72, k=4, seed=3)
    return {
        "euclidean": random_hypercube_metric(80, dim=2, seed=1),
        "graph-dense": ShortestPathMetric(graph, dense=True),
        "graph-lazy": ShortestPathMetric(graph, dense=False),
        "synthetic-clustered": clustered_metric(
            64, clusters=6, dim=3, spread=0.05, seed=2
        ),
        "synthetic-expline": exponential_line(24, base=1.7),
    }


METRICS = _metrics()


def _radii(metric):
    lo, hi = metric.min_distance(), metric.diameter()
    return [lo * 1.5, (lo * hi) ** 0.5, hi / 3.0]


class TestGreedyNetSharding:
    @pytest.mark.parametrize("name", sorted(METRICS))
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_matches_sequential_scan(self, name, shards):
        metric = METRICS[name]
        executor = SerialExecutor() if shards == 1 else ChunkedExecutor(shards)
        for r in _radii(metric):
            expected = sequential_greedy_net(metric, r)
            got = greedy_net(metric, r, executor=executor)
            assert got == expected
            assert is_r_net(metric, got, r)

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_seeded_scan_matches(self, shards):
        metric = METRICS["euclidean"]
        r = metric.diameter() / 4.0
        seed = sequential_greedy_net(metric, 2 * r)
        expected = sequential_greedy_net(metric, r, seed_points=seed)
        got = greedy_net(
            metric, r, seed_points=seed, executor=ChunkedExecutor(shards)
        )
        assert got == expected

    def test_process_pool_matches(self):
        metric = METRICS["euclidean"]
        r = metric.diameter() / 5.0
        expected = sequential_greedy_net(metric, r)
        with ProcessPoolBuildExecutor(workers=2) as pool:
            assert greedy_net(metric, r, executor=pool) == expected


class TestNestedNetsSharding:
    def _reference_levels(self, metric, levels, base_radius, descending):
        """Levels built by seeding the reference scan coarsest-first."""
        def radius_of(j):
            return base_radius / 2.0**j if descending else base_radius * 2.0**j

        nets = {}
        seed = []
        for j in sorted(range(levels), key=radius_of, reverse=True):
            seed = sequential_greedy_net(metric, radius_of(j), seed_points=seed)
            nets[j] = seed
        return nets

    @pytest.mark.parametrize("name", sorted(METRICS))
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_hierarchy_matches_reference(self, name, shards):
        metric = METRICS[name]
        levels = min(6, metric.log_aspect_ratio() + 1)
        base = metric.min_distance()
        expected = self._reference_levels(metric, levels, base, False)
        executor = None if shards == 1 else ChunkedExecutor(shards)
        nets = NestedNets(
            metric, levels=levels, base_radius=base, executor=executor
        )
        for j in range(levels):
            assert nets.net(j) == expected[j]

    @pytest.mark.parametrize("shards", (2, 7))
    def test_descending_hierarchy_matches(self, shards):
        metric = METRICS["graph-lazy"]
        levels = 5
        base = metric.diameter()
        expected = self._reference_levels(metric, levels, base, True)
        nets = NestedNets(
            metric, levels=levels, base_radius=base,
            descending=True, executor=ChunkedExecutor(shards),
        )
        for j in range(levels):
            assert nets.net(j) == expected[j]

    def test_lazy_and_dense_backends_agree(self):
        dense, lazy = METRICS["graph-dense"], METRICS["graph-lazy"]
        levels = dense.log_aspect_ratio() + 1
        base = dense.min_distance()
        a = NestedNets(dense, levels=levels, base_radius=base)
        b = NestedNets(lazy, levels=levels, base_radius=base,
                       executor=ChunkedExecutor(3))
        for j in range(levels):
            assert a.net(j) == b.net(j)


class TestRingBuildersSharding:
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_net_rings_members_identical(self, shards):
        metric = METRICS["graph-dense"]
        nets = NestedNets(
            metric, levels=5, base_radius=metric.diameter(), descending=True
        )
        radius = lambda j: 4.0 * metric.diameter() / (0.3 * 2.0**j)  # noqa: E731
        serial = net_rings(metric, nets, radius)
        sharded = net_rings(
            metric, nets, radius, executor=ChunkedExecutor(shards)
        )
        for u in range(metric.n):
            assert serial.rings_of(u).keys() == sharded.rings_of(u).keys()
            for key, ring in serial.rings_of(u).items():
                assert sharded.ring(u, key).members == ring.members

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_nearest_members_identical(self, shards):
        metric = METRICS["euclidean"]
        nets = NestedNets(
            metric, levels=4, base_radius=metric.diameter(), descending=True
        )
        us = list(range(metric.n))
        for j in range(nets.levels):
            expected = [nets.nearest_member(j, u) for u in us]
            got = nets.nearest_members(j, us, executor=ChunkedExecutor(shards))
            assert [int(x) for x in got] == expected
