"""Property-based routing tests over random doubling graphs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import knn_geometric_graph
from repro.metrics.graphmetric import ShortestPathMetric
from repro.routing import RingRouting, evaluate_scheme


@settings(max_examples=8, deadline=None)
@given(
    st.integers(min_value=12, max_value=40),
    st.integers(min_value=0, max_value=10**6),
    st.sampled_from([0.15, 0.3, 0.45]),
)
def test_ring_routing_always_delivers_with_bounded_stretch(n, seed, delta):
    graph = knn_geometric_graph(n, k=3, seed=seed)
    metric = ShortestPathMetric(graph)
    scheme = RingRouting(graph, delta=delta, metric=metric)
    stats = evaluate_scheme(scheme, metric.matrix, sample_pairs=80, seed=seed)
    assert stats.delivery_rate == 1.0
    assert stats.max_stretch <= 1 + 4 * delta


@settings(max_examples=6, deadline=None)
@given(st.integers(min_value=10, max_value=30), st.integers(min_value=0, max_value=10**6))
def test_trivial_routing_exact_on_random_graphs(n, seed):
    from repro.routing import TrivialRouting

    graph = knn_geometric_graph(n, k=3, seed=seed)
    metric = ShortestPathMetric(graph)
    scheme = TrivialRouting(graph)
    stats = evaluate_scheme(scheme, metric.matrix, sample_pairs=60, seed=seed)
    assert stats.delivery_rate == 1.0
    assert abs(stats.max_stretch - 1.0) < 1e-9
