"""Property-based tests for the labeling schemes' soundness guarantees."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.labeling import RingDLS, ThorupZwickOracle
from repro.metrics import EuclideanMetric


@st.composite
def line_metrics(draw, min_n=4, max_n=14):
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    xs = draw(
        st.lists(
            st.integers(min_value=0, max_value=5000),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return EuclideanMetric(np.array(sorted(xs), dtype=float)[:, None] * 0.1)


@settings(max_examples=20, deadline=None)
@given(line_metrics(), st.integers(min_value=1, max_value=3), st.integers(0, 100))
def test_thorup_zwick_sound_on_random_lines(metric, k, seed):
    oracle = ThorupZwickOracle(metric, k=k, seed=seed, mantissa_bits=12)
    bound = oracle.stretch_bound() * (1 + 2 * oracle.codec.relative_error)
    for u, v in metric.pairs():
        d = metric.distance(u, v)
        est = oracle.estimate(u, v)
        assert d * (1 - 1e-9) <= est <= bound * d * (1 + 1e-9)


@settings(max_examples=8, deadline=None)
@given(line_metrics(min_n=4, max_n=10))
def test_ring_dls_sound_on_random_lines(metric):
    dls = RingDLS(metric, delta=0.4)
    for u, v in metric.pairs():
        d = metric.distance(u, v)
        est = dls.estimate(u, v)
        assert d * (1 - 1e-9) <= est <= (1 + 2.5 * 0.4) * d + 1e-9


@settings(max_examples=15, deadline=None)
@given(line_metrics(), st.integers(0, 50))
def test_tz_hierarchy_invariants(metric, seed):
    oracle = ThorupZwickOracle(metric, k=3, seed=seed)
    # Nested levels, non-empty, pivot distances monotone in level.
    for upper, lower in zip(oracle.levels[1:], oracle.levels[:-1]):
        assert set(int(x) for x in upper) <= set(int(x) for x in lower)
        assert upper.size >= 1
    for v in range(metric.n):
        dists = oracle._pivot_dist[v]
        assert all(a <= b + 1e-12 for a, b in zip(dists, dists[1:]))
