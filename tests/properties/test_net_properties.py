"""Property-based tests: r-nets and packings on random point sets."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import EuclideanMetric, eps_mu_packing, greedy_net
from repro.metrics.nets import NestedNets, is_r_net


@st.composite
def metrics(draw, max_n=14):
    """1-d point sets snapped to a 0.01 grid (keeps aspect ratios within
    realistic ranges; the denormal-gap pathology has its own regression
    test in tests/metrics/test_packing.py)."""
    n = draw(st.integers(min_value=2, max_value=max_n))
    xs = draw(
        st.lists(
            st.integers(min_value=0, max_value=10000),
            min_size=n,
            max_size=n,
            unique=True,
        )
    )
    return EuclideanMetric(np.array(xs, dtype=float)[:, None] * 0.01)


@settings(max_examples=40, deadline=None)
@given(metrics(), st.floats(min_value=0.01, max_value=50.0))
def test_greedy_net_is_valid(metric, r):
    net = greedy_net(metric, r)
    assert is_r_net(metric, net, r)


@settings(max_examples=25, deadline=None)
@given(metrics(), st.integers(min_value=2, max_value=5))
def test_nested_nets_nest(metric, levels):
    nets = NestedNets(metric, levels=levels, base_radius=metric.min_distance())
    for j in range(levels - 1):
        assert set(nets.net(j + 1)) <= set(nets.net(j))
        assert is_r_net(metric, nets.net(j), nets.radius_of(j))


@settings(max_examples=20, deadline=None)
@given(metrics(), st.sampled_from([1.0, 0.5, 0.25]))
def test_packing_guarantees(metric, eps):
    packing = eps_mu_packing(metric, eps)
    assert packing.verify_disjoint()
    for u in range(metric.n):
        _ball, reach = packing.covering_ball_for(u)
        assert reach <= 6.0 * metric.radius_for_fraction(u, eps) + 1e-9


@settings(max_examples=25, deadline=None)
@given(metrics())
def test_doubling_measure_positive_normalized(metric):
    from repro.metrics.measure import doubling_measure

    mu = doubling_measure(metric)
    assert np.all(mu.weights > 0)
    assert np.isclose(mu.weights.sum(), 1.0)
