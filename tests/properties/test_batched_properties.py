"""Batched metric queries agree with per-pair ``distance`` everywhere.

The engine leans on ``distances_between`` / ``pairwise`` being drop-in
replacements for ``distance`` loops; these properties pin that down for
every registered workload (covering the euclidean, matrix and
shortest-path metric backends plus the generic base implementation) and
for the codec's vectorized roundtrip.
"""

import numpy as np
import pytest

from repro import api
from repro.labeling.encoding import DistanceCodec
from repro.metrics.base import RowCache

ALL_WORKLOADS = sorted(api.workload_names())


@pytest.fixture(scope="module")
def metrics():
    return {
        name: api.build_workload(name, n=20, seed=11).metric
        for name in ALL_WORKLOADS
    }


@pytest.mark.parametrize("name", ALL_WORKLOADS)
class TestBatchedAgreesWithScalar:
    def test_distances_between_matches_distance(self, metrics, name):
        metric = metrics[name]
        rng = np.random.default_rng(3)
        us = rng.integers(0, metric.n, size=7)
        vs = rng.integers(0, metric.n, size=9)
        block = metric.distances_between(us, vs)
        assert block.shape == (7, 9)
        for i, u in enumerate(us):
            for j, v in enumerate(vs):
                assert block[i, j] == pytest.approx(
                    metric.distance(int(u), int(v)), rel=1e-12, abs=1e-12
                )

    def test_pairwise_matches_distance(self, metrics, name):
        metric = metrics[name]
        rng = np.random.default_rng(5)
        pairs = rng.integers(0, metric.n, size=(40, 2))
        got = metric.pairwise(pairs)
        for k, (u, v) in enumerate(pairs):
            assert got[k] == pytest.approx(
                metric.distance(int(u), int(v)), rel=1e-12, abs=1e-12
            )

    def test_pairwise_zero_on_diagonal(self, metrics, name):
        metric = metrics[name]
        pairs = np.stack([np.arange(metric.n), np.arange(metric.n)], axis=1)
        assert np.allclose(metric.pairwise(pairs), 0.0)

    def test_empty_batches(self, metrics, name):
        metric = metrics[name]
        assert metric.pairwise(np.empty((0, 2), dtype=int)).shape == (0,)
        assert metric.distances_between([], []).shape == (0, 0)


class TestRowCache:
    def test_eviction_keeps_results_correct(self):
        # A budget of ~3 rows forces constant eviction; every query must
        # still be answered correctly from recomputed rows.
        metric = api.build_workload("hypercube", n=64, seed=2).metric
        reference = np.array(
            [[metric.distance(u, v) for v in range(8)] for u in range(8)]
        )
        small = RowCache(budget_bytes=3 * 64 * 8)
        metric._sorted_rows = small
        for u in range(64):
            metric.ball_size(u, 0.5)  # touch every node: evictions happen
        assert len(small) <= 3 + 1
        block = metric.distances_between(np.arange(8), np.arange(8))
        assert np.allclose(block, reference)

    def test_budget_bounds_bytes(self):
        cache = RowCache(budget_bytes=1000)
        for key in range(50):
            cache.put(key, np.zeros(16))  # 128 bytes each
        assert cache.nbytes <= 1000
        assert len(cache) < 50

    def test_always_keeps_latest_row(self):
        cache = RowCache(budget_bytes=8)
        row = np.zeros(100)
        cache.put(0, row)
        assert cache.get(0) is row

    def test_evicted_reference_stays_valid(self):
        cache = RowCache(budget_bytes=900)
        first = cache.put(0, np.arange(16.0))
        cache.put(1, np.zeros(100))  # evicts key 0
        assert cache.get(0) is None
        assert np.array_equal(first, np.arange(16.0))


class TestCodecRoundtripMany:
    @pytest.mark.parametrize("mantissa_bits", [4, 8, 12])
    def test_matches_scalar_roundtrip(self, mantissa_bits):
        rng = np.random.default_rng(7)
        codec = DistanceCodec(0.01, 100.0, mantissa_bits)
        ds = np.concatenate([[0.0, 0.01, 100.0], rng.uniform(0.01, 100.0, 200)])
        batched = codec.roundtrip_many(ds)
        scalar = np.array([codec.roundtrip(float(d)) for d in ds])
        assert np.array_equal(batched, scalar)

    def test_rejects_negative(self):
        codec = DistanceCodec(0.5, 2.0, 6)
        with pytest.raises(ValueError):
            codec.roundtrip_many(np.array([-1.0]))
