"""PackedRings round-trips bit-for-bit with the dict builders.

The contract of the CSR backend: ``backend="packed"`` and
``backend="dict"`` produce *identical* ring structures — same keys,
same radii, same member tuples in the same order, same RNG draws for
the sampled builders — for all three builders, on euclidean and on
lazy-graph metrics, under any shard count.  A second contract pins the
packed label path: ``estimate_many`` over packed labels equals the
per-pair ``estimate`` decoder exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.construction import ChunkedExecutor, SerialExecutor
from repro.core.packed import PackedRings, exact_capped_rings
from repro.core.rings import (
    RingsOfNeighbors,
    cardinality_rings,
    measure_rings,
    net_rings,
)
from repro.graphs.generators import knn_geometric_graph
from repro.metrics.graphmetric import ShortestPathMetric
from repro.metrics.measure import doubling_measure
from repro.metrics.nets import NestedNets
from repro.metrics.synthetic import random_hypercube_metric

SHARD_COUNTS = (1, 3)


def _metrics():
    graph = knn_geometric_graph(56, k=4, seed=9)
    return {
        "euclidean": random_hypercube_metric(48, dim=2, seed=5),
        "graph-lazy": ShortestPathMetric(
            graph, dense=False, row_cache_bytes=1 << 20
        ),
    }


def assert_identical(packed, legacy):
    """Every observable of the two backends matches bit for bit."""
    assert isinstance(packed, PackedRings)
    assert isinstance(legacy, RingsOfNeighbors)
    n = packed.metric.n
    for u in range(n):
        assert packed.rings_of(u).keys() == legacy.rings_of(u).keys()
        for key, ring in legacy.rings_of(u).items():
            p = packed.ring(u, key)
            assert p.members == ring.members
            assert p.radius == ring.radius
            assert p.owner == ring.owner and p.key == ring.key
        assert packed.neighbors_of(u) == legacy.neighbors_of(u)
        assert packed.out_degree(u) == legacy.out_degree(u)
        assert (
            packed.pointer_bits(u).as_dict() == legacy.pointer_bits(u).as_dict()
        )
    assert packed.max_ring_cardinality() == legacy.max_ring_cardinality()
    assert packed.max_out_degree() == legacy.max_out_degree()


class TestBuilderRoundTrip:
    @pytest.mark.parametrize("metric_name", ["euclidean", "graph-lazy"])
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_net_rings(self, metric_name, shards):
        metric = _metrics()[metric_name]
        executor = (
            SerialExecutor() if shards == 1 else ChunkedExecutor(shards=shards)
        )
        nets = NestedNets(
            metric, levels=4, base_radius=metric.min_distance(),
            executor=executor,
        )
        packed = net_rings(metric, nets, lambda j: 1.5 * nets.radius_of(j))
        legacy = net_rings(
            metric, nets, lambda j: 1.5 * nets.radius_of(j), backend="dict"
        )
        assert_identical(packed, legacy)

    @pytest.mark.parametrize("metric_name", ["euclidean", "graph-lazy"])
    def test_cardinality_rings(self, metric_name):
        metric = _metrics()[metric_name]
        packed = cardinality_rings(metric, samples_per_ring=4, seed=11)
        legacy = cardinality_rings(
            metric, samples_per_ring=4, seed=11, backend="dict"
        )
        assert_identical(packed, legacy)

    @pytest.mark.parametrize("metric_name", ["euclidean", "graph-lazy"])
    def test_measure_rings(self, metric_name):
        metric = _metrics()[metric_name]
        mu = doubling_measure(metric)
        packed = measure_rings(metric, mu, samples_per_ring=3, seed=7)
        legacy = measure_rings(
            metric, mu, samples_per_ring=3, seed=7, backend="dict"
        )
        assert_identical(packed, legacy)

    def test_level_subset_and_missing_key(self):
        metric = _metrics()["euclidean"]
        nets = NestedNets(metric, levels=4, base_radius=metric.min_distance())
        packed = net_rings(metric, nets, lambda j: 1.0, levels=[2, 3])
        assert packed.ring(0, 2) is not None
        assert packed.ring(0, 0) is None

    def test_merged_matches_dict_merge(self):
        metric = _metrics()["euclidean"]
        a_p = cardinality_rings(metric, 3, seed=1)
        b_p = cardinality_rings(metric, 2, seed=2)
        a_d = cardinality_rings(metric, 3, seed=1, backend="dict")
        b_d = cardinality_rings(metric, 2, seed=2, backend="dict")
        merged_p = a_p.merged_with(b_p)
        merged_d = a_d.merged_with(b_d)
        for u in range(metric.n):
            assert merged_p.rings_of(u).keys() == merged_d.rings_of(u).keys()
            assert merged_p.neighbors_of(u) == merged_d.neighbors_of(u)

    def test_sorted_members_view(self):
        metric = _metrics()["euclidean"]
        nets = NestedNets(metric, levels=4, base_radius=metric.min_distance())
        packed = net_rings(metric, nets, lambda j: 2.0 * nets.radius_of(j))
        as_sorted = packed.with_sorted_members()
        for u in range(metric.n):
            for key in packed.keys:
                want = tuple(sorted(packed.ring(u, key).members))
                assert as_sorted.ring(u, key).members == want

    def test_exact_capped_rings_match_bruteforce(self):
        metric = _metrics()["euclidean"]
        base = metric.min_distance()
        levels = metric.log_aspect_ratio() + 1
        cap = 5
        exact = exact_capped_rings(metric, base, levels, cap=cap)
        edges = base * np.exp2(np.arange(levels))
        for u in range(metric.n):
            row = metric.distances_from(u)
            scale = np.searchsorted(edges, row, side="left")
            order = np.argsort(row, kind="stable")
            for j in range(levels):
                annulus = order[
                    (scale[order] == j) & (order != u) & (row[order] > 0)
                ]
                want = [int(v) for v in annulus[:cap]]
                got = [int(v) for v in exact.members_of(u, j)]
                assert got == want


class TestPackedLabelEquivalence:
    """estimate_many over packed labels == per-pair estimate, exactly."""

    def _pairs(self, n):
        rng = np.random.default_rng(0)
        us = rng.integers(0, n, size=200)
        vs = rng.integers(0, n, size=200)
        return us, vs

    def test_triangulation(self):
        from repro.labeling.triangulation import RingTriangulation

        metric = random_hypercube_metric(40, dim=2, seed=3)
        tri = RingTriangulation(metric, delta=0.3)
        us, vs = self._pairs(metric.n)
        batched = tri.estimate_many(us, vs)
        singles = np.array([tri.estimate(int(u), int(v)) for u, v in zip(us, vs)])
        np.testing.assert_array_equal(batched, singles)

    def test_triangulation_dls(self):
        from repro.labeling.triangulation import (
            RingTriangulation,
            TriangulationDLS,
        )

        metric = random_hypercube_metric(40, dim=2, seed=3)
        dls = TriangulationDLS(RingTriangulation(metric, delta=0.3))
        us, vs = self._pairs(metric.n)
        batched = dls.estimate_many(us, vs)
        singles = np.array([dls.estimate(int(u), int(v)) for u, v in zip(us, vs)])
        np.testing.assert_array_equal(batched, singles)

    def test_ring_dls(self):
        from repro.labeling.dls import RingDLS

        metric = random_hypercube_metric(32, dim=2, seed=4)
        dls = RingDLS(metric, delta=0.3)
        us, vs = self._pairs(metric.n)
        batched = dls.estimate_many(us, vs)
        singles = np.array([dls.estimate(int(u), int(v)) for u, v in zip(us, vs)])
        np.testing.assert_array_equal(batched, singles)


class TestPackedSchemes:
    """The packed routing schemes keep their structural invariants."""

    def test_ring_routing_zeta_matches_bruteforce(self):
        graph = knn_geometric_graph(48, k=4, seed=2)
        from repro.routing.ring_scheme import RingRouting

        scheme = RingRouting(graph, delta=0.3)
        for u in range(0, graph.n, 7):
            for j in range(scheme.levels - 1):
                expected = {}
                ring_u_next = {
                    w: k for k, w in enumerate(scheme.ring(u, j + 1))
                }
                for fi, f in enumerate(scheme.ring(u, j)):
                    for wi, w in enumerate(scheme.ring(f, j + 1)):
                        if w in ring_u_next:
                            expected[(fi, wi)] = ring_u_next[w]
                assert dict(scheme.zeta_items(u, j)) == expected
                for (fi, wi), k in expected.items():
                    assert scheme.zeta_lookup(u, j, fi, wi) == k

    def test_ring_routing_storage_is_packed(self):
        graph = knn_geometric_graph(48, k=4, seed=2)
        from repro.core.packed import PackedRings
        from repro.routing.ring_scheme import RingRouting

        scheme = RingRouting(graph, delta=0.3)
        assert isinstance(scheme.rings_packed, PackedRings)
        assert scheme.rings_packed.members.dtype == np.int32
        account = scheme.rings_packed.storage_account()
        assert account.total_bits == scheme.rings_packed.resident_bytes() * 8

    def test_label_routing_neighbors_sorted_csr(self):
        graph = knn_geometric_graph(48, k=4, seed=2)
        from repro.routing.label_scheme import LabelRouting

        scheme = LabelRouting(graph, delta=0.3, estimator="exact")
        for u in range(graph.n):
            nbrs = scheme.neighbors_of(u)
            assert list(nbrs) == sorted(nbrs)
            assert u not in nbrs
