"""Thorup–Zwick distance oracle baseline."""

import numpy as np
import pytest

from repro.labeling import ThorupZwickOracle
from repro.metrics import exponential_line


@pytest.fixture(scope="module")
def oracle64(hypercube64):
    return ThorupZwickOracle(hypercube64, k=2, seed=0)


class TestAccuracy:
    def test_stretch_bound_holds(self, oracle64, hypercube64):
        """Estimates within the guaranteed (2k-1) stretch, never below d."""
        bound = oracle64.stretch_bound() * (1 + 2 * oracle64.codec.relative_error)
        for u, v in hypercube64.pairs():
            d = hypercube64.distance(u, v)
            est = oracle64.estimate(u, v)
            assert d - 1e-9 <= est <= bound * d + 1e-9

    def test_k3_still_sound(self, hypercube64):
        oracle = ThorupZwickOracle(hypercube64, k=3, seed=1)
        bound = 5 * (1 + 2 * oracle.codec.relative_error)
        for u, v in [(0, 63), (5, 40), (17, 18)]:
            d = hypercube64.distance(u, v)
            assert d - 1e-9 <= oracle.estimate(u, v) <= bound * d + 1e-9

    def test_k1_exact_within_quantization(self, hypercube32):
        """k=1: bunches are the whole space, estimates ~exact."""
        oracle = ThorupZwickOracle(hypercube32, k=1, seed=2)
        slack = 1 + 2 * oracle.codec.relative_error
        for u, v in [(0, 31), (3, 4)]:
            d = hypercube32.distance(u, v)
            assert oracle.estimate(u, v) <= slack * d + 1e-9

    def test_self_zero(self, oracle64):
        assert oracle64.estimate(9, 9) == 0.0

    def test_exponential_line(self):
        metric = exponential_line(48)
        oracle = ThorupZwickOracle(metric, k=2, seed=3)
        bound = 3 * (1 + 2 * oracle.codec.relative_error)
        for u, v in metric.pairs():
            d = metric.distance(u, v)
            assert d - 1e-6 * d <= oracle.estimate(u, v) <= bound * d + 1e-9


class TestStructure:
    def test_hierarchy_nested(self, oracle64):
        for upper, lower in zip(oracle64.levels[1:], oracle64.levels[:-1]):
            assert set(int(x) for x in upper) <= set(int(x) for x in lower)

    def test_bunch_contains_pivots(self, oracle64):
        for v in (0, 13, 63):
            for i in range(oracle64.k):
                assert int(oracle64._pivots[v, i]) in oracle64.bunch(v)

    def test_bunch_size_near_theory(self, oracle64, hypercube64):
        """Expected k n^{1/k}; assert within a generous constant."""
        assert oracle64.max_bunch_size() <= 8 * oracle64.expected_bunch_bound()

    def test_label_bits_components(self, oracle64):
        account = oracle64.label_bits(0)
        assert {"bunch_ids", "bunch_distances", "pivot_ids"} <= set(
            account.components
        )

    def test_bigger_k_smaller_bunches(self, hypercube64):
        """The k trade-off: more levels -> smaller bunches (on average)."""
        k2 = ThorupZwickOracle(hypercube64, k=2, seed=4)
        k4 = ThorupZwickOracle(hypercube64, k=4, seed=4)
        mean2 = np.mean([len(k2.bunch(v)) for v in range(64)])
        mean4 = np.mean([len(k4.bunch(v)) for v in range(64)])
        assert mean4 <= mean2 * 1.5

    def test_rejects_bad_k(self, hypercube32):
        with pytest.raises(ValueError):
            ThorupZwickOracle(hypercube32, k=0)
