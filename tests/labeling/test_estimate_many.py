"""Batched estimates of the ring structures match the per-pair decoders.

The engine's :func:`~repro.engine.evaluate.bulk_estimates` prefers a
vectorized ``estimate_many``; these tests pin down that the paper's own
schemes (Theorem 3.2 triangulation, its corollary DLS, and the Theorem
3.4 id-free labels) now provide one and that it reproduces the per-pair
``estimate`` bit for bit — including diagonal pairs and pairs repeated
within one batch.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import bulk_estimates
from repro.labeling import RingDLS, RingTriangulation, TriangulationDLS
from repro.labeling._dplus import PackedLabels

DELTA = 0.4


@pytest.fixture(scope="module")
def estimators(hypercube32, scales_hypercube32):
    tri = RingTriangulation(hypercube32, DELTA, scales=scales_hypercube32)
    return {
        "triangulation": tri,
        "triangulation-dls": TriangulationDLS(tri),
        "ring-dls": RingDLS(hypercube32, DELTA, scales=scales_hypercube32),
    }


def _pair_batch(n: int) -> tuple:
    rng = np.random.default_rng(5)
    us = rng.integers(0, n, 300)
    vs = rng.integers(0, n, 300)
    us[:5] = vs[:5]  # diagonal pairs
    us[5:10], vs[5:10] = us[10:15], vs[10:15]  # repeated pairs
    return us, vs


@pytest.mark.parametrize("name", ["triangulation", "triangulation-dls", "ring-dls"])
def test_estimate_many_matches_per_pair(estimators, hypercube32, name):
    estimator = estimators[name]
    us, vs = _pair_batch(hypercube32.n)
    batched = estimator.estimate_many(us, vs)
    looped = np.array(
        [estimator.estimate(int(u), int(v)) for u, v in zip(us, vs)]
    )
    assert np.array_equal(batched, looped)


@pytest.mark.parametrize("name", ["triangulation", "triangulation-dls", "ring-dls"])
def test_bulk_estimates_takes_the_vectorized_path(estimators, hypercube32, name):
    estimator = estimators[name]
    us, vs = _pair_batch(hypercube32.n)
    pairs = np.stack([us, vs], axis=1)
    via_engine = bulk_estimates(estimator, pairs)
    assert np.array_equal(via_engine, estimator.estimate_many(us, vs))


def test_packed_labels_edge_cases():
    packed = PackedLabels([{1: 1.0}, {2: 2.0}, {}, {1: 0.5, 2: 0.25}])
    got = packed.dplus_many([0, 0, 2, 3, 1], [1, 3, 3, 3, 1])
    assert got[0] == np.inf  # no common beacon
    assert got[1] == pytest.approx(1.5)  # beacon 1: 1.0 + 0.5
    assert got[2] == np.inf  # empty label
    assert got[3] == 0.0  # diagonal
    assert got[4] == 0.0  # diagonal, even with a shared beacon
    assert packed.dplus_many([], []).shape == (0,)


def test_packed_labels_chunking_is_transparent():
    labels = [{j: float(j + u) for j in range(u % 7 + 1)} for u in range(40)]
    packed = PackedLabels(labels)
    rng = np.random.default_rng(0)
    us = rng.integers(0, 40, 500)
    vs = rng.integers(0, 40, 500)
    expected = packed.dplus_many(us, vs)
    packed.max_gather = 16  # force many tiny chunks
    assert np.array_equal(packed.dplus_many(us, vs), expected)
