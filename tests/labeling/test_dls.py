"""Theorem 3.4 — id-free distance labeling."""

import pytest

from repro.labeling.dls import RingDLS


@pytest.fixture(scope="module")
def dls32(hypercube32, scales_hypercube32):
    return RingDLS(hypercube32, delta=0.4, scales=scales_hypercube32)


@pytest.fixture(scope="module")
def dls_exp(expline32, scales_expline32):
    return RingDLS(expline32, delta=0.4, scales=scales_expline32)


class TestAccuracy:
    def test_sound_upper_bound_hypercube(self, dls32, hypercube32):
        """D+ >= true distance (up to nothing: encoding rounds up)."""
        for u, v in hypercube32.pairs():
            assert dls32.estimate(u, v) >= hypercube32.distance(u, v) - 1e-12

    def test_approximation_hypercube(self, dls32, hypercube32):
        """D+ <= (1+O(delta)) d for every pair (here O(delta) ~ 2.2 delta
        including quantization)."""
        bound = 1 + 2.5 * dls32.delta
        for u, v in hypercube32.pairs():
            d = hypercube32.distance(u, v)
            assert dls32.estimate(u, v) <= bound * d + 1e-9

    def test_sound_and_tight_expline(self, dls_exp, expline32):
        bound = 1 + 2.5 * dls_exp.delta
        for u, v in expline32.pairs():
            d = expline32.distance(u, v)
            est = dls_exp.estimate(u, v)
            assert d - 1e-9 * d <= est <= bound * d + 1e-9

    def test_self_zero(self, dls32):
        assert dls32.estimate(11, 11) == 0.0

    def test_symmetric_estimates(self, dls32):
        for u, v in [(0, 31), (4, 17)]:
            assert dls32.estimate(u, v) == pytest.approx(dls32.estimate(v, u))


class TestIdFreeDecoding:
    def test_decoding_uses_labels_only(self, dls32):
        """estimate_from_labels works on the label objects alone."""
        est = dls32.estimate_from_labels(dls32.labels[2], dls32.labels[9])
        assert est == dls32.estimate(2, 9)

    def test_chain_identifies_anchor(self, dls32):
        pairs = RingDLS._chain(dls32.labels[0], dls32.labels[1])
        assert len(pairs) >= 1  # at least f_u0 is always identified

    def test_chain_pointers_refer_to_same_node(self, dls32):
        """Simulation-level check that identification is correct."""
        for u, v in [(0, 1), (5, 28)]:
            pairs = RingDLS._chain(dls32.labels[u], dls32.labels[v])
            zoom = dls32.scales.zooming_sequence(u)
            for level, (pu, pv) in enumerate(pairs):
                node_u = dls32._segment_node_for_test(u, pu)
                node_v = dls32._segment_node_for_test(v, pv)
                assert node_u == node_v == zoom[level]


class TestSizes:
    def test_label_components(self, dls32):
        account = dls32.label_bits(0)
        assert "neighbor_distances" in account.components
        assert "zoom_anchor" in account.components

    def test_virtual_neighbor_count_bounded(self, dls32, hypercube32):
        assert dls32.max_virtual_neighbors() <= hypercube32.n

    def test_mean_at_most_max(self, dls32):
        assert dls32.mean_label_bits() <= dls32.max_label_bits()

    def test_rejects_big_delta(self, hypercube32):
        with pytest.raises(ValueError, match="1/2"):
            RingDLS(hypercube32, delta=0.7)

    def test_no_global_ids_in_label(self, dls32):
        """The whole point of Theorem 3.4: labels carry no node ids."""
        label = dls32.labels[3]
        assert "neighbor_ids" not in label.size.components
