"""Theorem 3.2 — (0,δ)-triangulation."""

import pytest

from repro.labeling import RingTriangulation, TriangulationDLS


@pytest.fixture(scope="module")
def tri32(hypercube32, scales_hypercube32):
    return RingTriangulation(hypercube32, delta=0.4, scales=scales_hypercube32)


@pytest.fixture(scope="module")
def tri_exp(expline32, scales_expline32):
    return RingTriangulation(expline32, delta=0.4, scales=scales_expline32)


class TestZeroEpsilonGuarantee:
    def test_every_pair_has_close_common_beacon_hypercube(self, tri32, hypercube32):
        """The (0,·) part: the guarantee holds for ALL pairs."""
        for u, v in hypercube32.pairs():
            assert tri32.has_close_common_beacon(u, v)

    def test_every_pair_has_close_common_beacon_expline(self, tri_exp, expline32):
        for u, v in expline32.pairs():
            assert tri_exp.has_close_common_beacon(u, v)

    def test_worst_ratio_within_certificate(self, tri32):
        assert tri32.worst_ratio() <= tri32.certified_ratio_bound() + 1e-9

    def test_worst_ratio_within_certificate_expline(self, tri_exp):
        assert tri_exp.worst_ratio() <= tri_exp.certified_ratio_bound() + 1e-9

    def test_estimate_upper_bounds_distance(self, tri32, hypercube32):
        for u, v in hypercube32.pairs():
            assert tri32.estimate(u, v) >= hypercube32.distance(u, v) - 1e-12

    def test_estimate_within_one_plus_two_delta(self, tri_exp, expline32):
        for u, v in expline32.pairs():
            d = expline32.distance(u, v)
            assert tri_exp.estimate(u, v) <= (1 + 2 * tri_exp.delta) * d + 1e-9


class TestStructure:
    def test_order_reported(self, tri32):
        assert 1 <= tri32.order <= 32
        assert tri32.mean_order() <= tri32.order

    def test_beacon_distances_exact(self, tri32, hypercube32):
        label = tri32.beacons_of(4)
        for b, d in label.items():
            assert d == pytest.approx(hypercube32.distance(4, b))

    def test_common_beacons_symmetric(self, tri32):
        assert set(tri32.common_beacons(1, 8)) == set(tri32.common_beacons(8, 1))

    def test_self_estimate(self, tri32):
        assert tri32.estimate(3, 3) == 0.0

    def test_rejects_big_delta(self, hypercube32):
        with pytest.raises(ValueError, match="1/2"):
            RingTriangulation(hypercube32, delta=0.6)

    def test_expline_order_smaller_than_n(self, tri_exp, expline32):
        """On the sparse exponential line rings stay small."""
        assert tri_exp.order < expline32.n


class TestTriangulationDLS:
    @pytest.fixture(scope="class")
    def dls(self, tri32):
        return TriangulationDLS(tri32)

    def test_estimate_sound_and_tight(self, dls, tri32, hypercube32):
        slack = 1 + 2 * dls.codec.relative_error
        for u, v in hypercube32.pairs():
            d = hypercube32.distance(u, v)
            est = dls.estimate(u, v)
            assert est >= d / slack
            assert est <= (1 + 2 * tri32.delta) * d * slack + 1e-9

    def test_self_zero(self, dls):
        assert dls.estimate(5, 5) == 0.0

    def test_label_bits_structure(self, dls):
        account = dls.label_bits(0)
        assert set(account.components) == {"neighbor_ids", "neighbor_distances"}
        assert account.total_bits > 0

    def test_max_label_bits(self, dls):
        per_node = [dls.label_bits(u).total_bits for u in range(32)]
        assert dls.max_label_bits() == max(per_node)

    def test_label_contents_quantized(self, dls, hypercube32):
        for b, stored in dls.label(7).items():
            true = hypercube32.distance(7, b)
            assert stored >= true - 1e-12
