"""Common-beacon (ε,δ)-triangulation baseline."""

import pytest

from repro.labeling import BeaconTriangulation


class TestBounds:
    @pytest.fixture(scope="class")
    def tri(self, hypercube64):
        return BeaconTriangulation(hypercube64, k=12, seed=0, mantissa_bits=14)

    def test_bounds_sandwich_distance(self, tri, hypercube64):
        """D- <= d <= D+ up to quantization error (which is relative to
        the beacon distances, hence absolute in the diameter for D-)."""
        slack = 2 * tri.codec.relative_error * hypercube64.diameter()
        for u, v in [(0, 1), (5, 40), (13, 62), (7, 7 + 1)]:
            lower, upper = tri.bounds(u, v)
            d = hypercube64.distance(u, v)
            assert lower <= d + slack
            assert upper >= d - 1e-9

    def test_estimate_is_upper(self, tri):
        lower, upper = tri.bounds(3, 44)
        assert tri.estimate(3, 44) == upper

    def test_self_estimate_zero(self, tri):
        assert tri.estimate(9, 9) == 0.0

    def test_order(self, tri):
        assert tri.order == 12

    def test_label_bits(self, tri):
        bits = tri.label_bits(0)
        assert bits.total_bits == 12 * (6 + tri.codec.bits_per_distance)


class TestEpsilonDelta:
    def test_epsilon_decreases_with_more_beacons(self, hypercube64):
        few = BeaconTriangulation(hypercube64, k=3, seed=1)
        many = BeaconTriangulation(hypercube64, k=32, seed=1)
        delta = 0.5
        assert many.epsilon_for_delta(delta) <= few.epsilon_for_delta(delta) + 0.02

    def test_some_pairs_fail(self, hypercube64):
        """The baseline's flaw the paper fixes: with few beacons a
        noticeable fraction of pairs has a poor certificate."""
        tri = BeaconTriangulation(hypercube64, k=3, seed=2)
        assert tri.epsilon_for_delta(0.2) > 0.0

    def test_explicit_beacons(self, hypercube64):
        tri = BeaconTriangulation(hypercube64, k=3, beacons=[1, 2, 3])
        assert list(tri.beacons) == [1, 2, 3]

    def test_worst_ratio_at_least_one(self, hypercube64):
        tri = BeaconTriangulation(hypercube64, k=8, seed=3)
        assert tri.worst_ratio() >= 1.0

    def test_rejects_zero_beacons(self, hypercube64):
        with pytest.raises(ValueError):
            BeaconTriangulation(hypercube64, k=0)
