"""ScaleStructure — the shared X/Y/zooming skeleton of §3."""


import pytest

from repro.labeling._scales import ScaleStructure


class TestScaleStructure:
    def test_levels(self, scales_hypercube32):
        assert scales_hypercube32.levels_n == 5  # ceil(log2 32)

    def test_rui_cached_matches_metric(self, scales_hypercube32, hypercube32):
        for u in (0, 9):
            for i in range(5):
                assert scales_hypercube32.rui(u, i) == pytest.approx(
                    hypercube32.rui(u, i)
                )

    def test_r_prev_level0_huge(self, scales_hypercube32, hypercube32):
        assert scales_hypercube32.r_prev(0, 0) > hypercube32.diameter()

    def test_net_level_clamps(self, scales_hypercube32):
        s = scales_hypercube32
        assert s.net_level(0.0) == 0
        assert s.net_level(s.base / 2) == 0
        assert s.net_level(1e12) == s.nets.levels - 1

    def test_rejects_bad_delta(self, hypercube32):
        with pytest.raises(ValueError):
            ScaleStructure(hypercube32, delta=0.0)
        with pytest.raises(ValueError):
            ScaleStructure(hypercube32, delta=1.0)


class TestXNeighbors:
    def test_reachability_bound(self, scales_hypercube32, hypercube32):
        """d(u, h_B) + radius(B) <= r_{u,i-1} for every X_i-neighbor."""
        s = scales_hypercube32
        for u in (0, 7, 31):
            for i in range(s.levels_n):
                bound = s.r_prev(u, i)
                for h in s.x_neighbors(u, i):
                    ball = next(
                        b for b in s.packings[i].balls if b.center == h
                    )
                    assert hypercube32.distance(u, h) + ball.radius <= bound + 1e-9

    def test_level0_global(self, scales_hypercube32, hypercube32):
        """X_u0 coincides across nodes (r_{u,-1} = inf convention)."""
        s = scales_hypercube32
        sets = {s.x_neighbors(u, 0) for u in range(hypercube32.n)}
        assert len(sets) == 1

    def test_nearest_x_neighbor(self, scales_hypercube32, hypercube32):
        s = scales_hypercube32
        for u in (3, 19):
            for i in (1, 2):
                x = s.nearest_x_neighbor(u, i)
                if x is None:
                    continue
                row = hypercube32.distances_from(u)
                assert all(row[x] <= row[w] for w in s.x_neighbors(u, i))


class TestYNeighbors:
    def test_level0_global(self, scales_hypercube32, hypercube32):
        s = scales_hypercube32
        sets = {s.y_neighbors(u, 0) for u in range(hypercube32.n)}
        assert len(sets) == 1

    def test_members_are_net_points_in_ball(self, scales_hypercube32, hypercube32):
        s = scales_hypercube32
        for u in (0, 15):
            for i in range(1, s.levels_n):
                level = s.y_level(u, i)
                net_set = set(s.nets.net(level))
                radius = 12.0 * s.rui(u, i) / s.delta
                row = hypercube32.distances_from(u)
                for v in s.y_neighbors(u, i):
                    assert v in net_set
                    assert row[v] <= radius + 1e-9

    def test_zoom_node_is_y_neighbor(self, scales_hypercube32):
        """The paper: f_ui is a Y_i-neighbor of u by definition."""
        s = scales_hypercube32
        for u in (0, 9, 31):
            for i in range(s.levels_n):
                assert s.zoom_node(u, i) in set(s.y_neighbors(u, i))


class TestZooming:
    def test_zoom_within_quarter_radius(self, scales_hypercube32, hypercube32):
        s = scales_hypercube32
        for u in (2, 21):
            for i in range(s.levels_n):
                f = s.zoom_node(u, i)
                assert hypercube32.distance(u, f) <= s.rui(u, i) / 4.0 + 1e-12

    def test_sequence_length(self, scales_hypercube32):
        assert len(scales_hypercube32.zooming_sequence(0)) == 5

    def test_claim_3_6_common_neighborhood(self, scales_hypercube32, hypercube32):
        """Claim 3.6: f_vj is a Y_j-neighbor of u for j below the critical
        scale of the pair (u, v)."""
        s = scales_hypercube32
        for u, v in [(0, 31), (5, 20), (3, 4)]:
            d = hypercube32.distance(u, v)
            r = (1 + s.delta) * d
            # Critical i: r_ui < r + d <= r_{u,i-1}.
            i_crit = next(
                (
                    i
                    for i in range(s.levels_n)
                    if s.rui(u, i) < r + d <= s.r_prev(u, i)
                ),
                None,
            )
            if i_crit is None:
                continue
            for j in range(i_crit):
                assert s.zoom_node(v, j) in set(s.y_neighbors(u, j))

    def test_exponential_line_scales(self, scales_expline32):
        """The huge-aspect-ratio workload builds and zooms fine."""
        s = scales_expline32
        for u in (0, 16, 31):
            seq = s.zooming_sequence(u)
            assert len(seq) == s.levels_n
