"""Mantissa/exponent distance codes."""

import numpy as np
import pytest

from repro.labeling.encoding import DistanceCodec


class TestRoundTrip:
    @pytest.fixture(scope="class")
    def codec(self):
        return DistanceCodec(min_distance=0.01, max_distance=100.0, mantissa_bits=8)

    def test_rounds_up(self, codec):
        for d in (0.01, 0.5, 1.0, 3.14159, 99.0):
            assert codec.roundtrip(d) >= d

    def test_relative_error_bound(self, codec):
        for d in np.geomspace(0.01, 100.0, 200):
            approx = codec.roundtrip(float(d))
            assert approx <= d * (1 + codec.relative_error) + 1e-15

    def test_zero_exact(self, codec):
        assert codec.roundtrip(0.0) == 0.0

    def test_monotone(self, codec):
        values = np.geomspace(0.01, 100.0, 100)
        encoded = [codec.roundtrip(float(d)) for d in values]
        assert all(a <= b + 1e-15 for a, b in zip(encoded, encoded[1:]))

    def test_negative_rejected(self, codec):
        with pytest.raises(ValueError):
            codec.encode(-1.0)

    def test_mantissa_in_range(self, codec):
        for d in (0.02, 1.7, 42.0):
            code = codec.encode(d)
            assert 0 < code.mantissa < 2**codec.mantissa_bits


class TestSizing:
    def test_bits_per_distance(self):
        codec = DistanceCodec(1.0, 2.0**20, mantissa_bits=6)
        assert codec.bits_per_distance == 6 + codec.exponent_bits
        # Exponent covers ~20 scales -> about 5 bits.
        assert codec.exponent_bits <= 6

    def test_exponent_bits_grow_with_log_log_aspect(self):
        narrow = DistanceCodec(1.0, 2.0**8, mantissa_bits=6)
        wide = DistanceCodec(1.0, 2.0**600, mantissa_bits=6)
        assert wide.exponent_bits > narrow.exponent_bits
        assert wide.exponent_bits <= 11  # ~log2(600) + const

    def test_more_mantissa_less_error(self):
        coarse = DistanceCodec(0.1, 10.0, mantissa_bits=4)
        fine = DistanceCodec(0.1, 10.0, mantissa_bits=12)
        assert fine.relative_error < coarse.relative_error

    def test_for_metric(self, hypercube32):
        codec = DistanceCodec.for_metric(hypercube32)
        d = hypercube32.distance(0, 1)
        assert codec.roundtrip(d) >= d

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            DistanceCodec(1.0, 2.0, mantissa_bits=1)
        with pytest.raises(ValueError):
            DistanceCodec(0.0, 2.0)
        with pytest.raises(ValueError):
            DistanceCodec(3.0, 2.0)

    def test_sum_preserves_approximation(self):
        """The §3 argument: x'+y' approximates x+y when both round up."""
        codec = DistanceCodec(0.01, 100.0, mantissa_bits=8)
        rng = np.random.default_rng(0)
        for _ in range(100):
            x, y = rng.uniform(0.01, 50.0, size=2)
            s = codec.roundtrip(float(x)) + codec.roundtrip(float(y))
            assert x + y <= s <= (x + y) * (1 + codec.relative_error) + 1e-12
