"""Graph workload generators — connectivity and shape."""

import pytest

from repro.graphs import (
    grid_graph,
    internet_like_graph,
    knn_geometric_graph,
    random_geometric_graph,
    ring_with_chords_graph,
)


class TestGridGraph:
    def test_size_and_degree(self):
        g = grid_graph(4, dim=2)
        assert g.n == 16
        assert g.m == 2 * 4 * 3  # 2 * side * (side-1)
        assert g.max_out_degree() == 4

    def test_3d(self):
        g = grid_graph(3, dim=3)
        assert g.n == 27
        assert g.is_connected()

    def test_jitter_changes_weights(self):
        g = grid_graph(3, jitter=0.5, seed=1)
        weights = {w for _u, _v, w in g.edges()}
        assert len(weights) > 1
        assert all(1.0 <= w <= 1.5 for w in weights)

    def test_rejects_small_side(self):
        with pytest.raises(ValueError):
            grid_graph(1)


class TestGeometricGraphs:
    def test_knn_connected(self):
        for seed in (0, 1, 2):
            g = knn_geometric_graph(60, k=3, seed=seed)
            assert g.is_connected()

    def test_knn_deterministic(self):
        a = knn_geometric_graph(30, seed=7)
        b = knn_geometric_graph(30, seed=7)
        assert list(a.edges()) == list(b.edges())

    def test_rgg_connected(self):
        g = random_geometric_graph(50, radius=0.2, seed=3)
        assert g.is_connected()

    def test_rgg_edges_within_radius_mostly(self):
        g = random_geometric_graph(40, radius=0.25, seed=4)
        # Only connectivity-patch edges may exceed the radius.
        long_edges = sum(1 for _u, _v, w in g.edges() if w > 0.25)
        assert long_edges <= 5

    def test_internet_like_connected(self):
        g = internet_like_graph(80, seed=5)
        assert g.is_connected()

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            knn_geometric_graph(1)
        with pytest.raises(ValueError):
            random_geometric_graph(1, 0.1)
        with pytest.raises(ValueError):
            internet_like_graph(1)


class TestRing:
    def test_plain_ring(self):
        g = ring_with_chords_graph(10)
        assert g.m == 10
        assert g.is_connected()

    def test_chords_added(self):
        g = ring_with_chords_graph(20, chords=10, seed=0)
        assert g.m >= 20
        assert g.is_connected()

    def test_chord_weight_is_hop_distance(self):
        g = ring_with_chords_graph(12, chords=30, seed=1)
        for u, v, w in g.edges():
            hop = min(abs(u - v), 12 - abs(u - v))
            assert w == pytest.approx(float(hop))

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            ring_with_chords_graph(2)
