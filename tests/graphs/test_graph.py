"""WeightedGraph adjacency, link indices and invariants."""

import pytest

from repro.graphs import WeightedGraph


@pytest.fixture
def triangle():
    g = WeightedGraph(3)
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 2, 2.0)
    g.add_edge(0, 2, 2.5)
    return g


class TestEdges:
    def test_counts(self, triangle):
        assert triangle.n == 3
        assert triangle.m == 3

    def test_weight_lookup(self, triangle):
        assert triangle.weight(0, 1) == 1.0
        assert triangle.weight(1, 0) == 1.0

    def test_missing_edge_raises(self, triangle):
        g = WeightedGraph(3)
        with pytest.raises(KeyError):
            g.weight(0, 1)

    def test_has_edge(self, triangle):
        assert triangle.has_edge(0, 2)
        assert not WeightedGraph(3).has_edge(0, 2)

    def test_readd_updates_weight(self, triangle):
        triangle.add_edge(0, 1, 9.0)
        assert triangle.weight(0, 1) == 9.0
        assert triangle.m == 3  # no duplicate

    def test_rejects_self_loop(self):
        g = WeightedGraph(2)
        with pytest.raises(ValueError, match="self-loop"):
            g.add_edge(1, 1, 1.0)

    def test_rejects_nonpositive_weight(self):
        g = WeightedGraph(2)
        with pytest.raises(ValueError, match="positive"):
            g.add_edge(0, 1, 0.0)

    def test_rejects_out_of_range(self):
        g = WeightedGraph(2)
        with pytest.raises(ValueError, match="range"):
            g.add_edge(0, 5, 1.0)

    def test_edges_iterator_unique(self, triangle):
        edges = list(triangle.edges())
        assert len(edges) == 3
        assert all(u < v for u, v, _ in edges)


class TestLinkIndices:
    def test_roundtrip(self, triangle):
        for u in range(3):
            for v, _w in triangle.neighbors(u):
                idx = triangle.link_index(u, v)
                assert triangle.link_target(u, idx) == v

    def test_out_degree(self, triangle):
        assert triangle.out_degree(0) == 2
        assert triangle.max_out_degree() == 2

    def test_neighbors_order_is_insertion(self):
        g = WeightedGraph(4)
        g.add_edge(2, 0, 1.0)
        g.add_edge(2, 3, 1.0)
        g.add_edge(2, 1, 1.0)
        assert [v for v, _ in g.neighbors(2)] == [0, 3, 1]


class TestUtility:
    def test_connectivity(self, triangle):
        assert triangle.is_connected()
        g = WeightedGraph(3)
        g.add_edge(0, 1, 1.0)
        assert not g.is_connected()

    def test_from_edges(self):
        g = WeightedGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 2.0)])
        assert g.m == 2
        assert g.weight(1, 2) == 2.0

    def test_scipy_csr(self, triangle):
        csr = triangle.to_scipy_csr()
        assert csr.shape == (3, 3)
        assert csr[0, 1] == 1.0
        assert csr[1, 0] == 1.0

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            WeightedGraph(0)
