"""Dijkstra, first-hop pointers and shortest-path trees."""

import numpy as np
import pytest

from repro.graphs import (
    FirstHopTable,
    WeightedGraph,
    all_pairs_shortest_paths,
    shortest_path_tree,
)


@pytest.fixture(scope="module")
def table(knn_graph64):
    return FirstHopTable(knn_graph64)


class TestAPSP:
    def test_matches_manual(self):
        g = WeightedGraph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        g.add_edge(2, 3, 1.0)
        g.add_edge(0, 3, 10.0)
        d = all_pairs_shortest_paths(g)
        assert d[0, 3] == 3.0
        assert d[0, 2] == 2.0

    def test_symmetric(self, knn_graph64):
        d = all_pairs_shortest_paths(knn_graph64)
        assert np.allclose(d, d.T)


class TestFirstHops:
    def test_first_hop_is_neighbor(self, table, knn_graph64):
        for u in (0, 10, 50):
            for t in (5, 33, 63):
                if u == t:
                    continue
                hop = table.first_hop(u, t)
                assert knn_graph64.has_edge(u, hop)

    def test_self_hop(self, table):
        assert table.first_hop(7, 7) == 7
        assert table.first_hop_link(7, 7) is None

    def test_trace_path_is_shortest(self, table):
        for u, t in [(0, 63), (5, 40), (31, 2)]:
            path = table.trace_path(u, t)
            length = sum(
                table.graph.weight(path[i], path[i + 1])
                for i in range(len(path) - 1)
            )
            assert length == pytest.approx(table.distance(u, t))

    def test_trace_path_endpoints(self, table):
        path = table.trace_path(3, 44)
        assert path[0] == 3 and path[-1] == 44

    def test_path_hops(self, table):
        assert table.path_hops(9, 9) == 0
        assert table.path_hops(0, 63) == len(table.trace_path(0, 63)) - 1

    def test_consistency_along_path(self, table):
        """Claim 2.4(c)'s requirement: hops chain into one shortest path."""
        for u, t in [(0, 63), (17, 42)]:
            path = table.trace_path(u, t)
            for i, v in enumerate(path[:-1]):
                assert table.first_hop(v, t) == path[i + 1]

    def test_first_hop_link_roundtrip(self, table, knn_graph64):
        u, t = 0, 50
        link = table.first_hop_link(u, t)
        assert knn_graph64.link_target(u, link) == table.first_hop(u, t)

    def test_disconnected_raises(self):
        g = WeightedGraph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        with pytest.raises(ValueError, match="connected"):
            FirstHopTable(g)


class TestShortestPathTree:
    def test_parents_point_toward_root(self, knn_graph64):
        parent = shortest_path_tree(knn_graph64, root=0)
        table = FirstHopTable(knn_graph64)
        assert parent[0] == 0
        for v, p in parent.items():
            if v == 0:
                continue
            # Parent is one edge closer to the root.
            assert table.distance(0, p) + knn_graph64.weight(p, v) == pytest.approx(
                table.distance(0, v)
            )

    def test_restricted_to_members(self, grid_graph5):
        members = np.array([0, 1, 2, 5, 6, 7])
        parent = shortest_path_tree(grid_graph5, root=0, members=members)
        assert set(parent) <= set(int(x) for x in members)

    def test_root_must_be_member(self, grid_graph5):
        with pytest.raises(ValueError, match="root"):
            shortest_path_tree(grid_graph5, root=20, members=np.array([0, 1]))
