"""Gossip ring discovery and the §6 coverage gap."""

import pytest

from repro.distributed import GossipRingProtocol, SynchronousNetwork, ring_coverage
from repro.metrics import random_hypercube_metric


def _run(metric, rounds, seed=0, **kwargs):
    proto = GossipRingProtocol(rounds=rounds, **kwargs)
    net = SynchronousNetwork(metric, proto, seed=seed)
    stats = net.run(max_rounds=10 * rounds + 10)
    return proto, net, stats


class TestGossipRings:
    @pytest.fixture(scope="class")
    def metric(self):
        return random_hypercube_metric(48, dim=2, seed=13)

    def test_converges_within_budget(self, metric):
        _proto, _net, stats = _run(metric, rounds=6)
        assert stats.converged

    def test_ring_members_in_band(self, metric):
        proto, net, _stats = _run(metric, rounds=6)
        base = metric.min_distance()
        for u in (0, 20, 47):
            for j, ring in proto.rings_of(net.ctx, u).items():
                hi = base * 2.0**j
                lo = 0.0 if j == 0 else hi / 2.0
                for v, d in ring.items():
                    assert d == pytest.approx(metric.distance(u, v))
                    assert lo < d <= hi * (1 + 1e-9) or (j == 0 and d <= hi)

    def test_capacity_respected(self, metric):
        proto, net, _stats = _run(metric, rounds=6, ring_capacity=4)
        for u in range(metric.n):
            for ring in proto.rings_of(net.ctx, u).values():
                assert len(ring) <= 4

    def test_coverage_improves_with_rounds(self, metric):
        short = _run(metric, rounds=1, seed=5)
        long = _run(metric, rounds=12, seed=5)
        cov_short = ring_coverage(metric, short[0], short[1].ctx)
        cov_long = ring_coverage(metric, long[0], long[1].ctx)
        assert cov_long[0] >= cov_short[0]
        assert cov_long[1] >= cov_short[1] - 0.02

    def test_gap_persists_at_bounded_state(self, metric):
        """The §6 gap: bounded-capacity gossip rings do not reach full
        member recall even with a generous round budget."""
        proto, net, _stats = _run(metric, rounds=15, ring_capacity=4, exchange=6)
        _scales, recall = ring_coverage(metric, proto, net.ctx)
        assert recall < 1.0

    def test_probes_bounded_by_discoveries(self, metric):
        _proto, net, stats = _run(metric, rounds=6)
        # Each (node, discovered-node) pair is probed at most once.
        assert stats.probes <= metric.n * (metric.n - 1)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            GossipRingProtocol(bootstrap=0)
