"""Distributed r-net construction."""

import math

import pytest

from repro.distributed import DistributedNetProtocol, SynchronousNetwork
from repro.metrics import exponential_line
from repro.metrics.nets import is_r_net


def _build(metric, r, seed):
    proto = DistributedNetProtocol(r=r)
    net = SynchronousNetwork(metric, proto, seed=seed)
    stats = net.run(max_rounds=100)
    return proto, net, stats


class TestDistributedNet:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_produces_valid_net(self, hypercube64, seed):
        proto, net, stats = _build(hypercube64, 0.2, seed)
        assert stats.converged
        members = proto.net_members(net.ctx)
        assert is_r_net(hypercube64, members, 0.2)

    def test_olog_n_rounds(self, hypercube64):
        _proto, _net, stats = _build(hypercube64, 0.2, seed=5)
        assert stats.rounds <= 4 * math.log2(hypercube64.n)

    def test_probe_cost_is_n_squared_discovery(self, hypercube32):
        """Every node probes every other once for neighborhood discovery."""
        _proto, _net, stats = _build(hypercube32, 0.3, seed=0)
        n = hypercube32.n
        assert stats.probes == n * (n - 1)

    def test_exponential_line(self):
        metric = exponential_line(32)
        proto, net, stats = _build(metric, metric.min_distance() * 8, seed=2)
        assert stats.converged
        assert is_r_net(metric, proto.net_members(net.ctx), metric.min_distance() * 8)

    def test_huge_radius_singleton_net(self, hypercube32):
        proto, net, stats = _build(hypercube32, 100.0, seed=1)
        assert stats.converged
        assert len(proto.net_members(net.ctx)) == 1

    def test_tiny_radius_everyone(self, hypercube32):
        r = hypercube32.min_distance() * 0.5
        proto, net, stats = _build(hypercube32, r, seed=1)
        assert stats.converged
        assert len(proto.net_members(net.ctx)) == hypercube32.n

    def test_matches_centralized_cardinality(self, hypercube64):
        """Distributed and greedy centralized nets have comparable size
        (both are maximal r-packings: within each other's Lemma-1.4
        factor)."""
        from repro.metrics.nets import greedy_net

        r = 0.25
        proto, net, _stats = _build(hypercube64, r, seed=3)
        distributed_size = len(proto.net_members(net.ctx))
        central_size = len(greedy_net(hypercube64, r))
        assert distributed_size <= 4 * central_size
        assert central_size <= 4 * distributed_size

    def test_rejects_bad_radius(self):
        with pytest.raises(ValueError):
            DistributedNetProtocol(r=0.0)
