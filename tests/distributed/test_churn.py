"""Churn over Meridian overlays."""

import pytest

from repro.distributed import ChurnSimulation
from repro.meridian import MeridianOverlay
from repro.metrics import internet_like_metric


@pytest.fixture(scope="module")
def metric():
    return internet_like_metric(64, seed=77)


class TestChurn:
    def test_no_churn_no_change(self, metric):
        overlay = MeridianOverlay(metric, seed=0)
        before = [dict(node.rings) for node in overlay.nodes]
        sim = ChurnSimulation(metric, overlay, churn_rate=0.0, seed=1)
        report = sim.run_epoch(0)
        assert report.replaced_nodes == 0
        after = [dict(node.rings) for node in overlay.nodes]
        assert before == after

    def test_scrub_removes_leaver_everywhere(self, metric):
        overlay = MeridianOverlay(metric, seed=0)
        sim = ChurnSimulation(metric, overlay, churn_rate=0.0, seed=2)
        sim._scrub(5)
        for node in overlay.nodes:
            for members in node.rings.values():
                assert 5 not in members

    def test_quality_decays_without_repair(self, metric):
        overlay = MeridianOverlay(metric, seed=0)
        sim = ChurnSimulation(metric, overlay, churn_rate=0.2, seed=3)
        reports = sim.run(6, quality_queries=80)
        assert reports[-1].mean_ring_members < reports[0].mean_ring_members + 1

    def test_repair_keeps_quality(self, metric):
        decayed = ChurnSimulation(
            metric, MeridianOverlay(metric, seed=0), churn_rate=0.2, seed=4
        ).run(6, quality_queries=80)
        repaired = ChurnSimulation(
            metric,
            MeridianOverlay(metric, seed=0),
            churn_rate=0.2,
            repair_probes=6,
            seed=4,
        ).run(6, quality_queries=80)
        assert repaired[-1].mean_ring_members >= decayed[-1].mean_ring_members
        assert repaired[-1].mean_approximation <= decayed[-1].mean_approximation * 1.5

    def test_bootstrap_gives_joiner_rings(self, metric):
        overlay = MeridianOverlay(metric, seed=0)
        sim = ChurnSimulation(metric, overlay, churn_rate=0.0, bootstrap_probes=8, seed=5)
        sim._scrub(3)
        overlay.nodes[3].rings = {}
        sim._bootstrap(3)
        assert overlay.nodes[3].out_degree() > 0

    def test_zero_quality_queries(self, metric):
        overlay = MeridianOverlay(metric, seed=0)
        sim = ChurnSimulation(metric, overlay, churn_rate=0.1, seed=8)
        report = sim.run_epoch(0, quality_queries=0)
        assert report.replaced_nodes > 0  # epoch still ran

    def test_rejects_bad_rate(self, metric):
        overlay = MeridianOverlay(metric, seed=0)
        with pytest.raises(ValueError):
            ChurnSimulation(metric, overlay, churn_rate=1.0)
