"""Round-based simulator semantics."""

from typing import List

import pytest

from repro.distributed import Message, RoundBasedProtocol, SynchronousNetwork
from repro.metrics import uniform_line


class PingPong(RoundBasedProtocol):
    """Node 0 pings node 1 back and forth a fixed number of times."""

    def __init__(self, volleys: int) -> None:
        self.volleys = volleys

    def initialize(self, ctx) -> None:
        ctx.state[0]["count"] = 0
        ctx.state[1]["count"] = 0
        ctx.send(0, 1, "ping", hop=0)

    def on_round(self, node, inbox: List[Message], ctx) -> None:
        for message in inbox:
            if message.kind == "ping":
                ctx.state[node]["count"] += 1
                if message.payload["hop"] + 1 < self.volleys:
                    ctx.send(node, message.sender, "ping", hop=message.payload["hop"] + 1)

    def is_done(self, ctx) -> bool:
        return ctx.state[0]["count"] + ctx.state[1]["count"] >= self.volleys


class TestSimulator:
    def test_message_delivery_next_round(self):
        metric = uniform_line(2)
        proto = PingPong(volleys=4)
        net = SynchronousNetwork(metric, proto)
        stats = net.run(max_rounds=10)
        assert stats.converged
        assert stats.rounds == 4  # one volley per round
        assert stats.messages == 4

    def test_round_budget(self):
        metric = uniform_line(2)
        proto = PingPong(volleys=100)
        net = SynchronousNetwork(metric, proto)
        stats = net.run(max_rounds=5)
        assert not stats.converged
        assert stats.rounds == 5

    def test_probe_counted(self):
        metric = uniform_line(3)
        proto = PingPong(volleys=1)
        net = SynchronousNetwork(metric, proto)
        assert net.ctx.probe(0, 2) == 2.0
        assert net.ctx.probes == 1

    def test_bad_recipient_rejected(self):
        metric = uniform_line(2)
        net = SynchronousNetwork(metric, PingPong(1))
        with pytest.raises(ValueError):
            net.ctx.send(0, 9, "ping")
