"""Round-based simulator semantics."""

from typing import List

import pytest

from repro.distributed import Message, RoundBasedProtocol, SynchronousNetwork
from repro.metrics import uniform_line


class PingPong(RoundBasedProtocol):
    """Node 0 pings node 1 back and forth a fixed number of times."""

    def __init__(self, volleys: int) -> None:
        self.volleys = volleys

    def initialize(self, ctx) -> None:
        ctx.state[0]["count"] = 0
        ctx.state[1]["count"] = 0
        ctx.send(0, 1, "ping", hop=0)

    def on_round(self, node, inbox: List[Message], ctx) -> None:
        for message in inbox:
            if message.kind == "ping":
                ctx.state[node]["count"] += 1
                if message.payload["hop"] + 1 < self.volleys:
                    ctx.send(node, message.sender, "ping", hop=message.payload["hop"] + 1)

    def is_done(self, ctx) -> bool:
        return ctx.state[0]["count"] + ctx.state[1]["count"] >= self.volleys


class TestSimulator:
    def test_message_delivery_next_round(self):
        metric = uniform_line(2)
        proto = PingPong(volleys=4)
        net = SynchronousNetwork(metric, proto)
        stats = net.run(max_rounds=10)
        assert stats.converged
        assert stats.rounds == 4  # one volley per round
        assert stats.messages == 4

    def test_round_budget(self):
        metric = uniform_line(2)
        proto = PingPong(volleys=100)
        net = SynchronousNetwork(metric, proto)
        stats = net.run(max_rounds=5)
        assert not stats.converged
        assert stats.rounds == 5

    def test_probe_counted(self):
        metric = uniform_line(3)
        proto = PingPong(volleys=1)
        net = SynchronousNetwork(metric, proto)
        assert net.ctx.probe(0, 2) == 2.0
        assert net.ctx.probes == 1

    def test_bad_recipient_rejected(self):
        metric = uniform_line(2)
        net = SynchronousNetwork(metric, PingPong(1))
        with pytest.raises(ValueError):
            net.ctx.send(0, 9, "ping")


class TestAccounting:
    def test_messages_split_into_delivered_and_undelivered(self):
        # volleys=4 converges exactly when the 4th ping is consumed, so
        # every sent message was delivered and none remain in flight.
        net = SynchronousNetwork(uniform_line(2), PingPong(volleys=4))
        stats = net.run(max_rounds=10)
        assert stats.delivered == 4
        assert stats.dropped == 0
        assert stats.undelivered == 0
        assert stats.messages == stats.delivered + stats.dropped + stats.undelivered

    def test_final_round_sends_counted_undelivered(self):
        # Cutting the budget mid-conversation strands the last ping in
        # the outbox: it was sent but no round ever consumed it.
        net = SynchronousNetwork(uniform_line(2), PingPong(volleys=100))
        stats = net.run(max_rounds=5)
        assert not stats.converged
        assert stats.undelivered == 1
        assert stats.messages == stats.delivered + stats.undelivered

    def test_wall_clock_equals_rounds_on_sync_network(self):
        net = SynchronousNetwork(uniform_line(2), PingPong(volleys=4))
        stats = net.run(max_rounds=10)
        assert stats.wall_clock == float(stats.rounds)

    def test_resolved_seed_recorded(self):
        net = SynchronousNetwork(uniform_line(2), PingPong(volleys=1), seed=37)
        assert net.run(max_rounds=5).seed == 37

    def test_unseeded_run_still_records_entropy(self):
        net = SynchronousNetwork(uniform_line(2), PingPong(volleys=1))
        stats = net.run(max_rounds=5)
        assert stats.seed is not None
        # Replaying with the recorded entropy reproduces the run.
        again = SynchronousNetwork(
            uniform_line(2), PingPong(volleys=1), seed=stats.seed
        )
        assert again.run(max_rounds=5).messages == stats.messages
