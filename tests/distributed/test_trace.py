"""ChurnTrace — the one join/leave schedule every churn consumer shares.

Covers: seeded generation semantics (replacement model, disjoint
joins/leaves, rejoin cohorts, exclusions), JSON round-trip + digest
stability, ChurnSimulation replaying a trace (with incremental-vs-legacy
scrub parity), and the netsim fault planner deriving its crash windows
from — and recording — the same trace.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api.facade import build_workload
from repro.distributed import ChurnSimulation, ChurnTrace
from repro.distributed.trace import ChurnEvent
from repro.meridian import MeridianOverlay
from repro.metrics import internet_like_metric
from repro.netsim import SCENARIOS, Scenario, measure_scenario


class TestGenerate:
    def test_deterministic_for_seed(self):
        a = ChurnTrace.generate(n=50, events=12, rate=0.05, seed=9)
        b = ChurnTrace.generate(n=50, events=12, rate=0.05, seed=9)
        assert a == b
        assert a.digest() == b.digest()
        c = ChurnTrace.generate(n=50, events=12, rate=0.05, seed=10)
        assert a.digest() != c.digest()

    def test_validation(self):
        with pytest.raises(ValueError, match="n >= 2"):
            ChurnTrace.generate(n=1, events=4)
        with pytest.raises(ValueError, match="rate"):
            ChurnTrace.generate(n=10, events=4, rate=0.0)
        with pytest.raises(ValueError, match="rate"):
            ChurnTrace.generate(n=10, events=4, rate=1.0)
        with pytest.raises(ValueError, match="out of range"):
            ChurnTrace.generate(n=10, events=4, rate=0.1, exclude=(10,))

    def test_joins_and_leaves_disjoint_per_event(self):
        trace = ChurnTrace.generate(n=30, events=40, rate=0.2, seed=3)
        for event in trace.events:
            assert not set(event.joins) & set(event.leaves)
            assert list(event.leaves) == sorted(event.leaves)

    def test_rejoin_cohort_returns_after_exactly_two_events(self):
        trace = ChurnTrace.generate(
            n=40, events=10, rate=0.1, seed=5, rejoin_after=2
        )
        for i, event in enumerate(trace.events):
            if i >= 2:
                assert event.joins == trace.events[i - 2].leaves
            else:
                assert event.joins == ()

    def test_exclude_pins_protected_nodes(self):
        trace = ChurnTrace.generate(
            n=20, events=30, rate=0.3, seed=1, exclude=(0, 19)
        )
        for event in trace.events:
            assert 0 not in event.leaves and 19 not in event.leaves

    def test_final_active_matches_replay(self):
        trace = ChurnTrace.generate(n=25, events=9, rate=0.15, seed=2)
        active = np.ones(25, dtype=bool)
        for event in trace.events:
            active[list(event.joins)] = True
            active[list(event.leaves)] = False
        assert np.array_equal(trace.final_active(), active)


class TestSerialization:
    def test_json_roundtrip(self):
        trace = ChurnTrace.generate(n=16, events=6, rate=0.2, seed=4)
        data = json.loads(json.dumps(trace.to_dict()))
        again = ChurnTrace.from_dict(data)
        assert again == trace
        assert again.digest() == trace.digest()

    def test_event_roundtrip(self):
        event = ChurnEvent(at=3.0, leaves=(1, 5), joins=(2,))
        assert ChurnEvent.from_dict(event.to_dict()) == event

    def test_describe_carries_digest(self):
        trace = ChurnTrace.generate(n=16, events=6, rate=0.2, seed=4)
        desc = trace.describe()
        assert desc["n"] == 16
        assert desc["events"] == 6
        assert desc["seed"] == 4
        assert desc["digest"] == trace.digest()

    def test_crash_windows_pair_leave_with_next_rejoin(self):
        trace = ChurnTrace(
            n=6,
            events=(
                ChurnEvent(at=0.0, leaves=(2, 4)),
                ChurnEvent(at=1.0, leaves=(1,)),
                ChurnEvent(at=2.0, joins=(2, 4)),
            ),
        )
        windows = dict(
            (node, (down, up))
            for node, down, up in trace.crash_windows(start=10.0, spacing=2.0)
        )
        assert windows[2] == (10.0, 14.0)
        assert windows[4] == (10.0, 14.0)
        assert windows[1] == (12.0, float("inf"))


@pytest.fixture(scope="module")
def metric():
    return internet_like_metric(48, seed=77)


class TestChurnSimulationTrace:
    def test_trace_drives_replacements(self, metric):
        trace = ChurnTrace.generate(n=48, events=3, rate=0.1, seed=6)
        overlay = MeridianOverlay(metric, seed=0)
        sim = ChurnSimulation(metric, overlay, churn_rate=0.5, seed=1,
                              trace=trace)
        report = sim.run_epoch(0)
        event = trace.events[0]
        assert report.replaced_nodes == len(event.leaves) + len(event.joins)
        for node in overlay.nodes:
            for members in node.rings.values():
                assert not set(members) & set(event.leaves)

    def test_trace_n_mismatch_rejected(self, metric):
        trace = ChurnTrace.generate(n=8, events=2, rate=0.2, seed=0)
        with pytest.raises(ValueError, match="trace covers"):
            ChurnSimulation(metric, MeridianOverlay(metric, seed=0),
                            trace=trace)

    def test_incremental_matches_legacy_scrub(self, metric):
        trace = ChurnTrace.generate(n=48, events=4, rate=0.1, seed=8)

        def run(incremental):
            overlay = MeridianOverlay(metric, seed=0)
            sim = ChurnSimulation(
                metric, overlay, churn_rate=0.0, bootstrap_probes=8,
                seed=11, trace=trace, incremental=incremental,
            )
            reports = sim.run(len(trace.events), quality_queries=40)
            rings = [dict(node.rings) for node in overlay.nodes]
            return reports, rings

        legacy_reports, legacy_rings = run(False)
        incr_reports, incr_rings = run(True)
        assert legacy_rings == incr_rings
        assert legacy_reports == incr_reports

    def test_incremental_matches_legacy_random_mode(self, metric):
        def run(incremental):
            overlay = MeridianOverlay(metric, seed=0)
            sim = ChurnSimulation(
                metric, overlay, churn_rate=0.15, bootstrap_probes=8,
                seed=13, incremental=incremental,
            )
            reports = sim.run(3, quality_queries=40)
            return reports, [dict(node.rings) for node in overlay.nodes]

        legacy_reports, legacy_rings = run(False)
        incr_reports, incr_rings = run(True)
        assert legacy_rings == incr_rings
        assert legacy_reports == incr_reports


class TestNetsimIntegration:
    def test_crash_churn_plan_carries_trace(self):
        sc = SCENARIOS.get("crash-churn").obj
        plan = sc.faults(32, seed=5)
        trace = plan.churn_trace
        assert trace is not None
        # the Crash windows are exactly the trace's crash windows
        windows = {node: (down, up) for node, down, up in trace.crash_windows()}
        assert len(windows) == len(plan.crashes)
        for crash in plan.crashes:
            assert windows[crash.node] == (crash.down_at, crash.up_at)
            assert crash.down_at == sc.crash_at
            assert crash.up_at == sc.crash_at + sc.restart_after
        # and the plan's dict form records the trace for provenance
        data = plan.to_dict()
        assert data["churn_trace"]["n"] == 32
        assert ChurnTrace.from_dict(data["churn_trace"]) == trace

    def test_no_crash_scenario_has_no_trace(self):
        plan = Scenario("calm").faults(16, seed=0)
        assert plan.churn_trace is None
        assert "churn_trace" not in plan.to_dict()

    def test_measure_scenario_records_trace_provenance(self):
        metric = build_workload("hypercube", n=32, seed=7).metric
        out = measure_scenario(
            metric, SCENARIOS.get("crash-churn").obj, seed=3,
            gossip_rounds=2, audit_pairs=8,
        )
        desc = out["churn_trace"]
        assert desc["n"] == 32
        assert set(desc) == {"n", "events", "rate", "seed", "digest"}
        ideal = measure_scenario(
            metric, SCENARIOS.get("ideal").obj, seed=3,
            gossip_rounds=2, audit_pairs=8,
        )
        assert "churn_trace" not in ideal
