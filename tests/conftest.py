"""Shared fixtures.

Expensive structures (scale structures, DLS labelings, routing schemes)
are built once per session on small instances; tests assert on them from
many angles instead of rebuilding.
"""

from __future__ import annotations

import pytest

from repro.graphs import grid_graph, knn_geometric_graph
from repro.labeling._scales import ScaleStructure
from repro.metrics import (
    exponential_line,
    internet_like_metric,
    random_hypercube_metric,
    uniform_line,
)
from repro.metrics.graphmetric import ShortestPathMetric


@pytest.fixture(scope="session")
def hypercube32():
    """32 uniform points in the unit square."""
    return random_hypercube_metric(32, dim=2, seed=101)


@pytest.fixture(scope="session")
def hypercube64():
    return random_hypercube_metric(64, dim=2, seed=102)


@pytest.fixture(scope="session")
def expline32():
    """The exponential line {2^i}: doubling but aspect ratio 2^31."""
    return exponential_line(32)


@pytest.fixture(scope="session")
def expline48():
    return exponential_line(48)


@pytest.fixture(scope="session")
def uline32():
    """UL-constrained metric (uniform line)."""
    return uniform_line(32)


@pytest.fixture(scope="session")
def inet64():
    return internet_like_metric(64, seed=103)


@pytest.fixture(scope="session")
def knn_graph64():
    return knn_geometric_graph(64, k=4, seed=104)


@pytest.fixture(scope="session")
def knn_metric64(knn_graph64):
    return ShortestPathMetric(knn_graph64)


@pytest.fixture(scope="session")
def grid_graph5():
    """5x5 unit grid graph."""
    return grid_graph(5)


@pytest.fixture(scope="session")
def scales_hypercube32(hypercube32):
    return ScaleStructure(hypercube32, delta=0.4)


@pytest.fixture(scope="session")
def scales_expline32(expline32):
    return ScaleStructure(expline32, delta=0.4)
