"""Save → load round-trips: every persisted scheme answers bit-for-bit."""

import numpy as np
import pytest

from repro import api
from repro.serve import (
    DetachedStructureError,
    PERSISTABLE_SCHEMES,
    UnsupportedSchemeError,
    load_structure,
    save_structure,
)
from repro.serve.container import ContainerError

ESTIMATORS = ["triangulation", "beacons", "labels", "labels-tri", "tz-oracle"]
ROUTERS = ["route-trivial", "route-thm2.1"]


def _build(scheme, workload, n, **params):
    return api.build(scheme, workload=workload, n=n, seed=5, **params)


def _estimates(fitted, pairs):
    inner = fitted.inner
    if hasattr(inner, "estimate_many"):
        return np.asarray(inner.estimate_many(pairs[:, 0], pairs[:, 1]))
    return np.asarray([inner.estimate(int(u), int(v)) for u, v in pairs])


@pytest.mark.parametrize("scheme", ESTIMATORS)
@pytest.mark.parametrize("workload", ["hypercube", "expline"])
class TestEstimatorRoundtrip:
    def test_bit_for_bit_estimates(self, scheme, workload, tmp_path):
        fitted = _build(scheme, workload, 36)
        path = tmp_path / "structure.repro"
        content_hash = save_structure(fitted, path)
        loaded = load_structure(path)
        assert loaded.structure_hash == content_hash
        rng = np.random.default_rng(11)
        pairs = rng.integers(0, 36, size=(150, 2))
        original = _estimates(fitted, pairs)
        reloaded = _estimates(loaded, pairs)
        assert np.array_equal(original, reloaded)
        assert loaded.guarantee() == fitted.guarantee()


class TestRoutingRoundtrip:
    @pytest.mark.parametrize("scheme", ROUTERS)
    def test_bit_for_bit_routes(self, scheme, tmp_path):
        fitted = _build(scheme, "knn-graph", 48)
        path = tmp_path / "structure.repro"
        save_structure(fitted, path)
        loaded = load_structure(path)
        rng = np.random.default_rng(13)
        for u, v in rng.integers(0, 48, size=(60, 2)):
            original = fitted.inner.route(int(u), int(v))
            again = loaded.inner.route(int(u), int(v))
            assert original.reached == again.reached
            assert list(original.path) == list(again.path)
            assert original.header_bits == again.header_bits

    def test_loaded_scheme_evaluates(self, tmp_path):
        fitted = _build("route-thm2.1", "knn-graph", 48)
        path = tmp_path / "structure.repro"
        save_structure(fitted, path)
        loaded = load_structure(path)
        stats = api.evaluate(loaded, "uniform", size=60, seed=2)
        assert stats["delivery_rate"] == 1.0

    def test_size_accounting_survives(self, tmp_path):
        fitted = _build("route-thm2.1", "knn-graph", 48)
        path = tmp_path / "structure.repro"
        save_structure(fitted, path)
        loaded = load_structure(path)
        assert (loaded.inner.table_bits(0).total_bits
                == fitted.inner.table_bits(0).total_bits)


class TestDetachedBehavior:
    def test_detached_metric_refuses_distance_queries(self, tmp_path):
        fitted = _build("triangulation", "hypercube", 30)
        path = tmp_path / "structure.repro"
        save_structure(fitted, path)
        loaded = load_structure(path)
        with pytest.raises(DetachedStructureError, match="without its metric"):
            loaded.workload.metric.distance(0, 1)

    def test_detached_metric_keeps_extremes(self, tmp_path):
        fitted = _build("labels", "hypercube", 30)
        path = tmp_path / "structure.repro"
        save_structure(fitted, path)
        loaded = load_structure(path)
        metric = loaded.workload.metric
        assert metric.diameter() == fitted.workload.metric.diameter()
        assert metric.min_distance() == fitted.workload.metric.min_distance()

    def test_annotations_present(self, tmp_path):
        fitted = _build("beacons", "hypercube", 30)
        path = tmp_path / "structure.repro"
        content_hash = save_structure(fitted, path)
        loaded = load_structure(path)
        assert loaded.structure_hash == content_hash
        assert loaded.structure_path == path
        assert loaded.container.kind == "scheme"


class TestErrorPaths:
    def test_unsupported_scheme_rejected(self, tmp_path):
        fitted = _build("sw-5.2a", "hypercube", 30)
        with pytest.raises(UnsupportedSchemeError, match="sw-5.2a"):
            save_structure(fitted, tmp_path / "nope.repro")

    def test_every_persistable_name_is_registered(self):
        from repro.api import SCHEMES

        for name in PERSISTABLE_SCHEMES:
            assert name in SCHEMES

    def test_truncated_structure_fails_clearly(self, tmp_path):
        fitted = _build("triangulation", "hypercube", 30)
        path = tmp_path / "structure.repro"
        save_structure(fitted, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(ContainerError):
            load_structure(path)

    def test_corrupt_structure_fails_verification(self, tmp_path):
        fitted = _build("triangulation", "hypercube", 30)
        path = tmp_path / "structure.repro"
        save_structure(fitted, path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(ContainerError, match="hash"):
            load_structure(path, verify=True)

    def test_metric_container_is_not_a_scheme(self, tmp_path):
        from repro.metrics import random_hypercube_metric
        from repro.metrics.io import save_metric

        path = tmp_path / "metric.repro"
        save_metric(random_hypercube_metric(12, seed=0), path)
        with pytest.raises(ContainerError, match="metric"):
            load_structure(path)


class TestFacade:
    def test_api_save_load(self, tmp_path):
        fitted = _build("labels-tri", "hypercube", 30)
        path = tmp_path / "structure.repro"
        api.save(fitted, path)
        loaded = api.load(path)
        pairs = np.argwhere(np.ones((30, 30)))[:90]
        assert np.array_equal(_estimates(fitted, pairs), _estimates(loaded, pairs))

    def test_build_cache_spills_and_hydrates(self, tmp_path):
        from repro.api import BuildCache, Workload

        cache = BuildCache(structure_dir=tmp_path / "spill")
        spec = Workload.make("hypercube", n=24, seed=9)
        first = cache.instance(spec)
        assert cache.spills == 1
        cache.clear()
        second = cache.instance(spec)
        assert cache.hydrations == 1
        for u in range(24):
            assert np.allclose(
                first.metric.distances_from(u), second.metric.distances_from(u)
            )

    def test_build_cache_ignores_graph_workloads(self, tmp_path):
        from repro.api import BuildCache, Workload

        cache = BuildCache(structure_dir=tmp_path / "spill")
        cache.instance(Workload.make("knn-graph", n=24, seed=9))
        assert cache.spills == 0 and cache.hydrations == 0
