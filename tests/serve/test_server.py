"""The asyncio query service: batching, concurrency, stats, shutdown."""

import asyncio

import numpy as np
import pytest

from repro import api
from repro.serve import ServeClient, ServeError, StructureServer


@pytest.fixture(scope="module")
def fitted():
    return api.build("triangulation", workload="hypercube", n=40, seed=3)


@pytest.fixture(scope="module")
def routed(tmp_path_factory):
    built = api.build("route-thm2.1", workload="knn-graph", n=40, seed=3)
    path = tmp_path_factory.mktemp("serve") / "router.repro"
    api.save(built, path)
    return api.load(path)


def _run(coro):
    return asyncio.run(coro)


async def _with_server(fitted, body, **options):
    server = StructureServer(fitted, **options)
    host, port = await server.start()
    runner = asyncio.create_task(server.serve_until_stopped())
    try:
        return await body(server, host, port)
    finally:
        await server.stop()
        await asyncio.wait_for(runner, 10)


class TestEstimate:
    def test_single_client_parity(self, fitted):
        async def body(server, host, port):
            client = await ServeClient.connect(host, port)
            rng = np.random.default_rng(0)
            pairs = rng.integers(0, 40, size=(64, 2))
            answers = await client.estimate(pairs)
            await client.close()
            return pairs, answers

        pairs, answers = _run(_with_server(fitted, body))
        expected = fitted.inner.estimate_many(pairs[:, 0], pairs[:, 1])
        assert np.array_equal(answers, expected)

    def test_two_clients_interleaved_batches(self, fitted):
        async def body(server, host, port):
            one = await ServeClient.connect(host, port)
            two = await ServeClient.connect(host, port)
            rng = np.random.default_rng(1)
            chunks = [rng.integers(0, 40, size=(25, 2)) for _ in range(6)]
            results = await asyncio.gather(*[
                (one if i % 2 == 0 else two).estimate(chunk)
                for i, chunk in enumerate(chunks)
            ])
            await one.close()
            await two.close()
            return chunks, results, dict(server.counters)

        chunks, results, counters = _run(_with_server(fitted, body))
        for chunk, answers in zip(chunks, results):
            expected = fitted.inner.estimate_many(chunk[:, 0], chunk[:, 1])
            assert np.array_equal(answers, expected)
        assert counters["estimate_pairs"] == 150
        # Micro-batching coalesced concurrent requests: strictly fewer
        # vectorized calls than requests.
        assert counters["estimate_batches"] <= 6

    def test_batch_size_cap_respected(self, fitted):
        async def body(server, host, port):
            client = await ServeClient.connect(host, port)
            response = await client.request(
                "estimate", pairs=[[0, 1], [2, 3], [4, 5]]
            )
            await client.close()
            return response

        response = _run(_with_server(fitted, body, batch_pairs=2))
        assert len(response["estimates"]) == 3

    def test_response_carries_guarantee_and_hash(self, routed):
        async def body(server, host, port):
            client = await ServeClient.connect(host, port)
            await client.estimate([(0, 1)])
            guarantee = client.last_guarantee
            content_hash = client.last_structure_hash
            await client.close()
            return guarantee, content_hash

        guarantee, content_hash = _run(_with_server(routed, body))
        assert guarantee["kind"] == "routing-thm2.1"
        assert content_hash == routed.structure_hash


class TestRouteAndStats:
    def test_route_op(self, routed):
        async def body(server, host, port):
            client = await ServeClient.connect(host, port)
            routes = await client.route([(0, 7), (3, 3)])
            await client.close()
            return routes

        routes = _run(_with_server(routed, body))
        expected = routed.inner.route(0, 7)
        assert routes[0]["reached"] is True
        assert routes[0]["path"] == [int(x) for x in expected.path]
        assert routes[1]["hops"] == 0

    def test_route_rejected_for_estimators(self, fitted):
        async def body(server, host, port):
            client = await ServeClient.connect(host, port)
            with pytest.raises(ServeError, match="routing"):
                await client.route([(0, 1)])
            await client.close()

        _run(_with_server(fitted, body))

    def test_stats_report_counters_and_caches(self, routed):
        async def body(server, host, port):
            client = await ServeClient.connect(host, port)
            await client.estimate([(0, 1), (2, 3)])
            await client.route([(0, 7)])
            stats = await client.stats()
            await client.close()
            return stats

        stats = _run(_with_server(routed, body))
        assert stats["n"] == 40
        assert stats["counters"]["estimate_pairs"] == 2
        assert stats["counters"]["route_pairs"] == 1
        assert stats["structure_bytes"] > 0
        # Satellite: row-cache byte accounting for the lazy graph metric.
        assert "metric_row_cache" in stats
        assert stats["metric_row_cache"]["budget_bytes"] > 0


class TestProtocolErrors:
    def test_bad_pairs_error_does_not_kill_connection(self, fitted):
        async def body(server, host, port):
            client = await ServeClient.connect(host, port)
            with pytest.raises(ServeError, match="pairs"):
                await client.estimate(np.empty((0, 2), dtype=int))
            with pytest.raises(ServeError, match="node ids"):
                await client.estimate([(0, 999)])
            answers = await client.estimate([(0, 1)])
            await client.close()
            return answers, dict(server.counters)

        answers, counters = _run(_with_server(fitted, body))
        assert answers.shape == (1,)
        assert counters["errors"] == 2

    def test_unknown_op(self, fitted):
        async def body(server, host, port):
            client = await ServeClient.connect(host, port)
            with pytest.raises(ServeError, match="unknown op"):
                await client.request("frobnicate")
            await client.close()

        _run(_with_server(fitted, body))


class TestShutdown:
    def test_shutdown_op_drains_and_exits(self, fitted):
        async def main():
            server = StructureServer(fitted)
            host, port = await server.start()
            runner = asyncio.create_task(server.serve_until_stopped())
            client = await ServeClient.connect(host, port)
            await client.estimate([(0, 1)])
            await client.shutdown_server()
            await client.close()
            await asyncio.wait_for(runner, 10)
            return True

        assert _run(main())
