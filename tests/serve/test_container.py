"""The container file format: layout, validation, corruption handling."""

import json

import numpy as np
import pytest

from repro.serve.container import (
    FORMAT_VERSION,
    MAGIC,
    Container,
    ContainerError,
    read_container,
    write_container,
)


@pytest.fixture()
def sample(tmp_path):
    path = tmp_path / "sample.repro"
    arrays = {
        "a": np.arange(12, dtype=np.int64).reshape(3, 4),
        "b": np.linspace(0.0, 1.0, 7),
        "empty": np.empty((0, 2), dtype=np.float32),
    }
    content_hash = write_container(
        path, kind="demo", meta={"x": 1, "nested": {"y": [1, 2]}}, arrays=arrays
    )
    return path, arrays, content_hash


class TestRoundtrip:
    def test_arrays_bit_for_bit(self, sample):
        path, arrays, _ = sample
        container = read_container(path)
        for name, original in arrays.items():
            loaded = container.arrays[name]
            assert loaded.dtype == original.dtype
            assert loaded.shape == original.shape
            assert np.array_equal(loaded, original)

    def test_meta_and_kind(self, sample):
        path, _, content_hash = sample
        container = read_container(path)
        assert container.kind == "demo"
        assert container.meta == {"x": 1, "nested": {"y": [1, 2]}}
        assert container.content_hash == content_hash
        assert container.version == FORMAT_VERSION

    def test_mmap_and_copy_modes_agree(self, sample):
        path, _, _ = sample
        mapped = read_container(path, mmap=True)
        copied = read_container(path, mmap=False)
        for name in mapped.arrays:
            assert np.array_equal(mapped.arrays[name], copied.arrays[name])

    def test_segments_are_64_byte_aligned(self, sample):
        path, _, _ = sample
        container = read_container(path)
        header_len = int.from_bytes(
            path.read_bytes()[len(MAGIC) : len(MAGIC) + 8], "little"
        )
        data_start = -(-(len(MAGIC) + 8 + header_len) // 64) * 64
        for entry in json.loads(
            path.read_bytes()[len(MAGIC) + 8 : len(MAGIC) + 8 + header_len]
        )["arrays"]:
            assert (data_start + entry["offset"]) % 64 == 0
        assert container.resident_bytes() == sum(
            a.nbytes for a in container.arrays.values()
        )

    def test_content_hash_is_deterministic(self, sample, tmp_path):
        path, arrays, content_hash = sample
        other = tmp_path / "again.repro"
        again = write_container(
            other, kind="demo", meta={"x": 1, "nested": {"y": [1, 2]}},
            arrays=arrays,
        )
        assert again == content_hash

    def test_verify_passes_on_intact_file(self, sample):
        path, _, _ = sample
        assert read_container(path, verify=True).verify()


class TestRejection:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.repro"
        path.write_bytes(b"NOTABOX!" + b"\0" * 64)
        with pytest.raises(ContainerError, match="magic"):
            read_container(path)

    def test_truncated_file(self, sample):
        path, _, _ = sample
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 40])
        with pytest.raises(ContainerError):
            read_container(path)

    def test_truncated_header(self, tmp_path):
        path = tmp_path / "tiny.repro"
        path.write_bytes(MAGIC[:4])
        with pytest.raises(ContainerError):
            read_container(path)

    def test_corrupt_header_json(self, sample):
        path, _, _ = sample
        data = bytearray(path.read_bytes())
        data[len(MAGIC) + 8] = ord("!")  # first header byte: breaks JSON
        path.write_bytes(bytes(data))
        with pytest.raises(ContainerError):
            read_container(path)

    def test_future_version_rejected(self, sample):
        path, _, _ = sample
        data = path.read_bytes()
        header_len = int.from_bytes(data[len(MAGIC) : len(MAGIC) + 8], "little")
        start = len(MAGIC) + 8
        header = json.loads(data[start : start + header_len])
        header["version"] = FORMAT_VERSION + 1
        raw = json.dumps(header).encode("utf-8")
        raw += b" " * (header_len - len(raw))  # keep every offset valid
        path.write_bytes(data[: len(MAGIC)] + data[len(MAGIC) : start]
                         + raw + data[start + header_len :])
        with pytest.raises(ContainerError, match="version"):
            read_container(path)

    def test_verify_catches_flipped_payload_byte(self, sample):
        path, _, _ = sample
        data = bytearray(path.read_bytes())
        header_len = int.from_bytes(data[len(MAGIC) : len(MAGIC) + 8], "little")
        data_start = -(-(len(MAGIC) + 8 + header_len) // 64) * 64
        data[data_start] ^= 0xFF  # first byte of the first array segment
        path.write_bytes(bytes(data))
        container = read_container(path)  # structure is still consistent
        with pytest.raises(ContainerError, match="hash"):
            container.verify()
        with pytest.raises(ContainerError, match="hash"):
            read_container(path, verify=True)
