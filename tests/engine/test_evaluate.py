"""Batched evaluation drivers and the api.evaluate facade."""

import numpy as np
import pytest

from repro import api
from repro.engine import (
    AllPairsPlan,
    UniformSamplePlan,
    bulk_estimates,
    evaluate_estimator,
    evaluate_routing,
)
from repro.routing.base import evaluate_scheme


@pytest.fixture(scope="module")
def workload():
    return api.build_workload("hypercube", n=48, dim=2, seed=21)


@pytest.fixture(scope="module")
def beacons(workload):
    return api.build("beacons", workload=workload, beacons=12, seed=2)


class TestEvaluateEstimator:
    def test_matches_per_pair_loop(self, workload, beacons):
        metric = workload.metric
        plan = UniformSamplePlan(size=250, seed=4)
        report = evaluate_estimator(beacons.inner, metric, plan)
        pairs = plan.pairs(metric)
        rels = []
        for u, v in pairs:
            d = metric.distance(int(u), int(v))
            est = beacons.inner.estimate(int(u), int(v))
            if d > 0 and np.isfinite(est):
                rels.append(abs(est - d) / d)
        assert report.evaluated == len(rels)
        assert report.max_relative_error == pytest.approx(max(rels))
        assert report.mean_relative_error == pytest.approx(float(np.mean(rels)))

    def test_estimate_many_agrees_with_scalar(self, beacons):
        pairs = UniformSamplePlan(size=150, seed=7).pairs(beacons.workload.metric)
        batched = beacons.inner.estimate_many(pairs[:, 0], pairs[:, 1])
        scalar = np.array(
            [beacons.inner.estimate(int(u), int(v)) for u, v in pairs]
        )
        assert np.array_equal(batched, scalar)

    def test_bulk_estimates_fallback_loop(self, workload):
        metric = workload.metric
        pairs = np.array([[0, 1], [2, 3]], dtype=np.intp)
        got = bulk_estimates(lambda u, v: metric.distance(u, v), pairs)
        assert got == pytest.approx(metric.pairwise(pairs))

    def test_empty_plan(self, workload, beacons):
        report = evaluate_estimator(beacons.inner, workload.metric, [])
        assert report.pairs == 0 and report.evaluated == 0


class TestEvaluateRouting:
    @pytest.fixture(scope="class")
    def routed(self):
        return api.build("route-thm2.1", workload="knn-graph", n=40, seed=5)

    def test_matches_evaluate_scheme_on_equal_pairs(self, routed):
        pairs = UniformSamplePlan(size=120, seed=9).pairs(routed.inner.graph.n)
        via_plan = evaluate_routing(routed.inner, routed._matrix, pairs)
        via_legacy = evaluate_scheme(routed.inner, routed._matrix, pairs=pairs)
        assert via_plan.pairs == via_legacy.pairs
        assert via_plan.delivered == via_legacy.delivered
        assert via_plan.max_stretch == via_legacy.max_stretch
        assert via_plan.mean_stretch == via_legacy.mean_stretch
        assert via_plan.stretches == via_legacy.stretches

    def test_all_pairs_plan_equals_exhaustive(self, routed):
        via_plan = evaluate_scheme(routed.inner, routed._matrix, plan=AllPairsPlan())
        exhaustive = evaluate_scheme(routed.inner, routed._matrix)
        assert via_plan.pairs == exhaustive.pairs
        assert via_plan.stretches == exhaustive.stretches

    def test_stratified_plan_with_metric(self, routed):
        from repro.engine import StratifiedPlan

        stats = evaluate_scheme(
            routed.inner, routed._matrix,
            plan=StratifiedPlan(per_scale=8, seed=2),
            metric=routed.workload.metric,
        )
        assert stats.pairs > 0 and stats.delivered == stats.pairs


class TestFacadeEvaluate:
    def test_estimator_by_name(self, beacons):
        stats = api.evaluate(beacons, "uniform", size=100, seed=3)
        assert stats["sampled_pairs"] > 0
        assert stats["max_stretch"] >= 1.0

    def test_plan_config(self, beacons):
        cfg = api.PlanConfig(kind="uniform", pairs=100, seed=3)
        assert api.evaluate(beacons, cfg) == api.evaluate(
            beacons, "uniform", size=100, seed=3
        )
        with pytest.raises(ValueError):
            api.evaluate(beacons, cfg, size=5)

    def test_plan_config_validates(self):
        with pytest.raises(ValueError):
            api.PlanConfig(kind="nope")
        with pytest.raises(ValueError):
            api.PlanConfig(pairs=0)

    def test_routing_scheme(self):
        routed = api.build("route-trivial", workload="knn-graph", n=24, seed=1)
        stats = api.evaluate(routed, "uniform", size=60, seed=2)
        assert stats["delivery_rate"] == 1.0
        assert stats["max_stretch"] == pytest.approx(1.0)

    def test_smallworld_scheme(self):
        sw = api.build("sw-5.2a", workload="hypercube", n=32, seed=3)
        stats = api.evaluate(sw, "uniform", size=50, seed=4)
        assert stats["queries"] == 50
        assert 0 <= stats["completion_rate"] <= 1

    def test_meridian_scheme(self):
        mer = api.build("meridian", workload="internet", n=40, seed=6)
        stats = api.evaluate(mer, "uniform", size=40, seed=7)
        assert stats["queries"] == 40
        assert stats["mean_approximation"] >= 1.0

    def test_stratified_on_estimator(self, beacons):
        stats = api.evaluate(beacons, "stratified", per_scale=8, seed=1)
        assert stats["sampled_pairs"] > 0
