"""Query plans: shape, determinism, and registry behaviour."""

import numpy as np
import pytest

from repro import api
from repro.engine import (
    PLANS,
    AllPairsPlan,
    StratifiedPlan,
    UniformSamplePlan,
    make_plan,
    resolve_pairs,
)


@pytest.fixture(scope="module")
def metric():
    return api.build_workload("hypercube", n=40, dim=2, seed=9).metric


class TestAllPairsPlan:
    def test_ordered_matches_legacy_enumeration(self):
        n = 7
        expected = [(u, v) for u in range(n) for v in range(n) if u != v]
        got = AllPairsPlan().pairs(n)
        assert [(int(u), int(v)) for u, v in got] == expected

    def test_unordered_is_upper_triangle(self):
        got = AllPairsPlan(ordered=False).pairs(6)
        assert got.shape == (15, 2)
        assert np.all(got[:, 0] < got[:, 1])

    def test_accepts_metric_or_n(self, metric):
        assert np.array_equal(
            AllPairsPlan().pairs(metric), AllPairsPlan().pairs(metric.n)
        )

    def test_tiny_universe(self):
        assert AllPairsPlan().pairs(1).shape == (0, 2)


class TestUniformSamplePlan:
    def test_seed_deterministic(self, metric):
        a = UniformSamplePlan(size=200, seed=5).pairs(metric)
        b = UniformSamplePlan(size=200, seed=5).pairs(metric)
        assert np.array_equal(a, b)

    def test_seeds_differ(self, metric):
        a = UniformSamplePlan(size=200, seed=5).pairs(metric)
        b = UniformSamplePlan(size=200, seed=6).pairs(metric)
        assert not np.array_equal(a, b)

    def test_pairs_distinct_and_offdiagonal(self, metric):
        pairs = UniformSamplePlan(size=300, seed=1).pairs(metric)
        assert pairs.shape == (300, 2)
        assert np.all(pairs[:, 0] != pairs[:, 1])
        assert np.all(pairs >= 0) and np.all(pairs < metric.n)
        keys = set(map(tuple, pairs.tolist()))
        assert len(keys) == 300  # no duplicates

    def test_degrades_to_all_pairs(self):
        pairs = UniformSamplePlan(size=10**6, seed=0).pairs(5)
        assert pairs.shape == (20, 2)

    def test_size_validates(self):
        with pytest.raises(ValueError):
            UniformSamplePlan(size=0)


class TestStratifiedPlan:
    def test_seed_deterministic(self, metric):
        a = StratifiedPlan(per_scale=16, seed=3).pairs(metric)
        b = StratifiedPlan(per_scale=16, seed=3).pairs(metric)
        assert np.array_equal(a, b)

    def test_covers_multiple_scales(self, metric):
        pairs = StratifiedPlan(per_scale=16, seed=3).pairs(metric)
        base = metric.min_distance()
        d = metric.pairwise(pairs)
        scales = set(
            0 if x <= base else int(np.ceil(np.log2(x / base))) for x in d
        )
        assert len(scales) >= 3  # hits near, mid and far annuli

    def test_respects_per_scale_cap(self, metric):
        pairs = StratifiedPlan(per_scale=4, seed=3).pairs(metric)
        base = metric.min_distance()
        d = metric.pairwise(pairs)
        buckets = {}
        for x in d:
            j = 0 if x <= base else int(np.ceil(np.log2(x / base)))
            buckets[j] = buckets.get(j, 0) + 1
        assert max(buckets.values()) <= 4

    def test_needs_metric(self):
        with pytest.raises(TypeError):
            StratifiedPlan().pairs(64)


class TestRegistryAndHelpers:
    def test_registered_names(self):
        for name in ("all-pairs", "uniform", "stratified"):
            assert name in PLANS

    def test_make_plan_by_name(self):
        plan = make_plan("uniform", size=7, seed=2)
        assert isinstance(plan, UniformSamplePlan) and plan.size == 7

    def test_make_plan_unknown_name_lists_valid(self):
        with pytest.raises(KeyError, match="uniform"):
            make_plan("bogus")

    def test_make_plan_passthrough(self):
        plan = AllPairsPlan()
        assert make_plan(plan) is plan
        with pytest.raises(ValueError):
            make_plan(plan, size=3)

    def test_resolve_pairs_coerces_sequences(self, metric):
        explicit = [(0, 1), (2, 3)]
        got = resolve_pairs(explicit, metric)
        assert got.shape == (2, 2) and got.dtype == np.intp
        assert np.array_equal(got, np.asarray(explicit))
