"""Meridian rings and closest-node search."""

import numpy as np
import pytest

from repro.meridian import MeridianOverlay, closest_node_search
from repro.metrics import internet_like_metric, random_hypercube_metric


@pytest.fixture(scope="module")
def overlay():
    metric = internet_like_metric(80, seed=42)
    return MeridianOverlay(metric, seed=0)


class TestOverlayStructure:
    def test_ring_members_in_annulus(self, overlay):
        metric = overlay.metric
        for node in overlay.nodes[:10]:
            row = metric.distances_from(node.node)
            for i, members in node.rings.items():
                hi = overlay._inner_radius * overlay.ring_base**i
                lo = 0.0 if i == 0 else hi / overlay.ring_base
                for v in members:
                    assert lo < row[v] <= hi * (1 + 1e-9)

    def test_ring_size_cap(self, overlay):
        for node in overlay.nodes:
            for members in node.rings.values():
                assert len(members) <= overlay.nodes_per_ring

    def test_out_degree_polylog_ish(self, overlay):
        # <= rings * nodes_per_ring.
        assert overlay.max_out_degree() <= overlay.num_rings * overlay.nodes_per_ring

    def test_ring_of_distance(self, overlay):
        assert overlay.ring_of_distance(overlay._inner_radius / 2) == 0
        big = overlay.ring_of_distance(overlay.metric.diameter())
        assert big < overlay.num_rings

    def test_rejects_bad_params(self):
        metric = random_hypercube_metric(10, seed=0)
        with pytest.raises(ValueError):
            MeridianOverlay(metric, ring_base=1.0)
        with pytest.raises(ValueError):
            MeridianOverlay(metric, nodes_per_ring=0)


class TestClosestNodeSearch:
    def test_finds_near_optimal(self, overlay):
        approximations = []
        n = overlay.metric.n
        for t in range(0, n, 5):
            result = closest_node_search(overlay, start=(t * 31 + 7) % n, target=t)
            approximations.append(result.approximation)
        assert float(np.median(approximations)) <= 1.6
        assert min(approximations) == 1.0

    def test_result_excludes_target(self, overlay):
        result = closest_node_search(overlay, start=3, target=10)
        assert result.found != 10

    def test_distance_never_increases(self, overlay):
        result = closest_node_search(overlay, start=0, target=40)
        row = overlay.metric.distances_from(40)
        dists = [row[v] for v in result.path]
        assert all(a >= b for a, b in zip(dists, dists[1:]))

    def test_beta_validated(self, overlay):
        with pytest.raises(ValueError):
            closest_node_search(overlay, 0, 1, beta=1.5)

    def test_smaller_beta_fewer_hops(self, overlay):
        loose = closest_node_search(overlay, 0, 55, beta=0.9)
        tight = closest_node_search(overlay, 0, 55, beta=0.3)
        assert tight.hops <= loose.hops
