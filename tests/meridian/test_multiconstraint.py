"""Meridian multi-constraint queries."""

import pytest

from repro.meridian import MeridianOverlay, multi_constraint_search
from repro.metrics import internet_like_metric


@pytest.fixture(scope="module")
def overlay():
    return MeridianOverlay(internet_like_metric(80, seed=55), nodes_per_ring=8, seed=0)


class TestMultiConstraint:
    def test_trivially_satisfiable(self, overlay):
        """A constraint the start node itself satisfies."""
        metric = overlay.metric
        target = 10
        bound = metric.diameter() * 2
        result = multi_constraint_search(overlay, start=3, constraints=[(target, bound)])
        assert result.satisfied
        assert result.found == 3
        assert result.hops == 0

    def test_finds_satisfying_node(self, overlay):
        """Bounds chosen so a known node satisfies them."""
        metric = overlay.metric
        pivot = 20
        row = metric.distances_from(pivot)
        targets = [5, 40, 70]
        constraints = [(t, float(row[t]) * 1.6 + 1e-9) for t in targets]
        result = multi_constraint_search(overlay, start=63, constraints=constraints)
        if result.satisfied:
            for t, bound in constraints:
                assert metric.distance(result.found, t) <= bound + 1e-9
        else:
            # Greedy descent can stall; the score must still have improved.
            start_score = sum(
                max(0.0, metric.distance(63, t) - b) for t, b in constraints
            )
            assert result.final_score <= start_score

    def test_impossible_constraints_fail_cleanly(self, overlay):
        result = multi_constraint_search(
            overlay, start=0, constraints=[(1, 0.0), (79, 0.0)]
        )
        assert not result.satisfied
        assert result.final_score > 0

    def test_score_monotone_along_path(self, overlay):
        metric = overlay.metric
        constraints = [(7, metric.diameter() / 8), (50, metric.diameter() / 8)]
        result = multi_constraint_search(overlay, start=0, constraints=constraints)
        scores = []
        for v in result.path:
            scores.append(
                sum(max(0.0, metric.distance(v, t) - b) for t, b in constraints)
            )
        assert all(a > b or b == 0 for a, b in zip(scores, scores[1:]))

    def test_validation(self, overlay):
        with pytest.raises(ValueError):
            multi_constraint_search(overlay, 0, [])
        with pytest.raises(ValueError):
            multi_constraint_search(overlay, 0, [(999, 1.0)])
        with pytest.raises(ValueError):
            multi_constraint_search(overlay, 0, [(1, -1.0)])
