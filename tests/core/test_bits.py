"""Bit accounting primitives."""

import pytest

from repro.bits import SizeAccount, bits_for_count, bits_for_value, max_account


class TestBitsFor:
    @pytest.mark.parametrize(
        "k,expected",
        [(0, 0), (1, 0), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (1024, 10)],
    )
    def test_bits_for_count(self, k, expected):
        assert bits_for_count(k) == expected

    @pytest.mark.parametrize("v,expected", [(0, 1), (1, 1), (7, 3), (8, 4), (255, 8)])
    def test_bits_for_value(self, v, expected):
        assert bits_for_value(v) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bits_for_count(-1)
        with pytest.raises(ValueError):
            bits_for_value(-1)


class TestSizeAccount:
    def test_accumulation(self):
        a = SizeAccount()
        a.add("x", 10)
        a.add("x", 5)
        a.add("y", 1)
        assert a.total_bits == 16
        assert a.components["x"] == 15

    def test_total_bytes(self):
        a = SizeAccount({"x": 16})
        assert a.total_bytes == 2.0

    def test_merge_and_add(self):
        a = SizeAccount({"x": 1})
        b = SizeAccount({"x": 2, "y": 3})
        merged = a + b
        assert merged.components == {"x": 3, "y": 3}
        # Originals untouched.
        assert a.components == {"x": 1}

    def test_negative_rejected(self):
        a = SizeAccount()
        with pytest.raises(ValueError):
            a.add("x", -1)

    def test_describe_mentions_total(self):
        a = SizeAccount({"x": 5})
        assert "TOTAL" in a.describe()

    def test_iteration(self):
        a = SizeAccount({"x": 5, "y": 6})
        assert dict(iter(a)) == {"x": 5, "y": 6}

    def test_max_account(self):
        small = SizeAccount({"x": 1})
        big = SizeAccount({"x": 100})
        assert max_account([small, big]) is big

    def test_max_account_empty_raises(self):
        with pytest.raises(ValueError):
            max_account([])
