"""Zooming sequences (Theorem 2.1 / 3.4)."""

import pytest

from repro.core import net_zooming_sequence
from repro.core.zooming import rui_zooming_sequence
from repro.metrics import NestedNets


@pytest.fixture(scope="module")
def descending_nets(hypercube32):
    return NestedNets(
        hypercube32, levels=7, base_radius=hypercube32.diameter(), descending=True
    )


class TestNetZooming:
    def test_zooms_within_net_radius(self, hypercube32, descending_nets):
        """f_tj lies within Δ/2^j of t (Claim 2.3's premise)."""
        for t in (0, 13, 31):
            seq = net_zooming_sequence(hypercube32, descending_nets, t)
            for j in range(len(seq)):
                assert hypercube32.distance(t, seq[j]) <= descending_nets.radius_of(j)

    def test_converges_to_target(self, hypercube32, descending_nets):
        """At the finest level the net contains every node, so f = t."""
        for t in (5, 22):
            seq = net_zooming_sequence(hypercube32, descending_nets, t)
            assert seq[len(seq) - 1] == t

    def test_members_are_net_points(self, hypercube32, descending_nets):
        seq = net_zooming_sequence(hypercube32, descending_nets, 7)
        for j in range(len(seq)):
            assert seq[j] in set(descending_nets.net(j))

    def test_target_recorded(self, hypercube32, descending_nets):
        seq = net_zooming_sequence(hypercube32, descending_nets, 3)
        assert seq.target == 3


class TestRuiZooming:
    def test_within_quarter_radius(self, hypercube32):
        nets = NestedNets(
            hypercube32, levels=8, base_radius=hypercube32.min_distance()
        )
        for t in (0, 17):
            seq = rui_zooming_sequence(hypercube32, nets, t, levels=5)
            for i in range(5):
                r_ti = hypercube32.rui(t, i)
                # Within r_ti/4 when the net level is not clamped; the
                # clamped bottom level gives t itself (distance 0).
                assert hypercube32.distance(t, seq[i]) <= max(r_ti / 4.0, 0.0) + 1e-12
