"""Unit tests for the membership patch substrate (repro.core.patch).

The contracts the mutable structures rely on: validated membership
batches over a fixed universe, an exact inverted index from changed ids
to dirty CSR rows, live filtered reads bit-identical to what the next
merge produces, merges that always filter the pristine block (so
leave/rejoin cycles reconverge), and threshold/staleness auto-merge.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CSRPatch, InactiveNode, Membership, PatchStats
from repro.core.packed import PackedRings
from repro.core.rings import cardinality_rings
from repro.metrics.synthetic import random_hypercube_metric


def _toy_patch(**kwargs) -> CSRPatch:
    # Rows: 0 -> [0, 1, 2], 1 -> [2, 3], 2 -> [] , 3 -> [1, 4]
    indptr = np.array([0, 3, 5, 5, 7], dtype=np.int64)
    keys = np.array([0, 1, 2, 2, 3, 1, 4], dtype=np.int64)
    dist = np.array([0.0, 1.0, 2.0, 0.5, 1.5, 2.5, 3.5])
    return CSRPatch(indptr, keys, payloads=(dist,), universe=5, **kwargs)


class TestMembership:
    def test_starts_all_active_and_clean(self):
        m = Membership(6)
        assert m.active_count == 6
        assert m.is_clean()
        assert m.pending_ids().size == 0

    def test_apply_validates_ranges_and_state(self):
        m = Membership(6)
        with pytest.raises(ValueError, match="out of range"):
            m.apply(leaves=[9])
        with pytest.raises(InactiveNode, match="already-active"):
            m.apply(joins=[2])
        m.apply(leaves=[2])
        with pytest.raises(InactiveNode, match="inactive"):
            m.apply(leaves=[2])
        with pytest.raises(ValueError, match="both join and leave"):
            m.apply(joins=[2], leaves=[2])

    def test_segments_and_commit(self):
        m = Membership(6)
        m.apply(leaves=[1, 4])
        m.apply(joins=[4])
        assert m.pending_joins() == 0  # 4 left then rejoined: net zero
        assert m.pending_leaves() == 1
        assert sorted(m.pending_ids().tolist()) == [1]
        assert len(m.leave_segments) == 1 and len(m.join_segments) == 1
        m.commit()
        assert m.is_clean()
        assert m.merges == 1
        assert np.array_equal(m.snapshot, m.active)

    def test_active_ids(self):
        m = Membership(4)
        m.apply(leaves=[0, 3])
        assert m.active_ids().tolist() == [1, 2]
        assert not m.is_active(0) and m.is_active(1)


class TestCSRPatch:
    def test_rows_containing_exact(self):
        patch = _toy_patch()
        assert patch.rows_containing(np.array([2])).tolist() == [0, 1]
        assert patch.rows_containing(np.array([1])).tolist() == [0, 3]
        assert patch.rows_containing(np.array([4])).tolist() == [3]
        assert patch.rows_containing(np.empty(0, dtype=np.int64)).size == 0

    def test_apply_flags_only_touched_rows(self):
        patch = _toy_patch()
        patch.apply(leaves=[4])
        assert patch.row_dirty(3)
        assert not patch.row_dirty(0)
        assert patch.dirty_row_count == 1
        assert patch.rows_dirty(np.array([0, 1, 2, 3])).tolist() == [
            False, False, False, True,
        ]

    def test_filtered_row_masks_by_live_active(self):
        patch = _toy_patch()
        patch.apply(leaves=[1, 2])
        keys, (dist,) = patch.filtered_row(0)
        assert keys.tolist() == [0]
        assert dist.tolist() == [0.0]
        # empty row stays empty
        keys, (dist,) = patch.filtered_row(2)
        assert keys.size == 0 and dist.size == 0
        # merged (pre-update) row still shows the pristine contents
        keys, (dist,) = patch.merged_row(0)
        assert keys.tolist() == [0, 1, 2]

    def test_merge_matches_filtered_rows_bit_for_bit(self):
        patch = _toy_patch()
        patch.apply(leaves=[2, 3])
        served = [patch.filtered_row(r) for r in range(patch.rows)]
        patch.merge()
        for r, (keys, (dist,)) in enumerate(served):
            mkeys, (mdist,) = patch.merged_row(r)
            assert np.array_equal(keys, mkeys)
            assert np.array_equal(dist, mdist)
        assert patch.dirty_row_count == 0
        assert patch.is_clean()

    def test_leave_rejoin_reconverges_to_pristine(self):
        patch = _toy_patch()
        patch.apply(leaves=[1, 2])
        patch.merge()
        patch.apply(joins=[1, 2])
        patch.merge()
        assert np.array_equal(patch.merged_indptr, patch.pristine_indptr)
        assert np.array_equal(patch.merged_keys, patch.pristine_keys)
        assert np.array_equal(
            patch.merged_payloads[0], patch.pristine_payloads[0]
        )

    def test_auto_merge_on_dirty_fraction(self):
        patch = _toy_patch(merge_threshold=0.5, staleness_limit=10**9)
        patch.apply(leaves=[4])  # 1/4 rows dirty: below threshold
        assert not patch.maybe_merge()
        patch.apply(leaves=[2])  # rows 0, 1 join row 3: 3/4 dirty
        assert patch.maybe_merge()
        assert patch.auto_merges == 1
        assert patch.stats().merges == 1

    def test_auto_merge_on_staleness(self):
        patch = _toy_patch(merge_threshold=1.1, staleness_limit=3)
        patch.apply(leaves=[4])
        assert not patch.maybe_merge()
        patch.apply(joins=[4])
        assert not patch.maybe_merge()
        patch.apply(leaves=[4])
        assert patch.maybe_merge()

    def test_stats_roundtrip(self):
        patch = _toy_patch()
        patch.apply(leaves=[0, 4])
        stats = patch.stats()
        assert isinstance(stats, PatchStats)
        d = stats.to_dict()
        assert d["universe"] == 5
        assert d["active_nodes"] == 3
        assert d["pending_leaves"] == 2
        assert d["dirty_rows"] == patch.dirty_row_count
        assert PatchStats(**d) == stats

    def test_payload_misalignment_rejected(self):
        indptr = np.array([0, 2], dtype=np.int64)
        keys = np.array([0, 1], dtype=np.int64)
        with pytest.raises(ValueError, match="align"):
            CSRPatch(indptr, keys, payloads=(np.zeros(3),), universe=2)


class TestPackedRingsIntegration:
    def test_membership_patch_covers_ring_rows(self):
        metric = random_hypercube_metric(24, dim=2, seed=3)
        rings = cardinality_rings(metric, samples_per_ring=3, seed=0,
                                  backend="packed")
        assert isinstance(rings, PackedRings)
        patch = rings.membership_patch()
        assert patch.rows == rings.indptr.size - 1
        patch.apply(leaves=[5])
        dirty = patch.rows_containing(np.array([5]))
        # every flagged row's pristine contents really mention node 5
        for r in dirty.tolist():
            lo, hi = patch.pristine_indptr[r], patch.pristine_indptr[r + 1]
            assert 5 in patch.pristine_keys[lo:hi].tolist()
        # filtered rows never serve the departed node
        for r in range(patch.rows):
            keys, _ = patch.filtered_row(r)
            assert 5 not in keys.tolist()
