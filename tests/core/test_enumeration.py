"""Host/virtual enumerations and translation functions (Figure 2)."""

import pytest

from repro.core import Enumeration, TranslationFunction


class TestEnumeration:
    def test_sorted_order(self):
        e = Enumeration.of([5, 1, 9])
        assert e.members == (1, 5, 9)
        assert e.index_of(5) == 1
        assert e.node_at(2) == 9

    def test_identical_sets_identical_indices(self):
        """The level-0 coincidence property the schemes rely on."""
        a = Enumeration.of([4, 2, 8])
        b = Enumeration.of([8, 4, 2])
        for node in (2, 4, 8):
            assert a.index_of(node) == b.index_of(node)

    def test_missing_node(self):
        e = Enumeration.of([1, 2])
        assert e.index_of(7) is None
        assert 7 not in e

    def test_index_bits(self):
        assert Enumeration.of(range(8)).index_bits() == 3
        assert Enumeration.of([3]).index_bits() == 0

    def test_deduplication(self):
        e = Enumeration.of([1, 1, 2])
        assert len(e) == 2


class TestTranslationFunction:
    def test_define_lookup(self):
        z = TranslationFunction()
        z.define(0, 3, 7)
        assert z.lookup(0, 3) == 7
        assert z.lookup(0, 4) is None

    def test_inconsistent_definition_rejected(self):
        z = TranslationFunction()
        z.define(1, 1, 2)
        with pytest.raises(ValueError, match="inconsistent"):
            z.define(1, 1, 3)

    def test_idempotent_redefinition_ok(self):
        z = TranslationFunction()
        z.define(1, 1, 2)
        z.define(1, 1, 2)
        assert len(z) == 1

    def test_entries_with_first(self):
        z = TranslationFunction()
        z.define(0, 1, 10)
        z.define(0, 2, 20)
        z.define(5, 1, 30)
        assert z.entries_with_first(0) == {1: 10, 2: 20}
        assert z.entries_with_first(9) == {}

    def test_triangle_composition(self):
        """Figure 2: translate w's index through f into u's enumeration."""
        phi_u1 = Enumeration.of([10, 20])  # u's level-1 ring: f=20 at idx 1
        phi_f2 = Enumeration.of([30, 40])  # f's level-2 ring: w=40 at idx 1
        phi_u2 = Enumeration.of([40, 50])  # u's level-2 ring: w=40 at idx 0
        z = TranslationFunction()
        z.define(phi_u1.index_of(20), phi_f2.index_of(40), phi_u2.index_of(40))
        w_in_u = z.lookup(1, 1)
        assert phi_u2.node_at(w_in_u) == 40

    def test_dense_bit_size(self):
        z = TranslationFunction()
        account = z.dense_bit_size(4, 4, 4)
        assert account.total_bits == 4 * 4 * 2

    def test_triples_bit_size(self):
        z = TranslationFunction()
        z.define(0, 0, 0)
        z.define(1, 1, 1)
        account = z.triples_bit_size(3, 4, 3)
        assert account.total_bits == 2 * 10
