"""Rings-of-neighbors structure and builders."""

import pytest

from repro.core import (
    Ring,
    RingsOfNeighbors,
    cardinality_rings,
    measure_rings,
    net_rings,
)
from repro.metrics import NestedNets
from repro.metrics.measure import doubling_measure


class TestRing:
    def test_membership(self):
        ring = Ring(owner=0, key=1, radius=2.0, members=(3, 4, 5))
        assert 4 in ring
        assert 9 not in ring
        assert len(ring) == 3
        assert list(ring) == [3, 4, 5]


class TestRingsOfNeighbors:
    @pytest.fixture
    def rings(self, hypercube32):
        r = RingsOfNeighbors(hypercube32)
        r.add_ring(Ring(0, 0, 1.0, (1, 2)))
        r.add_ring(Ring(0, 1, 2.0, (2, 3, 0)))
        r.add_ring(Ring(1, 0, 1.0, (0,)))
        return r

    def test_neighbors_deduplicated_no_self(self, rings):
        assert sorted(rings.neighbors_of(0)) == [1, 2, 3]

    def test_out_degree(self, rings):
        assert rings.out_degree(0) == 3
        assert rings.out_degree(1) == 1
        assert rings.out_degree(5) == 0
        assert rings.max_out_degree() == 3

    def test_ring_lookup(self, rings):
        assert rings.ring(0, 1).radius == 2.0
        assert rings.ring(3, 0) is None

    def test_max_ring_cardinality(self, rings):
        assert rings.max_ring_cardinality() == 3

    def test_merge(self, rings, hypercube32):
        other = RingsOfNeighbors(hypercube32)
        other.add_ring(Ring(0, 0, 5.0, (7,)))
        merged = rings.merged_with(other)
        assert sorted(merged.neighbors_of(0)) == [1, 2, 3, 7]

    def test_pointer_bits(self, rings, hypercube32):
        bits = rings.pointer_bits(0)
        assert bits.total_bits == 3 * 5  # 3 neighbors * ceil(log2 32)


class TestNetRings:
    def test_members_in_ball_and_net(self, hypercube32):
        nets = NestedNets(hypercube32, levels=5, base_radius=hypercube32.min_distance())
        rings = net_rings(hypercube32, nets, radius_for_level=lambda j: 0.5 * 2**j)
        for u in (0, 9):
            for j in range(5):
                ring = rings.ring(u, j)
                assert ring is not None
                net_set = set(nets.net(j))
                row = hypercube32.distances_from(u)
                for v in ring.members:
                    assert v in net_set
                    assert row[v] <= ring.radius + 1e-12

    def test_level_subset(self, hypercube32):
        nets = NestedNets(hypercube32, levels=5, base_radius=hypercube32.min_distance())
        rings = net_rings(
            hypercube32, nets, radius_for_level=lambda j: 1.0, levels=[2, 3]
        )
        assert rings.ring(0, 2) is not None
        assert rings.ring(0, 0) is None


class TestSampledRings:
    def test_cardinality_rings_inside_balls(self, hypercube32):
        rings = cardinality_rings(hypercube32, samples_per_ring=4, seed=0)
        for u in (0, 15):
            for i in range(3):
                ring = rings.ring(u, i)
                row = hypercube32.distances_from(u)
                assert all(row[v] <= ring.radius + 1e-12 for v in ring.members)

    def test_cardinality_rings_deterministic(self, hypercube32):
        a = cardinality_rings(hypercube32, 4, seed=3)
        b = cardinality_rings(hypercube32, 4, seed=3)
        assert a.neighbors_of(5) == b.neighbors_of(5)

    def test_measure_rings_inside_balls(self, hypercube32):
        mu = doubling_measure(hypercube32)
        rings = measure_rings(hypercube32, mu, samples_per_ring=3, seed=1)
        for u in (2, 20):
            for key, ring in rings.rings_of(u).items():
                row = hypercube32.distances_from(u)
                assert all(row[v] <= ring.radius + 1e-12 for v in ring.members)

    def test_measure_rings_level_count(self, hypercube32):
        mu = doubling_measure(hypercube32)
        rings = measure_rings(hypercube32, mu, 2, seed=0)
        assert len(rings.rings_of(0)) == hypercube32.log_aspect_ratio()
