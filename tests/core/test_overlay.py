"""Overlay networks from rings."""

import pytest

from repro.core import cardinality_rings, overlay_from_rings


class TestOverlay:
    def test_edges_match_pointers(self, hypercube32):
        rings = cardinality_rings(hypercube32, samples_per_ring=3, seed=2)
        overlay = overlay_from_rings(rings)
        for u in range(hypercube32.n):
            for v in rings.neighbors_of(u):
                assert overlay.has_edge(u, v)

    def test_weights_are_metric_distances(self, hypercube32):
        rings = cardinality_rings(hypercube32, samples_per_ring=3, seed=2)
        overlay = overlay_from_rings(rings)
        for u, v, w in overlay.edges():
            assert w == pytest.approx(hypercube32.distance(u, v))

    def test_overlay_connected_with_enough_samples(self, hypercube32):
        rings = cardinality_rings(hypercube32, samples_per_ring=6, seed=0)
        overlay = overlay_from_rings(rings)
        assert overlay.is_connected()
