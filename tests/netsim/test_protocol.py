"""Event-native driver and round-adapter semantics beyond parity."""

from typing import List

from repro.distributed import Message, RoundBasedProtocol
from repro.metrics import uniform_line
from repro.netsim import (
    ConstantLatency,
    Crash,
    EventDriver,
    EventNetwork,
    EventProtocol,
    FaultPlan,
    LinkModel,
    RoundAdapter,
)


class Echo(EventProtocol):
    """Node 0 pings every node once at start; each replies once."""

    def on_start(self, net):
        for v in range(1, net.n):
            net.send(0, v, "ping")

    def on_message(self, node, message, net):
        if message.kind == "ping":
            net.send(node, message.sender, "pong")
        else:
            net.state[node].setdefault("pongs", 0)
            net.state[node]["pongs"] += 1

    def is_done(self, net):
        return net.state[0].get("pongs", 0) >= net.n - 1


class PingPong(RoundBasedProtocol):
    def __init__(self, volleys: int) -> None:
        self.volleys = volleys

    def initialize(self, ctx) -> None:
        ctx.state[0]["count"] = 0
        ctx.state[1]["count"] = 0
        ctx.send(0, 1, "ping", hop=0)

    def on_round(self, node, inbox: List[Message], ctx) -> None:
        for message in inbox:
            if message.kind == "ping":
                ctx.state[node]["count"] += 1
                if message.payload["hop"] + 1 < self.volleys:
                    ctx.send(node, message.sender, "ping",
                             hop=message.payload["hop"] + 1)

    def is_done(self, ctx) -> bool:
        return ctx.state[0]["count"] + ctx.state[1]["count"] >= self.volleys


class TestEventDriver:
    def test_echo_converges_with_full_accounting(self):
        net = EventNetwork(uniform_line(5), seed=0)
        stats = EventDriver(net, Echo()).run()
        assert stats.converged
        assert stats.messages == 8  # 4 pings + 4 pongs
        assert stats.delivered == 8
        assert stats.dropped == 0 and stats.undelivered == 0
        assert stats.config["link"]["drop_rate"] == 0.0

    def test_latency_sets_wall_clock(self):
        net = EventNetwork(
            uniform_line(5), link=LinkModel(ConstantLatency(1.5)), seed=0
        )
        stats = EventDriver(net, Echo()).run()
        assert stats.converged
        assert stats.wall_clock == 3.0  # ping + pong, 1.5 each


class TestRoundAdapter:
    def test_volley_per_round_like_sync(self):
        net = EventNetwork(uniform_line(2), seed=0)
        stats = RoundAdapter(net, PingPong(volleys=4), max_rounds=10).run()
        assert stats.converged
        assert stats.rounds == 4
        assert stats.messages == 4
        assert stats.wall_clock == 4.0

    def test_round_budget_respected(self):
        net = EventNetwork(uniform_line(2), seed=0)
        stats = RoundAdapter(net, PingPong(volleys=100), max_rounds=5).run()
        assert not stats.converged
        assert stats.rounds == 5

    def test_crashed_node_skips_steps_and_loses_mail(self):
        # Node 1 is down for rounds 1-2; the volley stalls until restart.
        faults = FaultPlan(crashes=(Crash(1, 0.5, 2.5),))
        net = EventNetwork(uniform_line(2), faults=faults, seed=0)
        stats = RoundAdapter(net, PingPong(volleys=2), max_rounds=10).run()
        # The initial ping arrived at t=0 (before the crash) but node 1
        # skips its step at t=1 and t=2 and only replies at t=3.
        assert stats.converged
        assert stats.rounds > 2
        assert stats.messages == stats.delivered + stats.dropped + stats.undelivered

    def test_run_stats_config_records_environment(self):
        net = EventNetwork(
            uniform_line(2), link=LinkModel(drop_rate=0.25, seed=3), seed=0
        )
        stats = RoundAdapter(net, PingPong(volleys=3), max_rounds=30).run()
        assert stats.config["link"]["drop_rate"] == 0.25
        assert "crashes" in stats.config["faults"]
        assert stats.seed == 0
