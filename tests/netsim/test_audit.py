"""Suffix-walk ring audits: honest tables pass, liars get flagged."""

import pytest

from repro.api.facade import build_workload
from repro.distributed import GossipRingProtocol, SynchronousNetwork
from repro.netsim import (
    Byzantine,
    EventNetwork,
    FaultPlan,
    run_audit,
    suffix_walk,
)


class TestSuffixWalk:
    def test_forward_scan_from_start(self):
        assert suffix_walk([2, 5, 9, 12], start=5, length=2) == [5, 9]
        assert suffix_walk([2, 5, 9, 12], start=6, length=2) == [9, 12]

    def test_wraps_past_the_end(self):
        assert suffix_walk([2, 5, 9], start=10, length=2) == [2, 5]

    def test_short_tables_and_empty(self):
        assert suffix_walk([4], start=0, length=3) == [4]
        assert suffix_walk([], start=0, length=3) == []
        assert suffix_walk([1, 2], start=0, length=0) == []


def gossip_tables(metric, seed=3):
    proto = GossipRingProtocol(bootstrap=3, exchange=8, ring_capacity=6, rounds=8)
    net = SynchronousNetwork(metric, proto, seed=seed)
    net.run(max_rounds=100)
    return {u: proto.rings_of(net.ctx, u) for u in range(metric.n)}


@pytest.fixture(scope="module")
def metric():
    return build_workload("hypercube", n=40, seed=9).metric


class TestAudit:
    def test_honest_network_flags_nobody(self, metric):
        rings = gossip_tables(metric)
        net = EventNetwork(metric, seed=21)
        audit = run_audit(net, rings, base=metric.min_distance(),
                          levels=metric.log_aspect_ratio() + 1)
        report = audit.report()
        assert report["flagged"] == []
        assert report["false_positive_rate"] == 0.0
        assert report["mean_overlap_honest"] == pytest.approx(1.0)
        assert report["audits_answered"] == report["audits_issued"]

    def test_distance_liars_detected(self, metric):
        liars = (4, 11, 17)
        faults = FaultPlan(
            byzantine=Byzantine(liars, mode="distance"), seed=5
        )
        # Tables built under the same liars: everyone filed the liars at
        # inflated distances, and the liars' own tables hold truths the
        # verifiers' re-measurements contradict.
        net = EventNetwork(metric, faults=faults, seed=21)
        rings = gossip_tables(metric)
        audit = run_audit(net, rings, base=metric.min_distance(),
                          levels=metric.log_aspect_ratio() + 1,
                          audits_per_node=6)
        report = audit.report(byzantine=frozenset(liars))
        assert report["detection_rate"] == 1.0
        assert report["mean_overlap_byzantine"] < 0.5
        assert report["mean_overlap_honest"] > 0.8

    def test_membership_liars_detected(self, metric):
        liars = (7, 23)
        faults = FaultPlan(
            byzantine=Byzantine(liars, mode="membership"), seed=5
        )
        net = EventNetwork(metric, faults=faults, seed=21)
        audit = run_audit(net, gossip_tables(metric),
                          base=metric.min_distance(),
                          levels=metric.log_aspect_ratio() + 1,
                          audits_per_node=6)
        report = audit.report(byzantine=frozenset(liars))
        assert report["detection_rate"] == 1.0
        assert report["false_positive_rate"] < 0.15

    def test_report_counts_consistent(self, metric):
        net = EventNetwork(metric, seed=2)
        audit = run_audit(net, gossip_tables(metric),
                          base=metric.min_distance())
        report = audit.report()
        assert report["audits_issued"] == metric.n * audit.audits_per_node
        assert report["checks_total"] == sum(audit.checks.values())
        assert report["provers_audited"] <= metric.n
