"""Link-model behaviour: latency families, loss, jitter, determinism."""

import numpy as np
import pytest

from repro.netsim import (
    ConstantLatency,
    ExponentialLatency,
    LinkModel,
    UniformLatency,
    make_latency,
)


class TestLatencyModels:
    def test_constant(self):
        rng = np.random.default_rng(0)
        assert ConstantLatency(0.7).sample(rng, 0, 1) == 0.7

    def test_uniform_bounds(self):
        rng = np.random.default_rng(0)
        lat = UniformLatency(0.5, 1.5)
        draws = [lat.sample(rng, 0, 1) for _ in range(200)]
        assert all(0.5 <= d <= 1.5 for d in draws)

    def test_exponential_mean(self):
        rng = np.random.default_rng(0)
        lat = ExponentialLatency(2.0)
        draws = [lat.sample(rng, 0, 1) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(2.0, rel=0.1)

    def test_make_latency_by_name(self):
        assert isinstance(make_latency("constant", value=1.0), ConstantLatency)
        with pytest.raises(KeyError, match="unknown latency kind"):
            make_latency("laplace")

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)
        with pytest.raises(ValueError):
            UniformLatency(2.0, 1.0)
        with pytest.raises(ValueError):
            ExponentialLatency(0.0)


class TestLinkModel:
    def test_default_is_ideal_and_draws_nothing(self):
        link = LinkModel(seed=0)
        before = link.rng.bit_generator.state
        assert link.transit(0, 1) == 0.0
        assert link.rng.bit_generator.state == before

    def test_drop_rate_statistics(self):
        link = LinkModel(drop_rate=0.3, seed=1)
        dropped = sum(link.transit(0, 1) is None for _ in range(2000))
        assert dropped / 2000 == pytest.approx(0.3, abs=0.05)

    def test_seeded_transit_is_deterministic(self):
        draws = [
            [LinkModel(UniformLatency(0, 1), jitter=0.5, seed=7).transit(0, 1)
             for _ in range(10)]
            for _ in range(2)
        ]
        assert draws[0] == draws[1]

    def test_distance_factor_adds_propagation(self):
        link = LinkModel(distance_factor=0.5, seed=0)
        assert link.transit(0, 1, distance=4.0) == 2.0

    def test_drop_rate_bounds(self):
        with pytest.raises(ValueError):
            LinkModel(drop_rate=1.0)

    def test_to_dict_round_trips_config(self):
        link = LinkModel(UniformLatency(0, 2), drop_rate=0.1, jitter=0.2)
        d = link.to_dict()
        assert d["latency"] == {"kind": "uniform", "lo": 0.0, "hi": 2.0}
        assert d["drop_rate"] == 0.1 and d["jitter"] == 0.2
