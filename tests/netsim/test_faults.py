"""Fault-plan semantics: crash windows, partitions, Byzantine lies."""

import numpy as np
import pytest

from repro.netsim import Byzantine, Crash, FaultPlan, Partition
from repro.netsim.faults import sample_nodes


class TestCrash:
    def test_window_half_open(self):
        crash = Crash(3, down_at=2.0, up_at=5.0)
        assert not crash.down(1.9)
        assert crash.down(2.0)
        assert crash.down(4.99)
        assert not crash.down(5.0)

    def test_default_is_forever(self):
        assert Crash(0, down_at=1.0).down(1e12)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            Crash(0, down_at=2.0, up_at=2.0)


class TestPartition:
    def test_severs_only_across_groups_during_window(self):
        part = Partition(group=(0, 1), start=2.0, end=6.0)
        assert part.severs(0, 5, 3.0)
        assert part.severs(5, 0, 3.0)
        assert not part.severs(0, 1, 3.0)  # same side
        assert not part.severs(4, 5, 3.0)  # same side
        assert not part.severs(0, 5, 1.0)  # before
        assert not part.severs(0, 5, 6.0)  # after (half-open)


class TestByzantine:
    def test_mode_split(self):
        byz = Byzantine((1, 2, 3, 4, 5), mode="mixed")
        assert byz.distance_liars == (1, 2, 3)
        assert byz.membership_liars == (4, 5)
        assert Byzantine((1, 2), mode="distance").membership_liars == ()
        assert Byzantine((1, 2), mode="membership").distance_liars == ()

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="byzantine mode"):
            Byzantine((1,), mode="sleepy")

    def test_inflate_bounds_validated(self):
        with pytest.raises(ValueError):
            Byzantine((1,), inflate=(0.5, 2.0))


class TestFaultPlan:
    def test_honest_probe_passes_through_exactly(self):
        plan = FaultPlan()
        assert plan.perturb_probe(0, 1, 3.25) == 3.25

    def test_distance_lie_is_per_pair_deterministic(self):
        plan = FaultPlan(byzantine=Byzantine((5,), mode="distance"), seed=9)
        first = plan.perturb_probe(0, 5, 1.0)
        assert first == plan.perturb_probe(0, 5, 1.0)  # order-independent
        assert 2.0 <= first <= 4.0  # default inflate window
        # Different askers get different lies — what audits exploit.
        assert first != plan.perturb_probe(1, 5, 1.0)

    def test_lies_only_about_the_liar(self):
        plan = FaultPlan(byzantine=Byzantine((5,), mode="distance"), seed=9)
        assert plan.perturb_probe(5, 0, 1.0) == 1.0  # liar asking honest

    def test_membership_tamper_replaces_id_lists(self):
        plan = FaultPlan(byzantine=Byzantine((2,), mode="membership"), seed=3)
        payload = {"nodes": [1, 2, 3], "reply_to": 7, "note": "x"}
        out = plan.tamper_payload(2, payload, n=10)
        assert len(out["nodes"]) == 3
        assert all(0 <= x < 10 for x in out["nodes"])
        assert out["reply_to"] == 7 and out["note"] == "x"
        # Honest senders pass through untouched (same object contents).
        assert plan.tamper_payload(1, payload, n=10) == payload

    def test_is_up_and_severed_compose(self):
        plan = FaultPlan(
            crashes=(Crash(1, 2.0, 4.0),),
            partitions=(Partition((0,), 1.0, 3.0),),
        )
        assert plan.is_up(1, 1.0) and not plan.is_up(1, 2.5)
        assert plan.severed(0, 2, 2.0) and not plan.severed(0, 2, 3.0)

    def test_byzantine_nodes_union(self):
        plan = FaultPlan(byzantine=Byzantine((1, 2, 3), mode="mixed"))
        assert plan.byzantine_nodes() == frozenset({1, 2, 3})


class TestSampleNodes:
    def test_distinct_sorted_and_bounded(self):
        rng = np.random.default_rng(0)
        picked = sample_nodes(rng, range(10), 4)
        assert len(set(picked)) == 4
        assert list(picked) == sorted(picked)
        assert sample_nodes(rng, range(3), 99) == (0, 1, 2)
        assert sample_nodes(rng, range(3), 0) == ()
