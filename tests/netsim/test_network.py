"""Event-network transport: delivery, fault filtering, total accounting."""

import pytest

from repro.metrics import uniform_line
from repro.netsim import (
    Byzantine,
    Crash,
    EventNetwork,
    FaultPlan,
    LinkModel,
    Partition,
)


def drain(net):
    net.loop.run()


class TestTransport:
    def test_ideal_send_arrives_instantly_in_order(self):
        net = EventNetwork(uniform_line(3), seed=0)
        net.send(0, 2, "a", k=1)
        net.send(1, 2, "b", k=2)
        drain(net)
        inbox = net.drain_pending(2)
        assert [m.kind for m in inbox] == ["a", "b"]
        assert net.consumed == 2 and net.messages_sent == 2

    def test_out_of_range_recipient_rejected(self):
        net = EventNetwork(uniform_line(2), seed=0)
        with pytest.raises(ValueError, match="out of range"):
            net.send(0, 2, "x")

    def test_arrival_handler_dispatches_immediately(self):
        net = EventNetwork(uniform_line(2), seed=0)
        got = []
        net.set_arrival_handler(lambda m: got.append(m.kind))
        net.send(0, 1, "hello")
        drain(net)
        assert got == ["hello"]
        assert net.undelivered() == 0

    def test_link_drop_counted(self):
        net = EventNetwork(
            uniform_line(2), link=LinkModel(drop_rate=0.999999, seed=1), seed=0
        )
        for _ in range(20):
            net.send(0, 1, "x")
        drain(net)
        assert net.dropped_link == 20
        assert net.dropped == 20

    def test_partition_drop_at_send(self):
        faults = FaultPlan(partitions=(Partition((0,), 0.0, 10.0),))
        net = EventNetwork(uniform_line(3), faults=faults, seed=0)
        net.send(0, 1, "cut")
        net.send(1, 2, "ok")
        drain(net)
        assert net.dropped_partition == 1
        assert len(net.drain_pending(2)) == 1

    def test_partition_severs_in_flight_message(self):
        # Message leaves before the partition rises, arrives inside it.
        from repro.netsim import ConstantLatency

        faults = FaultPlan(partitions=(Partition((0,), 1.0, 5.0),))
        net = EventNetwork(
            uniform_line(2),
            link=LinkModel(ConstantLatency(2.0)),
            faults=faults,
            seed=0,
        )
        net.send(0, 1, "doomed")  # sent at t=0, arrives t=2 inside [1, 5)
        drain(net)
        assert net.dropped_partition == 1

    def test_crashed_recipient_loses_message(self):
        faults = FaultPlan(crashes=(Crash(1, 0.0),))
        net = EventNetwork(uniform_line(2), faults=faults, seed=0)
        net.send(0, 1, "lost")
        drain(net)
        assert net.dropped_crash == 1
        assert net.up_nodes() == [0]

    def test_byzantine_probe_perturbs_measure(self):
        faults = FaultPlan(byzantine=Byzantine((1,), mode="distance"), seed=4)
        net = EventNetwork(uniform_line(3), faults=faults, seed=0)
        truth = uniform_line(3).distance(0, 1)
        assert net.measure(0, 1) >= 2.0 * truth  # inflate lower bound
        assert net.measure(0, 2) == uniform_line(3).distance(0, 2)
        net.probe(0, 1)
        assert net.probes == 1

    def test_total_accounting_invariant(self):
        faults = FaultPlan(crashes=(Crash(1, 0.0),))
        net = EventNetwork(
            uniform_line(3), link=LinkModel(drop_rate=0.5, seed=2),
            faults=faults, seed=0,
        )
        for i in range(60):
            net.send(0, 1 + i % 2, "x")
        drain(net)
        consumed = len(net.drain_pending(2))
        assert consumed == net.consumed
        assert net.messages_sent == net.consumed + net.dropped + net.undelivered()

    def test_timer_skipped_while_down(self):
        faults = FaultPlan(crashes=(Crash(0, 1.0, 3.0),))
        net = EventNetwork(uniform_line(2), faults=faults, seed=0)
        fired = []
        net.set_timer_handler(lambda node, tag: fired.append((node, tag)))
        net.set_timer(0, 2.0, "down")   # fires at t=2 while crashed
        net.set_timer(0, 4.0, "up")     # fires after restart
        drain(net)
        assert fired == [(0, "up")]
