"""Scenario expansion and the measurement battery."""

import pytest

from repro.api.facade import build_workload
from repro.netsim import SCENARIOS, Scenario, measure_scenario


@pytest.fixture(scope="module")
def metric():
    return build_workload("hypercube", n=32, seed=7).metric


class TestRegistry:
    def test_required_scenarios_registered(self):
        for name in ("ideal", "lossy", "partition", "byzantine", "crash-churn"):
            assert name in SCENARIOS

    def test_ideal_is_the_null_environment(self):
        sc = SCENARIOS.get("ideal").obj
        link = sc.link(seed=0)
        assert link.transit(0, 1) == 0.0
        plan = sc.faults(16, seed=0)
        assert plan.crashes == () and plan.partitions == ()
        assert plan.byzantine is None


class TestExpansion:
    def test_fault_draw_is_seed_deterministic(self):
        sc = SCENARIOS.get("crash-churn").obj
        a = sc.faults(32, seed=5).to_dict()
        b = sc.faults(32, seed=5).to_dict()
        assert a == b
        assert a != sc.faults(32, seed=6).to_dict()

    def test_protect_shields_the_round_driver(self):
        sc = Scenario("all-crash", crash_fraction=1.0)
        plan = sc.faults(16, seed=0, protect=(15,))
        assert all(c.node != 15 for c in plan.crashes)
        byz = Scenario("all-byz", byzantine_fraction=1.0)
        plan = byz.faults(16, seed=0, protect=(15,))
        assert 15 not in plan.byzantine.nodes

    def test_restart_after_sets_up_at(self):
        sc = SCENARIOS.get("crash-churn").obj
        plan = sc.faults(32, seed=1)
        assert plan.crashes
        for crash in plan.crashes:
            assert crash.up_at == sc.crash_at + sc.restart_after

    def test_network_derives_separate_streams(self, metric):
        sc = SCENARIOS.get("lossy").obj
        net = sc.network(metric, seed=11)
        assert net.resolved_seed == 11
        # Link RNG is a spawned child, not the protocol generator.
        assert net.link.rng is not net.rng

    def test_to_dict_is_json_shaped(self):
        d = SCENARIOS.get("byzantine").obj.to_dict()
        assert d["name"] == "byzantine"
        assert d["inflate"] == [2.0, 4.0]


class TestMeasureScenario:
    def test_ideal_battery_healthy(self, metric):
        out = measure_scenario(
            metric, SCENARIOS.get("ideal").obj, seed=11,
            stretch=3.0, delta=0.25,
        )
        assert out["gossip_converged"] and out["net_converged"]
        assert out["gossip_delivery_rate"] > 0.9
        assert out["gossip_dropped"] == 0
        assert out["net_valid"]
        assert out["audit_false_positive_rate"] == 0.0
        assert out["estimate_meets_guarantee"]
        assert out["resolved_seed"] == 11
        assert out["scenario"]["name"] == "ideal"

    def test_byzantine_battery_detects(self, metric):
        out = measure_scenario(
            metric, SCENARIOS.get("byzantine").obj, seed=11,
        )
        assert out["audit_detection_rate"] == 1.0
        assert out["audit_mean_overlap_byzantine"] < 0.5

    def test_degraded_scenarios_lose_messages(self, metric):
        out = measure_scenario(metric, SCENARIOS.get("lossy").obj, seed=11)
        assert out["gossip_dropped"] > 0
        assert out["gossip_delivery_rate"] < 1.0
        # Degraded, not destroyed: coverage still substantial.
        assert out["gossip_coverage"] > 0.5
