"""Deterministic event-loop semantics."""

import pytest

from repro.netsim import Clock, EventLoop


class TestScheduling:
    def test_fires_in_time_order(self):
        loop = EventLoop()
        trace = []
        loop.schedule(3.0, lambda: trace.append("c"))
        loop.schedule(1.0, lambda: trace.append("a"))
        loop.schedule(2.0, lambda: trace.append("b"))
        executed, exhausted = loop.run()
        assert trace == ["a", "b", "c"]
        assert (executed, exhausted) == (3, True)
        assert loop.now == 3.0

    def test_ties_fire_in_insertion_order(self):
        loop = EventLoop()
        trace = []
        for i in range(5):
            loop.schedule(1.0, lambda i=i: trace.append(i))
        loop.run()
        assert trace == [0, 1, 2, 3, 4]

    def test_nested_scheduling_from_actions(self):
        loop = EventLoop()
        trace = []

        def outer():
            trace.append("outer")
            loop.schedule(0.0, lambda: trace.append("inner"))

        loop.schedule(1.0, outer)
        loop.schedule(2.0, lambda: trace.append("later"))
        loop.run()
        # The zero-delay child fires at t=1 before the t=2 event.
        assert trace == ["outer", "inner", "later"]

    def test_cannot_schedule_into_the_past(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: loop.schedule_at(0.5, lambda: None))
        with pytest.raises(ValueError, match="past"):
            loop.run()

    def test_cancelled_events_do_not_fire(self):
        loop = EventLoop()
        trace = []
        event = loop.schedule(1.0, lambda: trace.append("dead"))
        loop.schedule(2.0, lambda: trace.append("alive"))
        loop.cancel(event)
        assert loop.pending == 1
        loop.run()
        assert trace == ["alive"]


class TestRunLimits:
    def test_until_idles_clock_forward(self):
        loop = EventLoop()
        loop.schedule(10.0, lambda: None)
        executed, exhausted = loop.run(until=4.0)
        assert (executed, exhausted) == (0, False)
        assert loop.now == 4.0  # idled to the deadline, event still queued
        assert loop.pending == 1

    def test_max_events(self):
        loop = EventLoop()
        for i in range(10):
            loop.schedule(float(i), lambda: None)
        executed, exhausted = loop.run(max_events=4)
        assert (executed, exhausted) == (4, False)

    def test_stop_predicate_checked_between_events(self):
        loop = EventLoop()
        fired = []
        for i in range(10):
            loop.schedule(float(i), lambda i=i: fired.append(i))
        loop.run(stop=lambda: len(fired) >= 3)
        assert fired == [0, 1, 2]

    def test_shared_clock(self):
        clock = Clock()
        loop = EventLoop(clock)
        loop.schedule(5.0, lambda: None)
        loop.run()
        assert clock.now == 5.0
        assert loop.processed == 1
