"""Executor plumbing: resolution, span geometry, and map semantics."""

from __future__ import annotations

import os

import pytest

from repro.construction import (
    ChunkedExecutor,
    ProcessPoolBuildExecutor,
    SerialExecutor,
    make_executor,
    resolve_workers,
    span_chunks,
)


def _double(payload, x):
    return (payload or 0) + 2 * x


class TestResolveWorkers:
    def test_none_and_zero_resolve_to_cpu_count(self):
        expected = os.cpu_count() or 1
        assert resolve_workers(None) == expected
        assert resolve_workers(0) == expected

    def test_explicit_counts_pass_through(self):
        assert resolve_workers(1) == 1
        assert resolve_workers(5) == 5

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            resolve_workers(-1)


class TestSpanChunks:
    @pytest.mark.parametrize("n,shards", [(10, 3), (7, 7), (5, 9), (1, 4)])
    def test_spans_partition_range(self, n, shards):
        spans = span_chunks(n, shards)
        covered = [i for lo, hi in spans for i in range(lo, hi)]
        assert covered == list(range(n))
        assert len(spans) <= shards

    def test_empty_range(self):
        assert span_chunks(0, 4) == []

    def test_balanced(self):
        sizes = [hi - lo for lo, hi in span_chunks(100, 7)]
        assert max(sizes) - min(sizes) <= 1


class TestExecutors:
    TASKS = [(1,), (2,), (3,)]

    def test_serial_map(self):
        assert SerialExecutor().map(_double, self.TASKS, payload=10) == [12, 14, 16]

    def test_chunked_map_and_shards(self):
        ex = ChunkedExecutor(3)
        assert ex.shards == 3
        assert ex.map(_double, self.TASKS) == [2, 4, 6]
        with pytest.raises(ValueError):
            ChunkedExecutor(0)

    def test_process_pool_map_in_order(self):
        with ProcessPoolBuildExecutor(workers=2) as ex:
            assert ex.map(_double, self.TASKS, payload=10) == [12, 14, 16]
            # Same payload object: the pool is reused across calls.
            pool = ex._pool
            assert ex.map(_double, [(5,)], payload=10) == [20]
            assert ex._pool is pool

    def test_process_pool_close_idempotent(self):
        ex = ProcessPoolBuildExecutor(workers=2)
        ex.map(_double, [(1,)])
        ex.close()
        ex.close()


class TestMakeExecutor:
    def test_none_is_serial(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert make_executor(None).shards == 1

    def test_one_with_shards_is_chunked(self):
        ex = make_executor(1, shards=4)
        assert isinstance(ex, ChunkedExecutor)
        assert ex.shards == 4

    def test_two_is_process_pool(self):
        ex = make_executor(2)
        assert isinstance(ex, ProcessPoolBuildExecutor)
        assert ex.workers == 2
        ex.close()
