"""Theorem 4.2 / B.1 two-mode routing."""

import pytest

from repro.graphs import WeightedGraph
from repro.routing import TwoModeRouting, evaluate_scheme


@pytest.fixture(scope="module")
def small_scheme(knn_graph64, knn_metric64):
    return TwoModeRouting(knn_graph64, delta=0.2, metric=knn_metric64)


@pytest.fixture(scope="module")
def gap_graph():
    """Path with exponentially growing weights: SP metric = exponential
    line, the scheme's target regime (aspect ratio 2^n)."""
    n = 40
    g = WeightedGraph(n)
    for i in range(n - 1):
        g.add_edge(i, i + 1, 2.0**i)
    return g


@pytest.fixture(scope="module")
def gap_scheme(gap_graph):
    return TwoModeRouting(gap_graph, delta=0.2)


class TestDelivery:
    def test_all_delivered_doubling_graph(self, small_scheme, knn_metric64):
        stats = evaluate_scheme(
            small_scheme, knn_metric64.matrix, sample_pairs=300, seed=4
        )
        assert stats.delivery_rate == 1.0
        assert stats.max_stretch <= 1 + 5 * small_scheme.delta

    def test_all_delivered_gap_graph(self, gap_scheme):
        stats = evaluate_scheme(
            gap_scheme, gap_scheme.metric.matrix, sample_pairs=300, seed=4
        )
        assert stats.delivery_rate == 1.0
        assert stats.max_stretch <= 1 + 5 * gap_scheme.delta

    def test_mode2_engages_on_gap_metric(self, gap_scheme, gap_graph):
        """Lemma B.5's regime: scale gaps force mode M2."""
        switches = sum(
            gap_scheme.route(u, v).mode_switches
            for u in range(0, gap_graph.n, 5)
            for v in range(gap_graph.n)
            if u != v
        )
        assert switches > 0

    def test_self_route(self, small_scheme):
        result = small_scheme.route(8, 8)
        assert result.reached and result.hops == 0

    def test_strict_goodness_still_delivers(self, knn_graph64, knn_metric64):
        """With the literal Appendix-B constants M1 rarely fires but M2
        keeps the scheme correct."""
        scheme = TwoModeRouting(
            knn_graph64, delta=0.2, metric=knn_metric64, strict_goodness=True
        )
        stats = evaluate_scheme(scheme, knn_metric64.matrix, sample_pairs=100, seed=5)
        assert stats.delivery_rate == 1.0


class TestMode2Structure:
    def test_anchor_covers_node(self, small_scheme, knn_metric64):
        """The anchor ball satisfies Lemma A.1's 6 r_ui reach bound."""
        for u in (0, 30, 63):
            for i in range(1, small_scheme._levels_n):
                anchor = small_scheme._anchor[u][i]
                if anchor is None:
                    continue
                _i, b_idx, h = anchor
                ball = small_scheme.scales.packings[i].balls[b_idx]
                reach = knn_metric64.distance(u, h) + ball.radius
                assert reach <= 6.0 * knn_metric64.radius_for_fraction(u, 2.0**-i) + 1e-9

    def test_directory_covers_b_prime(self, small_scheme, knn_metric64):
        """Every node of B' = B(h, r_{h,i-1}) has an owner in the ball."""
        for (i, b_idx), owner in list(small_scheme._m2_owner.items())[:5]:
            ball = small_scheme.scales.packings[i].balls[b_idx]
            h = ball.center
            b_prime = knn_metric64.ball(h, small_scheme.scales.rui(h, i - 1))
            members = set(ball.members)
            for t in b_prime:
                assert int(t) in owner
                assert owner[int(t)] in members

    def test_level1_directory_is_global(self, small_scheme, knn_graph64):
        """At i=1 the stored routes cover every node (the fallback that
        guarantees delivery)."""
        for u in (0, 33):
            anchor = small_scheme._anchor[u][1]
            assert anchor is not None
            owner = small_scheme._m2_owner[(1, anchor[1])]
            assert len(owner) == knn_graph64.n


class TestAccounting:
    def test_table_has_both_modes(self, small_scheme):
        account = small_scheme.table_bits(0)
        assert any(k.startswith("m1_") for k in account.components)
        assert any(k.startswith("m2_") for k in account.components)

    def test_label_has_friends(self, small_scheme):
        account = small_scheme.label_bits(0)
        assert "friends_and_id" in account.components

    def test_rejects_bad_delta(self, knn_graph64, knn_metric64):
        with pytest.raises(ValueError):
            TwoModeRouting(knn_graph64, delta=0.9, metric=knn_metric64)
