"""Scheme comparison reporting helpers."""

import pytest

from repro.routing import RingRouting, TrivialRouting
from repro.routing.stats import HEADER, compare_schemes, format_comparison


class TestCompareSchemes:
    @pytest.fixture(scope="class")
    def comparisons(self, knn_graph64, knn_metric64):
        schemes = {
            "trivial": TrivialRouting(knn_graph64),
            "thm2.1": RingRouting(knn_graph64, delta=0.3, metric=knn_metric64),
        }
        return compare_schemes(schemes, knn_metric64.matrix, sample_pairs=120, seed=0)

    def test_one_row_per_scheme(self, comparisons):
        assert [c.name for c in comparisons] == ["trivial", "thm2.1"]

    def test_trivial_is_exact(self, comparisons):
        trivial = comparisons[0]
        assert trivial.stats.max_stretch == pytest.approx(1.0)

    def test_same_pairs_for_all(self, comparisons):
        assert comparisons[0].stats.pairs == comparisons[1].stats.pairs

    def test_format_contains_header_and_rows(self, comparisons):
        text = format_comparison(comparisons)
        for column in HEADER:
            assert column in text
        assert "trivial" in text and "thm2.1" in text
        assert len(text.splitlines()) == 3
