"""Theorem 2.1 routing scheme."""

import numpy as np
import pytest

from repro.routing import RingRouting, evaluate_scheme


@pytest.fixture(scope="module")
def scheme(knn_graph64):
    return RingRouting(knn_graph64, delta=0.25)


class TestDeliveryAndStretch:
    def test_all_pairs_delivered(self, scheme, knn_metric64):
        stats = evaluate_scheme(scheme, knn_metric64.matrix, sample_pairs=500, seed=1)
        assert stats.delivery_rate == 1.0

    def test_stretch_bound(self, scheme, knn_metric64):
        """Claim 2.5: stretch 1 + O(delta); assert 1 + 4*delta."""
        stats = evaluate_scheme(scheme, knn_metric64.matrix, sample_pairs=500, seed=1)
        assert stats.max_stretch <= 1 + 4 * scheme.delta

    def test_smaller_delta_smaller_stretch(self, knn_graph64, knn_metric64):
        tight = RingRouting(knn_graph64, delta=0.1, metric=knn_metric64)
        loose = RingRouting(knn_graph64, delta=0.45, metric=knn_metric64)
        s_tight = evaluate_scheme(tight, knn_metric64.matrix, sample_pairs=200, seed=2)
        s_loose = evaluate_scheme(loose, knn_metric64.matrix, sample_pairs=200, seed=2)
        assert s_tight.max_stretch <= s_loose.max_stretch + 0.05

    def test_self_route(self, scheme):
        result = scheme.route(9, 9)
        assert result.reached and result.hops == 0

    def test_path_edges_exist(self, scheme, knn_graph64):
        result = scheme.route(0, 50)
        for a, b in zip(result.path, result.path[1:]):
            assert knn_graph64.has_edge(a, b)


class TestStructuralClaims:
    def test_claim_2_3_zooming_membership(self, scheme):
        """f_tj lies in the ring Y_fj of the previous element f."""
        for t in (0, 17, 63):
            zoom = scheme._zoom[t]
            for j in range(1, scheme.levels):
                assert zoom[j] in set(scheme.ring(zoom[j - 1], j))

    def test_level0_rings_coincide(self, scheme, knn_graph64):
        rings = {scheme.ring(u, 0) for u in range(knn_graph64.n)}
        assert len(rings) == 1

    def test_ring_members_in_ball_and_net(self, scheme, knn_metric64):
        for u in (0, 40):
            for j in range(scheme.levels):
                net_set = set(scheme.nets.net(j))
                row = knn_metric64.distances_from(u)
                for v in scheme.ring(u, j):
                    assert v in net_set
                    assert row[v] <= scheme._ring_radius[j] + 1e-9

    def test_decode_matches_direct_indices(self, scheme):
        """Claim 2.2: the translation decode recovers phi_uj(f_tj)."""
        for u, t in [(0, 63), (25, 3)]:
            decoded = scheme._decode(u, scheme.labels[t])
            zoom = scheme._zoom[t]
            for j, m in enumerate(decoded):
                assert scheme.ring(u, j)[m] == zoom[j]

    def test_decode_depth_grows_for_close_pairs(self, scheme, knn_metric64):
        """j_ut >= log(Delta / (delta d)) - ish: closer targets decode deeper."""
        u = 0
        far = int(np.argmax(knn_metric64.distances_from(u)))
        near = knn_metric64.nearest_neighbor(u)
        assert len(scheme._decode(u, scheme.labels[near])) >= len(
            scheme._decode(u, scheme.labels[far])
        )


class TestAccounting:
    def test_header_bits_positive(self, scheme):
        result = scheme.route(0, 1)
        assert result.header_bits > 0

    def test_table_components(self, scheme):
        account = scheme.table_bits(0)
        assert "first_hop_pointers" in account.components
        assert "translation_triples" in account.components

    def test_dense_accounting_larger(self, scheme):
        sparse = scheme.table_bits(0).total_bits
        dense = scheme.table_bits(0, dense_translation=True).total_bits
        assert dense >= sparse

    def test_max_ring_cardinality_bounded(self, scheme, knn_graph64):
        assert scheme.max_ring_cardinality() <= knn_graph64.n

    def test_rejects_bad_delta(self, knn_graph64):
        with pytest.raises(ValueError):
            RingRouting(knn_graph64, delta=0.0)
