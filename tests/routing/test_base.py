"""RouteResult / evaluate_scheme plumbing."""

import numpy as np
import pytest

from repro.graphs import WeightedGraph
from repro.routing import TrivialRouting, evaluate_scheme
from repro.routing.base import RouteResult


@pytest.fixture
def path_graph():
    g = WeightedGraph(4)
    g.add_edge(0, 1, 1.0)
    g.add_edge(1, 2, 2.0)
    g.add_edge(2, 3, 4.0)
    return g


class TestRouteResult:
    def test_hops_and_length(self, path_graph):
        result = RouteResult(source=0, target=3, path=[0, 1, 2, 3], reached=True)
        assert result.hops == 3
        assert result.length(path_graph) == 7.0

    def test_zero_hop(self, path_graph):
        result = RouteResult(source=0, target=0, path=[0], reached=True)
        assert result.hops == 0
        assert result.length(path_graph) == 0.0


class TestEvaluate:
    def test_explicit_pairs(self, path_graph):
        scheme = TrivialRouting(path_graph)
        dist = np.array(
            [
                [0, 1, 3, 7],
                [1, 0, 2, 6],
                [3, 2, 0, 4],
                [7, 6, 4, 0],
            ],
            dtype=float,
        )
        stats = evaluate_scheme(scheme, dist, pairs=[(0, 3), (3, 0)])
        assert stats.pairs == 2
        assert stats.delivery_rate == 1.0
        assert stats.max_stretch == pytest.approx(1.0)

    def test_sampled_pairs_bounded(self, path_graph):
        scheme = TrivialRouting(path_graph)
        dist = scheme.first_hops.dist
        stats = evaluate_scheme(scheme, dist, sample_pairs=5, seed=0)
        assert stats.pairs == 5

    def test_stats_fields(self, path_graph):
        scheme = TrivialRouting(path_graph)
        stats = evaluate_scheme(scheme, scheme.first_hops.dist)
        assert stats.max_hops >= 1
        assert stats.mean_stretch >= 1.0 - 1e-12
        assert stats.max_table_bits == scheme.max_table_bits()
        assert len(stats.stretches) == stats.delivered
