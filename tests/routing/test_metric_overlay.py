"""Routing on metrics (§4.1)."""

import pytest

from repro.metrics import exponential_line, random_hypercube_metric
from repro.routing import MetricRouting, RingRouting, evaluate_scheme
from repro.routing.metric_overlay import overlay_for_metric


@pytest.fixture(scope="module")
def metric48():
    return random_hypercube_metric(48, dim=2, seed=200)


class TestOverlayConstruction:
    def test_net_style_connected(self, metric48):
        overlay = overlay_for_metric(metric48, delta=0.3, style="net")
        assert overlay.is_connected()

    def test_scale_style_connected(self, metric48):
        overlay = overlay_for_metric(metric48, delta=0.3, style="scale")
        assert overlay.is_connected()

    def test_weights_are_metric_distances(self, metric48):
        overlay = overlay_for_metric(metric48, delta=0.3)
        for u, v, w in overlay.edges():
            assert w == pytest.approx(metric48.distance(u, v))

    def test_unknown_style_rejected(self, metric48):
        with pytest.raises(ValueError, match="style"):
            overlay_for_metric(metric48, delta=0.3, style="psychic")

    def test_out_degree_below_n(self, metric48):
        overlay = overlay_for_metric(metric48, delta=0.4, style="net")
        assert overlay.max_out_degree() < metric48.n


class TestMetricRouting:
    @pytest.fixture(scope="class")
    def scheme(self, metric48):
        return MetricRouting(
            metric48,
            delta=0.25,
            scheme_factory=lambda g, d: RingRouting(g, d),
            style="net",
        )

    def test_delivery_and_stretch_vs_metric(self, scheme):
        """Stretch vs the METRIC distance — the overlay path sums the
        virtual-hop distances."""
        stats = evaluate_scheme(scheme, scheme.stretch_matrix(), sample_pairs=300, seed=6)
        assert stats.delivery_rate == 1.0
        assert stats.max_stretch <= 1 + 4 * scheme.delta

    def test_out_degree_reported(self, scheme, metric48):
        assert 0 < scheme.out_degree() < metric48.n

    def test_accounting_passthrough(self, scheme):
        assert scheme.table_bits(0).total_bits > 0
        assert scheme.label_bits(0).total_bits > 0

    def test_exponential_line_overlay(self):
        metric = exponential_line(24)
        scheme = MetricRouting(
            metric, delta=0.25, scheme_factory=lambda g, d: RingRouting(g, d)
        )
        stats = evaluate_scheme(scheme, scheme.stretch_matrix(), sample_pairs=150, seed=7)
        assert stats.delivery_rate == 1.0
        assert stats.max_stretch <= 1 + 4 * scheme.delta
