"""Theorem 4.1 label-based routing."""

import pytest

from repro.routing import LabelRouting, evaluate_scheme


@pytest.fixture(scope="module")
def exact_scheme(knn_graph64, knn_metric64):
    return LabelRouting(knn_graph64, delta=0.3, estimator="exact", metric=knn_metric64)


@pytest.fixture(scope="module")
def tri_scheme(knn_graph64, knn_metric64):
    return LabelRouting(
        knn_graph64, delta=0.3, estimator="triangulation", metric=knn_metric64
    )


class TestDelivery:
    @pytest.mark.parametrize("fixture", ["exact_scheme", "tri_scheme"])
    def test_all_delivered_with_bounded_stretch(
        self, fixture, request, knn_metric64
    ):
        scheme = request.getfixturevalue(fixture)
        stats = evaluate_scheme(scheme, knn_metric64.matrix, sample_pairs=400, seed=3)
        assert stats.delivery_rate == 1.0
        # 1 + O(delta) with the labels' extra (1+delta') estimate slack.
        assert stats.max_stretch <= 1 + 6 * scheme.delta

    def test_self_route(self, exact_scheme):
        result = exact_scheme.route(4, 4)
        assert result.reached and result.hops == 0

    def test_ring_estimator_builds(self, knn_graph64, knn_metric64):
        scheme = LabelRouting(
            knn_graph64, delta=0.3, estimator="ring", metric=knn_metric64
        )
        result = scheme.route(0, 32)
        assert result.reached

    def test_unknown_estimator_rejected(self, knn_graph64, knn_metric64):
        with pytest.raises(ValueError, match="estimator"):
            LabelRouting(knn_graph64, delta=0.3, estimator="psychic", metric=knn_metric64)


class TestNeighbors:
    def test_neighbor_sets_cover_scales(self, exact_scheme, knn_metric64):
        """Every node has some neighbor within distance ~delta*d of any
        target (the theorem's per-pair claim), verified by routing
        progress: the selected intermediate target is near t."""
        for u, t in [(0, 63), (10, 55)]:
            v = exact_scheme._select_intermediate(u, t)
            d = knn_metric64.distance(u, t)
            assert knn_metric64.distance(v, t) <= 1.5 * exact_scheme.delta * d + 1e-9

    def test_neighbors_exclude_self(self, exact_scheme):
        for u in (0, 30):
            assert u not in exact_scheme.neighbors_of(u)

    def test_out_degree_reported(self, exact_scheme, knn_graph64):
        assert 0 < exact_scheme.max_out_degree() < knn_graph64.n


class TestAccounting:
    def test_header_includes_label(self, tri_scheme):
        result = tri_scheme.route(0, 1)
        assert result.header_bits >= tri_scheme._label_payload_bits

    def test_table_dominated_by_labels(self, tri_scheme):
        account = tri_scheme.table_bits(0)
        assert account.components["neighbor_labels"] >= account.components[
            "first_hop_pointers"
        ]

    def test_label_bits(self, tri_scheme):
        account = tri_scheme.label_bits(0)
        assert "distance_label" in account.components
