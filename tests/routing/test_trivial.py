"""Trivial stretch-1 baseline."""

import pytest

from repro.routing import TrivialRouting, evaluate_scheme


@pytest.fixture(scope="module")
def scheme(knn_graph64):
    return TrivialRouting(knn_graph64)


class TestTrivialRouting:
    def test_stretch_exactly_one(self, scheme, knn_metric64):
        stats = evaluate_scheme(scheme, knn_metric64.matrix, sample_pairs=300, seed=0)
        assert stats.delivery_rate == 1.0
        assert stats.max_stretch == pytest.approx(1.0)

    def test_self_route(self, scheme):
        result = scheme.route(5, 5)
        assert result.reached
        assert result.hops == 0

    def test_table_linear_in_n(self, scheme, knn_graph64):
        bits = scheme.table_bits(0).total_bits
        assert bits >= knn_graph64.n  # at least one bit per target

    def test_label_is_id(self, scheme):
        assert scheme.label_bits(0).total_bits == 6  # ceil(log2 64)

    def test_hop_budget_respected(self, scheme):
        result = scheme.route(0, 63, max_hops=1)
        assert not result.reached or result.hops <= 1
