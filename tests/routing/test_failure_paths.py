"""Routing failure handling: hop budgets and graceful non-delivery."""


from repro.graphs import WeightedGraph
from repro.routing import RingRouting, TrivialRouting, evaluate_scheme
from repro.routing.base import RouteResult


class TestHopBudgets:
    def test_ring_routing_respects_budget(self, knn_graph64):
        scheme = RingRouting(knn_graph64, delta=0.3)
        result = scheme.route(0, 63, max_hops=1)
        assert result.hops <= 2  # one forward step past the budget check
        # And failure is reported, not raised.
        assert isinstance(result, RouteResult)

    def test_stats_account_failures(self, knn_graph64):
        scheme = TrivialRouting(knn_graph64)
        # Forcing a 0-hop budget fails every non-trivial pair.
        results = [scheme.route(u, v, max_hops=0) for u, v in [(0, 1), (2, 3)]]
        assert all(not r.reached for r in results)

    def test_failed_route_not_counted_as_delivered(self):
        g = WeightedGraph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)

        class FailingScheme(TrivialRouting):
            def route(self, source, target, max_hops=None):
                return RouteResult(source, target, [source], reached=False)

        scheme = FailingScheme(g)
        stats = evaluate_scheme(scheme, scheme.first_hops.dist, pairs=[(0, 2)])
        assert stats.delivery_rate == 0.0
        assert stats.max_stretch == float("inf")
