"""STRUCTURES (group structures) and the Theorem 5.4 comparison."""

import math

import numpy as np
import pytest

from repro.metrics import uniform_line
from repro.smallworld import GreedyRingsModel, GroupStructuresModel, evaluate_model


@pytest.fixture(scope="module")
def uline64():
    return uniform_line(64)


class TestStructuresModel:
    def test_probabilities_normalized(self, uline64):
        model = GroupStructuresModel(uline64)
        pi = model.contact_probabilities(10)
        assert pi.sum() == pytest.approx(1.0)
        assert pi[10] == 0.0

    def test_probability_decays_with_ball_size(self, uline64):
        """pi_u(v) ~ 1/x_uv: nearer nodes are more likely contacts."""
        model = GroupStructuresModel(uline64)
        pi = model.contact_probabilities(0)
        assert pi[1] > pi[10] > pi[60]

    def test_degree_theta_log_squared(self, uline64):
        model = GroupStructuresModel(uline64)
        assert model.draws_per_node == math.ceil(math.log2(64) ** 2)

    def test_queries_complete(self, uline64):
        model = GroupStructuresModel(uline64)
        stats = evaluate_model(model, sample_queries=200, seed=0)
        assert stats.completion_rate >= 0.98
        assert stats.max_hops <= 4 * math.log2(64)


class TestTheorem54Comparison:
    def test_ring_model_contact_probability_matches_structures(self, uline64):
        """Theorem 5.4(d): Pr[v is a contact of u] = Θ(log n)/x_uv for the
        ring model on UL-constrained metrics.  We check the product
        Pr * x_uv is flat within a constant factor across distances."""
        model = GreedyRingsModel(uline64, c=2)
        u = 32
        trials = 40
        counts = np.zeros(uline64.n)
        for s in range(trials):
            graph = model.sample_contacts(seed=1000 + s)
            for v in graph.contacts[u]:
                counts[v] += 1
        probs = counts / trials
        row = uline64.distances_from(u)
        products = []
        for v in (31, 28, 16, 0):  # geometric range of distances from u
            d = float(row[v])
            x_uv = min(uline64.ball_size(u, d), uline64.ball_size(v, d))
            products.append(max(probs[v], 1.0 / trials) * x_uv)
        # Flat within a generous constant factor (Theta-comparison).
        assert max(products) / min(products) <= 40.0

    def test_hops_comparable_on_ul_metric(self, uline64):
        ring_stats = evaluate_model(
            GreedyRingsModel(uline64, c=2), sample_queries=150, seed=3
        )
        structures_stats = evaluate_model(
            GroupStructuresModel(uline64), sample_queries=150, seed=3
        )
        assert ring_stats.completion_rate == 1.0
        # Both are O(log n); within a small factor of each other.
        assert ring_stats.max_hops <= 3 * max(1, structures_stats.max_hops) + 5
