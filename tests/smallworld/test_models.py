"""Theorem 5.2(a), 5.2(b) and 5.5 models."""

import math

import numpy as np
import pytest

from repro.graphs import grid_graph
from repro.metrics import exponential_line, random_hypercube_metric
from repro.metrics.graphmetric import ShortestPathMetric
from repro.smallworld import (
    GreedyRingsModel,
    PrunedRingsModel,
    SingleLinkModel,
    evaluate_model,
)


@pytest.fixture(scope="module")
def expline64():
    return exponential_line(64)


class TestGreedyRings:
    def test_olog_n_hops_on_exponential_line(self, expline64):
        """Theorem 5.2(a)'s headline: O(log n) hops when Δ = 2^n."""
        model = GreedyRingsModel(expline64, c=2)
        stats = evaluate_model(model, sample_queries=300, seed=0)
        assert stats.completion_rate == 1.0
        assert stats.max_hops <= 3 * math.log2(64)

    def test_olog_n_hops_on_hypercube(self):
        metric = random_hypercube_metric(128, dim=2, seed=11)
        model = GreedyRingsModel(metric, c=2)
        stats = evaluate_model(model, sample_queries=300, seed=1)
        assert stats.completion_rate == 1.0
        assert stats.max_hops <= 3 * math.log2(128)

    def test_contacts_deterministic_per_seed(self, expline64):
        model = GreedyRingsModel(expline64, c=1)
        a = model.sample_contacts(seed=5)
        b = model.sample_contacts(seed=5)
        assert a.contacts == b.contacts

    def test_no_self_contacts(self, expline64):
        model = GreedyRingsModel(expline64, c=1)
        graph = model.sample_contacts(seed=0)
        for u, contacts in enumerate(graph.contacts):
            assert u not in contacts

    def test_sample_counts(self, expline64):
        model = GreedyRingsModel(expline64, c=3)
        assert model.x_samples == math.ceil(3 * math.log2(64))
        assert model.y_samples == math.ceil(2 * 3 * math.log2(64))


class TestPrunedRings:
    def test_completes_on_exponential_line(self, expline64):
        model = PrunedRingsModel(expline64, c=2)
        stats = evaluate_model(model, sample_queries=300, seed=2)
        assert stats.completion_rate >= 0.99
        assert stats.max_hops <= 4 * math.log2(64)

    def test_nongreedy_step_sideways(self, expline64):
        """Step (**): with no contact within d/4 of the target, the hop
        maximizes d_uc subject to d_uc <= d_ut."""
        model = PrunedRingsModel(expline64, c=2)
        contacts = [10, 11, 12]
        d_uc = np.array([1.0, 5.0, 50.0])
        d_ct = np.array([30.0, 30.0, 30.0])  # nobody within d/4 = 10
        hop = model.next_hop(0, 40.0, contacts, d_uc, d_ct)
        assert hop == 11  # 50 > d_ut=40 excluded; 5 is the farthest <= 40

    def test_greedy_step_when_close_contact(self, expline64):
        model = PrunedRingsModel(expline64, c=2)
        contacts = [10, 11]
        d_uc = np.array([1.0, 2.0])
        d_ct = np.array([9.0, 2.0])  # 2 <= d/4 = 10
        assert model.next_hop(0, 40.0, contacts, d_uc, d_ct) == 11

    def test_rho_sequence_grows(self, expline64):
        model = PrunedRingsModel(expline64)
        rhos = [model._rho(j) for j in range(5)]
        assert all(a < b for a, b in zip(rhos, rhos[1:]))

    def test_pruned_y_scales_sandwiched(self, expline64):
        model = PrunedRingsModel(expline64)
        for u in (0, 32):
            for i in (1, 3):
                r_ui = expline64.rui(u, i)
                r_up = expline64.rui(u, i + 1)
                r_down = expline64.rui(u, i - 1)
                for j in model._y_scale_indices(u, i):
                    assert r_up < r_ui * 2.0**j < r_down


class TestDegreeComparison:
    def test_pruned_degree_not_larger(self):
        """The 5.2(b) pruning should not increase the ring out-degree
        budget on metrics with many distance scales relative to n."""
        metric = exponential_line(96)
        greedy = GreedyRingsModel(metric, c=1, alpha_factor=1.0)
        pruned = PrunedRingsModel(metric, c=1, alpha_factor=1.0)
        g_deg = greedy.sample_contacts(seed=3).mean_out_degree()
        p_deg = pruned.sample_contacts(seed=3).mean_out_degree()
        assert p_deg <= g_deg * 1.25


class TestSingleLink:
    @pytest.fixture(scope="class")
    def setup(self):
        graph = grid_graph(8)
        metric = ShortestPathMetric(graph)
        return graph, metric

    def test_completes_with_polylog_delta_hops(self, setup):
        graph, metric = setup
        model = SingleLinkModel(metric, graph)
        stats = evaluate_model(model, sample_queries=200, seed=4)
        assert stats.completion_rate == 1.0
        # 2^O(alpha) log^2 Delta with Delta = 14: generous constant.
        log_delta = math.log2(metric.aspect_ratio())
        assert stats.max_hops <= 8 * log_delta**2

    def test_exactly_one_long_link(self, setup):
        graph, metric = setup
        model = SingleLinkModel(metric, graph)
        contacts = model.sample_contacts(seed=5)
        for u in range(graph.n):
            local = {v for v, _ in graph.neighbors(u)}
            extra = set(contacts.contacts[u]) - local
            assert len(extra) <= 1

    def test_node_count_mismatch_rejected(self, setup):
        graph, metric = setup
        other = grid_graph(3)
        with pytest.raises(ValueError):
            SingleLinkModel(metric, other)
