"""Kleinberg 2-D grid baseline [30]."""

import pytest

from repro.smallworld import KleinbergGridModel, evaluate_model


class TestKleinbergGrid:
    def test_lattice_contacts_present(self):
        model = KleinbergGridModel(5, exponent=2.0)
        graph = model.sample_contacts(seed=0)
        # Interior node 12 = (2,2) has 4 lattice neighbors.
        interior = 2 * 5 + 2
        lattice = {interior - 5, interior + 5, interior - 1, interior + 1}
        assert lattice <= set(graph.contacts[interior])

    def test_critical_exponent_routes_fast(self):
        model = KleinbergGridModel(10, exponent=2.0, q=1)
        stats = evaluate_model(model, sample_queries=200, seed=1)
        assert stats.completion_rate == 1.0
        assert stats.max_hops <= 40  # O(log^2 n) with small constants

    def test_wrong_exponent_slower(self):
        """One side of Kleinberg's phase transition that already shows at
        laptop scale: r=4 long links are too local to provide shortcuts,
        so greedy needs more hops than at the critical r=2.  (The r=0 side
        of the transition only separates at much larger grids; the
        benchmark sweep covers the full curve.)"""
        fast = evaluate_model(
            KleinbergGridModel(12, exponent=2.0, q=1), sample_queries=300, seed=2
        )
        slow = evaluate_model(
            KleinbergGridModel(12, exponent=4.0, q=1), sample_queries=300, seed=2
        )
        assert fast.mean_hops < slow.mean_hops

    def test_manhattan_metric(self):
        model = KleinbergGridModel(4)
        # (0,0) to (3,3) has lattice distance 6.
        assert model.metric.distance(0, 15) == pytest.approx(6.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            KleinbergGridModel(1)
        with pytest.raises(ValueError):
            KleinbergGridModel(5, q=0)
