"""Lookahead (NoN) routing baseline."""

import pytest

from repro.metrics import exponential_line, uniform_line
from repro.smallworld import GreedyRingsModel, route_query, route_query_lookahead
from repro.smallworld.base import ContactGraph


class TestLookahead:
    @pytest.fixture(scope="class")
    def setup(self):
        metric = uniform_line(64)
        model = GreedyRingsModel(metric, c=1.0, alpha_factor=1.0)
        graph = model.sample_contacts(seed=0)
        return metric, model, graph

    def test_reaches_target(self, setup):
        _m, model, graph = setup
        for s, t in [(0, 63), (5, 40), (62, 1)]:
            result = route_query_lookahead(model, graph, s, t)
            assert result.reached

    def test_self_query(self, setup):
        _m, model, graph = setup
        result = route_query_lookahead(model, graph, 7, 7)
        assert result.reached and result.hops == 0

    def test_path_follows_contacts(self, setup):
        _m, model, graph = setup
        result = route_query_lookahead(model, graph, 0, 50)
        for a, b in zip(result.path, result.path[1:]):
            assert b in graph.contacts[a]

    def test_never_worse_than_greedy_on_sparse_contacts(self):
        """With sparse contacts, one level of lookahead finds shortcuts
        plain greedy misses (mean hops not larger)."""
        metric = exponential_line(96, base=1.7)
        model = GreedyRingsModel(metric, c=0.5, alpha_factor=0.5)
        graph = model.sample_contacts(seed=1)
        greedy_hops, look_hops = [], []
        for s in range(0, 96, 7):
            for t in range(3, 96, 11):
                if s == t:
                    continue
                g = route_query(model, graph, s, t)
                l = route_query_lookahead(model, graph, s, t)
                if g.reached and l.reached:
                    greedy_hops.append(g.hops)
                    look_hops.append(l.hops)
        assert look_hops, "no common completions"
        assert sum(look_hops) <= sum(greedy_hops) * 1.05

    def test_handles_empty_contacts(self, setup):
        metric, model, _graph = setup
        empty = ContactGraph(contacts=[() for _ in range(metric.n)])
        result = route_query_lookahead(model, empty, 0, 5)
        assert not result.reached
