"""Small-world driver and contact graph plumbing."""

import pytest

from repro.metrics import uniform_line
from repro.smallworld import (
    ContactGraph,
    GreedyRingsModel,
    evaluate_model,
    route_query,
)


class TestContactGraph:
    def test_degrees(self):
        g = ContactGraph(contacts=[(1, 2), (0,), ()])
        assert g.out_degree(0) == 2
        assert g.max_out_degree() == 2
        assert g.mean_out_degree() == pytest.approx(1.0)


class TestRouteQuery:
    @pytest.fixture(scope="class")
    def setup(self):
        metric = uniform_line(16)
        model = GreedyRingsModel(metric, c=2)
        graph = model.sample_contacts(seed=0)
        return metric, model, graph

    def test_reaches_target(self, setup):
        _m, model, graph = setup
        result = route_query(model, graph, 0, 15)
        assert result.reached
        assert result.path[0] == 0 and result.path[-1] == 15

    def test_self_query(self, setup):
        _m, model, graph = setup
        result = route_query(model, graph, 4, 4)
        assert result.reached and result.hops == 0

    def test_hop_budget(self, setup):
        _m, model, graph = setup
        result = route_query(model, graph, 0, 15, max_hops=0)
        assert not result.reached or result.hops == 0

    def test_path_follows_contacts(self, setup):
        _m, model, graph = setup
        result = route_query(model, graph, 1, 14)
        for a, b in zip(result.path, result.path[1:]):
            assert b in graph.contacts[a]

    def test_greedy_monotone_progress(self, setup):
        metric, model, graph = setup
        result = route_query(model, graph, 0, 15)
        dists = [metric.distance(x, 15) for x in result.path]
        assert all(a > b for a, b in zip(dists, dists[1:]))


class TestEvaluate:
    def test_stats_consistent(self):
        metric = uniform_line(20)
        model = GreedyRingsModel(metric, c=2)
        stats = evaluate_model(model, sample_queries=50, seed=1)
        assert stats.completed <= stats.queries
        assert stats.completion_rate == stats.completed / stats.queries
        assert len(stats.hop_counts) == stats.completed

    def test_explicit_queries(self):
        metric = uniform_line(10)
        model = GreedyRingsModel(metric, c=2)
        graph = model.sample_contacts(seed=2)
        stats = evaluate_model(model, graph=graph, queries=[(0, 9), (9, 0)])
        assert stats.queries == 2
