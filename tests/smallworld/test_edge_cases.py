"""Small-world edge cases and cross-model consistency."""

import numpy as np
import pytest

from repro.metrics import uniform_line
from repro.smallworld import (
    ContactGraph,
    GreedyRingsModel,
    GroupStructuresModel,
    PrunedRingsModel,
    evaluate_model,
    route_query,
)


class TestEdgeCases:
    def test_query_to_nearest_neighbor(self):
        metric = uniform_line(32)
        model = GreedyRingsModel(metric, c=2)
        graph = model.sample_contacts(seed=0)
        for u in (0, 15, 31):
            t = metric.nearest_neighbor(u)
            result = route_query(model, graph, u, t)
            assert result.reached
            assert result.hops <= 3

    def test_empty_contact_graph_stalls_gracefully(self):
        metric = uniform_line(8)
        model = GreedyRingsModel(metric, c=1)
        empty = ContactGraph(contacts=[() for _ in range(8)])
        result = route_query(model, empty, 0, 7)
        assert not result.reached
        assert result.path == [0]

    def test_two_node_metric(self):
        metric = uniform_line(2)
        for model in (
            GreedyRingsModel(metric, c=1),
            PrunedRingsModel(metric, c=1),
            GroupStructuresModel(metric),
        ):
            graph = model.sample_contacts(seed=1)
            result = route_query(model, graph, 0, 1)
            assert result.reached
            assert result.hops == 1

    def test_contact_sampling_independent_of_query_order(self):
        metric = uniform_line(24)
        model = GreedyRingsModel(metric, c=2)
        graph = model.sample_contacts(seed=9)
        a = route_query(model, graph, 0, 23)
        _b = route_query(model, graph, 5, 9)
        c = route_query(model, graph, 0, 23)
        assert a.path == c.path

    def test_evaluate_with_zero_completions(self):
        metric = uniform_line(8)
        model = GreedyRingsModel(metric, c=1)
        empty = ContactGraph(contacts=[() for _ in range(8)])
        stats = evaluate_model(model, graph=empty, queries=[(0, 7)])
        assert stats.completed == 0
        assert stats.mean_hops == float("inf")
        assert stats.max_hops == 0


class TestDegreeBudgets:
    def test_sample_budget_formulas(self):
        """Out-degree budgets (before dedup) follow the paper's formulas."""
        metric = uniform_line(64)
        greedy = GreedyRingsModel(metric, c=3, alpha_factor=2.0)
        # X: L_n rings * c log n samples; Y: log-Delta rings * 2c alpha log n.
        assert greedy.x_samples == 18  # ceil(3 * 6)
        assert greedy.y_samples == 36  # ceil(2 * 3 * 6)

    def test_pruned_x_param(self):
        metric = uniform_line(64)
        pruned = PrunedRingsModel(metric, c=1)
        assert pruned.x_param == pytest.approx(
            np.sqrt(np.log2(metric.aspect_ratio()))
        )
