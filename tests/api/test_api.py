"""The unified facade: registries, configs, caching, round trips."""

from __future__ import annotations

import dataclasses

import pytest

from repro import api
from repro.api.workloads import WorkloadInstance
from repro.bits import SizeAccount
from repro.metrics import uniform_line

N = 25  # a perfect square, so grid-style workloads keep exactly n nodes
SEED = 11


@pytest.fixture(scope="module")
def cache():
    """One shared cache for the whole module (exercises reuse)."""
    return api.BuildCache()


class TestRegistry:
    def test_enough_workloads_and_schemes(self):
        assert len(api.workload_names()) >= 5
        assert len(api.scheme_names()) >= 8

    def test_unknown_scheme_lists_valid_keys(self):
        with pytest.raises(KeyError) as err:
            api.build("not-a-scheme", workload="uline", n=N)
        message = str(err.value)
        assert "not-a-scheme" in message
        for name in api.scheme_names():
            assert name in message

    def test_unknown_workload_lists_valid_keys(self):
        with pytest.raises(KeyError) as err:
            api.build_workload("not-a-workload", n=N)
        message = str(err.value)
        assert "not-a-workload" in message
        for name in api.workload_names():
            assert name in message

    def test_unknown_workload_parameter(self):
        with pytest.raises(ValueError, match="frobnicate"):
            api.build_workload("uline", n=N, frobnicate=3)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            api.register_workload("uline")(lambda n, seed=0: uniform_line(n))


class TestConfigs:
    @pytest.mark.parametrize("name", api.scheme_names())
    def test_default_config_round_trips(self, name):
        config_cls = api.SCHEMES.get(name).obj.config_cls
        config = config_cls()
        assert config_cls.from_dict(config.to_dict()) == config

    def test_unknown_key_lists_valid_options(self):
        with pytest.raises(ValueError) as err:
            api.TriangulationConfig.from_dict({"delta": 0.3, "bogus": 1})
        assert "bogus" in str(err.value)
        assert "delta" in str(err.value)

    def test_validation_rejects_bad_delta(self):
        with pytest.raises(ValueError, match="delta"):
            api.TriangulationConfig(delta=0.7)
        with pytest.raises(ValueError, match="beta"):
            api.MeridianConfig(beta=2.0)

    def test_configs_are_frozen(self):
        config = api.RoutingConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.delta = 0.1

    def test_workload_spec_round_trips(self):
        spec = api.Workload.make("expline", n=32, seed=None, base=1.7)
        assert api.Workload.from_dict(spec.to_dict()) == spec


class TestRoundTrip:
    """Every registered scheme builds and answers on every workload."""

    @pytest.mark.parametrize("workload", api.workload_names())
    @pytest.mark.parametrize("scheme", api.scheme_names())
    def test_build_query_stats_size(self, scheme, workload, cache):
        fitted = api.build(scheme, workload=workload, n=N, seed=SEED, cache=cache)
        assert isinstance(fitted.workload, WorkloadInstance)

        result = fitted.query(0, N - 1)
        assert result is not None
        if isinstance(result, float):
            assert result >= 0

        stats = fitted.stats(samples=10, seed=SEED)
        assert isinstance(stats, dict) and stats

        account = fitted.size_account()
        assert isinstance(account, SizeAccount)
        assert account.total_bits > 0

    def test_protocol_conformance(self):
        fitted = api.build("triangulation", workload="uline", n=N)
        assert isinstance(fitted, api.Scheme)


class TestCaching:
    def test_two_schemes_share_one_generator_invocation(self):
        calls = {"count": 0}

        @api.register_workload("counting-workload", summary="test-only")
        def _counting(n, seed=0):
            calls["count"] += 1
            return uniform_line(n)

        try:
            cache = api.BuildCache()
            api.build("triangulation", workload="counting-workload", n=N,
                      seed=0, cache=cache)
            api.build("labels", workload="counting-workload", n=N,
                      seed=0, cache=cache)
            assert calls["count"] == 1
            assert cache.info()["hits"] == 1

            # A different seed is a different instance.
            api.build("triangulation", workload="counting-workload", n=N,
                      seed=1, cache=cache)
            assert calls["count"] == 2
        finally:
            api.WORKLOADS.unregister("counting-workload")

    def test_scale_structure_shared_across_schemes(self):
        cache = api.BuildCache()
        tri = api.build("triangulation", workload="uline", n=N, seed=0,
                        delta=0.3, cache=cache)
        dls = api.build("labels", workload="uline", n=N, seed=0,
                        delta=0.3, cache=cache)
        assert tri.workload is dls.workload
        assert tri.inner.scales is dls.inner.scales

    def test_explicit_default_param_shares_cache_entry(self):
        cache = api.BuildCache()
        implicit = api.build_workload("hypercube", n=N, seed=0, cache=cache)
        explicit = api.build_workload("hypercube", n=N, seed=0, dim=2, cache=cache)
        assert implicit is explicit

    def test_cache_is_bounded(self):
        cache = api.BuildCache(maxsize=2)
        for n in (8, 9, 10, 11):
            api.build_workload("uline", n=n, cache=cache)
        assert cache.info()["entries"] == 2

    def test_default_cache_hit(self):
        api.clear_cache()
        api.build_workload("uline", n=N, seed=0)
        api.build_workload("uline", n=N, seed=0)
        info = api.cache_info()
        assert info["entries"] == 1 and info["hits"] == 1


class TestDeterminism:
    @pytest.mark.parametrize("scheme", ["beacons", "sw-5.2a", "meridian"])
    def test_same_seed_same_stats(self, scheme):
        first = api.build(scheme, workload="hypercube", n=N, seed=7)
        second = api.build(scheme, workload="hypercube", n=N, seed=7)
        assert first.stats(samples=20, seed=3) == second.stats(samples=20, seed=3)


class TestBuildArguments:
    def test_ambiguous_parameter_rejected(self):
        # 'k' is both the knn-graph degree and the oracle's level count.
        with pytest.raises(ValueError, match="ambiguous"):
            api.build("tz-oracle", workload="knn-graph", n=N, k=3)

    def test_ambiguity_resolved_explicitly(self):
        fitted = api.build(
            "tz-oracle", workload="knn-graph", n=N, seed=0,
            workload_params={"k": 3}, config={"k": 2},
        )
        assert fitted.inner.k == 2
        assert fitted.config.k == 2

    def test_config_and_keywords_conflict(self):
        with pytest.raises(ValueError, match="config="):
            api.build("triangulation", workload="uline", n=N,
                      config={"delta": 0.2}, delta=0.3)
