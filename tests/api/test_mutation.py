"""The MutableScheme extension of the api surface.

Covers the update facade (`api.update` / `api.supports_update`), the
UpdateReceipt value object, the registry's `supports_update` metadata,
the typed UnsupportedUpdate error for static schemes, and the BuildCache
staleness regression: a cached workload instance whose revision moved
(because a scheme built on it was mutated) must never be served again.
"""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.api.mutation import MutableScheme, UnsupportedUpdate, UpdateReceipt

MUTABLE = ("triangulation", "beacons", "route-thm2.1")


@pytest.fixture()
def tri():
    api.clear_cache()
    return api.build("triangulation", workload="hypercube", n=40, seed=0)


class TestSupportsUpdate:
    def test_by_name_and_instance(self, tri):
        for name in MUTABLE:
            assert api.supports_update(name)
        assert not api.supports_update("labels")
        assert not api.supports_update("tz-oracle")
        assert api.supports_update(tri)
        assert isinstance(tri, MutableScheme)

    def test_registry_metadata_flag(self):
        for name, entry in api.SCHEMES.items():
            expected = name in MUTABLE
            assert bool(entry.meta.get("supports_update")) is expected, name

    def test_describe_tags_mutable_schemes(self):
        text = api.describe()
        tagged = [
            line for line in text.splitlines() if "[+update]" in line
        ]
        assert len(tagged) == len(MUTABLE)

    def test_unknown_scheme_name_raises(self):
        with pytest.raises(KeyError):
            api.supports_update("definitely-not-a-scheme")


class TestUpdateFacade:
    def test_update_returns_receipt(self, tri):
        receipt = api.update(tri, leaves=[3, 7])
        assert isinstance(receipt, UpdateReceipt)
        assert receipt.scheme == "triangulation"
        assert receipt.leaves == (3, 7)
        assert receipt.joins == ()
        assert receipt.revision == 1
        assert receipt.active_nodes == 38
        assert receipt.update_s >= 0.0

    def test_receipt_json_roundtrip(self, tri):
        receipt = api.update(tri, leaves=[1])
        data = json.loads(json.dumps(receipt.to_dict()))
        again = UpdateReceipt.from_dict(data)
        assert again == receipt

    def test_static_scheme_raises_typed_error(self):
        api.clear_cache()
        labels = api.build("labels", workload="hypercube", n=24, seed=0)
        with pytest.raises(UnsupportedUpdate) as err:
            api.update(labels, leaves=[0])
        # the error is typed (not AttributeError) and names the schemes
        # that do support updates
        assert not isinstance(err.value, AttributeError)
        assert isinstance(err.value, TypeError)
        for name in MUTABLE:
            assert name in str(err.value)
        with pytest.raises(UnsupportedUpdate):
            labels.update(leaves=[0])
        with pytest.raises(UnsupportedUpdate):
            labels.compact()

    def test_metric_overlay_routing_unsupported(self):
        # route-thm2.1 on a *metric* workload routes over a §4.1 overlay,
        # which has no incremental path: typed error, not a crash.
        api.clear_cache()
        fitted = api.build("route-thm2.1", workload="hypercube", n=24, seed=0)
        with pytest.raises(UnsupportedUpdate):
            fitted.update(leaves=[1])

    def test_compact_returns_stats(self, tri):
        api.update(tri, leaves=[5])
        stats = tri.compact()
        assert stats.pending_leaves == 0
        assert tri.pending_patch_stats().dirty_rows == 0


class TestBuildCacheStaleness:
    def test_mutation_evicts_cached_workload(self):
        api.clear_cache()
        before = api.cache_info()["invalidations"]
        tri = api.build("triangulation", workload="hypercube", n=32, seed=0)
        api.update(tri, leaves=[2])
        assert tri.workload.revision == 1
        again = api.build("triangulation", workload="hypercube", n=32, seed=0)
        # the rebuilt scheme must come from a fresh (pristine) workload
        # instance, not the mutated cached one
        assert again.workload is not tri.workload
        assert again.workload.revision == 0
        assert api.cache_info()["invalidations"] == before + 1
        # and the fresh instance serves the full universe again
        assert again.inner.estimate(2, 5) >= 0.0

    def test_compact_also_bumps_revision(self):
        api.clear_cache()
        tri = api.build("triangulation", workload="hypercube", n=32, seed=0)
        api.update(tri, leaves=[4])
        rev = tri.workload.revision
        tri.compact()
        assert tri.workload.revision > rev

    def test_clean_cache_still_hits(self):
        api.clear_cache()
        a = api.build("triangulation", workload="hypercube", n=32, seed=0)
        b = api.build("beacons", workload="hypercube", n=32, seed=0)
        assert a.workload is b.workload  # untouched instance is shared
