"""EuclideanMetric under different l_p norms."""

import numpy as np
import pytest

from repro.metrics import EuclideanMetric


@pytest.fixture
def square():
    """Unit square corners."""
    return np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])


class TestNorms:
    def test_l2(self, square):
        m = EuclideanMetric(square, p=2.0)
        assert m.distance(0, 3) == pytest.approx(np.sqrt(2))
        assert m.distance(0, 1) == pytest.approx(1.0)

    def test_l1(self, square):
        m = EuclideanMetric(square, p=1.0)
        assert m.distance(0, 3) == pytest.approx(2.0)

    def test_linf(self, square):
        m = EuclideanMetric(square, p=np.inf)
        assert m.distance(0, 3) == pytest.approx(1.0)

    def test_lp_general(self, square):
        m = EuclideanMetric(square, p=3.0)
        assert m.distance(0, 3) == pytest.approx(2.0 ** (1.0 / 3.0))

    def test_rejects_p_below_one(self, square):
        with pytest.raises(ValueError, match="p >= 1"):
            EuclideanMetric(square, p=0.5)


class TestShape:
    def test_1d_input_promoted(self):
        m = EuclideanMetric(np.array([0.0, 3.0, 7.0]))
        assert m.dim == 1
        assert m.distance(0, 2) == 7.0

    def test_rejects_3d_input(self):
        with pytest.raises(ValueError, match=r"\(n, k\)"):
            EuclideanMetric(np.zeros((2, 2, 2)))

    def test_n_and_dim(self, square):
        m = EuclideanMetric(square)
        assert m.n == 4
        assert m.dim == 2

    def test_row_self_distance_zero(self, square):
        m = EuclideanMetric(square)
        for u in m.nodes():
            assert m.distances_from(u)[u] == 0.0

    def test_rows_are_cached(self, square):
        m = EuclideanMetric(square)
        assert m.distances_from(1) is m.distances_from(1)

    def test_symmetry(self, square):
        m = EuclideanMetric(square)
        for u, v in m.pairs():
            assert m.distance(u, v) == pytest.approx(m.distance(v, u))
