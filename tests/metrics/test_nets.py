"""r-nets and nested hierarchies (paper §1.1, Lemma 1.4)."""

import pytest

from repro.metrics import NestedNets, greedy_net, uniform_line
from repro.metrics.nets import is_r_net


class TestGreedyNet:
    def test_is_valid_net(self, hypercube32):
        for r in (0.1, 0.3, 0.8):
            net = greedy_net(hypercube32, r)
            assert is_r_net(hypercube32, net, r)

    def test_tiny_radius_takes_all(self, hypercube32):
        r = hypercube32.min_distance()
        net = greedy_net(hypercube32, r)
        assert len(net) == hypercube32.n

    def test_huge_radius_single_point(self, hypercube32):
        net = greedy_net(hypercube32, 100.0)
        assert len(net) == 1

    def test_seeded_net_keeps_seeds(self, hypercube32):
        coarse = greedy_net(hypercube32, 0.8)
        fine = greedy_net(hypercube32, 0.2, seed_points=coarse)
        assert set(coarse) <= set(fine)
        assert is_r_net(hypercube32, fine, 0.2)

    def test_deterministic(self, hypercube32):
        assert greedy_net(hypercube32, 0.25) == greedy_net(hypercube32, 0.25)

    def test_line_net_spacing(self):
        m = uniform_line(10)
        net = greedy_net(m, 2.0)
        positions = sorted(net)
        for a, b in zip(positions, positions[1:]):
            assert m.distance(a, b) >= 2.0


class TestNestedNets:
    @pytest.fixture(scope="class")
    def nets(self, hypercube32):
        return NestedNets(
            hypercube32, levels=6, base_radius=hypercube32.min_distance()
        )

    def test_each_level_is_net(self, nets, hypercube32):
        for j in range(nets.levels):
            assert is_r_net(hypercube32, nets.net(j), nets.radius_of(j))

    def test_nesting(self, nets):
        for j in range(nets.levels - 1):
            assert set(nets.net(j + 1)) <= set(nets.net(j))

    def test_level_zero_contains_all(self, nets, hypercube32):
        """G_0 has radius = min distance, so every node qualifies."""
        assert len(nets.net(0)) == hypercube32.n

    def test_descending_convention(self, hypercube32):
        nets = NestedNets(
            hypercube32, levels=5, base_radius=hypercube32.diameter(), descending=True
        )
        for j in range(4):
            assert nets.radius_of(j) > nets.radius_of(j + 1)
            assert set(nets.net(j)) <= set(nets.net(j + 1))
        for j in range(5):
            assert is_r_net(hypercube32, nets.net(j), nets.radius_of(j))

    def test_members_in_ball(self, nets, hypercube32):
        u = 3
        members = nets.members_in_ball(2, u, 0.5)
        row = hypercube32.distances_from(u)
        assert all(row[v] <= 0.5 for v in members)
        net_set = set(nets.net(2))
        assert all(int(v) in net_set for v in members)

    def test_nearest_member_within_radius(self, nets, hypercube32):
        for j in range(nets.levels):
            for u in (0, 11, 31):
                m = nets.nearest_member(j, u)
                assert hypercube32.distance(u, m) <= nets.radius_of(j)

    def test_lemma_1_4_cardinality_bound(self, nets, hypercube32):
        """|net ∩ B(u, r')| <= (4 r'/r)^alpha for a generous alpha."""
        alpha = 4.0  # generous for a 2-d point set
        for j in range(1, nets.levels):
            r = nets.radius_of(j)
            for u in (0, 15):
                for mult in (1.0, 2.0, 4.0):
                    count = len(nets.members_in_ball(j, u, mult * r))
                    assert count <= (4 * mult) ** alpha + 1

    def test_bad_level_raises(self, nets):
        with pytest.raises(KeyError):
            nets.net(99)

    def test_rejects_zero_levels(self, hypercube32):
        with pytest.raises(ValueError):
            NestedNets(hypercube32, levels=0)

    def test_len(self, nets):
        assert len(nets) == 6
