"""MetricSpace derived queries (balls, r_u radii, global shape)."""

import numpy as np
import pytest

from repro.metrics import DistanceMatrixMetric, EuclideanMetric, uniform_line


@pytest.fixture(scope="module")
def line5():
    return uniform_line(5)  # points at 0, 1, 2, 3, 4


class TestBalls:
    def test_closed_ball_includes_boundary(self, line5):
        assert set(line5.ball(0, 2.0)) == {0, 1, 2}

    def test_open_ball_excludes_boundary(self, line5):
        assert set(line5.ball(0, 2.0, open_ball=True)) == {0, 1}

    def test_ball_always_contains_center(self, line5):
        for u in line5.nodes():
            assert u in line5.ball(u, 0.0)

    def test_ball_size_matches_ball(self, line5):
        for u in line5.nodes():
            for r in (0.0, 0.5, 1.0, 2.5, 10.0):
                assert line5.ball_size(u, r) == len(line5.ball(u, r))

    def test_open_ball_size_matches(self, line5):
        for u in line5.nodes():
            for r in (0.5, 1.0, 2.0):
                assert line5.ball_size(u, r, open_ball=True) == len(
                    line5.ball(u, r, open_ball=True)
                )

    def test_ball_monotone_in_radius(self, hypercube32):
        u = 7
        sizes = [hypercube32.ball_size(u, r) for r in np.linspace(0, 2, 20)]
        assert sizes == sorted(sizes)


class TestRadii:
    def test_radius_for_count_one_is_zero(self, line5):
        assert line5.radius_for_count(0, 1) == 0.0

    def test_radius_for_count_full(self, line5):
        assert line5.radius_for_count(0, 5) == 4.0
        assert line5.radius_for_count(2, 5) == 2.0

    def test_radius_is_smallest(self, hypercube32):
        for u in (0, 5, 17):
            for k in (2, 8, 16):
                r = hypercube32.radius_for_count(u, k)
                assert hypercube32.ball_size(u, r) >= k
                assert hypercube32.ball_size(u, r, open_ball=True) < k

    def test_radius_for_count_clamps(self, line5):
        assert line5.radius_for_count(0, 0) == 0.0
        assert line5.radius_for_count(0, 99) == 4.0

    def test_rui_zero_covers_everything(self, hypercube32):
        for u in (0, 9):
            r = hypercube32.rui(u, 0)
            assert hypercube32.ball_size(u, r) == hypercube32.n

    def test_rui_decreasing_in_i(self, hypercube32):
        for u in (3, 21):
            radii = [hypercube32.rui(u, i) for i in range(6)]
            assert all(radii[i] >= radii[i + 1] for i in range(5))

    def test_radius_for_fraction_matches_rui(self, hypercube32):
        for u in (2, 30):
            for i in (0, 2, 4):
                assert hypercube32.radius_for_fraction(
                    u, 2.0**-i
                ) == pytest.approx(hypercube32.rui(u, i))


class TestGlobalShape:
    def test_diameter_and_min_distance(self, line5):
        assert line5.diameter() == 4.0
        assert line5.min_distance() == 1.0
        assert line5.aspect_ratio() == 4.0

    def test_log_aspect_ratio(self, line5):
        assert line5.log_aspect_ratio() == 2

    def test_aspect_ratio_rejects_duplicates(self):
        metric = EuclideanMetric(np.array([[0.0], [0.0], [1.0]]))
        with pytest.raises(ValueError):
            metric.aspect_ratio()

    def test_nearest_neighbor(self, line5):
        assert line5.nearest_neighbor(0) == 1
        assert line5.nearest_neighbor(4) == 3

    def test_pairs_count(self, line5):
        assert len(list(line5.pairs())) == 10

    def test_validate_passes(self, hypercube32):
        hypercube32.validate()

    def test_len(self, line5):
        assert len(line5) == 5


class TestValidation:
    def test_validate_catches_triangle_violation(self):
        bad = np.array(
            [
                [0.0, 1.0, 10.0],
                [1.0, 0.0, 1.0],
                [10.0, 1.0, 0.0],
            ]
        )
        metric = DistanceMatrixMetric(bad)
        with pytest.raises(ValueError, match="triangle"):
            metric.validate(samples=500)
