"""The lazy shortest-path backend matches the dense matrix row-for-row.

``dense=False`` must be a pure memory/scheduling decision: every query
answers with exactly the floats the dense APSP matrix holds, even when
the row cache is squeezed to a single resident row — and the full matrix
must never be materialized.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graphs.generators import knn_geometric_graph
from repro.graphs.shortest_paths import FirstHopTable
from repro.metrics.graphmetric import ShortestPathMetric


@pytest.fixture(scope="module")
def graph():
    return knn_geometric_graph(60, k=4, seed=9)


@pytest.fixture(scope="module")
def dense(graph):
    return ShortestPathMetric(graph, dense=True)


@pytest.fixture(scope="module")
def lazy(graph):
    # One row is 480 bytes; this budget keeps at most one resident row,
    # so every access pattern below survives constant eviction.
    return ShortestPathMetric(graph, dense=False, row_cache_bytes=500)


class TestLazyBackend:
    def test_rows_match_bit_for_bit(self, dense, lazy):
        for u in range(dense.n):
            assert np.array_equal(lazy.distances_from(u), dense.matrix[u])

    def test_distances_between_matches(self, dense, lazy):
        rng = np.random.default_rng(0)
        us = rng.integers(0, dense.n, size=17)
        vs = rng.integers(0, dense.n, size=5)
        # vs smaller than us: exercises the symmetric (transposed) path.
        assert np.array_equal(
            lazy.distances_between(us, vs), dense.distances_between(us, vs)
        )
        assert np.array_equal(
            lazy.distances_between(vs, us), dense.distances_between(vs, us)
        )

    def test_pairwise_matches(self, dense, lazy):
        rng = np.random.default_rng(1)
        pairs = rng.integers(0, dense.n, size=(40, 2))
        assert np.array_equal(lazy.pairwise(pairs), dense.pairwise(pairs))

    def test_sorted_row_queries_match(self, dense, lazy):
        for u in (0, 7, 31):
            for eps in (0.1, 0.5, 1.0):
                assert lazy.radius_for_fraction(u, eps) == pytest.approx(
                    dense.radius_for_fraction(u, eps), abs=0
                )
            assert lazy.ball_size(u, dense.diameter() / 3) == dense.ball_size(
                u, dense.diameter() / 3
            )

    def test_matrix_is_never_materialized(self, lazy):
        with pytest.raises(RuntimeError, match="lazy"):
            _ = lazy.matrix

    def test_rows_within_caps_beyond_radius(self, dense, lazy):
        radius = dense.diameter() / 4.0
        us = np.arange(0, dense.n, 7)
        capped = lazy.rows_within(us, radius)
        exact = dense.matrix[us]
        near = exact <= radius
        assert np.array_equal(capped[near], exact[near])
        assert np.all(capped[~near] > radius)
        # Dense backend offers the same contract.
        dense_capped = dense.rows_within(us, radius)
        assert np.array_equal(dense_capped[near], exact[near])
        assert np.all(np.isinf(dense_capped[~near]))

    def test_cache_stats_track_peaks(self, graph):
        metric = ShortestPathMetric(graph, dense=False, row_cache_bytes=500)
        for u in range(10):
            metric.distances_from(u)
        stats = metric.row_cache_stats()
        assert stats["rows"] == 1  # budget holds a single row
        assert stats["peak_rows"] == 1
        assert stats["misses"] >= 10

    def test_cache_budget_threads_to_first_hops(self, graph):
        """The workload's cache_mb budget governs every per-row cache the
        schemes build over the same graph, not just the metric's."""
        from repro import api

        wl = api.build_workload(
            "knn-graph", n=48, seed=3, dense=False, cache_mb=1,
            cache=api.BuildCache(),
        )
        assert wl.metric.row_cache_budget == 1024 * 1024
        fitted = api.build("route-trivial", workload=wl, seed=3)
        table = fitted.inner.first_hops
        assert not table.dense
        assert table._rows.budget_bytes == 1024 * 1024

    def test_lazy_extremes_match_dense(self, graph, dense, lazy):
        assert lazy.min_distance() == dense.min_distance()
        assert lazy.diameter() == dense.diameter()
        assert lazy.log_aspect_ratio() == dense.log_aspect_ratio()

    def test_disconnected_graph_rejected(self):
        from repro.graphs.graph import WeightedGraph

        g = WeightedGraph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        with pytest.raises(ValueError, match="not connected"):
            ShortestPathMetric(g, dense=False)


class TestLazyFirstHops:
    def test_hops_trace_exact_shortest_paths(self, graph, dense):
        table = FirstHopTable(graph, dense=False, row_cache_bytes=4096)
        rng = np.random.default_rng(2)
        for u, t in rng.integers(0, graph.n, size=(50, 2)):
            u, t = int(u), int(t)
            path = table.trace_path(u, t)
            assert path[0] == u and path[-1] == t
            length = sum(
                graph.weight(path[i], path[i + 1]) for i in range(len(path) - 1)
            )
            assert length == pytest.approx(dense.matrix[u, t], rel=1e-12)

    def test_distance_matches_dense(self, graph, dense):
        table = FirstHopTable(graph, dense=False)
        dense_table = FirstHopTable(graph, dense=True)
        for u, t in ((0, 5), (13, 2), (7, 7)):
            assert table.distance(u, t) == dense_table.distance(u, t)

    def test_self_hop_is_self(self, graph):
        table = FirstHopTable(graph, dense=False)
        assert table.first_hop(4, 4) == 4

    def test_first_hop_is_a_neighbor(self, graph):
        table = FirstHopTable(graph, dense=False)
        hop = table.first_hop(0, graph.n - 1)
        assert graph.has_edge(0, hop)
