"""ShortestPathMetric — graph-induced metrics."""

import numpy as np
import pytest

from repro.graphs import WeightedGraph
from repro.metrics.graphmetric import ShortestPathMetric


class TestShortestPathMetric:
    def test_path_graph(self):
        g = WeightedGraph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 2.0)
        g.add_edge(2, 3, 3.0)
        m = ShortestPathMetric(g)
        assert m.distance(0, 3) == 6.0
        assert m.distance(1, 3) == 5.0

    def test_shortcut_wins(self):
        g = WeightedGraph(3)
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        g.add_edge(0, 2, 5.0)
        m = ShortestPathMetric(g)
        assert m.distance(0, 2) == 2.0

    def test_grid_distances(self, grid_graph5):
        m = ShortestPathMetric(grid_graph5)
        # Corner to corner on a 5x5 unit grid: 8 hops.
        assert m.distance(0, 24) == pytest.approx(8.0)

    def test_disconnected_raises(self):
        g = WeightedGraph(4)
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        with pytest.raises(ValueError, match="connected"):
            ShortestPathMetric(g)

    def test_is_valid_metric(self, knn_metric64):
        knn_metric64.validate(samples=300)

    def test_graph_property(self, grid_graph5):
        m = ShortestPathMetric(grid_graph5)
        assert m.graph is grid_graph5

    def test_matrix_symmetric(self, knn_metric64):
        assert np.allclose(knn_metric64.matrix, knn_metric64.matrix.T)
