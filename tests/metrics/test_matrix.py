"""DistanceMatrixMetric construction and validation."""

import numpy as np
import pytest

from repro.metrics import DistanceMatrixMetric


def simple_matrix():
    return np.array(
        [
            [0.0, 1.0, 2.0],
            [1.0, 0.0, 1.5],
            [2.0, 1.5, 0.0],
        ]
    )


class TestConstruction:
    def test_basic(self):
        m = DistanceMatrixMetric(simple_matrix())
        assert m.n == 3
        assert m.distance(0, 2) == 2.0

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            DistanceMatrixMetric(np.zeros((2, 3)))

    def test_rejects_nonzero_diagonal(self):
        mat = simple_matrix()
        mat[1, 1] = 0.1
        with pytest.raises(ValueError, match="diagonal"):
            DistanceMatrixMetric(mat)

    def test_rejects_asymmetry(self):
        mat = simple_matrix()
        mat[0, 1] = 5.0
        with pytest.raises(ValueError, match="symmetric"):
            DistanceMatrixMetric(mat)

    def test_rejects_negative(self):
        mat = simple_matrix()
        mat[0, 1] = mat[1, 0] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            DistanceMatrixMetric(mat)

    def test_triangle_check_passes(self):
        DistanceMatrixMetric(simple_matrix(), check_triangle=True)

    def test_triangle_check_fails(self):
        mat = np.array(
            [
                [0.0, 1.0, 9.0],
                [1.0, 0.0, 1.0],
                [9.0, 1.0, 0.0],
            ]
        )
        with pytest.raises(ValueError, match="triangle"):
            DistanceMatrixMetric(mat, check_triangle=True)

    def test_distances_from_row(self):
        m = DistanceMatrixMetric(simple_matrix())
        assert np.array_equal(m.distances_from(1), simple_matrix()[1])

    def test_matrix_property(self):
        mat = simple_matrix()
        m = DistanceMatrixMetric(mat)
        assert np.array_equal(m.matrix, mat)
