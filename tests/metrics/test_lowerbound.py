"""Scale-coded lower-bound metric family ([44]-style)."""

import math

import numpy as np
import pytest

from repro.metrics import label_entropy_bits, scale_coded_metric
from repro.metrics.dimension import doubling_dimension


class TestScaleCodedMetric:
    def test_is_valid_metric(self):
        metric, _bits = scale_coded_metric(depth=4, scales_per_level=3, seed=0)
        assert metric.n == 16
        metric.validate(samples=400)

    def test_aspect_ratio_in_window(self):
        """Δ lands in roughly [(n/2)^M, n^M]-scale territory."""
        depth, m = 4, 3
        metric, _bits = scale_coded_metric(depth=depth, scales_per_level=m, seed=1)
        log_delta = math.log2(metric.aspect_ratio())
        assert log_delta >= (depth - 1) * 1.0
        assert log_delta <= depth * m + 1

    def test_code_bits_reported(self):
        _metric, bits = scale_coded_metric(depth=3, scales_per_level=4, seed=2)
        assert bits == (8 - 1) * 2

    def test_low_doubling_dimension(self):
        metric, _ = scale_coded_metric(depth=5, scales_per_level=2, seed=3)
        assert doubling_dimension(metric, sample_centers=16) <= 5.0

    def test_deterministic(self):
        a, _ = scale_coded_metric(depth=3, scales_per_level=3, seed=7)
        b, _ = scale_coded_metric(depth=3, scales_per_level=3, seed=7)
        assert np.array_equal(a.matrix, b.matrix)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            scale_coded_metric(depth=0, scales_per_level=2)
        with pytest.raises(ValueError):
            scale_coded_metric(depth=2, scales_per_level=0)


class TestEntropy:
    def test_entropy_formula(self):
        assert label_entropy_bits(16, 4) == pytest.approx(4 * 2)

    def test_entropy_grows_with_scales(self):
        assert label_entropy_bits(64, 16) > label_entropy_bits(64, 2)

    def test_labels_exceed_entropy(self):
        """Our (1+δ)-DLS must carry at least the code information."""
        from repro.labeling import RingDLS

        metric, _ = scale_coded_metric(depth=4, scales_per_level=3, seed=4)
        dls = RingDLS(metric, delta=0.3)
        assert dls.max_label_bits() >= label_entropy_bits(16, 3)
