"""Metric save/load."""

import numpy as np
import pytest

from repro.metrics import random_hypercube_metric, internet_like_metric
from repro.metrics.io import load_metric, load_points, save_metric


class TestMetricIO:
    def test_roundtrip_euclidean(self, tmp_path):
        metric = random_hypercube_metric(20, dim=2, seed=0)
        path = tmp_path / "metric.npz"
        save_metric(metric, path)
        loaded = load_metric(path)
        assert loaded.n == 20
        for u, v in [(0, 1), (3, 19)]:
            assert loaded.distance(u, v) == pytest.approx(metric.distance(u, v))

    def test_points_roundtrip(self, tmp_path):
        metric = random_hypercube_metric(10, dim=3, seed=1)
        path = tmp_path / "metric.npz"
        save_metric(metric, path)
        points = load_points(path)
        assert np.allclose(points, metric.points)

    def test_matrix_metric_has_no_points(self, tmp_path):
        metric = internet_like_metric(12, seed=2)
        path = tmp_path / "metric.npz"
        save_metric(metric, path)
        assert load_points(path) is None
        assert load_metric(path).n == 12

    def test_bad_file_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, stuff=np.zeros(3))
        with pytest.raises(ValueError, match="matrix"):
            load_metric(path)

    def test_loaded_metric_validated(self, tmp_path):
        metric = random_hypercube_metric(15, seed=3)
        path = tmp_path / "m.npz"
        save_metric(metric, path)
        load_metric(path).validate(samples=100)
