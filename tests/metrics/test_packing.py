"""(ε,µ)-packings — Lemma 3.1 / Appendix A guarantees."""

import numpy as np
import pytest

from repro.metrics import eps_mu_packing, exponential_line
from repro.metrics.measure import counting_measure, doubling_measure


class TestPackingGuarantees:
    @pytest.mark.parametrize("eps", [1.0, 0.5, 0.25, 0.125, 1 / 16])
    def test_covering_guarantee(self, hypercube32, eps):
        """For every u some ball satisfies d(u,center)+radius <= 6 r_u(eps)."""
        packing = eps_mu_packing(hypercube32, eps)
        for u in hypercube32.nodes():
            _ball, reach = packing.covering_ball_for(u)
            r_u = hypercube32.radius_for_fraction(u, eps)
            assert reach <= 6.0 * r_u + 1e-9

    @pytest.mark.parametrize("eps", [0.5, 0.25, 0.125])
    def test_disjointness(self, hypercube32, eps):
        assert eps_mu_packing(hypercube32, eps).verify_disjoint()

    @pytest.mark.parametrize("eps", [0.5, 0.125])
    def test_minimum_measure(self, hypercube32, eps):
        """Each ball has measure >= eps / 2^O(alpha); alpha~2 here, and the
        construction's constant is 16^alpha — assert the generous form."""
        packing = eps_mu_packing(hypercube32, eps)
        floor = eps / (16.0**4)
        for ball in packing:
            assert ball.measure >= floor

    def test_exponential_line(self):
        m = exponential_line(32)
        packing = eps_mu_packing(m, 0.25)
        assert packing.verify_disjoint()
        for u in m.nodes():
            _ball, reach = packing.covering_ball_for(u)
            assert reach <= 6.0 * m.radius_for_fraction(u, 0.25) + 1e-9

    def test_with_doubling_measure(self, hypercube32):
        mu = doubling_measure(hypercube32)
        packing = eps_mu_packing(hypercube32, 0.25, mu=mu)
        assert packing.verify_disjoint()
        for u in (0, 7, 31):
            _ball, reach = packing.covering_ball_for(u)
            assert reach <= 6.0 * mu.radius_for_mass(u, 0.25) + 1e-9


class TestPackingStructure:
    def test_eps_one_single_heavy_region(self, hypercube32):
        packing = eps_mu_packing(hypercube32, 1.0)
        # At eps=1 every candidate covers the whole space; F has one entry.
        assert len(packing) >= 1

    def test_members_match_ball(self, hypercube32):
        packing = eps_mu_packing(hypercube32, 0.25)
        for ball in packing:
            expected = set(
                int(x)
                for x in hypercube32.ball(ball.center, ball.radius)
            )
            assert set(ball.members) == expected

    def test_measure_matches_members(self, hypercube32):
        mu = counting_measure(hypercube32)
        packing = eps_mu_packing(hypercube32, 0.25)
        for ball in packing:
            assert ball.measure == pytest.approx(
                mu.mass(np.asarray(ball.members))
            )

    def test_contains(self, hypercube32):
        packing = eps_mu_packing(hypercube32, 0.5)
        ball = packing.balls[0]
        assert ball.center in ball

    def test_rejects_bad_eps(self, hypercube32):
        with pytest.raises(ValueError):
            eps_mu_packing(hypercube32, 0.0)
        with pytest.raises(ValueError):
            eps_mu_packing(hypercube32, 1.5)

    def test_empty_packing_raises_on_query(self, hypercube32):
        from repro.metrics.packing import EpsMuPacking

        empty = EpsMuPacking(hypercube32, 0.5, [])
        with pytest.raises(ValueError):
            empty.covering_ball_for(0)

    def test_denormal_gap_regression(self):
        """A point pair separated by the smallest denormal float used to
        stall the candidate-ball recursion (min_d/2 underflowed to 0)."""
        from repro.metrics import EuclideanMetric

        m = EuclideanMetric(np.array([0.0, 5e-324, 1.0])[:, None])
        packing = eps_mu_packing(m, 0.5)
        assert packing.verify_disjoint()
        assert len(packing) >= 1
