"""Synthetic workload generators."""

import numpy as np
import pytest

from repro.metrics import (
    clustered_metric,
    exponential_line,
    grid_metric,
    internet_like_metric,
    random_hypercube_metric,
    ring_metric,
    uniform_line,
)


class TestHypercubeAndGrid:
    def test_hypercube_shape(self):
        m = random_hypercube_metric(50, dim=3, seed=0)
        assert m.n == 50
        assert m.dim == 3
        assert np.all(m.points >= 0) and np.all(m.points <= 1)

    def test_hypercube_deterministic(self):
        a = random_hypercube_metric(20, seed=5)
        b = random_hypercube_metric(20, seed=5)
        assert np.array_equal(a.points, b.points)

    def test_grid(self):
        m = grid_metric(4, dim=2)
        assert m.n == 16
        assert m.min_distance() == 1.0
        assert m.diameter() == pytest.approx(3 * np.sqrt(2))

    def test_grid_l1(self):
        m = grid_metric(3, dim=2, p=1.0)
        assert m.diameter() == 4.0

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            random_hypercube_metric(0)
        with pytest.raises(ValueError):
            grid_metric(0)


class TestLines:
    def test_exponential_line_aspect(self):
        m = exponential_line(20)
        assert m.aspect_ratio() == pytest.approx((2**19 - 1) / 1.0)

    def test_exponential_line_distances(self):
        m = exponential_line(5)
        assert m.distance(0, 4) == 15.0  # 16 - 1

    def test_exponential_line_overflow_guard(self):
        with pytest.raises(ValueError, match="overflow"):
            exponential_line(1200)

    def test_exponential_line_custom_base(self):
        m = exponential_line(10, base=1.5)
        assert m.distance(0, 1) == pytest.approx(0.5)

    def test_uniform_line(self):
        m = uniform_line(10, spacing=2.0)
        assert m.distance(0, 9) == 18.0
        assert m.min_distance() == 2.0

    def test_ring(self):
        m = ring_metric(8)
        # Opposite nodes are a diameter apart.
        assert m.distance(0, 4) == pytest.approx(2.0)


class TestClusteredAndInternet:
    def test_clustered(self):
        m = clustered_metric(60, clusters=4, seed=1)
        assert m.n == 60
        m.validate()

    def test_internet_like_is_metric(self):
        m = internet_like_metric(50, seed=2)
        assert m.n == 50
        m.validate(samples=400)

    def test_internet_like_symmetric_zero_diag(self):
        m = internet_like_metric(30, seed=3)
        assert np.allclose(m.matrix, m.matrix.T)
        assert np.all(np.diag(m.matrix) == 0)

    def test_internet_like_distinct_points(self):
        m = internet_like_metric(40, seed=4)
        assert m.min_distance() > 0

    def test_internet_like_deterministic(self):
        a = internet_like_metric(25, seed=9)
        b = internet_like_metric(25, seed=9)
        assert np.array_equal(a.matrix, b.matrix)
