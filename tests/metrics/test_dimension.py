"""Doubling / grid dimension estimators (paper §1 separations)."""

import pytest

from repro.metrics import (
    doubling_dimension,
    exponential_line,
    grid_dimension,
    grid_metric,
    random_hypercube_metric,
    uniform_line,
)
from repro.metrics.dimension import greedy_ball_cover, lemma_1_2_lower_bound


class TestDoublingDimension:
    def test_line_is_about_one(self):
        m = uniform_line(64)
        dim = doubling_dimension(m, sample_centers=16)
        assert 0.5 <= dim <= 2.5

    def test_plane_is_about_two(self):
        m = random_hypercube_metric(128, dim=2, seed=0)
        dim = doubling_dimension(m, sample_centers=16)
        assert 1.0 <= dim <= 4.5

    def test_exponential_line_stays_constant(self):
        """The paper's key example: doubling dim O(1) despite huge Δ."""
        m = exponential_line(64)
        dim = doubling_dimension(m, sample_centers=16)
        assert dim <= 3.0

    def test_single_point(self):
        m = uniform_line(1)
        assert doubling_dimension(m) == 0.0


class TestGridDimension:
    def test_exponential_line_grid_dim_grows(self):
        """Grid dimension separates from doubling dimension (§1)."""
        small = grid_dimension(exponential_line(16), sample_centers=16)
        large = grid_dimension(exponential_line(128), sample_centers=16)
        assert large > small
        assert large > doubling_dimension(exponential_line(128), sample_centers=16)

    def test_uniform_line_grid_dim_small(self):
        m = uniform_line(64)
        assert grid_dimension(m, sample_centers=16) <= 2.5


class TestGreedyCover:
    def test_cover_covers(self, hypercube32):
        import numpy as np

        nodes = np.arange(hypercube32.n)
        centers = greedy_ball_cover(hypercube32, nodes, radius=0.3)
        for v in nodes:
            assert any(hypercube32.distance(c, v) <= 0.3 for c in centers)

    def test_cover_of_empty(self, hypercube32):
        import numpy as np

        assert greedy_ball_cover(hypercube32, np.array([], dtype=int), 1.0) == []

    def test_zero_radius_cover_is_everything(self, hypercube32):
        import numpy as np

        nodes = np.arange(hypercube32.n)
        centers = greedy_ball_cover(hypercube32, nodes, radius=0.0)
        assert len(centers) == hypercube32.n


class TestLemma12:
    def test_holds_for_measured_dimension(self):
        m = grid_metric(6)
        alpha = max(1.0, doubling_dimension(m, sample_centers=16))
        assert lemma_1_2_lower_bound(m, alpha)

    def test_rejects_nonpositive_alpha(self, hypercube32):
        with pytest.raises(ValueError):
            lemma_1_2_lower_bound(hypercube32, 0.0)
