"""Doubling measures (Theorem 1.3)."""

import numpy as np
import pytest

from repro.metrics import DoublingMeasure, doubling_measure, exponential_line
from repro.metrics.measure import counting_measure


class TestDoublingMeasureConstruction:
    def test_sums_to_one(self, hypercube32):
        mu = doubling_measure(hypercube32)
        assert mu.weights.sum() == pytest.approx(1.0)

    def test_strictly_positive(self, hypercube32):
        mu = doubling_measure(hypercube32)
        assert np.all(mu.weights > 0)

    def test_doubling_constant_bounded(self, hypercube32):
        mu = doubling_measure(hypercube32)
        # 2-d point set: expect s = 2^O(alpha); assert a generous cap.
        assert mu.doubling_constant(sample_centers=16) <= 64.0

    def test_exponential_line_matches_paper(self):
        """§1.1: on {2^i} the doubling measure is mu(2^i) ~ 2^(i-n) —
        geometrically increasing, heaviest at the sparse end."""
        m = exponential_line(24)
        mu = doubling_measure(m)
        # The top point carries a constant fraction of the mass.
        assert mu.weights[-1] >= 0.1
        # And is geometrically larger than points in the dense region.
        assert mu.weights[-1] / mu.weights[4] >= 2**8

    def test_beats_counting_measure_on_exponential_line(self):
        m = exponential_line(32)
        s_doubling = doubling_measure(m).doubling_constant(sample_centers=16)
        s_counting = counting_measure(m).doubling_constant(sample_centers=16)
        assert s_doubling < s_counting / 2

    def test_single_node(self):
        from repro.metrics import uniform_line

        m = uniform_line(1)
        mu = doubling_measure(m)
        assert mu.weights.tolist() == [1.0]


class TestMeasureQueries:
    @pytest.fixture(scope="class")
    def mu(self, hypercube32):
        return doubling_measure(hypercube32)

    def test_mass_of_all(self, mu, hypercube32):
        assert mu.mass(np.arange(hypercube32.n)) == pytest.approx(1.0)

    def test_ball_mass_monotone(self, mu):
        masses = [mu.ball_mass(0, r) for r in np.linspace(0.01, 2.0, 15)]
        assert all(a <= b + 1e-12 for a, b in zip(masses, masses[1:]))

    def test_radius_for_mass(self, mu, hypercube32):
        for u in (0, 13):
            for eps in (0.1, 0.5, 1.0):
                r = mu.radius_for_mass(u, eps)
                assert mu.ball_mass(u, r) >= eps - 1e-12

    def test_sample_from_ball_stays_inside(self, mu, hypercube32):
        rng = np.random.default_rng(0)
        samples = mu.sample_from_ball(4, 0.4, 50, rng)
        row = hypercube32.distances_from(4)
        assert np.all(row[samples] <= 0.4)

    def test_sample_from_empty_ball_raises(self, hypercube32):
        mu = counting_measure(hypercube32)
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError, match="empty"):
            mu.sample_from_ball(0, -1.0, 1, rng)

    def test_weights_shape_checked(self, hypercube32):
        with pytest.raises(ValueError, match="shape"):
            DoublingMeasure(hypercube32, np.ones(5))

    def test_rejects_nonpositive_weights(self, hypercube32):
        w = np.ones(hypercube32.n)
        w[3] = 0.0
        with pytest.raises(ValueError, match="positive"):
            DoublingMeasure(hypercube32, w)
