"""Named suites and the experiment CLI surface."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import (
    ExperimentSpec,
    ResultSet,
    get_suite,
    render_index,
    run,
    suite_names,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

EXPECTED_SUITES = {
    "smoke", "table1", "table2", "table3",
    "fig1", "fig2", "stretch", "dls", "distributed",
}


def _cli(*args: str, cwd=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, env=env, cwd=cwd or REPO_ROOT,
        timeout=300,
    )


class TestSuites:
    def test_all_paper_artifacts_registered(self):
        assert EXPECTED_SUITES <= set(suite_names())

    @pytest.mark.parametrize("name", sorted(EXPECTED_SUITES))
    def test_suite_specs_build_and_round_trip(self, name):
        spec = get_suite(name)
        assert spec.name == name
        assert len(spec.cells()) >= 1
        assert ExperimentSpec.from_json(spec.to_json()) == spec

    def test_index_lists_every_suite(self):
        index = render_index()
        for name in EXPECTED_SUITES:
            assert f"`{name}`" in index

    def test_experiments_md_is_regenerated(self):
        """The committed index must match the registered suites."""
        committed = (REPO_ROOT / "EXPERIMENTS.md").read_text()
        assert committed == render_index() + "\n"


class TestCLI:
    def test_run_json_stdout_matches_direct_run(self, tmp_path):
        proc = _cli("run", "smoke", "--json", "-", "--out", str(tmp_path))
        assert proc.returncode == 0, proc.stderr
        cli_set = ResultSet.from_json(proc.stdout)
        direct = run(get_suite("smoke"), persist=False)
        assert cli_set.keys() == direct.keys()
        for a, b in zip(cli_set, direct):
            assert a.metrics == b.metrics
        # The persisted artifact equals the emitted JSON as well.
        assert ResultSet.load(tmp_path / "smoke.resultset.json") == cli_set

    def test_run_spec_file_and_results_listing(self, tmp_path):
        spec_path = get_suite("smoke").save(tmp_path / "myspec.json")
        proc = _cli("run", str(spec_path), "--out", str(tmp_path))
        assert proc.returncode == 0, proc.stderr
        listing = _cli("results", "--out", str(tmp_path))
        assert listing.returncode == 0, listing.stderr
        assert "smoke" in listing.stdout

    def test_results_diff_of_identical_sets_agrees(self, tmp_path):
        rs = run(get_suite("smoke"), out_dir=tmp_path)
        copy = tmp_path / "copy.resultset.json"
        copy.write_text(rs.to_json() + "\n")
        proc = _cli(
            "results", "--out", str(tmp_path),
            "--diff", "smoke", str(copy),
        )
        assert proc.returncode == 0, proc.stderr
        assert "agree" in proc.stdout

    def test_results_listing_surfaces_unreadable_files(self, tmp_path):
        (tmp_path / "broken.resultset.json").write_text('{"kind": "experi')
        proc = _cli("results", "--out", str(tmp_path))
        assert proc.returncode == 0, proc.stderr
        assert "broken.resultset.json" in proc.stdout
        assert "unreadable" in proc.stdout

    def test_cache_subcommand(self):
        proc = _cli("cache")
        assert proc.returncode == 0, proc.stderr
        for key in ("entries", "maxsize", "hits", "misses"):
            assert key in proc.stdout

    def test_suites_subcommand(self):
        proc = _cli("suites")
        assert proc.returncode == 0, proc.stderr
        for name in EXPECTED_SUITES:
            assert name in proc.stdout

    def test_unknown_suite_is_self_diagnosing(self):
        proc = _cli("run", "not-a-suite", "--no-persist")
        assert proc.returncode != 0
        assert "table1" in proc.stderr  # valid names listed
