"""ExperimentSpec: round-tripping, unknown-key errors, grid expansion."""

from __future__ import annotations

import json

import pytest

from repro.api import PlanConfig, Workload
from repro.experiments import CellOverride, ExperimentSpec, SchemeSpec


@pytest.fixture()
def spec() -> ExperimentSpec:
    return ExperimentSpec.make(
        "unit",
        description="two workloads x two schemes x two plans x two seeds",
        workloads=[
            Workload.make("hypercube", n=24, dim=2, seed=1),
            Workload.make("expline", n=16),
        ],
        schemes=[
            SchemeSpec.make("triangulation", delta=0.3),
            SchemeSpec.make("beacons", label="beacons-8", beacons=8),
        ],
        plans=[
            PlanConfig(kind="uniform", pairs=40, seed=0),
            PlanConfig(kind="all-pairs"),
        ],
        seeds=[0, 1],
        probes=["label-bits"],
        overrides=[
            CellOverride(workload="expline",
                         plan=PlanConfig(kind="uniform", pairs=10, seed=7)),
            CellOverride(scheme="beacons-8", config=(("beacons", 4),),
                         probes=()),
        ],
    )


class TestRoundTrip:
    def test_dict_round_trip(self, spec):
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self, spec):
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()

    def test_file_round_trip(self, spec, tmp_path):
        path = spec.save(tmp_path / "unit.json")
        assert ExperimentSpec.load(path) == spec

    def test_hash_is_canonical_and_sensitive(self, spec):
        assert len(spec.spec_hash()) == 12
        other = ExperimentSpec.make(
            "unit",
            workloads=spec.workloads,
            schemes=spec.schemes,
            plans=spec.plans,
            seeds=[0, 2],  # one axis value changed
        )
        assert other.spec_hash() != spec.spec_hash()

    def test_scheme_spec_from_bare_string(self):
        assert SchemeSpec.from_dict("triangulation").scheme == "triangulation"


class TestValidation:
    def test_unknown_spec_key_rejected(self, spec):
        data = spec.to_dict()
        data["workloadz"] = []
        with pytest.raises(ValueError, match="workloadz"):
            ExperimentSpec.from_dict(data)

    def test_unknown_scheme_spec_key_rejected(self):
        with pytest.raises(ValueError, match="confg"):
            SchemeSpec.from_dict({"scheme": "triangulation", "confg": {}})

    def test_unknown_override_key_rejected(self):
        with pytest.raises(ValueError, match="plam"):
            CellOverride.from_dict({"plam": {"kind": "uniform"}})

    def test_unknown_scheme_name_lists_valid(self):
        with pytest.raises(KeyError, match="triangulation"):
            SchemeSpec.make("not-a-scheme")

    def test_bad_config_field_rejected_eagerly(self):
        with pytest.raises(ValueError, match="delta"):
            SchemeSpec.make("triangulation", delta=0.9)

    def test_empty_axes_rejected(self, spec):
        with pytest.raises(ValueError, match="no schemes"):
            ExperimentSpec.make("x", workloads=spec.workloads, schemes=[])

    def test_unknown_plan_key_rejected(self, spec):
        data = spec.to_dict()
        data["plans"][0]["pares"] = 3
        with pytest.raises(ValueError, match="pares"):
            ExperimentSpec.from_dict(data)


class TestGridExpansion:
    def test_cell_count_is_the_product_with_plan_overrides(self, spec):
        cells = spec.cells()
        # hypercube: 2 schemes x 2 plans x 2 seeds; expline's override
        # pins one plan: 2 schemes x 1 plan x 2 seeds.
        assert len(cells) == 2 * 2 * 2 + 2 * 1 * 2

    def test_keys_are_unique_and_deterministic(self, spec):
        cells = spec.cells()
        assert len({c.key for c in cells}) == len(cells)
        assert [c.key for c in spec.cells()] == [c.key for c in cells]

    def test_override_merges_config_and_replaces_probes(self, spec):
        cells = spec.cells()
        beacon_cells = [c for c in cells if c.label == "beacons-8"]
        assert beacon_cells and all(
            dict(c.config)["beacons"] == 4 and c.probes == ()
            for c in beacon_cells
        )
        tri_cells = [c for c in cells if c.label == "triangulation"]
        assert all(c.probes == ("label-bits",) for c in tri_cells)

    def test_override_pins_plan_per_workload(self, spec):
        expline_cells = [
            c for c in spec.cells() if c.workload.name == "expline"
        ]
        assert all(
            c.plan == PlanConfig(kind="uniform", pairs=10, seed=7)
            for c in expline_cells
        )

    def test_cell_round_trips(self, spec):
        from repro.experiments import Cell

        for cell in spec.cells():
            clone = Cell.from_dict(json.loads(json.dumps(cell.to_dict())))
            assert clone == cell
            assert clone.key == cell.key


class TestSkipOverrides:
    def _spec(self):
        from repro.api.workloads import Workload

        return ExperimentSpec.make(
            "skip-demo",
            workloads=[
                Workload.make("hypercube", n=64, dim=2, seed=0),
                Workload.make("hypercube", n=32, dim=2, seed=0),
            ],
            schemes=[
                SchemeSpec.make("beacons", label="cheap", beacons=4),
                SchemeSpec.make("triangulation", label="heavy", delta=0.3),
            ],
            plans=[PlanConfig(kind="uniform", pairs=10, seed=1)],
            overrides=[
                CellOverride(workload="hypercube(n=64)", scheme="heavy",
                             skip=True),
            ],
        )

    def test_skip_drops_matching_cells_only(self):
        cells = self._spec().cells()
        assert len(cells) == 3  # 2x2 grid minus the skipped cell
        assert not any(
            c.label == "heavy" and c.workload.n == 64 for c in cells
        )
        assert any(c.label == "heavy" and c.workload.n == 32 for c in cells)
        assert sum(c.label == "cheap" for c in cells) == 2

    def test_sized_display_matches_one_scale(self):
        from repro.api.workloads import Workload

        w64 = Workload.make("hypercube", n=64, dim=2, seed=0)
        w32 = Workload.make("hypercube", n=32, dim=2, seed=0)
        rule = CellOverride(workload="hypercube(n=64)")
        scheme = SchemeSpec.make("beacons", beacons=4)
        assert rule.matches(w64, scheme)
        assert not rule.matches(w32, scheme)
        # bare names still match every size
        assert CellOverride(workload="hypercube").matches(w32, scheme)

    def test_skip_round_trips_through_json(self):
        spec = self._spec()
        clone = ExperimentSpec.from_json(spec.to_json())
        assert clone == spec
        assert len(clone.cells()) == len(spec.cells())
        assert clone.spec_hash() == spec.spec_hash()

    def test_dls_large_ladder(self):
        from repro.experiments.suites import get_suite

        cells = get_suite("dls-large").cells()
        by_label = {}
        for c in cells:
            by_label.setdefault(c.label, set()).add(c.workload.n)
        assert by_label["thm3.2+ids"] == {2000}
        assert by_label["thm3.4-id-free"] == {500}
        assert by_label["tz-k2"] == {10_000, 2000, 500}

    def test_override_n_remaps_sized_skip_rules(self):
        from repro.cli import _override_spec_n
        from repro.experiments.suites import get_suite

        reduced = _override_spec_n(get_suite("dls-large"), 300)
        # Ladder rungs collapse to one workload; the heavy labeling
        # schemes stay fenced out instead of running at the reduced n.
        assert len(reduced.workloads) == 1
        labels = {c.label for c in reduced.cells()}
        assert "thm3.4-id-free" not in labels
        assert "thm3.2+ids" not in labels
        assert {"tz-k2", "beacons-14", "beacons-64"} <= labels
