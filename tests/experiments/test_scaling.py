"""PR-4 experiment-layer behaviour: multi-seed aggregation, worker
resolution + provenance, build-worker sharding parity, --override-n."""

from __future__ import annotations

import os

import pytest

from repro.api import BuildCache, PlanConfig, Workload
from repro.experiments import ExperimentSpec, SchemeSpec, get_suite, run


def seeded_spec() -> ExperimentSpec:
    return ExperimentSpec.make(
        "unit-seeds",
        workloads=[Workload.make("hypercube", n=24, dim=2, seed=5)],
        schemes=[
            SchemeSpec.make("beacons", label="b4", beacons=4),
            SchemeSpec.make("beacons", label="b8", beacons=8),
        ],
        plans=[PlanConfig(kind="uniform", pairs=30, seed=3)],
        seeds=[0, 1, 2],
    )


@pytest.fixture(scope="module")
def seeded_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("results")
    return run(seeded_spec(), out_dir=out, processes=1, cache=BuildCache())


class TestOverSeeds:
    def test_mean_groups_by_cell_minus_seed(self, seeded_run):
        rows = seeded_run.rows(
            ["label", "seed", "mean_relative_error"], over_seeds="mean"
        )
        assert len(rows) == 2  # two scheme labels, seeds folded
        labels = [row[0] for row in rows]
        assert labels == ["b4", "b8"]
        for row in rows:
            assert row[1] == 3  # seed column = number of seeds aggregated

    def test_mean_is_the_arithmetic_mean(self, seeded_run):
        per_seed = seeded_run.rows(["label", "mean_relative_error"])
        b4 = [r[1] for r in per_seed if r[0] == "b4"]
        rows = seeded_run.rows(["label", "mean_relative_error"], over_seeds="mean")
        assert rows[0][1] == pytest.approx(sum(b4) / len(b4), rel=1e-12)

    def test_ci95_column(self, seeded_run):
        import numpy as np

        per_seed = seeded_run.rows(["label", "mean_relative_error"])
        b4 = [r[1] for r in per_seed if r[0] == "b4"]
        rows = seeded_run.rows(
            ["label", "mean_relative_error:ci95"], over_seeds="mean"
        )
        expected = 1.96 * float(np.std(b4, ddof=1)) / (len(b4) ** 0.5)
        assert rows[0][1] == pytest.approx(expected, rel=1e-12)

    def test_non_numeric_passthrough_and_unknown_suffix(self, seeded_run):
        rows = seeded_run.rows(["workload"], over_seeds="mean")
        assert rows[0][0] == "hypercube"
        with pytest.raises(ValueError, match="ci95"):
            seeded_run.rows(["x:median"], over_seeds="mean")
        with pytest.raises(ValueError, match="over_seeds"):
            seeded_run.rows(["label"], over_seeds="max")

    def test_default_is_per_seed(self, seeded_run):
        assert len(seeded_run.rows(["label"])) == len(seeded_run)


class TestWorkerResolution:
    def test_processes_zero_resolves_to_cpu_count(self, tmp_path):
        spec = ExperimentSpec.make(
            "unit-procs",
            workloads=[Workload.make("hypercube", n=16, dim=2, seed=1)],
            schemes=[SchemeSpec.make("beacons", beacons=4)],
            plans=[PlanConfig(kind="uniform", pairs=10, seed=0)],
        )
        rs = run(spec, out_dir=tmp_path, processes=0, cache=BuildCache())
        assert rs.provenance["processes"] == (os.cpu_count() or 1)
        assert rs.provenance["build_workers"] == 1

    def test_serial_provenance(self, seeded_run):
        assert seeded_run.provenance["processes"] == 1
        assert seeded_run.provenance["build_workers"] == 1


class TestBuildWorkersParity:
    def test_sharded_build_matches_serial(self, tmp_path):
        spec = ExperimentSpec.make(
            "unit-sharded",
            workloads=[
                Workload.make("knn-graph", n=40, k=4, seed=7, dense=False)
            ],
            schemes=[SchemeSpec.make("route-thm2.1", delta=0.3)],
            plans=[PlanConfig(kind="uniform", pairs=40, seed=2)],
        )
        serial = run(spec, out_dir=tmp_path / "a", processes=1,
                     cache=BuildCache())
        sharded = run(spec, out_dir=tmp_path / "b", processes=1,
                      build_workers=2, cache=BuildCache())
        assert serial.provenance["build_workers"] == 1
        assert sharded.provenance["build_workers"] == 2
        for a, b in zip(serial, sharded):
            assert a.metrics == b.metrics
            assert a.size_bits == b.size_bits


class TestOverrideN:
    def test_override_rebuilds_workloads_and_renames(self):
        from repro.cli import _override_spec_n

        spec = get_suite("table1-large")
        reduced = _override_spec_n(spec, 100)
        assert reduced.name == "table1-large-n100"
        assert all(w.n == 100 for w in reduced.workloads)
        # Non-size parameters (including the lazy-backend knob) survive.
        assert all(w.kwargs["dense"] is False for w in reduced.workloads)
        assert reduced.schemes == spec.schemes
        assert reduced.spec_hash() != spec.spec_hash()


class TestLargeSuitesDeclared:
    @pytest.mark.parametrize("name", ["table1-large", "stretch-large",
                                      "dls-large"])
    def test_registered_at_ten_thousand(self, name):
        # Every large suite leads with n = 10⁴ workloads; dls-large
        # additionally carries smaller rungs for the paper's own labeling
        # schemes (their construction constants cap the feasible n).
        spec = get_suite(name)
        assert max(w.n for w in spec.workloads) == 10_000
        if name != "dls-large":
            assert all(w.n == 10_000 for w in spec.workloads)

    def test_table1_large_is_matrix_free(self):
        spec = get_suite("table1-large")
        assert all(w.kwargs["dense"] is False for w in spec.workloads)
