"""Runner behaviour: determinism, persistence, resume, parallel parity."""

from __future__ import annotations

import json

import pytest

from repro.api import BuildCache, PlanConfig, Workload
from repro.experiments import ExperimentSpec, ResultSet, SchemeSpec, run


def small_spec(name: str = "unit-run") -> ExperimentSpec:
    return ExperimentSpec.make(
        name,
        workloads=[
            Workload.make("hypercube", n=24, dim=2, seed=1),
            Workload.make("uline", n=16),
        ],
        schemes=[
            SchemeSpec.make("triangulation", delta=0.3),
            SchemeSpec.make("beacons", beacons=6),
        ],
        plans=[PlanConfig(kind="uniform", pairs=40, seed=2)],
        seeds=[0],
    )


@pytest.fixture(scope="module")
def first_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("results")
    return run(small_spec(), out_dir=out, cache=BuildCache()), out


class TestDeterminism:
    def test_same_spec_same_seed_same_metrics(self, first_run, tmp_path):
        first, _ = first_run
        again = run(small_spec(), out_dir=tmp_path, cache=BuildCache())
        assert [r.key for r in again] == [r.key for r in first]
        for a, b in zip(again, first):
            assert a.metrics == b.metrics
            assert a.size_bits == b.size_bits
            assert a.size_components == b.size_components

    def test_results_align_with_cells(self, first_run):
        first, _ = first_run
        assert [r.key for r in first] == [c.key for c in small_spec().cells()]


class TestPersistence:
    def test_reloaded_set_compares_equal(self, first_run):
        first, out = first_run
        path = out / "unit-run.resultset.json"
        assert path.exists()
        assert ResultSet.load(path) == first

    def test_provenance_fields(self, first_run):
        first, _ = first_run
        prov = first.provenance
        assert prov["spec_hash"] == small_spec().spec_hash()
        assert prov["cells"] == len(first)
        assert "created" in prov and "python" in prov

    def test_foreign_json_is_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"table": "x", "rows": []}))
        with pytest.raises(ValueError, match="kind"):
            ResultSet.load(path)


class TestResume:
    def test_resume_runs_only_missing_cells(self, first_run, tmp_path):
        first, _ = first_run
        partial = ResultSet(
            spec=first.spec,
            results=first.results[:2],
            provenance=dict(first.provenance),
        )
        partial.save(tmp_path / "unit-run.resultset.json")
        resumed = run(small_spec(), out_dir=tmp_path, resume=True,
                      cache=BuildCache())
        assert len(resumed) == len(first)
        assert resumed.provenance["resumed_cells"] == 2
        # The reused cells are the prior objects (identical timings
        # prove they were not re-executed), the rest ran fresh.
        for prior, now in zip(first.results[:2], resumed.results[:2]):
            assert now.timings == prior.timings
        for a, b in zip(first, resumed):
            assert a.metrics == b.metrics

    def test_resume_spec_mismatch_raises(self, first_run, tmp_path):
        first, _ = first_run
        ResultSet(
            spec=first.spec, results=[], provenance={}
        ).save(tmp_path / "other-grid.resultset.json")
        other = ExperimentSpec.make(
            "other-grid",
            workloads=[Workload.make("uline", n=16)],
            schemes=[SchemeSpec.make("triangulation")],
        )
        with pytest.raises(ValueError, match="different grid"):
            run(other, out_dir=tmp_path, resume=True)

    def test_full_resume_executes_nothing(self, first_run):
        first, out = first_run
        resumed = run(small_spec(), out_dir=out, resume=True)
        assert resumed.provenance["resumed_cells"] == len(first)
        assert [r.timings for r in resumed] == [r.timings for r in first]


class TestParallel:
    def test_process_pool_matches_serial(self, first_run, tmp_path):
        first, _ = first_run
        parallel = run(
            small_spec(), out_dir=tmp_path, processes=2, cache=BuildCache()
        )
        assert [r.key for r in parallel] == [r.key for r in first]
        for a, b in zip(parallel, first):
            assert a.metrics == b.metrics
            assert a.size_bits == b.size_bits


class TestReporting:
    def test_rows_and_metric_lookup(self, first_run):
        first, _ = first_run
        rows = first.rows(["workload", "label", "n", "max_relative_error"])
        assert len(rows) == len(first)
        assert rows[0][0] in ("hypercube", "uline")
        assert isinstance(rows[0][3], float)

    def test_diff_flags_changed_metrics(self, first_run):
        first, _ = first_run
        clone = ResultSet.from_json(first.to_json())
        assert first.diff(clone) == {
            "only_self": [], "only_other": [], "changed": {}
        }
        clone.results[0].metrics["max_relative_error"] = 123.0
        diff = first.diff(clone)
        changed = diff["changed"][clone.results[0].key]
        assert changed["title"] == clone.results[0].title
        assert "max_relative_error" in changed["metrics"]

    def test_diff_keys_disambiguate_identical_titles(self, first_run):
        """Cells differing only in seed must not collide in the diff."""
        first, _ = first_run
        clone = ResultSet.from_json(first.to_json())
        missing = clone.results.pop()
        diff = first.diff(clone)
        assert diff["only_self"] == [
            {"key": missing.key, "title": missing.title}
        ]

    def test_one_lookup_errors_on_ambiguity(self, first_run):
        first, _ = first_run
        with pytest.raises(LookupError, match="exactly one"):
            first.one(label="triangulation")  # two workloads match
        sole = first.one(workload="uline", label="beacons")
        assert sole.scheme == "beacons"
