"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's four problems plus workload inspection:

* ``info``        — generate a workload and print its metric profile
  (n, Δ, doubling/grid dimension estimates);
* ``triangulate`` — build the Theorem 3.2 triangulation, report order,
  worst-pair ratio and an estimate for a node pair;
* ``labels``      — build the Theorem 3.4 labels, report bit sizes and
  an estimate for a node pair;
* ``route``       — build a routing scheme (thm2.1 / thm4.1 / thm4.2 /
  trivial) on a doubling graph and route sampled packets;
* ``smallworld``  — sample a small-world model (5.2a / 5.2b / 5.5 /
  structures) and run queries.

Workloads are chosen with ``--workload`` from the synthetic generators
(``hypercube``, ``grid``, ``expline``, ``internet``, ``uline``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

import numpy as np


def _build_metric(args: argparse.Namespace):
    from repro import metrics

    n = args.n
    seed = args.seed
    if args.workload == "hypercube":
        return metrics.random_hypercube_metric(n, dim=args.dim, seed=seed)
    if args.workload == "grid":
        side = max(2, int(round(n ** (1.0 / args.dim))))
        return metrics.grid_metric(side, dim=args.dim)
    if args.workload == "expline":
        return metrics.exponential_line(n, base=args.base)
    if args.workload == "internet":
        return metrics.internet_like_metric(n, seed=seed)
    if args.workload == "uline":
        return metrics.uniform_line(n)
    raise ValueError(f"unknown workload {args.workload!r}")


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--workload", default="hypercube",
                        choices=["hypercube", "grid", "expline", "internet", "uline"])
    parser.add_argument("--n", type=int, default=96)
    parser.add_argument("--dim", type=int, default=2)
    parser.add_argument("--base", type=float, default=2.0,
                        help="exponential-line base")
    parser.add_argument("--seed", type=int, default=0)


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.metrics import doubling_dimension, grid_dimension

    metric = _build_metric(args)
    print(f"workload      {args.workload}")
    print(f"n             {metric.n}")
    print(f"min distance  {metric.min_distance():.6g}")
    print(f"diameter      {metric.diameter():.6g}")
    print(f"aspect ratio  {metric.aspect_ratio():.6g} "
          f"(log2 = {np.log2(metric.aspect_ratio()):.1f})")
    print(f"doubling dim  ~{doubling_dimension(metric, sample_centers=24):.2f}")
    print(f"grid dim      ~{grid_dimension(metric, sample_centers=24):.2f}")
    return 0


def _cmd_triangulate(args: argparse.Namespace) -> int:
    from repro.labeling import RingTriangulation

    metric = _build_metric(args)
    tri = RingTriangulation(metric, delta=args.delta)
    print(f"order            {tri.order} (mean {tri.mean_order():.1f})")
    print(f"worst D+/D-      {tri.worst_ratio():.4f}")
    print(f"certified bound  {tri.certified_ratio_bound():.4f}")
    u, v = args.pair
    print(f"d({u},{v})       {metric.distance(u, v):.6g}")
    print(f"estimate         {tri.estimate(u, v):.6g}")
    return 0


def _cmd_labels(args: argparse.Namespace) -> int:
    from repro.labeling import RingDLS

    metric = _build_metric(args)
    dls = RingDLS(metric, delta=args.delta)
    print(f"max label bits   {dls.max_label_bits():,}")
    print(f"mean label bits  {dls.mean_label_bits():,.0f}")
    print(f"max |T_u|        {dls.max_virtual_neighbors()}")
    u, v = args.pair
    print(f"d({u},{v})       {metric.distance(u, v):.6g}")
    print(f"estimate         {dls.estimate(u, v):.6g}")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from repro.graphs import knn_geometric_graph
    from repro.metrics.graphmetric import ShortestPathMetric
    from repro.routing import (
        LabelRouting,
        RingRouting,
        TrivialRouting,
        TwoModeRouting,
        evaluate_scheme,
    )

    graph = knn_geometric_graph(args.n, k=args.k, seed=args.seed)
    metric = ShortestPathMetric(graph)
    if args.scheme == "trivial":
        scheme = TrivialRouting(graph)
    elif args.scheme == "thm2.1":
        scheme = RingRouting(graph, delta=args.delta, metric=metric)
    elif args.scheme == "thm4.1":
        scheme = LabelRouting(graph, delta=args.delta,
                              estimator="triangulation", metric=metric)
    else:
        scheme = TwoModeRouting(graph, delta=args.delta, metric=metric)
    stats = evaluate_scheme(
        scheme, metric.matrix, sample_pairs=args.packets, seed=args.seed
    )
    print(f"scheme        {args.scheme}")
    print(f"delivery      {stats.delivery_rate:.1%}")
    print(f"max stretch   {stats.max_stretch:.4f}")
    print(f"mean stretch  {stats.mean_stretch:.4f}")
    print(f"table bits    {stats.max_table_bits:,}")
    print(f"header bits   {stats.max_header_bits:,}")
    return 0


def _cmd_smallworld(args: argparse.Namespace) -> int:
    from repro.graphs import grid_graph
    from repro.metrics.graphmetric import ShortestPathMetric
    from repro.smallworld import (
        GreedyRingsModel,
        GroupStructuresModel,
        PrunedRingsModel,
        SingleLinkModel,
        evaluate_model,
    )

    if args.model == "5.5":
        side = max(2, int(round(args.n**0.5)))
        graph = grid_graph(side)
        metric = ShortestPathMetric(graph)
        model = SingleLinkModel(metric, graph)
    else:
        metric = _build_metric(args)
        if args.model == "5.2a":
            model = GreedyRingsModel(metric, c=args.c)
        elif args.model == "5.2b":
            model = PrunedRingsModel(metric, c=args.c)
        else:
            model = GroupStructuresModel(metric)
    stats = evaluate_model(model, sample_queries=args.queries, seed=args.seed)
    print(f"model        {args.model}")
    print(f"completion   {stats.completion_rate:.1%}")
    print(f"max hops     {stats.max_hops}")
    print(f"mean hops    {stats.mean_hops:.2f}")
    print(f"out-degree   {stats.max_out_degree} (mean {stats.mean_out_degree:.1f})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rings of neighbors (Slivkins, PODC 2005) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="print a workload's metric profile")
    _add_workload_arguments(p_info)
    p_info.set_defaults(func=_cmd_info)

    p_tri = sub.add_parser("triangulate", help="Theorem 3.2 triangulation")
    _add_workload_arguments(p_tri)
    p_tri.add_argument("--delta", type=float, default=0.3)
    p_tri.add_argument("--pair", type=int, nargs=2, default=(0, 1))
    p_tri.set_defaults(func=_cmd_triangulate)

    p_lab = sub.add_parser("labels", help="Theorem 3.4 distance labels")
    _add_workload_arguments(p_lab)
    p_lab.add_argument("--delta", type=float, default=0.3)
    p_lab.add_argument("--pair", type=int, nargs=2, default=(0, 1))
    p_lab.set_defaults(func=_cmd_labels)

    p_route = sub.add_parser("route", help="compact routing on a kNN graph")
    p_route.add_argument("--scheme", default="thm2.1",
                         choices=["trivial", "thm2.1", "thm4.1", "thm4.2"])
    p_route.add_argument("--n", type=int, default=96)
    p_route.add_argument("--k", type=int, default=4)
    p_route.add_argument("--delta", type=float, default=0.25)
    p_route.add_argument("--packets", type=int, default=300)
    p_route.add_argument("--seed", type=int, default=0)
    p_route.set_defaults(func=_cmd_route)

    p_sw = sub.add_parser("smallworld", help="searchable small worlds")
    _add_workload_arguments(p_sw)
    p_sw.add_argument("--model", default="5.2a",
                      choices=["5.2a", "5.2b", "5.5", "structures"])
    p_sw.add_argument("--c", type=float, default=2.0)
    p_sw.add_argument("--queries", type=int, default=300)
    p_sw.set_defaults(func=_cmd_smallworld)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
