"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's four problems plus workload inspection:

* ``list``        — enumerate the registered workloads and schemes;
* ``info``        — generate a workload and print its metric profile
  (n, Δ, doubling/grid dimension estimates);
* ``triangulate`` — build the Theorem 3.2 triangulation, report order,
  worst-pair ratio and an estimate for a node pair;
* ``labels``      — build the Theorem 3.4 labels, report bit sizes and
  an estimate for a node pair;
* ``route``       — build a routing scheme (thm2.1 / thm4.1 / thm4.2 /
  trivial) on a doubling graph and route sampled packets;
* ``smallworld``  — sample a small-world model (5.2a / 5.2b / 5.5 /
  structures) and run queries;
* ``update``      — build a mutable scheme and stream join/leave churn
  into it (one explicit batch, or a seeded ChurnTrace), reporting
  receipts, amortized update cost and patch-buffer state;
* ``run``         — execute a declarative experiment grid (a named
  suite or a spec JSON file) through :mod:`repro.experiments`;
* ``results``     — list or diff persisted experiment result sets;
* ``suites``      — list the named suites / regenerate EXPERIMENTS.md;
* ``cache``       — show the facade build cache's entries/hits/misses
  plus the row-cache byte accounting of cached lazy metrics;
* ``save``        — build a scheme and persist it as a container file;
* ``load``        — reopen a saved structure (zero-copy) and summarize;
* ``serve``       — serve a saved structure over NDJSON/TCP with
  micro-batched estimate calls.

Everything is registry-driven: workloads come from
``repro.api.WORKLOADS`` (``--workload``), schemes from
``repro.api.SCHEMES``, experiment suites from
``repro.experiments.SUITES``, and one ``--seed`` flows through both the
generator and every randomized construction, so equal seeds reproduce
identical runs.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Optional, Sequence

import numpy as np


def _metric_workload_names() -> list[str]:
    """Registered workloads that build a metric directly."""
    from repro.api import WORKLOADS

    return [
        name for name, entry in WORKLOADS.items()
        if entry.meta.get("kind") == "metric"
    ]


def _workload_kwargs(args: argparse.Namespace) -> Dict[str, object]:
    """The subset of CLI flags the chosen workload actually accepts."""
    from repro.api import WORKLOADS

    defaults = WORKLOADS.get(args.workload).meta["defaults"]
    return {
        name: getattr(args, name)
        for name in defaults
        if getattr(args, name, None) is not None
    }


def _workload_from_args(args: argparse.Namespace):
    from repro import api

    return api.build_workload(
        args.workload, n=args.n, seed=args.seed, **_workload_kwargs(args)
    )


def _build_metric(args: argparse.Namespace):
    """Deprecated alias for the registry-driven workload builder.

    Kept so scripts that imported the old helper keep working; prefer
    ``repro.api.build_workload``.
    """
    return _workload_from_args(args).metric


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    from repro.api import DEFAULT_N

    parser.add_argument("--workload", default="hypercube",
                        choices=_metric_workload_names())
    parser.add_argument("--n", type=int, default=DEFAULT_N,
                        help=f"instance size (default: api.DEFAULT_N = {DEFAULT_N})")
    parser.add_argument("--dim", type=int, default=2)
    parser.add_argument("--base", type=float, default=2.0,
                        help="exponential-line base")
    parser.add_argument("--seed", type=int, default=0)


def _cmd_list(args: argparse.Namespace) -> int:
    from repro import api

    print(api.describe())
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    from repro.metrics import doubling_dimension, grid_dimension

    metric = _workload_from_args(args).metric
    print(f"workload      {args.workload}")
    print(f"n             {metric.n}")
    print(f"min distance  {metric.min_distance():.6g}")
    print(f"diameter      {metric.diameter():.6g}")
    print(f"aspect ratio  {metric.aspect_ratio():.6g} "
          f"(log2 = {np.log2(metric.aspect_ratio()):.1f})")
    print(f"doubling dim  ~{doubling_dimension(metric, sample_centers=24):.2f}")
    print(f"grid dim      ~{grid_dimension(metric, sample_centers=24):.2f}")
    return 0


def _cmd_triangulate(args: argparse.Namespace) -> int:
    from repro import api

    fitted = api.build(
        "triangulation", workload=_workload_from_args(args),
        seed=args.seed, delta=args.delta,
    )
    tri = fitted.inner
    print(f"order            {tri.order} (mean {tri.mean_order():.1f})")
    print(f"worst D+/D-      {tri.worst_ratio():.4f}")
    print(f"certified bound  {tri.certified_ratio_bound():.4f}")
    u, v = args.pair
    print(f"d({u},{v})       {tri.metric.distance(u, v):.6g}")
    print(f"estimate         {fitted.query(u, v):.6g}")
    return 0


def _cmd_labels(args: argparse.Namespace) -> int:
    from repro import api

    fitted = api.build(
        "labels", workload=_workload_from_args(args),
        seed=args.seed, delta=args.delta,
    )
    dls = fitted.inner
    print(f"max label bits   {dls.max_label_bits():,}")
    print(f"mean label bits  {dls.mean_label_bits():,.0f}")
    print(f"max |T_u|        {dls.max_virtual_neighbors()}")
    u, v = args.pair
    print(f"d({u},{v})       {dls.metric.distance(u, v):.6g}")
    print(f"estimate         {fitted.query(u, v):.6g}")
    return 0


def _plan_config(args: argparse.Namespace):
    """The PlanConfig described by --plan / --pairs / --per-scale."""
    from repro.api import PlanConfig

    return PlanConfig(
        kind=args.plan,
        pairs=args.pairs,
        per_scale=getattr(args, "per_scale", 64),
        seed=args.seed,
    )


def _add_plan_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--plan", default="uniform",
        choices=["all-pairs", "uniform", "stratified"],
        help="which node pairs to evaluate on (engine query plan)")
    parser.add_argument("--pairs", type=int, default=2000,
                        help="sample size for --plan uniform")
    parser.add_argument("--per-scale", type=int, default=64,
                        help="pairs per distance scale for --plan stratified")


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro import api

    fitted = api.build(
        args.scheme, workload=_workload_from_args(args), seed=args.seed,
    )
    stats = api.evaluate(fitted, _plan_config(args))
    print(f"scheme    {args.scheme}")
    print(f"workload  {args.workload} (n={fitted.workload.n})")
    print(f"plan      {args.plan}")
    for key, value in stats.items():
        if isinstance(value, float):
            print(f"{key:<22s} {value:.6g}")
        else:
            print(f"{key:<22s} {value}")
    return 0


def _mutable_scheme_names() -> list[str]:
    """Registered schemes flagged ``supports_update``."""
    from repro.api import SCHEMES

    return [
        name for name, entry in SCHEMES.items()
        if entry.meta.get("supports_update")
    ]


def _parse_node_list(text: Optional[str]) -> list[int]:
    if not text:
        return []
    return [int(x) for x in text.split(",") if x.strip()]


def _cmd_update(args: argparse.Namespace) -> int:
    from repro import api

    fitted = api.build(
        args.scheme, workload=_workload_from_args(args), seed=args.seed,
    )
    print(f"scheme    {args.scheme}")
    print(f"workload  {args.workload} (n={fitted.workload.n})")
    if args.events:
        from repro.distributed.trace import ChurnTrace

        trace = ChurnTrace.generate(
            n=fitted.workload.n, events=args.events,
            rate=args.rate, seed=args.trace_seed,
        )
        receipts = [
            api.update(fitted, joins=event.joins, leaves=event.leaves)
            for event in trace.events
        ]
        total_s = sum(r.update_s for r in receipts)
        print(f"trace     {trace.describe()}")
        print(f"events              {len(receipts)}")
        print(f"amortized update_s  {total_s / max(1, len(receipts)):.6g}")
        print(f"auto merges         {sum(r.merged for r in receipts)}")
    else:
        receipt = api.update(
            fitted,
            joins=_parse_node_list(args.joins),
            leaves=_parse_node_list(args.leaves),
        )
        for key, value in receipt.to_dict().items():
            print(f"{key:<20s} {value}")
    if args.compact:
        fitted.compact()
    stats = fitted.pending_patch_stats()
    print("patch state:")
    for key, value in stats.to_dict().items():
        print(f"  {key:<18s} {value}")
    inner = fitted.inner
    if getattr(inner, "ivl_checks", 0):
        print(f"ivl_checks          {inner.ivl_checks}")
        print(f"ivl_violations      {inner.ivl_violations}")
    return 0


def _cmd_route(args: argparse.Namespace) -> int:
    from repro import api

    fitted = api.build(
        f"route-{args.scheme}", workload="knn-graph",
        n=args.n, seed=args.seed,
        workload_params={"k": args.k}, config={"delta": args.delta},
    )
    if args.plan is not None:
        stats = api.evaluate(fitted, _plan_config(args))
    else:
        stats = fitted.stats(samples=args.packets, seed=args.seed)
    print(f"scheme        {args.scheme}")
    print(f"delivery      {stats['delivery_rate']:.1%}")
    print(f"max stretch   {stats['max_stretch']:.4f}")
    print(f"mean stretch  {stats['mean_stretch']:.4f}")
    print(f"table bits    {stats['max_table_bits']:,}")
    print(f"header bits   {stats['max_header_bits']:,}")
    return 0


def _cmd_smallworld(args: argparse.Namespace) -> int:
    from repro import api

    # 5.5 and kleinberg are tied to grid substrates; --workload would be
    # silently ignored for them, so route them to their canonical grids.
    if args.model == "5.5":
        workload = api.build_workload("grid-graph", n=args.n, seed=args.seed)
    elif args.model == "kleinberg":
        workload = api.build_workload("grid", n=args.n, seed=args.seed)
    else:
        workload = _workload_from_args(args)
    fitted = api.build(
        f"sw-{args.model}", workload=workload, seed=args.seed, c=args.c,
    )
    stats = fitted.stats(samples=args.queries, seed=args.seed)
    print(f"model        {args.model}")
    print(f"completion   {stats['completion_rate']:.1%}")
    print(f"max hops     {stats['max_hops']}")
    print(f"mean hops    {stats['mean_hops']:.2f}")
    print(f"out-degree   {stats['max_out_degree']} "
          f"(mean {stats['mean_out_degree']:.1f})")
    return 0


def _resolve_spec(target: str):
    """A spec from a named suite or a ``.json`` spec file path."""
    from repro.experiments import ExperimentSpec, get_suite

    path = Path(target)
    if target.endswith(".json") or path.is_file():
        return ExperimentSpec.load(path)
    return get_suite(target)


def _override_spec_n(spec, n: int):
    """``spec`` with every workload rebuilt at size ``n``.

    The spec is renamed ``<name>-n<n>`` so the reduced run persists (and
    resumes) beside — never over — the full-size artifact.  CI uses this
    to smoke the ``*-large`` suites at a reduced n.

    Overrides keyed on a sized workload display (``"hypercube(n=2000)"``)
    are remapped to the new size so they keep applying — in particular,
    ``skip`` rules that fence a heavy scheme onto one rung of a size
    ladder still fence it in the reduced run (all collapsed rungs now
    match, so a ladder's heavy cells are skipped rather than accidentally
    run at an unintended size).
    """
    import dataclasses

    from repro.api import Workload

    workloads = tuple(dict.fromkeys(
        Workload.make(w.name, n=n, seed=w.seed, **w.kwargs)
        for w in spec.workloads
    ))
    overrides = tuple(
        dataclasses.replace(rule, workload=f"{parsed[0]}(n={n})")
        if rule.workload is not None
        and (parsed := Workload.parse_display(rule.workload)) is not None
        else rule
        for rule in spec.overrides
    )
    return dataclasses.replace(
        spec, name=f"{spec.name}-n{n}", workloads=workloads,
        overrides=overrides,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments import default_results_dir, run

    spec = _resolve_spec(args.target)
    if args.override_n is not None:
        spec = _override_spec_n(spec, args.override_n)
    result_set = run(
        spec,
        processes=args.processes,
        build_workers=args.build_workers,
        resume=args.resume,
        out_dir=args.out,
        persist=not args.no_persist,
        verbose=not args.json,
    )
    if args.json:
        text = result_set.to_json()
        if args.json == "-":
            print(text)
        else:
            Path(args.json).write_text(text + "\n")
    else:
        print(f"suite      {spec.name} ({len(result_set)} cells, "
              f"spec {spec.spec_hash()})")
        for result in result_set:
            parts = []
            for key, value in {**result.metrics, **result.probes}.items():
                if isinstance(value, float):
                    parts.append(f"{key}={value:.6g}")
                elif isinstance(value, (int, bool)):
                    parts.append(f"{key}={value}")
            print(f"  {result.title:<36s} {'  '.join(parts)}")
        if not args.no_persist:
            print(f"persisted  {result_set.default_path(args.out)}")
    return 0


def _cmd_results(args: argparse.Namespace) -> int:
    from repro.experiments import ResultSet, default_results_dir
    from repro.experiments.results import RESULTSET_SUFFIX

    out = Path(args.out) if args.out else default_results_dir()
    if args.diff:
        loaded = []
        for target in args.diff:
            path = _results_path(out, target)
            try:
                loaded.append(ResultSet.load(path))
            except FileNotFoundError:
                print(f"warning: no persisted result set {target!r} "
                      f"(looked at {path}); run `repro run {target}` first",
                      file=sys.stderr)
                return 2
            except (ValueError, KeyError, json.JSONDecodeError) as err:
                print(f"warning: result set {target!r} is unreadable: {err}",
                      file=sys.stderr)
                return 2
        a, b = loaded
        diff = a.diff(b)
        if not (diff["only_self"] or diff["only_other"] or diff["changed"]):
            print("result sets agree on every shared cell metric")
            return 0
        for entry in diff["only_self"]:
            print(f"only in {args.diff[0]}: {entry['title']}  [{entry['key']}]")
        for entry in diff["only_other"]:
            print(f"only in {args.diff[1]}: {entry['title']}  [{entry['key']}]")
        for key, entry in diff["changed"].items():
            print(f"{entry['title']}  [{key}]")
            for name, pair in entry["metrics"].items():
                print(f"  {name:<24s} {pair['self']!r} -> {pair['other']!r}")
        return 1
    found = sorted(out.glob(f"*{RESULTSET_SUFFIX}")) if out.is_dir() else []
    if not found:
        print(f"no persisted result sets under {out}")
        return 0
    for path in found:
        try:
            rs = ResultSet.load(path)
        except (ValueError, KeyError, json.JSONDecodeError) as err:
            # Surface broken artifacts (e.g. a save killed mid-write)
            # instead of silently pretending they do not exist.
            print(f"{path.name}: unreadable ({err})")
            continue
        prov = rs.provenance
        print(f"{rs.spec.name:<14s} {len(rs):>3d} cells  "
              f"spec {prov.get('spec_hash', '?'):<12s} "
              f"git {str(prov.get('git', '?')):<16s} "
              f"{prov.get('created', '')}")
    return 0


def _results_path(out: Path, target: str) -> Path:
    """Resolve a ``results --diff`` operand: a path or a persisted name."""
    from repro.experiments.results import RESULTSET_SUFFIX

    path = Path(target)
    if path.is_file():
        return path
    return out / f"{target}{RESULTSET_SUFFIX}"


def _cmd_suites(args: argparse.Namespace) -> int:
    from repro.experiments import SUITES, get_suite, render_index

    if args.write_index:
        Path(args.write_index).write_text(render_index() + "\n")
        print(f"wrote {args.write_index}")
        return 0
    for name, entry in SUITES.items():
        spec = get_suite(name)
        print(f"{name:<14s} {len(spec.cells()):>3d} cells  {entry.summary}")
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro import api
    from repro.api.facade import _DEFAULT_CACHE

    for key, value in api.cache_info().items():
        print(f"{key:<12s} {value}")
    # Row-cache byte accounting: lazily-built graph metrics are where a
    # cached instance actually spends heap beyond its distance matrix.
    for spec, instance in _DEFAULT_CACHE._instances.items():
        stats = getattr(instance.metric, "row_cache_stats", None)
        if stats is None:
            continue
        report = stats()
        line = "  ".join(f"{k}={v}" for k, v in report.items())
        print(f"{spec.display:<20s} row-cache: {line}")
    return 0


def _structure_summary(fitted) -> str:
    container = fitted.container
    meta = container.meta
    guarantee = json.dumps(meta.get("guarantee", {}), sort_keys=True)
    lines = [
        f"path        {container.path}",
        f"scheme      {meta.get('scheme')}",
        f"workload    {meta.get('workload', {}).get('workload')}"
        f"(n={meta.get('metric', {}).get('n')})",
        f"version     {container.version}",
        f"hash        {container.content_hash}",
        f"bytes       {container.path.stat().st_size:,} on disk, "
        f"{container.resident_bytes():,} in arrays",
        f"arrays      {len(container.arrays)}",
        f"guarantee   {guarantee}",
    ]
    return "\n".join(lines)


def _cmd_save(args: argparse.Namespace) -> int:
    from repro import api

    config = {}
    if args.delta is not None:
        config["delta"] = args.delta
    workload_params: Dict[str, object] = {}
    if args.k is not None:
        workload_params["k"] = args.k
    if args.dim is not None:
        workload_params["dim"] = args.dim
    fitted = api.build(
        args.scheme, workload=args.workload, n=args.n, seed=args.seed,
        config=config or None,
        workload_params=workload_params or None,
    )
    content_hash = api.save(fitted, args.path)
    size = Path(args.path).stat().st_size
    print(f"saved {args.scheme} on {args.workload}(n={fitted.workload.n}) "
          f"to {args.path} ({size:,} bytes, {content_hash})")
    return 0


def _cmd_load(args: argparse.Namespace) -> int:
    from repro import api

    fitted = api.load(args.path, verify=args.verify)
    print(_structure_summary(fitted))
    if args.pair is not None:
        u, v = args.pair
        print(f"estimate({u},{v})  {fitted.inner.estimate(u, v):.6g}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro import api
    from repro.serve import StructureServer

    fitted = api.load(args.path)

    async def _run() -> None:
        server = StructureServer(
            fitted,
            host=args.host,
            port=args.port,
            batch_pairs=args.batch_pairs,
            batch_window_us=args.batch_window_us,
        )
        host, port = await server.start()
        scheme = fitted.container.meta.get("scheme")
        print(f"serving {scheme} from {args.path} on {host}:{port} "
              f"(NDJSON; ops: estimate, route, stats, shutdown)", flush=True)
        await server.serve_until_stopped()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Rings of neighbors (Slivkins, PODC 2005) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered workloads and schemes")
    p_list.set_defaults(func=_cmd_list)

    p_info = sub.add_parser("info", help="print a workload's metric profile")
    _add_workload_arguments(p_info)
    p_info.set_defaults(func=_cmd_info)

    p_tri = sub.add_parser("triangulate", help="Theorem 3.2 triangulation")
    _add_workload_arguments(p_tri)
    p_tri.add_argument("--delta", type=float, default=0.3)
    p_tri.add_argument("--pair", type=int, nargs=2, default=(0, 1))
    p_tri.set_defaults(func=_cmd_triangulate)

    p_lab = sub.add_parser("labels", help="Theorem 3.4 distance labels")
    _add_workload_arguments(p_lab)
    p_lab.add_argument("--delta", type=float, default=0.3)
    p_lab.add_argument("--pair", type=int, nargs=2, default=(0, 1))
    p_lab.set_defaults(func=_cmd_labels)

    p_route = sub.add_parser("route", help="compact routing on a kNN graph")
    p_route.add_argument("--scheme", default="thm2.1",
                         choices=["trivial", "thm2.1", "thm4.1", "thm4.2"])
    p_route.add_argument("--n", type=int, default=96)
    p_route.add_argument("--k", type=int, default=4)
    p_route.add_argument("--delta", type=float, default=0.25)
    p_route.add_argument("--packets", type=int, default=300)
    p_route.add_argument("--seed", type=int, default=0)
    p_route.add_argument("--plan", default=None,
                         choices=["all-pairs", "uniform", "stratified"],
                         help="evaluate on an engine query plan instead of "
                              "the legacy --packets sample")
    p_route.add_argument("--pairs", type=int, default=2000,
                         help="sample size for --plan uniform")
    p_route.add_argument("--per-scale", type=int, default=64,
                         help="pairs per scale for --plan stratified")
    p_route.set_defaults(func=_cmd_route)

    p_eval = sub.add_parser(
        "evaluate", help="evaluate any registered scheme over a query plan")
    _add_workload_arguments(p_eval)
    p_eval.add_argument("--scheme", default="triangulation",
                        help="a scheme name from `repro list`")
    _add_plan_arguments(p_eval)
    p_eval.set_defaults(func=_cmd_evaluate)

    p_update = sub.add_parser(
        "update", help="stream join/leave churn into a mutable scheme")
    _add_workload_arguments(p_update)
    p_update.add_argument(
        "--scheme", default="triangulation", choices=_mutable_scheme_names(),
        help="which mutable scheme to build and update")
    p_update.add_argument(
        "--joins", default="", help="comma-separated node ids to join")
    p_update.add_argument(
        "--leaves", default="", help="comma-separated node ids to remove")
    p_update.add_argument(
        "--events", type=int, default=0,
        help="instead of one batch, stream a generated ChurnTrace of this "
             "many events")
    p_update.add_argument(
        "--rate", type=float, default=0.01,
        help="per-event churn rate for --events (fraction of n)")
    p_update.add_argument(
        "--trace-seed", type=int, default=0,
        help="seed for the generated ChurnTrace")
    p_update.add_argument(
        "--compact", action="store_true",
        help="force-merge the pending patch after the updates")
    p_update.set_defaults(func=_cmd_update)

    p_run = sub.add_parser(
        "run", help="run an experiment grid (named suite or spec JSON)")
    p_run.add_argument("target",
                       help="a suite name from `repro suites` or a spec .json path")
    p_run.add_argument("--out", default=None,
                       help="results directory (default: benchmarks/results)")
    p_run.add_argument("--processes", type=int, default=None,
                       help="cell-level process pool size; 0 or omitted = "
                            "one per core (os.cpu_count()), 1 = serial")
    p_run.add_argument("--build-workers", type=int, default=None,
                       help="shard construction scans inside each build: "
                            "0 = one per core, omitted = serial "
                            "(results are identical either way)")
    p_run.add_argument("--override-n", type=int, default=None, metavar="N",
                       help="rebuild every workload of the suite at size N "
                            "(persists as <suite>-nN; CI smokes the *-large "
                            "suites this way)")
    p_run.add_argument("--resume", action="store_true",
                       help="reuse cells from a previously persisted run")
    p_run.add_argument("--no-persist", action="store_true",
                       help="do not write <name>.resultset.json")
    p_run.add_argument("--json", default=None, metavar="PATH",
                       help="dump the full ResultSet JSON to PATH ('-' = stdout)")
    p_run.set_defaults(func=_cmd_run)

    p_results = sub.add_parser(
        "results", help="list or diff persisted experiment result sets")
    p_results.add_argument("--out", default=None,
                           help="results directory (default: benchmarks/results)")
    p_results.add_argument("--diff", nargs=2, metavar=("A", "B"),
                           help="compare two result sets (names or paths)")
    p_results.set_defaults(func=_cmd_results)

    p_suites = sub.add_parser(
        "suites", help="list named experiment suites")
    p_suites.add_argument("--write-index", default=None, metavar="PATH",
                          help="regenerate the EXPERIMENTS.md index to PATH")
    p_suites.set_defaults(func=_cmd_suites)

    p_cache = sub.add_parser(
        "cache", help="show the facade build cache's entries/hits/misses")
    p_cache.set_defaults(func=_cmd_cache)

    from repro.serve.persist import PERSISTABLE_SCHEMES

    p_save = sub.add_parser(
        "save", help="build a scheme and persist it as a container file")
    p_save.add_argument("path", help="output structure file")
    p_save.add_argument("--scheme", default="triangulation",
                        choices=list(PERSISTABLE_SCHEMES))
    p_save.add_argument("--workload", default="hypercube",
                        help="any workload from `repro list` (routing "
                             "schemes need a graph workload, e.g. knn-graph)")
    p_save.add_argument("--n", type=int, default=None)
    p_save.add_argument("--seed", type=int, default=0)
    p_save.add_argument("--dim", type=int, default=None)
    p_save.add_argument("--k", type=int, default=None,
                        help="kNN degree for graph workloads")
    p_save.add_argument("--delta", type=float, default=None,
                        help="scheme delta (schemes that accept one)")
    p_save.set_defaults(func=_cmd_save)

    p_load = sub.add_parser(
        "load", help="open a saved structure and print its summary")
    p_load.add_argument("path", help="structure file from `repro save`")
    p_load.add_argument("--verify", action="store_true",
                        help="recompute the content hash before loading")
    p_load.add_argument("--pair", type=int, nargs=2, default=None,
                        help="also print one distance estimate")
    p_load.set_defaults(func=_cmd_load)

    p_serve = sub.add_parser(
        "serve", help="serve a saved structure over newline-delimited JSON")
    p_serve.add_argument("path", help="structure file from `repro save`")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="0 = pick a free port (printed on startup)")
    p_serve.add_argument("--batch-pairs", type=int, default=4096,
                         help="max pairs coalesced into one estimate call")
    p_serve.add_argument("--batch-window-us", type=float, default=200.0,
                         help="micro-batch collection window")
    p_serve.set_defaults(func=_cmd_serve)

    p_sw = sub.add_parser("smallworld", help="searchable small worlds")
    _add_workload_arguments(p_sw)
    p_sw.add_argument("--model", default="5.2a",
                      choices=["5.2a", "5.2b", "5.5", "structures", "kleinberg"],
                      help="5.5 and kleinberg always use their grid "
                           "substrates and ignore --workload")
    p_sw.add_argument("--c", type=float, default=2.0)
    p_sw.add_argument("--queries", type=int, default=300)
    p_sw.set_defaults(func=_cmd_smallworld)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
