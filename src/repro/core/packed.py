"""CSR-packed rings of neighbors — the array backend for every builder.

A :class:`~repro.core.rings.RingsOfNeighbors` stores one Python ``Ring``
object (an owner, a key, a radius and a member *tuple*) per (node, key)
pair; at n = 10⁴ and K·log Δ rings per node that representation costs
tens of bytes per member and caps the Theorem 2.1/3.2/3.4 structures
around n ≈ 10³.  :class:`PackedRings` holds the same information in four
flat arrays:

* ``members`` — every ring's members concatenated, **node-major** (all
  rings of node 0, then node 1, …), ``int32``;
* ``indptr`` — CSR offsets: ring ``k`` of node ``u`` occupies
  ``members[indptr[u*K + k] : indptr[u*K + k + 1]]``;
* ``radii`` — an ``(n, K)`` float array of ring radii;
* ``keys`` — the ring-key vocabulary shared by all nodes (scale indices
  for the deterministic builders, ``(i, j)`` tuples for Theorem 5.2(b)).

The class exposes the full read API of ``RingsOfNeighbors`` (``ring``,
``rings_of``, ``neighbors_of``, ``out_degree``, ``pointer_bits``, …), so
existing call sites keep working; ``rings_of``/``ring`` materialize
legacy :class:`~repro.core.rings.Ring` views lazily and nothing Θ(n·K)
in Python objects is ever pinned.  Sample provenance (builder name,
seed, samples-per-ring) rides along for the §5 sampled builders.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro._types import NodeId
from repro.bits import SizeAccount, bits_for_count
from repro.metrics.base import MetricSpace

__all__ = ["PackedRings", "exact_capped_rings", "pack_csr"]


def pack_csr(
    chunks: Sequence[np.ndarray], dtype=np.int32
) -> Tuple[np.ndarray, np.ndarray]:
    """Concatenate per-row arrays into one CSR block.

    Returns ``(indptr, data)`` with ``data[indptr[i]:indptr[i+1]]``
    holding row ``i``.  The one packing idiom every CSR consumer in the
    library shares (ring structures, label arrays, neighbor sets).
    """
    chunk_list = [np.asarray(c).ravel() for c in chunks]
    counts = np.fromiter(
        (c.size for c in chunk_list), dtype=np.int64, count=len(chunk_list)
    )
    indptr = np.concatenate([[0], np.cumsum(counts)])
    data = (
        np.concatenate(chunk_list) if chunk_list else np.empty(0, dtype)
    ).astype(dtype, copy=False)
    return indptr, data


class PackedRings:
    """Rings of neighbors packed into CSR arrays (one block per structure).

    Construction goes through :meth:`from_ring_chunks`, which the
    builders in :mod:`repro.core.rings` feed with per-ring member arrays
    in node-major order.  Ring keys are shared across nodes — every node
    has exactly one ring per key, matching what all the paper's builders
    produce.
    """

    def __init__(
        self,
        metric: MetricSpace,
        keys: Sequence[Any],
        radii: np.ndarray,
        indptr: np.ndarray,
        members: np.ndarray,
        provenance: Optional[Mapping[str, Any]] = None,
    ) -> None:
        self.metric = metric
        self.keys: Tuple[Any, ...] = tuple(keys)
        self.radii = np.asarray(radii, dtype=float)
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.members = np.asarray(members, dtype=np.int32)
        #: builder name + sampling parameters (the §5 builders record
        #: their seed and samples_per_ring here)
        self.provenance: Dict[str, Any] = dict(provenance or {})
        n, K = metric.n, len(self.keys)
        if self.radii.shape != (n, K):
            raise ValueError(f"radii must be (n, K)=({n}, {K}), got {self.radii.shape}")
        if self.indptr.shape != (n * K + 1,):
            raise ValueError(
                f"indptr must have n*K+1={n * K + 1} entries, got {self.indptr.shape}"
            )
        self._key_index: Dict[Any, int] = {k: i for i, k in enumerate(self.keys)}

    # -- construction ---------------------------------------------------

    @classmethod
    def from_ring_chunks(
        cls,
        metric: MetricSpace,
        keys: Sequence[Any],
        radii: np.ndarray,
        chunks: Iterable[np.ndarray],
        provenance: Optional[Mapping[str, Any]] = None,
    ) -> "PackedRings":
        """Pack per-ring member arrays (node-major: all of node 0's rings
        first, in key order) into one CSR block."""
        chunk_list = list(chunks)
        n, K = metric.n, len(keys)
        if len(chunk_list) != n * K:
            raise ValueError(
                f"expected {n * K} ring chunks (n·K), got {len(chunk_list)}"
            )
        indptr, members = pack_csr(chunk_list, dtype=np.int32)
        return cls(metric, keys, radii, indptr, members, provenance)

    # -- core lookups ---------------------------------------------------

    @property
    def n(self) -> int:
        return self.metric.n

    @property
    def num_keys(self) -> int:
        return len(self.keys)

    def _ring_slice(self, u: NodeId, k: int) -> np.ndarray:
        i = u * len(self.keys) + k
        return self.members[self.indptr[i] : self.indptr[i + 1]]

    def members_of(self, u: NodeId, key: Any) -> np.ndarray:
        """Member array of ``u``'s ring at ``key`` (a view, not a copy)."""
        return self._ring_slice(u, self._key_index[key])

    def radius(self, u: NodeId, key: Any) -> float:
        return float(self.radii[u, self._key_index[key]])

    def ring_sizes(self) -> np.ndarray:
        """Per-(node, key) member counts as an ``(n, K)`` array."""
        return np.diff(self.indptr).reshape(self.n, len(self.keys))

    def max_ring_cardinality(self) -> int:
        """The paper's K — the largest single ring."""
        if self.members.size == 0:
            return 0
        return int(np.diff(self.indptr).max())

    # -- legacy (dict) view --------------------------------------------

    def ring(self, u: NodeId, key: Any):
        """The ring of ``u`` at ``key`` as a legacy :class:`Ring`, or None."""
        from repro.core.rings import Ring

        k = self._key_index.get(key)
        if k is None:
            return None
        return Ring(
            owner=u,
            key=key,
            radius=float(self.radii[u, k]),
            members=tuple(int(x) for x in self._ring_slice(u, k)),
        )

    def rings_of(self, u: NodeId) -> Dict[Any, Any]:
        """All rings of ``u`` as a key → :class:`Ring` dict (materialized
        on the fly; the packed arrays stay the source of truth)."""
        return {key: self.ring(u, key) for key in self.keys}

    def to_rings_of_neighbors(self):
        """Materialize the full legacy dict structure (tests/debugging)."""
        from repro.core.rings import RingsOfNeighbors

        legacy = RingsOfNeighbors(self.metric)
        for u in range(self.n):
            for key in self.keys:
                legacy.add_ring(self.ring(u, key))
        return legacy

    # -- neighbor queries ----------------------------------------------

    def _node_span(self, u: NodeId) -> np.ndarray:
        """All ring members of ``u`` concatenated (contiguous by layout)."""
        K = len(self.keys)
        return self.members[self.indptr[u * K] : self.indptr[(u + 1) * K]]

    def neighbors_of(self, u: NodeId) -> List[NodeId]:
        """Distinct neighbors of ``u`` across rings (excluding u), in
        first-occurrence order — exactly the legacy semantics."""
        span = self._node_span(u)
        span = span[span != u]
        if span.size == 0:
            return []
        uniq, first = np.unique(span, return_index=True)
        return [int(x) for x in uniq[np.argsort(first, kind="stable")]]

    def out_degree(self, u: NodeId) -> int:
        span = self._node_span(u)
        span = span[span != u]
        if span.size == 0:
            return 0
        return int(np.unique(span).size)

    def out_degrees(self) -> np.ndarray:
        return np.fromiter(
            (self.out_degree(u) for u in range(self.n)), dtype=np.int64,
            count=self.n,
        )

    def max_out_degree(self) -> int:
        return int(self.out_degrees().max()) if self.n else 0

    # -- composition ----------------------------------------------------

    def merged_with(self, other: "PackedRings") -> "PackedRings":
        """A new packed structure holding both collections, with keys
        prefixed ``("a", key)`` / ``("b", key)`` as in the legacy merge."""
        if other.metric.n != self.metric.n:
            raise ValueError("cannot merge rings over different metrics")
        keys = [("a", k) for k in self.keys] + [("b", k) for k in other.keys]
        radii = np.hstack([self.radii, other.radii])
        chunks: List[np.ndarray] = []
        for u in range(self.n):
            for k in range(len(self.keys)):
                chunks.append(self._ring_slice(u, k))
            for k in range(len(other.keys)):
                chunks.append(other._ring_slice(u, k))
        provenance = {"builder": "merged", "a": self.provenance,
                      "b": other.provenance}
        return PackedRings.from_ring_chunks(
            self.metric, keys, radii, chunks, provenance
        )

    def with_sorted_members(self) -> "PackedRings":
        """A copy whose per-ring member arrays are sorted ascending (host
        enumerations for the routing schemes), via one global lexsort."""
        counts = np.diff(self.indptr)
        ring_of = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
        order = np.lexsort((self.members, ring_of))
        return PackedRings(
            self.metric, self.keys, self.radii, self.indptr,
            self.members[order], dict(self.provenance, sorted=True),
        )

    # -- incremental membership ----------------------------------------

    def membership_patch(self, membership=None, **kwargs):
        """A :class:`~repro.core.patch.CSRPatch` over this structure's
        member arrays — the entry point for join/leave churn.  The rings
        themselves stay pristine; reads through the patch see them
        filtered to the live active set."""
        from repro.core.patch import CSRPatch, Membership

        if membership is None:
            membership = Membership(self.n)
        return CSRPatch(
            self.indptr, self.members, membership=membership, **kwargs
        )

    # -- accounting -----------------------------------------------------

    def pointer_bits(self, u: NodeId) -> SizeAccount:
        """Bits to store u's neighbor pointers as global ids (the naive
        encoding the paper improves on with local enumerations)."""
        account = SizeAccount()
        account.add(
            "global_id_pointers", self.out_degree(u) * bits_for_count(self.n)
        )
        return account

    def storage_account(self) -> SizeAccount:
        """Exact resident storage of the packed arrays, from their widths."""
        account = SizeAccount()
        account.add("members", int(self.members.nbytes) * 8)
        account.add("indptr", int(self.indptr.nbytes) * 8)
        account.add("radii", int(self.radii.nbytes) * 8)
        return account

    def resident_bytes(self) -> int:
        """Bytes actually held by the backing arrays."""
        return int(self.members.nbytes + self.indptr.nbytes + self.radii.nbytes)

    def __repr__(self) -> str:
        return (
            f"PackedRings(n={self.n}, keys={len(self.keys)}, "
            f"members={self.members.size}, bytes={self.resident_bytes()})"
        )


def exact_capped_rings(
    metric: MetricSpace,
    base: float,
    levels: int,
    cap: Optional[int] = None,
) -> PackedRings:
    """The theoretical annulus rings the §6 protocols are scored against.

    Ring ``j`` of ``u`` holds the nodes whose distance falls in the
    annulus ``(base·2^{j-1}, base·2^j]`` (ring 0: ``(0, base]``),
    truncated to the ``cap`` nearest members — the exact structure
    bounded-capacity gossip could at best discover.  Built row by row
    with one vectorized bucketing pass per node.
    """
    edges = base * np.exp2(np.arange(levels))
    keys = list(range(levels))
    n = metric.n
    radii = np.tile(edges, (n, 1))
    chunks: List[np.ndarray] = []
    for u in range(n):
        row = np.asarray(metric.distances_from(u), dtype=float)
        scale = np.searchsorted(edges, row, side="left")
        order = np.argsort(row, kind="stable")
        valid = order[(row[order] > 0) & (order != u)]
        ring_of = scale[valid]
        for j in range(levels):
            ring = valid[ring_of == j]
            chunks.append(ring if cap is None else ring[:cap])
    return PackedRings.from_ring_chunks(
        metric, keys, radii, chunks,
        provenance={"builder": "exact_capped", "base": float(base), "cap": cap},
    )
