"""Overlay networks induced by rings of neighbors.

"In effect, rings of neighbors form an overlay network with a certain
structure imposed by the balls {B_i}" (§1).  Routing on *metrics* (§4.1)
is exactly routing on such an overlay: we are free to choose the edge set,
edge weights are the metric distances, and the out-degree becomes a
parameter to optimize (Table 2).
"""

from __future__ import annotations

from repro.core.rings import AnyRings
from repro.graphs.graph import WeightedGraph


def overlay_from_rings(rings: AnyRings) -> WeightedGraph:
    """Materialize the overlay graph: an edge u-v per ring pointer.

    Accepts either ring backend (packed CSR or the legacy dict view).
    The overlay is undirected here (a virtual link can be traversed both
    ways once established); out-degrees reported in Table 2 reproductions
    use ``out_degree``, the directed pointer count.
    """
    metric = rings.metric
    graph = WeightedGraph(metric.n)
    for u in range(metric.n):
        row = metric.distances_from(u)
        for v in rings.neighbors_of(u):
            if v != u and not graph.has_edge(u, v):
                graph.add_edge(u, v, float(row[v]))
    return graph
