"""Membership patch buffers over CSR-packed structures.

The paper's distributed protocols (§6) assume nodes join and leave
continuously, yet the packed structures in this repo were, until now,
build-once: any churn meant scrub-and-rebuild.  This module is the
incremental substrate. The design follows a *fixed-universe membership*
model:

* The metric universe (all ``n`` points) never changes — churn toggles
  an ``active`` boolean per node.  This matches §6's view of a host
  population with a known address space, and makes every derived state a
  pure function of ``(pristine structure, active set)`` — independent of
  the order in which joins/leaves arrived.
* A :class:`CSRPatch` wraps one CSR block (``indptr``, ``keys`` and any
  payload arrays aligned with ``keys``).  The pristine arrays are
  retained forever; a *merged* copy (pristine filtered to the active set
  at the last merge) serves reads on clean rows, while rows overlapping
  pending churn are served from the pristine arrays masked by the live
  active set.  Append-only join/tombstone segments record what is
  pending; :meth:`CSRPatch.maybe_merge` folds them into a fresh packed
  block when a size or staleness threshold trips.
* Reads of inactive nodes raise :class:`InactiveNode`; reads that
  overlap a pending patch are the ones the structures bracket with an
  IVL-style bound (Rinberg & Keidar): the served value must lie between
  the pre-merge and post-merge answers.

Nothing here knows about distances or rings — it is pure membership +
CSR bookkeeping, shared by the labeling and routing structures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

__all__ = ["InactiveNode", "Membership", "CSRPatch", "PatchStats"]


class InactiveNode(LookupError):
    """A read or update referenced a node that is not currently active."""


def _as_ids(nodes: Iterable[int]) -> np.ndarray:
    arr = np.unique(np.asarray(list(nodes), dtype=np.int64))
    return arr


@dataclass(frozen=True)
class PatchStats:
    """A snapshot of a patch buffer's pending state (JSON-friendly)."""

    universe: int
    active_nodes: int
    rows: int
    dirty_rows: int
    pending_joins: int
    pending_leaves: int
    updates: int
    updates_since_merge: int
    merges: int
    auto_merges: int

    def to_dict(self) -> Dict[str, int]:
        return {
            "universe": self.universe,
            "active_nodes": self.active_nodes,
            "rows": self.rows,
            "dirty_rows": self.dirty_rows,
            "pending_joins": self.pending_joins,
            "pending_leaves": self.pending_leaves,
            "updates": self.updates,
            "updates_since_merge": self.updates_since_merge,
            "merges": self.merges,
            "auto_merges": self.auto_merges,
        }


class Membership:
    """The active set over a fixed node universe, with pending segments.

    ``active`` is the live membership; ``snapshot`` is the membership at
    the last merge.  The append-only ``join_segments`` / ``leave_segments``
    record the updates since that merge, in arrival order — they are what
    a merge folds away.
    """

    def __init__(self, universe: int) -> None:
        self.universe = int(universe)
        self.active = np.ones(self.universe, dtype=bool)
        self.snapshot = self.active.copy()
        self.join_segments: list = []
        self.leave_segments: list = []
        self.updates = 0
        self.updates_since_merge = 0
        self.merges = 0

    # -- queries --------------------------------------------------------

    @property
    def active_count(self) -> int:
        return int(self.active.sum())

    def is_active(self, u: int) -> bool:
        return bool(self.active[u])

    def active_ids(self) -> np.ndarray:
        return np.flatnonzero(self.active).astype(np.int64)

    def pending_ids(self) -> np.ndarray:
        """Every node whose membership changed since the last merge."""
        return np.flatnonzero(self.active != self.snapshot).astype(np.int64)

    def pending_joins(self) -> int:
        return int(np.sum(self.active & ~self.snapshot))

    def pending_leaves(self) -> int:
        return int(np.sum(~self.active & self.snapshot))

    def is_clean(self) -> bool:
        return not self.join_segments and not self.leave_segments

    # -- mutation -------------------------------------------------------

    def apply(
        self, joins: Iterable[int] = (), leaves: Iterable[int] = ()
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Record one batch of joins and leaves (validated, then applied).

        Joins must currently be inactive, leaves active, and the two sets
        disjoint — the same node cannot both join and leave in one batch.
        Returns the normalized ``(joins, leaves)`` id arrays.
        """
        join_ids = _as_ids(joins)
        leave_ids = _as_ids(leaves)
        for arr, what in ((join_ids, "join"), (leave_ids, "leave")):
            if arr.size and (arr.min() < 0 or arr.max() >= self.universe):
                raise ValueError(
                    f"{what} ids out of range [0, {self.universe}): "
                    f"{arr[(arr < 0) | (arr >= self.universe)].tolist()}"
                )
        both = np.intersect1d(join_ids, leave_ids)
        if both.size:
            raise ValueError(
                f"nodes cannot both join and leave in one update: {both.tolist()}"
            )
        already = join_ids[self.active[join_ids]] if join_ids.size else join_ids
        if already.size:
            raise InactiveNode(
                f"cannot join already-active node(s) {already.tolist()}"
            )
        gone = leave_ids[~self.active[leave_ids]] if leave_ids.size else leave_ids
        if gone.size:
            raise InactiveNode(
                f"cannot remove inactive node(s) {gone.tolist()}"
            )
        self.active[join_ids] = True
        self.active[leave_ids] = False
        if join_ids.size:
            self.join_segments.append(join_ids)
        if leave_ids.size:
            self.leave_segments.append(leave_ids)
        self.updates += 1
        self.updates_since_merge += 1
        return join_ids, leave_ids

    def commit(self) -> None:
        """Fold pending segments into the snapshot (called by a merge)."""
        self.snapshot = self.active.copy()
        self.join_segments = []
        self.leave_segments = []
        self.updates_since_merge = 0
        self.merges += 1


class CSRPatch:
    """A patch buffer over one CSR block of node-id rows.

    The pristine ``(indptr, keys, payloads)`` arrays are never modified;
    ``merged_*`` holds the pristine data filtered to the membership
    snapshot of the last merge, and rows whose contents overlap pending
    churn are flagged dirty and served from the pristine arrays masked by
    the live active set (canonical order — identical to what a merge
    would produce).
    """

    def __init__(
        self,
        indptr: np.ndarray,
        keys: np.ndarray,
        payloads: Sequence[np.ndarray] = (),
        universe: Optional[int] = None,
        membership: Optional[Membership] = None,
        merge_threshold: float = 0.5,
        staleness_limit: int = 128,
    ) -> None:
        self.pristine_indptr = np.asarray(indptr, dtype=np.int64)
        self.pristine_keys = np.asarray(keys)
        self.pristine_payloads: Tuple[np.ndarray, ...] = tuple(
            np.asarray(p) for p in payloads
        )
        for p in self.pristine_payloads:
            if p.shape[0] != self.pristine_keys.shape[0]:
                raise ValueError(
                    "payload arrays must align with keys: "
                    f"{p.shape[0]} != {self.pristine_keys.shape[0]}"
                )
        if membership is None:
            if universe is None:
                universe = int(self.pristine_keys.max()) + 1 if self.pristine_keys.size else 0
            membership = Membership(universe)
        self.membership = membership
        self.merge_threshold = float(merge_threshold)
        self.staleness_limit = int(staleness_limit)
        self.rows = int(self.pristine_indptr.size - 1)
        # Served (merged) arrays start as aliases of the pristine block.
        self.merged_indptr = self.pristine_indptr
        self.merged_keys = self.pristine_keys
        self.merged_payloads = self.pristine_payloads
        self._dirty = np.zeros(self.rows, dtype=bool)
        self.auto_merges = 0
        # Lazy inverted index over pristine keys: value -> rows holding it.
        self._inv_keys: Optional[np.ndarray] = None
        self._inv_rows: Optional[np.ndarray] = None

    # -- inverted index -------------------------------------------------

    def _ensure_index(self) -> None:
        if self._inv_keys is not None:
            return
        counts = np.diff(self.pristine_indptr)
        row_of = np.repeat(np.arange(self.rows, dtype=np.int64), counts)
        order = np.argsort(self.pristine_keys, kind="stable")
        self._inv_keys = np.asarray(self.pristine_keys)[order]
        self._inv_rows = row_of[order]

    def rows_containing(self, ids: np.ndarray) -> np.ndarray:
        """Every row whose pristine contents mention any of ``ids``."""
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size == 0:
            return np.empty(0, dtype=np.int64)
        self._ensure_index()
        lo = np.searchsorted(self._inv_keys, ids, side="left")
        hi = np.searchsorted(self._inv_keys, ids, side="right")
        hits = [self._inv_rows[a:b] for a, b in zip(lo, hi) if b > a]
        if not hits:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.concatenate(hits))

    # -- mutation -------------------------------------------------------

    def apply(
        self, joins: Iterable[int] = (), leaves: Iterable[int] = ()
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Apply one membership batch and flag the rows it touches."""
        join_ids, leave_ids = self.membership.apply(joins, leaves)
        changed = np.concatenate([join_ids, leave_ids])
        if changed.size:
            self._dirty[self.rows_containing(changed)] = True
        return join_ids, leave_ids

    # -- reads ----------------------------------------------------------

    def row_dirty(self, r: int) -> bool:
        return bool(self._dirty[r])

    def rows_dirty(self, rows: np.ndarray) -> np.ndarray:
        return self._dirty[np.asarray(rows, dtype=np.int64)]

    @property
    def dirty_row_count(self) -> int:
        return int(self._dirty.sum())

    def filtered_row(self, r: int) -> Tuple[np.ndarray, Tuple[np.ndarray, ...]]:
        """Row ``r`` served live: pristine contents masked by the active
        set, in canonical (pristine) order — bit-identical to what the
        next merge will produce for this row."""
        lo, hi = self.pristine_indptr[r], self.pristine_indptr[r + 1]
        keys = self.pristine_keys[lo:hi]
        mask = self.membership.active[keys]
        return keys[mask], tuple(p[lo:hi][mask] for p in self.pristine_payloads)

    def merged_row(self, r: int) -> Tuple[np.ndarray, Tuple[np.ndarray, ...]]:
        """Row ``r`` as of the last merge (the pre-update IVL endpoint)."""
        lo, hi = self.merged_indptr[r], self.merged_indptr[r + 1]
        return (
            self.merged_keys[lo:hi],
            tuple(p[lo:hi] for p in self.merged_payloads),
        )

    # -- merging --------------------------------------------------------

    def merge(self) -> None:
        """Fold pending churn into a fresh packed CSR block.

        Filters the *pristine* arrays by the live active set — never the
        previously-merged ones — so repeated leave/rejoin cycles always
        reconverge to the same canonical block.
        """
        mask = self.membership.active[self.pristine_keys]
        cum = np.concatenate([[0], np.cumsum(mask, dtype=np.int64)])
        self.merged_indptr = cum[self.pristine_indptr]
        self.merged_keys = self.pristine_keys[mask]
        self.merged_payloads = tuple(p[mask] for p in self.pristine_payloads)
        self._dirty[:] = False
        self.membership.commit()

    def maybe_merge(self) -> bool:
        """Merge when the dirty-row fraction or staleness threshold trips."""
        if self.membership.is_clean():
            return False
        frac = self.dirty_row_count / max(1, self.rows)
        if (
            frac >= self.merge_threshold
            or self.membership.updates_since_merge >= self.staleness_limit
        ):
            self.merge()
            self.auto_merges += 1
            return True
        return False

    def is_clean(self) -> bool:
        return self.membership.is_clean()

    # -- reporting ------------------------------------------------------

    def stats(self) -> PatchStats:
        m = self.membership
        return PatchStats(
            universe=m.universe,
            active_nodes=m.active_count,
            rows=self.rows,
            dirty_rows=self.dirty_row_count,
            pending_joins=m.pending_joins(),
            pending_leaves=m.pending_leaves(),
            updates=m.updates,
            updates_since_merge=m.updates_since_merge,
            merges=m.merges,
            auto_merges=self.auto_merges,
        )

    def __repr__(self) -> str:
        return (
            f"CSRPatch(rows={self.rows}, dirty={self.dirty_row_count}, "
            f"active={self.membership.active_count}/{self.membership.universe})"
        )
