"""Host/virtual enumerations and translation functions.

The space savings of Theorems 2.1, 3.4 and 4.2 come from replacing
``ceil(log n)``-bit global node ids with indices into small local sets:

* a **host enumeration** ``φ_u`` numbers the neighbors of u (ring by ring
  or as one set);
* a **virtual enumeration** ``ψ_u`` numbers u's *virtual* neighbors
  (Theorem 3.4's larger helper set);
* a **translation function** ζ lets a node u convert an index in some
  other node f's enumeration into an index in u's own enumeration — the
  triangle of Figure 2: knowing ``φ_u(f)`` and ``ψ_f(w)``, compute
  ``φ_u(w)``.

All enumerations here are explicit bijections ``set -> [k]`` realized as
sorted tuples, so indices are deterministic and — crucially for the level-0
case, where the paper requires all host enumerations to coincide —
identical across nodes whenever the underlying sets are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from repro._types import NodeId
from repro.bits import SizeAccount, bits_for_count


@dataclass(frozen=True)
class Enumeration:
    """A bijection from a node set onto ``[k]`` (sorted-id order)."""

    members: Tuple[NodeId, ...]
    _index: Dict[NodeId, int] = field(init=False, repr=False, compare=False, hash=False)

    def __post_init__(self) -> None:
        ordered = tuple(sorted(self.members))
        object.__setattr__(self, "members", ordered)
        object.__setattr__(self, "_index", {v: i for i, v in enumerate(ordered)})

    @classmethod
    def of(cls, members: Iterable[NodeId]) -> "Enumeration":
        return cls(tuple(set(int(m) for m in members)))

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._index

    def index_of(self, node: NodeId) -> Optional[int]:
        """φ(node), or None when the node is not enumerated."""
        return self._index.get(node)

    def node_at(self, index: int) -> NodeId:
        """φ^{-1}(index)."""
        return self.members[index]

    def index_bits(self) -> int:
        """Bits per stored index."""
        return bits_for_count(len(self.members))


class TranslationFunction:
    """The paper's ζ: pairs of local indices -> a local index.

    For Theorem 2.1, ``zeta(phi_uj(f), psi_f(w)) = phi_u(w)`` whenever the
    triangle condition holds, null (None) otherwise.  Stored as explicit
    triples; :meth:`bit_size` charges what the paper charges — either the
    dense-table cost ``K^2 ceil(log K)`` (Theorem 2.1's encoding) or the
    triple-list cost (Theorem 3.4's encoding), chosen by the caller.
    """

    def __init__(self) -> None:
        self._table: Dict[Tuple[int, int], int] = {}

    def define(self, f_index: int, w_in_f: int, w_in_host: int) -> None:
        existing = self._table.get((f_index, w_in_f))
        if existing is not None and existing != w_in_host:
            raise ValueError(
                f"inconsistent translation for ({f_index},{w_in_f}): "
                f"{existing} vs {w_in_host}"
            )
        self._table[(f_index, w_in_f)] = w_in_host

    def lookup(self, f_index: int, w_in_f: int) -> Optional[int]:
        """ζ(f_index, w_in_f), or None (the paper's 'null')."""
        return self._table.get((f_index, w_in_f))

    def entries_with_first(self, f_index: int) -> Dict[int, int]:
        """All defined pairs ``(w_in_f -> w_in_host)`` for a fixed f.

        Theorem 3.4's decoder scans "all entries of the form (f, ·)".
        """
        return {
            w_in_f: w_host
            for (fi, w_in_f), w_host in self._table.items()
            if fi == f_index
        }

    def __len__(self) -> int:
        return len(self._table)

    def dense_bit_size(self, domain_a: int, domain_b: int, codomain: int) -> SizeAccount:
        """Theorem 2.1 encoding: a dense [K]x[K] -> [K] table."""
        account = SizeAccount()
        account.add(
            "translation_dense", domain_a * domain_b * bits_for_count(codomain)
        )
        return account

    def triples_bit_size(
        self, first_bits: int, second_bits: int, result_bits: int
    ) -> SizeAccount:
        """Theorem 3.4 encoding: an ordered list of (x, y, z) triples."""
        account = SizeAccount()
        account.add(
            "translation_triples",
            len(self._table) * (first_bits + second_bits + result_bits),
        )
        return account
