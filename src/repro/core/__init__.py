"""Rings of neighbors — the paper's unifying technique.

"Every node u stores pointers to some nodes called 'neighbors'; these
pointers are partitioned into several 'rings', so that for some increasing
sequence of balls {B_i} around u, the neighbors in the i-th ring lie
inside B_i" (§1).

Two collections recur across all four applications (§1, "The unifying
technique"):

* **cardinality-scaled rings** — ball cardinalities grow exponentially
  (``B_ui`` = smallest ball with ``n/2^i`` nodes) and ring members are
  distributed uniformly over the ball's node set (the X-type neighbors);
* **radius-scaled rings** — ball radii grow exponentially and members are
  distributed "uniformly in the space region", i.e. net points or samples
  w.r.t. a doubling measure (the Y-type neighbors).

This package provides those builders (:mod:`~repro.core.rings`), the
zooming sequences that guide routing/identification
(:mod:`~repro.core.zooming`), the host/virtual enumeration machinery that
replaces global node ids with short local indices
(:mod:`~repro.core.enumeration`), and the overlay-network view used for
routing on metrics (:mod:`~repro.core.overlay`).
"""

from repro.core.packed import PackedRings, exact_capped_rings
from repro.core.patch import CSRPatch, InactiveNode, Membership, PatchStats
from repro.core.rings import (
    Ring,
    RingsOfNeighbors,
    cardinality_rings,
    measure_rings,
    net_rings,
)
from repro.core.zooming import ZoomingSequence, net_zooming_sequence
from repro.core.enumeration import Enumeration, TranslationFunction
from repro.core.overlay import overlay_from_rings

__all__ = [
    "CSRPatch",
    "InactiveNode",
    "Membership",
    "PackedRings",
    "PatchStats",
    "Ring",
    "RingsOfNeighbors",
    "exact_capped_rings",
    "cardinality_rings",
    "measure_rings",
    "net_rings",
    "ZoomingSequence",
    "net_zooming_sequence",
    "Enumeration",
    "TranslationFunction",
    "overlay_from_rings",
]
