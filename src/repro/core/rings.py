"""The rings-of-neighbors data structure and its standard builders.

A :class:`Ring` is one scale's worth of neighbor pointers for one node: the
member list plus the ball (radius) it is drawn from.  A
:class:`RingsOfNeighbors` maps every node to its rings, indexed by ring
key (an int scale index, or a tuple for Theorem 5.2(b)'s doubly-indexed
``Y_{u,i,j}`` rings).

Builders:

* :func:`net_rings` — ``Y_uj = B_u(r_j) ∩ G_j`` (Theorem 2.1, 3.2, 4.1):
  deterministic, net-based; cardinality bounded by Lemma 1.4.
* :func:`cardinality_rings` — ``X_ui``: uniform samples from the smallest
  ball holding ``n/2^i`` nodes (Theorem 5.2).
* :func:`measure_rings` — samples w.r.t. a doubling measure from balls of
  exponentially growing radius (Theorem 5.2, 5.5).

All three build the CSR-backed :class:`~repro.core.packed.PackedRings`
by default (``backend="packed"``), which exposes the full read API of
the legacy dict structure; pass ``backend="dict"`` for the per-node
``Dict[RingKey, Ring]`` representation — kept for the bit-for-bit
round-trip property tests and the packed-vs-dict benchmark.  Both
backends consume the same member/sample streams, so they hold
*identical* rings (same keys, radii, member order, and — for the
sampled builders — the same RNG draws).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

import numpy as np

from repro._types import NodeId
from repro.bits import SizeAccount, bits_for_count
from repro.core.packed import PackedRings
from repro.metrics.base import MetricSpace
from repro.metrics.measure import DoublingMeasure
from repro.metrics.nets import NestedNets
from repro.rng import SeedLike, ensure_rng

#: Rings are keyed by scale index; Theorem 5.2(b) uses (i, j) tuples.
RingKey = Hashable


@dataclass(frozen=True)
class Ring:
    """One ring: the members sampled/selected inside ``B_owner(radius)``."""

    owner: NodeId
    key: RingKey
    radius: float
    members: Tuple[NodeId, ...]

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.members)

    def __contains__(self, node: NodeId) -> bool:
        return node in self.members


class RingsOfNeighbors:
    """Per-node collections of rings (the paper's overlay structure)."""

    def __init__(self, metric: MetricSpace) -> None:
        self.metric = metric
        self._rings: Dict[NodeId, Dict[RingKey, Ring]] = {
            u: {} for u in range(metric.n)
        }

    def add_ring(self, ring: Ring) -> None:
        self._rings[ring.owner][ring.key] = ring

    def ring(self, u: NodeId, key: RingKey) -> Optional[Ring]:
        """The ring of ``u`` at ``key``, or None."""
        return self._rings[u].get(key)

    def rings_of(self, u: NodeId) -> Dict[RingKey, Ring]:
        return self._rings[u]

    def neighbors_of(self, u: NodeId) -> List[NodeId]:
        """All distinct neighbors of ``u`` across rings (excluding u)."""
        seen: set[NodeId] = set()
        out: List[NodeId] = []
        for ring in self._rings[u].values():
            for v in ring.members:
                if v != u and v not in seen:
                    seen.add(v)
                    out.append(v)
        return out

    def out_degree(self, u: NodeId) -> int:
        """Number of distinct neighbors of ``u``."""
        return len(self.neighbors_of(u))

    def max_out_degree(self) -> int:
        return max(self.out_degree(u) for u in range(self.metric.n))

    def max_ring_cardinality(self) -> int:
        """The paper's K — the largest single ring."""
        best = 0
        for per_node in self._rings.values():
            for ring in per_node.values():
                best = max(best, len(ring))
        return best

    def merged_with(self, other: "RingsOfNeighbors") -> "RingsOfNeighbors":
        """A new structure holding both ring collections.

        Keys are disambiguated by prefixing with the collection index, so
        combining e.g. X-type and Y-type rings never collides.
        """
        merged = RingsOfNeighbors(self.metric)
        for tag, source in (("a", self), ("b", other)):
            for u in range(self.metric.n):
                for key, ring in source.rings_of(u).items():
                    merged.add_ring(
                        Ring(ring.owner, (tag, key), ring.radius, ring.members)
                    )
        return merged

    def pointer_bits(self, u: NodeId) -> SizeAccount:
        """Bits to store u's neighbor pointers as global ids (the naive
        encoding the paper improves on with local enumerations)."""
        account = SizeAccount()
        id_bits = bits_for_count(self.metric.n)
        account.add("global_id_pointers", self.out_degree(u) * id_bits)
        return account


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------

#: Either representation — every builder returns one of these.
AnyRings = Union[PackedRings, RingsOfNeighbors]


def _pack_or_dict(
    metric: MetricSpace,
    backend: str,
    keys: List[RingKey],
    radii: np.ndarray,
    chunks: List[np.ndarray],
    provenance: Dict[str, Any],
) -> AnyRings:
    """Assemble one builder's ring stream into the requested backend.

    ``chunks`` are node-major per-ring member arrays (the sampled
    builders hand them over already deduplicated and sorted).
    """
    if backend == "packed":
        return PackedRings.from_ring_chunks(metric, keys, radii, chunks, provenance)
    if backend != "dict":
        raise ValueError(f"unknown rings backend {backend!r}")
    rings = RingsOfNeighbors(metric)
    K = len(keys)
    for u in range(metric.n):
        for k, key in enumerate(keys):
            members = chunks[u * K + k]
            rings.add_ring(
                Ring(u, key, float(radii[u, k]),
                     tuple(int(x) for x in members))
            )
    return rings


def net_rings(
    metric: MetricSpace,
    nets: NestedNets,
    radius_for_level: Callable[[int], float],
    levels: Optional[Iterable[int]] = None,
    executor=None,
    backend: str = "packed",
) -> AnyRings:
    """Deterministic rings ``Y_uj = B_u(radius_for_level(j)) ∩ G_j``.

    This is the Theorem 2.1 construction with ``radius_for_level(j) =
    4Δ/(δ 2^j)`` and the Theorem 4.1 construction with ``2^{j+2}/δ``.
    ``executor`` (a :class:`repro.construction.BuildExecutor`, defaulting
    to the hierarchy's own) shards each level's block scan over the
    centers without changing a single member.  Members are in net order
    (the level's admission order), identical across backends.
    """
    level_list = list(levels) if levels is not None else list(range(nets.levels))
    n = metric.n
    all_nodes = range(n)
    # One batched block query per level instead of one row fetch per
    # (node, level): the builder's cost drops to a handful of big gathers.
    per_level: List[List[np.ndarray]] = []
    radii = np.empty((n, len(level_list)))
    for k, j in enumerate(level_list):
        r = radius_for_level(j)
        radii[:, k] = r
        per_level.append(nets.members_in_balls(j, all_nodes, r, executor=executor))
    chunks = [per_level[k][u] for u in range(n) for k in range(len(level_list))]
    return _pack_or_dict(
        metric, backend, level_list, radii, chunks,
        provenance={"builder": "net_rings", "levels": level_list},
    )


def cardinality_rings(
    metric: MetricSpace,
    samples_per_ring: int,
    levels: Optional[int] = None,
    seed: SeedLike = None,
    backend: str = "packed",
) -> AnyRings:
    """X-type rings: for each i, uniform samples from ``B_ui`` (§5.1).

    ``B_ui`` is the smallest ball around u containing at least ``n/2^i``
    nodes; level count defaults to ``ceil(log2 n)``.  Sampling is with
    replacement, mirroring the paper ("select a node independently and
    uniformly at random from the ball B_ui; repeat c log n times"); members
    are deduplicated within a ring.  Both backends consume the identical
    RNG stream, so the rings round-trip bit for bit.
    """
    rng = ensure_rng(seed)
    n = metric.n
    if levels is None:
        levels = max(1, int(np.ceil(np.log2(n))))
    counts = np.ceil(n / np.exp2(np.arange(levels))).astype(int).clip(1, n)
    chunks: List[np.ndarray] = []
    all_radii = np.empty((n, levels))
    for u in range(n):
        row = metric.distances_from(u)
        # All level radii from one sorted row instead of `levels` rui calls.
        radii = np.sort(row)[counts - 1]
        all_radii[u] = radii
        for i in range(levels):
            members = np.flatnonzero(row <= radii[i])
            chosen = rng.choice(members, size=samples_per_ring, replace=True)
            chunks.append(np.unique(chosen))
    return _pack_or_dict(
        metric, backend, list(range(levels)), all_radii, chunks,
        provenance={
            "builder": "cardinality_rings",
            "samples_per_ring": int(samples_per_ring),
            "seed": seed if isinstance(seed, (int, type(None))) else repr(seed),
        },
    )


def measure_rings(
    metric: MetricSpace,
    mu: DoublingMeasure,
    samples_per_ring: int,
    seed: SeedLike = None,
    base_radius: float = 1.0,
    backend: str = "packed",
) -> AnyRings:
    """Y-type rings: µ-weighted samples from balls ``B_u(base * 2^j)`` (§5.1).

    One ring per distance scale ``j ∈ [log Δ]``; this is the Theorem 5.2(a)
    Y-neighbor construction and (with one sample) Theorem 5.5's long-range
    link distribution.  Backends share the RNG stream (see
    :func:`cardinality_rings`).
    """
    rng = ensure_rng(seed)
    levels = metric.log_aspect_ratio()
    n = metric.n
    chunks: List[np.ndarray] = []
    radii = np.tile(base_radius * np.exp2(np.arange(levels)), (n, 1))
    for u in range(n):
        for j in range(levels):
            chosen = mu.sample_from_ball(u, float(radii[u, j]), samples_per_ring, rng)
            chunks.append(np.unique(np.asarray(chosen, dtype=np.int64)))
    return _pack_or_dict(
        metric, backend, list(range(levels)), radii, chunks,
        provenance={
            "builder": "measure_rings",
            "samples_per_ring": int(samples_per_ring),
            "base_radius": float(base_radius),
            "seed": seed if isinstance(seed, (int, type(None))) else repr(seed),
        },
    )
