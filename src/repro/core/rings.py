"""The rings-of-neighbors data structure and its standard builders.

A :class:`Ring` is one scale's worth of neighbor pointers for one node: the
member list plus the ball (radius) it is drawn from.  A
:class:`RingsOfNeighbors` maps every node to its rings, indexed by ring
key (an int scale index, or a tuple for Theorem 5.2(b)'s doubly-indexed
``Y_{u,i,j}`` rings).

Builders:

* :func:`net_rings` — ``Y_uj = B_u(r_j) ∩ G_j`` (Theorem 2.1, 3.2, 4.1):
  deterministic, net-based; cardinality bounded by Lemma 1.4.
* :func:`cardinality_rings` — ``X_ui``: uniform samples from the smallest
  ball holding ``n/2^i`` nodes (Theorem 5.2).
* :func:`measure_rings` — samples w.r.t. a doubling measure from balls of
  exponentially growing radius (Theorem 5.2, 5.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

import numpy as np

from repro._types import NodeId
from repro.bits import SizeAccount, bits_for_count
from repro.metrics.base import MetricSpace
from repro.metrics.measure import DoublingMeasure
from repro.metrics.nets import NestedNets
from repro.rng import SeedLike, ensure_rng

#: Rings are keyed by scale index; Theorem 5.2(b) uses (i, j) tuples.
RingKey = Hashable


@dataclass(frozen=True)
class Ring:
    """One ring: the members sampled/selected inside ``B_owner(radius)``."""

    owner: NodeId
    key: RingKey
    radius: float
    members: Tuple[NodeId, ...]

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self.members)

    def __contains__(self, node: NodeId) -> bool:
        return node in self.members


class RingsOfNeighbors:
    """Per-node collections of rings (the paper's overlay structure)."""

    def __init__(self, metric: MetricSpace) -> None:
        self.metric = metric
        self._rings: Dict[NodeId, Dict[RingKey, Ring]] = {
            u: {} for u in range(metric.n)
        }

    def add_ring(self, ring: Ring) -> None:
        self._rings[ring.owner][ring.key] = ring

    def ring(self, u: NodeId, key: RingKey) -> Optional[Ring]:
        """The ring of ``u`` at ``key``, or None."""
        return self._rings[u].get(key)

    def rings_of(self, u: NodeId) -> Dict[RingKey, Ring]:
        return self._rings[u]

    def neighbors_of(self, u: NodeId) -> List[NodeId]:
        """All distinct neighbors of ``u`` across rings (excluding u)."""
        seen: set[NodeId] = set()
        out: List[NodeId] = []
        for ring in self._rings[u].values():
            for v in ring.members:
                if v != u and v not in seen:
                    seen.add(v)
                    out.append(v)
        return out

    def out_degree(self, u: NodeId) -> int:
        """Number of distinct neighbors of ``u``."""
        return len(self.neighbors_of(u))

    def max_out_degree(self) -> int:
        return max(self.out_degree(u) for u in range(self.metric.n))

    def max_ring_cardinality(self) -> int:
        """The paper's K — the largest single ring."""
        best = 0
        for per_node in self._rings.values():
            for ring in per_node.values():
                best = max(best, len(ring))
        return best

    def merged_with(self, other: "RingsOfNeighbors") -> "RingsOfNeighbors":
        """A new structure holding both ring collections.

        Keys are disambiguated by prefixing with the collection index, so
        combining e.g. X-type and Y-type rings never collides.
        """
        merged = RingsOfNeighbors(self.metric)
        for tag, source in (("a", self), ("b", other)):
            for u in range(self.metric.n):
                for key, ring in source.rings_of(u).items():
                    merged.add_ring(
                        Ring(ring.owner, (tag, key), ring.radius, ring.members)
                    )
        return merged

    def pointer_bits(self, u: NodeId) -> SizeAccount:
        """Bits to store u's neighbor pointers as global ids (the naive
        encoding the paper improves on with local enumerations)."""
        account = SizeAccount()
        id_bits = bits_for_count(self.metric.n)
        account.add("global_id_pointers", self.out_degree(u) * id_bits)
        return account


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------


def net_rings(
    metric: MetricSpace,
    nets: NestedNets,
    radius_for_level: Callable[[int], float],
    levels: Optional[Iterable[int]] = None,
    executor=None,
) -> RingsOfNeighbors:
    """Deterministic rings ``Y_uj = B_u(radius_for_level(j)) ∩ G_j``.

    This is the Theorem 2.1 construction with ``radius_for_level(j) =
    4Δ/(δ 2^j)`` and the Theorem 4.1 construction with ``2^{j+2}/δ``.
    ``executor`` (a :class:`repro.construction.BuildExecutor`, defaulting
    to the hierarchy's own) shards each level's block scan over the
    centers without changing a single member.
    """
    rings = RingsOfNeighbors(metric)
    level_list = list(levels) if levels is not None else list(range(nets.levels))
    all_nodes = range(metric.n)
    # One batched block query per level instead of one row fetch per
    # (node, level): the builder's cost drops to a handful of big gathers.
    for j in level_list:
        r = radius_for_level(j)
        members_per_u = nets.members_in_balls(j, all_nodes, r, executor=executor)
        for u, members in zip(all_nodes, members_per_u):
            rings.add_ring(
                Ring(u, j, r, tuple(int(x) for x in members))
            )
    return rings


def cardinality_rings(
    metric: MetricSpace,
    samples_per_ring: int,
    levels: Optional[int] = None,
    seed: SeedLike = None,
) -> RingsOfNeighbors:
    """X-type rings: for each i, uniform samples from ``B_ui`` (§5.1).

    ``B_ui`` is the smallest ball around u containing at least ``n/2^i``
    nodes; level count defaults to ``ceil(log2 n)``.  Sampling is with
    replacement, mirroring the paper ("select a node independently and
    uniformly at random from the ball B_ui; repeat c log n times"); members
    are deduplicated within a ring.
    """
    rng = ensure_rng(seed)
    n = metric.n
    if levels is None:
        levels = max(1, int(np.ceil(np.log2(n))))
    rings = RingsOfNeighbors(metric)
    counts = np.ceil(n / np.exp2(np.arange(levels))).astype(int).clip(1, n)
    for u in range(n):
        row = metric.distances_from(u)
        # All level radii from one sorted row instead of `levels` rui calls.
        radii = np.sort(row)[counts - 1]
        for i in range(levels):
            radius = radii[i]
            members = np.flatnonzero(row <= radius)
            chosen = rng.choice(members, size=samples_per_ring, replace=True)
            rings.add_ring(
                Ring(u, i, float(radius), tuple(sorted(set(int(x) for x in chosen))))
            )
    return rings


def measure_rings(
    metric: MetricSpace,
    mu: DoublingMeasure,
    samples_per_ring: int,
    seed: SeedLike = None,
    base_radius: float = 1.0,
) -> RingsOfNeighbors:
    """Y-type rings: µ-weighted samples from balls ``B_u(base * 2^j)`` (§5.1).

    One ring per distance scale ``j ∈ [log Δ]``; this is the Theorem 5.2(a)
    Y-neighbor construction and (with one sample) Theorem 5.5's long-range
    link distribution.
    """
    rng = ensure_rng(seed)
    levels = metric.log_aspect_ratio()
    rings = RingsOfNeighbors(metric)
    for u in range(metric.n):
        for j in range(levels):
            radius = base_radius * float(2**j)
            chosen = mu.sample_from_ball(u, radius, samples_per_ring, rng)
            rings.add_ring(
                Ring(u, j, radius, tuple(sorted(set(int(x) for x in chosen))))
            )
    return rings
