"""Zooming sequences (Theorem 2.1 / 3.4).

For a target node t, the *zooming sequence* is a list of net points that
"zoom in" on t: ``f_tj ∈ G_j`` lies within the level-j net radius of t.
Routing uses the sequence as a trail of intermediate targets; distance
labeling uses it to identify common neighbors without global ids.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro._types import NodeId
from repro.metrics.base import MetricSpace
from repro.metrics.nets import NestedNets


@dataclass(frozen=True)
class ZoomingSequence:
    """``nodes[j]`` is the paper's ``f_tj`` — a level-j net point near t."""

    target: NodeId
    nodes: Tuple[NodeId, ...]

    def __len__(self) -> int:
        return len(self.nodes)

    def __getitem__(self, j: int) -> NodeId:
        return self.nodes[j]


def net_zooming_sequence(
    metric: MetricSpace, nets: NestedNets, t: NodeId
) -> ZoomingSequence:
    """The Theorem 2.1 zooming sequence: for each level j, the nearest
    level-j net point (within the net radius of t by the covering
    property)."""
    nodes: List[NodeId] = []
    for j in range(nets.levels):
        nodes.append(nets.nearest_member(j, t))
    return ZoomingSequence(target=t, nodes=tuple(nodes))


def rui_zooming_sequence(
    metric: MetricSpace, nets: NestedNets, t: NodeId, levels: int
) -> ZoomingSequence:
    """The Theorem 3.4 zooming sequence.

    For each i ∈ [levels] pick ``f_ti ∈ G_l`` with ``l = floor(log2(r_ti/4))``
    within distance ``r_ti/4`` of t (clamped to level 0 when ``r_ti`` is at
    the bottom scale; ``f_ti = t`` is possible and fine, per the paper).
    ``nets`` must be the ascending 2^j-net hierarchy with base_radius equal
    to the metric's minimum-distance scale used in the Theorem 3.x modules.
    """
    import numpy as np

    nodes: List[NodeId] = []
    for i in range(levels):
        r_ti = metric.rui(t, i)
        if r_ti <= 0:
            nodes.append(t)
            continue
        level = int(np.floor(np.log2(r_ti / 4.0 / nets.base_radius)))
        level = max(0, min(nets.levels - 1, level))
        candidates = nets.net_array(level)
        row = metric.distances_from(t)
        best = int(candidates[row[candidates].argmin()])
        nodes.append(best)
    return ZoomingSequence(target=t, nodes=tuple(nodes))
