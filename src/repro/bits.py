"""Bit-accounting primitives.

Every size claim in the paper (routing table bits, packet header bits,
label bits) is reproduced by *counting the bits of the concrete data
structures we build*, never by plugging numbers into the asymptotic
formulas.  This module provides the small vocabulary used for that
accounting:

* :func:`bits_for_count` — bits needed to store an index into a set of a
  given cardinality (``ceil(log2(k))``, with sane behaviour for ``k <= 1``).
* :func:`bits_for_value` — bits needed to store a non-negative integer.
* :class:`SizeAccount` — a labelled breakdown of a structure's storage,
  supporting addition and pretty-printing so benches can report both the
  total and the per-component split (e.g. translation functions vs
  first-hop pointers, as in Table 3 of the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Tuple


def bits_for_count(k: int) -> int:
    """Bits needed to index into a set of cardinality ``k``.

    ``bits_for_count(1) == 0`` (a singleton needs no index) and
    ``bits_for_count(0) == 0``.  For ``k >= 2`` this is ``ceil(log2 k)``.

    >>> bits_for_count(8)
    3
    >>> bits_for_count(9)
    4
    >>> bits_for_count(1)
    0
    """
    if k < 0:
        raise ValueError(f"cardinality must be non-negative, got {k}")
    if k <= 1:
        return 0
    return math.ceil(math.log2(k))


def bits_for_value(v: int) -> int:
    """Bits needed to store the non-negative integer ``v`` itself.

    >>> bits_for_value(0)
    1
    >>> bits_for_value(7)
    3
    >>> bits_for_value(8)
    4
    """
    if v < 0:
        raise ValueError(f"value must be non-negative, got {v}")
    if v == 0:
        return 1
    return v.bit_length()


@dataclass
class SizeAccount:
    """A labelled bit-count breakdown for one data structure.

    Components are named (e.g. ``"first_hop_pointers"``,
    ``"translation_functions"``) so benchmark tables can report how storage
    splits across the parts the paper calls out.
    """

    components: Dict[str, int] = field(default_factory=dict)

    @property
    def total_bits(self) -> int:
        """Sum of all component bit counts."""
        return sum(self.components.values())

    @property
    def total_bytes(self) -> float:
        """Total size in bytes (may be fractional)."""
        return self.total_bits / 8.0

    def add(self, component: str, bits: int) -> None:
        """Accumulate ``bits`` into ``component`` (creating it if needed)."""
        if bits < 0:
            raise ValueError(f"cannot add negative bits ({bits}) to {component!r}")
        self.components[component] = self.components.get(component, 0) + bits

    def merge(self, other: "SizeAccount") -> "SizeAccount":
        """Return a new account combining both breakdowns."""
        merged = SizeAccount(dict(self.components))
        for name, bits in other.components.items():
            merged.add(name, bits)
        return merged

    def __add__(self, other: "SizeAccount") -> "SizeAccount":
        return self.merge(other)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(self.components.items())

    def as_dict(self) -> Mapping[str, int]:
        """A read-only-ish copy of the breakdown."""
        return dict(self.components)

    def describe(self) -> str:
        """Human-readable one-per-line breakdown, largest first."""
        lines = [
            f"  {name:<28s} {bits:>12,d} bits"
            for name, bits in sorted(
                self.components.items(), key=lambda kv: -kv[1]
            )
        ]
        lines.append(f"  {'TOTAL':<28s} {self.total_bits:>12,d} bits")
        return "\n".join(lines)


def max_account(accounts: Iterable[SizeAccount]) -> SizeAccount:
    """The account with the largest total (ties broken arbitrarily).

    Used for "maximal routing table size" style metrics, which is how the
    paper states its storage bounds.
    """
    best: SizeAccount | None = None
    for account in accounts:
        if best is None or account.total_bits > best.total_bits:
            best = account
    if best is None:
        raise ValueError("max_account() of empty iterable")
    return best
