"""Weighted undirected graphs with indexed adjacency.

The routing schemes of §2/§4 address a node's outgoing links by *local
index* (the paper's enumeration ``φ_u`` of outgoing links), because a
first-hop pointer stored as a link index costs only ``ceil(log Dout)``
bits.  :class:`WeightedGraph` therefore keeps, for every node, an ordered
list of (neighbor, weight) pairs; the position in that list is the link
index.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from repro._types import NodeId


class WeightedGraph:
    """An undirected graph with positive edge weights and indexed adjacency."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError("graph needs at least one node")
        self._n = n
        self._adjacency: List[List[Tuple[NodeId, float]]] = [[] for _ in range(n)]
        self._edge_index: List[Dict[NodeId, int]] = [dict() for _ in range(n)]
        self._max_out_degree: int = 0

    @property
    def n(self) -> int:
        """Number of nodes."""
        return self._n

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return sum(len(adj) for adj in self._adjacency) // 2

    def add_edge(self, u: NodeId, v: NodeId, weight: float) -> None:
        """Add the undirected edge ``{u, v}``; re-adding updates the weight."""
        if not (0 <= u < self._n and 0 <= v < self._n):
            raise ValueError(f"edge ({u},{v}) out of range [0,{self._n})")
        if u == v:
            raise ValueError("self-loops are not allowed")
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        for a, b in ((u, v), (v, u)):
            idx = self._edge_index[a].get(b)
            if idx is None:
                self._edge_index[a][b] = len(self._adjacency[a])
                self._adjacency[a].append((b, float(weight)))
                self._max_out_degree = max(
                    self._max_out_degree, len(self._adjacency[a])
                )
            else:
                self._adjacency[a][idx] = (b, float(weight))

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        return v in self._edge_index[u]

    def weight(self, u: NodeId, v: NodeId) -> float:
        """Weight of edge ``{u, v}``; raises KeyError if absent."""
        return self._adjacency[u][self._edge_index[u][v]][1]

    def neighbors(self, u: NodeId) -> List[Tuple[NodeId, float]]:
        """Ordered (neighbor, weight) list; list position is the link index."""
        return self._adjacency[u]

    def out_degree(self, u: NodeId) -> int:
        return len(self._adjacency[u])

    def max_out_degree(self) -> int:
        """The paper's ``Dout`` (maintained incrementally: per-node size
        accounting calls this once per node, so it must be O(1))."""
        return self._max_out_degree

    def link_index(self, u: NodeId, v: NodeId) -> int:
        """The local index of edge u->v in u's adjacency (paper's φ_u(v))."""
        return self._edge_index[u][v]

    def link_target(self, u: NodeId, index: int) -> NodeId:
        """Inverse of :meth:`link_index`: the neighbor behind a link index."""
        return self._adjacency[u][index][0]

    def edges(self) -> Iterator[Tuple[NodeId, NodeId, float]]:
        """All undirected edges once, as (u, v, weight) with u < v."""
        for u in range(self._n):
            for v, w in self._adjacency[u]:
                if u < v:
                    yield u, v, w

    def is_connected(self) -> bool:
        """BFS connectivity check."""
        if self._n == 0:
            return True
        seen = np.zeros(self._n, dtype=bool)
        stack = [0]
        seen[0] = True
        while stack:
            u = stack.pop()
            for v, _ in self._adjacency[u]:
                if not seen[v]:
                    seen[v] = True
                    stack.append(v)
        return bool(seen.all())

    @classmethod
    def from_edges(
        cls, n: int, edges: Sequence[Tuple[NodeId, NodeId, float]]
    ) -> "WeightedGraph":
        """Build a graph from an (u, v, weight) edge list."""
        graph = cls(n)
        for u, v, w in edges:
            graph.add_edge(u, v, w)
        return graph

    def to_adjacency_arrays(self) -> Dict[str, np.ndarray]:
        """Directed adjacency as CSR arrays, preserving link-index order.

        Persisting the *directed* adjacency (rather than a u<v edge list)
        keeps every node's link enumeration ``φ_u`` byte-identical on
        reload, so stored link indices stay valid.
        """
        indptr = np.zeros(self._n + 1, dtype=np.int64)
        for u in range(self._n):
            indptr[u + 1] = indptr[u] + len(self._adjacency[u])
        targets = np.empty(int(indptr[-1]), dtype=np.int64)
        weights = np.empty(int(indptr[-1]), dtype=np.float64)
        cursor = 0
        for adj in self._adjacency:
            for v, w in adj:
                targets[cursor] = v
                weights[cursor] = w
                cursor += 1
        return {
            "adj_indptr": indptr,
            "adj_targets": targets,
            "adj_weights": weights,
        }

    @classmethod
    def from_adjacency_arrays(
        cls, arrays: Dict[str, np.ndarray]
    ) -> "WeightedGraph":
        """Inverse of :meth:`to_adjacency_arrays` (same link order)."""
        indptr = np.asarray(arrays["adj_indptr"])
        targets = np.asarray(arrays["adj_targets"])
        weights = np.asarray(arrays["adj_weights"])
        graph = cls(len(indptr) - 1)
        for u in range(graph._n):
            lo, hi = int(indptr[u]), int(indptr[u + 1])
            adj = [
                (int(targets[k]), float(weights[k])) for k in range(lo, hi)
            ]
            graph._adjacency[u] = adj
            graph._edge_index[u] = {v: i for i, (v, _) in enumerate(adj)}
            graph._max_out_degree = max(graph._max_out_degree, len(adj))
        return graph

    def to_scipy_csr(self):
        """Sparse CSR adjacency matrix (for Dijkstra)."""
        from scipy.sparse import csr_matrix

        rows, cols, data = [], [], []
        for u in range(self._n):
            for v, w in self._adjacency[u]:
                rows.append(u)
                cols.append(v)
                data.append(w)
        return csr_matrix((data, (rows, cols)), shape=(self._n, self._n))
