"""Shortest paths, first-hop pointers and shortest-path trees.

Theorem 2.1's routing forwards packets along *first-hop pointers*: "the
first edge of some shortest uv-path in G", stored as a local link index
(``ceil(log Dout)`` bits).  :class:`FirstHopTable` materializes those
pointers for all pairs from one Dijkstra run per source, with the crucial
consistency property the proof of Claim 2.4(c) relies on: if the first hop
from u toward w is v, then following first hops from v also reaches w along
a shortest path (shortest-path subpath optimality, which holds because all
pointers are derived from the same predecessor forest).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro._types import NodeId
from repro.graphs.graph import WeightedGraph


def all_pairs_shortest_paths(graph: WeightedGraph) -> np.ndarray:
    """Dense APSP distance matrix via scipy Dijkstra."""
    from scipy.sparse.csgraph import dijkstra

    return dijkstra(graph.to_scipy_csr(), directed=False)


def _predecessors(graph: WeightedGraph) -> Tuple[np.ndarray, np.ndarray]:
    """Distances and predecessor matrix (pred[s, v] = parent of v in the
    shortest-path tree rooted at s)."""
    from scipy.sparse.csgraph import dijkstra

    dist, pred = dijkstra(graph.to_scipy_csr(), directed=False, return_predecessors=True)
    return dist, pred


class FirstHopTable:
    """First hops of shortest paths for all (source, target) pairs.

    ``first_hop(u, t)`` is the neighbor of u on a shortest u-t path;
    ``first_hop_link(u, t)`` the corresponding local link index — the form
    Theorem 2.1 stores.  Hops are consistent across nodes (see module
    docstring), so chaining them always traces an exact shortest path.
    """

    def __init__(self, graph: WeightedGraph) -> None:
        self.graph = graph
        self.dist, self._pred = _predecessors(graph)
        if not np.all(np.isfinite(self.dist)):
            raise ValueError("graph is not connected")
        n = graph.n
        # first[s, v] = first hop on the shortest s->v path.  From the
        # predecessor matrix of source s: walk v's ancestry toward s once,
        # memoizing along the way (amortized O(n) per source).
        self._first = np.full((n, n), -1, dtype=np.int64)
        for s in range(n):
            first_s = self._first[s]
            first_s[s] = s
            pred_s = self._pred[s]
            for v in range(n):
                if first_s[v] >= 0:
                    continue
                chain = []
                x = v
                while first_s[x] < 0:
                    chain.append(x)
                    x = pred_s[x]
                # x is now either s or a node with known first hop.
                hop = chain[-1] if x == s else first_s[x]
                for node in chain:
                    first_s[node] = hop
        # Symmetric view: hop from u toward t = first[u, t].
        # (dijkstra with directed=False on an undirected graph gives
        # per-source trees; first[u][t] is the hop out of u.)

    def distance(self, u: NodeId, t: NodeId) -> float:
        return float(self.dist[u, t])

    def first_hop(self, u: NodeId, t: NodeId) -> NodeId:
        """Neighbor of u on a shortest u->t path (u itself when u == t)."""
        return int(self._first[u, t])

    def first_hop_link(self, u: NodeId, t: NodeId) -> Optional[int]:
        """Local link index of the first hop, or None when u == t."""
        if u == t:
            return None
        return self.graph.link_index(u, self.first_hop(u, t))

    def trace_path(self, u: NodeId, t: NodeId) -> List[NodeId]:
        """The full shortest path from u to t following first hops."""
        path = [u]
        current = u
        while current != t:
            current = self.first_hop(current, t)
            path.append(current)
            if len(path) > self.graph.n:
                raise RuntimeError("first-hop pointers do not converge")
        return path

    def path_hops(self, u: NodeId, t: NodeId) -> int:
        """Number of edges on the traced shortest path."""
        return len(self.trace_path(u, t)) - 1


def shortest_path_tree(
    graph: WeightedGraph, root: NodeId, members: Optional[np.ndarray] = None
) -> Dict[NodeId, NodeId]:
    """Parent map of the shortest-path tree rooted at ``root``.

    When ``members`` is given, the tree is computed in the *induced
    subgraph* on those nodes (needed by Theorem 4.2's mode M2, where the
    nodes of a packing ball B maintain a tree among themselves).  Plain
    Dijkstra restricted to the member set.
    """
    import heapq

    n = graph.n
    allowed = np.ones(n, dtype=bool)
    if members is not None:
        allowed[:] = False
        allowed[np.asarray(members, dtype=int)] = True
        if not allowed[root]:
            raise ValueError("root must belong to members")
    dist = np.full(n, np.inf)
    parent: Dict[NodeId, NodeId] = {root: root}
    dist[root] = 0.0
    heap: List[Tuple[float, NodeId]] = [(0.0, root)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in graph.neighbors(u):
            if not allowed[v]:
                continue
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return parent
