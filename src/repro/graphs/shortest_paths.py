"""Shortest paths, first-hop pointers and shortest-path trees.

Theorem 2.1's routing forwards packets along *first-hop pointers*: "the
first edge of some shortest uv-path in G", stored as a local link index
(``ceil(log Dout)`` bits).  :class:`FirstHopTable` materializes those
pointers for all pairs from one Dijkstra run per source, with the crucial
consistency property the proof of Claim 2.4(c) relies on: if the first hop
from u toward w is v, then following first hops from v also reaches w along
a shortest path (shortest-path subpath optimality, which holds because all
pointers are derived from the same predecessor forest).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro._types import NodeId
from repro.graphs.graph import WeightedGraph


def all_pairs_shortest_paths(graph: WeightedGraph) -> np.ndarray:
    """Dense APSP distance matrix via scipy Dijkstra."""
    from scipy.sparse.csgraph import dijkstra

    return dijkstra(graph.to_scipy_csr(), directed=False)


def _predecessors(graph: WeightedGraph) -> Tuple[np.ndarray, np.ndarray]:
    """Distances and predecessor matrix (pred[s, v] = parent of v in the
    shortest-path tree rooted at s)."""
    from scipy.sparse.csgraph import dijkstra

    dist, pred = dijkstra(graph.to_scipy_csr(), directed=False, return_predecessors=True)
    return dist, pred


class FirstHopTable:
    """First hops of shortest paths for all (source, target) pairs.

    ``first_hop(u, t)`` is the neighbor of u on a shortest u-t path;
    ``first_hop_link(u, t)`` the corresponding local link index — the form
    Theorem 2.1 stores.  Hops are consistent across nodes (see module
    docstring), so chaining them always traces an exact shortest path.

    Two backends:

    * ``dense=True`` (default) — per-source predecessor trees for all n
      sources, Θ(n²) memory, O(1) lookups: right up to a few thousand
      nodes, and bit-for-bit the historical behaviour.
    * ``dense=False`` — **lazy, target-keyed**: one Dijkstra tree rooted
      at each *queried* target, kept in a byte-bounded LRU.  The hop from
      u toward t is u's parent in t's tree, so every hop along one
      packet's route reads the same cached row; memory never exceeds the
      cache budget.  Hops remain consistent (all pointers toward t come
      from t's single predecessor forest), though tie-breaking between
      equal-length shortest paths may differ from the dense backend.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        dense: bool = True,
        row_cache_bytes: Optional[int] = None,
    ) -> None:
        # Local import: RowCache is metric-agnostic plumbing, but lives in
        # repro.metrics.base; keep the package layering acyclic-by-module.
        from repro.metrics.base import DEFAULT_ROW_CACHE_BYTES, RowCache

        self.graph = graph
        self.dense = bool(dense)
        if not self.dense:
            if not graph.is_connected():
                raise ValueError("graph is not connected")
            self.dist = None
            self._csr = graph.to_scipy_csr()
            self._rows = RowCache(
                DEFAULT_ROW_CACHE_BYTES if row_cache_bytes is None else row_cache_bytes
            )
            return
        self.dist, self._pred = _predecessors(graph)
        if not np.all(np.isfinite(self.dist)):
            raise ValueError("graph is not connected")
        n = graph.n
        # first[s, v] = first hop on the shortest s->v path.  From the
        # predecessor matrix of source s: walk v's ancestry toward s once,
        # memoizing along the way (amortized O(n) per source).
        self._first = np.full((n, n), -1, dtype=np.int64)
        for s in range(n):
            first_s = self._first[s]
            first_s[s] = s
            pred_s = self._pred[s]
            for v in range(n):
                if first_s[v] >= 0:
                    continue
                chain = []
                x = v
                while first_s[x] < 0:
                    chain.append(x)
                    x = pred_s[x]
                # x is now either s or a node with known first hop.
                hop = chain[-1] if x == s else first_s[x]
                for node in chain:
                    first_s[node] = hop
        # Symmetric view: hop from u toward t = first[u, t].
        # (dijkstra with directed=False on an undirected graph gives
        # per-source trees; first[u][t] is the hop out of u.)

    def to_arrays(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        """(meta, arrays) inventory for the on-disk container.

        The dense backend persists its Θ(n²) ``first``/``dist`` matrices —
        the expensive part of a rebuild.  The lazy backend persists
        nothing: its rows are recomputed on demand from the graph CSR,
        which is exactly what a fresh instance would do (bit-for-bit,
        since rows derive from the same canonical CSR).
        """
        meta: Dict[str, object] = {"dense": self.dense}
        arrays: Dict[str, np.ndarray] = {}
        if self.dense:
            arrays["first_hop"] = self._first
            arrays["first_hop_dist"] = self.dist
        return meta, arrays

    @classmethod
    def from_arrays(
        cls,
        graph: WeightedGraph,
        meta: Dict[str, object],
        arrays: Dict[str, np.ndarray],
        row_cache_bytes: Optional[int] = None,
    ) -> "FirstHopTable":
        """Rehydrate from :meth:`to_arrays` without re-running Dijkstra.

        Dense tables keep the mapped arrays as-is (zero copy); lazy
        tables rebuild their empty row cache over the graph.
        """
        if not meta.get("dense", True):
            return cls(graph, dense=False, row_cache_bytes=row_cache_bytes)
        table = cls.__new__(cls)
        table.graph = graph
        table.dense = True
        table._first = np.asarray(arrays["first_hop"])
        table.dist = np.asarray(arrays["first_hop_dist"])
        table._pred = None
        return table

    def _target_row(self, t: NodeId) -> np.ndarray:
        """Lazy backend: the (2, n) [distances; hops-toward-t] block of t.

        Row 1 holds, per node u, u's parent in the shortest-path tree
        rooted at t — i.e. the first hop of a shortest u->t path — stored
        as float64 (exact for any realistic n).
        """
        cached = self._rows.get(t)
        if cached is None:
            from scipy.sparse.csgraph import dijkstra

            dist, pred = dijkstra(
                self._csr, directed=False, indices=[t], return_predecessors=True
            )
            hops = pred[0].astype(np.float64)
            hops[t] = t
            cached = self._rows.put(t, np.stack([dist[0], hops]))
        return cached

    def distance(self, u: NodeId, t: NodeId) -> float:
        if self.dense:
            return float(self.dist[u, t])
        return float(self._target_row(t)[0, u])

    def first_hop(self, u: NodeId, t: NodeId) -> NodeId:
        """Neighbor of u on a shortest u->t path (u itself when u == t)."""
        if self.dense:
            return int(self._first[u, t])
        if u == t:
            return int(u)
        return int(self._target_row(t)[1, u])

    def first_hop_link(self, u: NodeId, t: NodeId) -> Optional[int]:
        """Local link index of the first hop, or None when u == t."""
        if u == t:
            return None
        return self.graph.link_index(u, self.first_hop(u, t))

    def trace_path(self, u: NodeId, t: NodeId) -> List[NodeId]:
        """The full shortest path from u to t following first hops."""
        path = [u]
        current = u
        while current != t:
            current = self.first_hop(current, t)
            path.append(current)
            if len(path) > self.graph.n:
                raise RuntimeError("first-hop pointers do not converge")
        return path

    def path_hops(self, u: NodeId, t: NodeId) -> int:
        """Number of edges on the traced shortest path."""
        return len(self.trace_path(u, t)) - 1


def shortest_path_tree(
    graph: WeightedGraph, root: NodeId, members: Optional[np.ndarray] = None
) -> Dict[NodeId, NodeId]:
    """Parent map of the shortest-path tree rooted at ``root``.

    When ``members`` is given, the tree is computed in the *induced
    subgraph* on those nodes (needed by Theorem 4.2's mode M2, where the
    nodes of a packing ball B maintain a tree among themselves).  Plain
    Dijkstra restricted to the member set.
    """
    import heapq

    n = graph.n
    allowed = np.ones(n, dtype=bool)
    if members is not None:
        allowed[:] = False
        allowed[np.asarray(members, dtype=int)] = True
        if not allowed[root]:
            raise ValueError("root must belong to members")
    dist = np.full(n, np.inf)
    parent: Dict[NodeId, NodeId] = {root: root}
    dist[root] = 0.0
    heap: List[Tuple[float, NodeId]] = [(0.0, root)]
    while heap:
        d, u = heapq.heappop(heap)
        if d > dist[u]:
            continue
        for v, w in graph.neighbors(u):
            if not allowed[v]:
                continue
            nd = d + w
            if nd < dist[v]:
                dist[v] = nd
                parent[v] = u
                heapq.heappush(heap, (nd, v))
    return parent
