"""Weighted graphs, shortest paths and graph workload generators.

Routing schemes in the paper run on weighted undirected graphs whose
shortest-path metric is doubling ("doubling graphs", §2).  The routing
algorithms need two graph services beyond distances:

* per-edge *first-hop pointers*: for a source u and target v, the index of
  the outgoing edge of u that starts some shortest u-v path (Theorem 2.1
  stores these with only ``ceil(log Dout)`` bits each);
* hop-by-hop packet simulation over real edges.
"""

from repro.graphs.graph import WeightedGraph
from repro.graphs.shortest_paths import (
    FirstHopTable,
    all_pairs_shortest_paths,
    shortest_path_tree,
)
from repro.graphs.generators import (
    grid_graph,
    internet_like_graph,
    knn_geometric_graph,
    random_geometric_graph,
    ring_with_chords_graph,
)

__all__ = [
    "WeightedGraph",
    "FirstHopTable",
    "all_pairs_shortest_paths",
    "shortest_path_tree",
    "grid_graph",
    "internet_like_graph",
    "knn_geometric_graph",
    "random_geometric_graph",
    "ring_with_chords_graph",
]
