"""Graph workload generators producing doubling graphs.

All generators return connected :class:`~repro.graphs.graph.WeightedGraph`
instances whose shortest-path metrics have low doubling dimension — the
input family of §2 and §4.  They also tend to contain near-shortest paths
with small hop counts, the extra hypothesis of Theorem 4.2.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.graph import WeightedGraph
from repro.rng import SeedLike, ensure_rng


def grid_graph(side: int, dim: int = 2, jitter: float = 0.0, seed: SeedLike = None) -> WeightedGraph:
    """The ``side^dim`` lattice with unit (optionally jittered) edge weights."""
    if side < 2:
        raise ValueError("side must be at least 2")
    rng = ensure_rng(seed)
    n = side**dim
    graph = WeightedGraph(n)

    def node_id(coords: tuple[int, ...]) -> int:
        idx = 0
        for c in coords:
            idx = idx * side + c
        return idx

    for flat in range(n):
        coords = []
        rest = flat
        for _ in range(dim):
            coords.append(rest % side)
            rest //= side
        coords = tuple(reversed(coords))
        for axis in range(dim):
            if coords[axis] + 1 < side:
                other = list(coords)
                other[axis] += 1
                weight = 1.0 + (jitter * rng.random() if jitter else 0.0)
                graph.add_edge(node_id(coords), node_id(tuple(other)), weight)
    return graph


def _euclidean_points_graph(
    points: np.ndarray, k: int, rng: np.random.Generator
) -> WeightedGraph:
    """kNN graph on points, patched to connectivity with extra edges."""
    n = points.shape[0]
    graph = WeightedGraph(n)
    diff = points[:, None, :] - points[None, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    np.fill_diagonal(dist, np.inf)
    for u in range(n):
        nearest = np.argpartition(dist[u], min(k, n - 2))[:k]
        for v in nearest:
            graph.add_edge(u, int(v), float(dist[u, v]))
    # Patch connectivity: union components through their closest node pair.
    while not graph.is_connected():
        comp = _components(graph)
        labels = np.unique(comp)
        a_nodes = np.flatnonzero(comp == labels[0])
        b_nodes = np.flatnonzero(comp != labels[0])
        sub = dist[np.ix_(a_nodes, b_nodes)]
        i, j = np.unravel_index(np.argmin(sub), sub.shape)
        u, v = int(a_nodes[i]), int(b_nodes[j])
        graph.add_edge(u, v, float(dist[u, v]))
    return graph


def _components(graph: WeightedGraph) -> np.ndarray:
    comp = np.full(graph.n, -1, dtype=int)
    label = 0
    for start in range(graph.n):
        if comp[start] >= 0:
            continue
        stack = [start]
        comp[start] = label
        while stack:
            u = stack.pop()
            for v, _ in graph.neighbors(u):
                if comp[v] < 0:
                    comp[v] = label
                    stack.append(v)
        label += 1
    return comp


def knn_geometric_graph(
    n: int, dim: int = 2, k: int = 4, seed: SeedLike = None
) -> WeightedGraph:
    """k-nearest-neighbor graph on uniform points in the unit cube."""
    if n < 2:
        raise ValueError("n must be at least 2")
    rng = ensure_rng(seed)
    points = rng.random((n, dim))
    return _euclidean_points_graph(points, k, rng)


def random_geometric_graph(
    n: int, radius: float, dim: int = 2, seed: SeedLike = None
) -> WeightedGraph:
    """Unit-cube random geometric graph: edge iff distance <= radius.

    Patched to connectivity like the kNN generator.
    """
    if n < 2:
        raise ValueError("n must be at least 2")
    rng = ensure_rng(seed)
    points = rng.random((n, dim))
    graph = WeightedGraph(n)
    diff = points[:, None, :] - points[None, :, :]
    dist = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    np.fill_diagonal(dist, np.inf)
    for u in range(n):
        for v in np.flatnonzero(dist[u] <= radius):
            if u < v:
                graph.add_edge(u, int(v), float(dist[u, v]))
    while not graph.is_connected():
        comp = _components(graph)
        labels = np.unique(comp)
        a_nodes = np.flatnonzero(comp == labels[0])
        b_nodes = np.flatnonzero(comp != labels[0])
        sub = dist[np.ix_(a_nodes, b_nodes)]
        i, j = np.unravel_index(np.argmin(sub), sub.shape)
        u, v = int(a_nodes[i]), int(b_nodes[j])
        graph.add_edge(u, v, float(dist[u, v]))
    return graph


def ring_with_chords_graph(
    n: int, chords: int = 0, seed: SeedLike = None
) -> WeightedGraph:
    """A unit-weight cycle plus random chords (weights = hop distance)."""
    if n < 3:
        raise ValueError("ring needs at least 3 nodes")
    rng = ensure_rng(seed)
    graph = WeightedGraph(n)
    for u in range(n):
        graph.add_edge(u, (u + 1) % n, 1.0)
    for _ in range(chords):
        u, v = rng.integers(0, n, size=2)
        u, v = int(u), int(v)
        if u != v and not graph.has_edge(u, v):
            hop = min(abs(u - v), n - abs(u - v))
            graph.add_edge(u, v, float(hop))
    return graph


def internet_like_graph(
    n: int,
    tiers: int = 3,
    branching: int = 4,
    k: int = 3,
    seed: SeedLike = None,
) -> WeightedGraph:
    """kNN graph over hierarchically clustered points (AS-topology stand-in).

    See :func:`repro.metrics.synthetic.internet_like_metric` for the
    placement model and the substitution rationale in DESIGN.md.
    """
    if n < 2:
        raise ValueError("n must be at least 2")
    rng = ensure_rng(seed)
    dim = 3
    points = np.zeros((n, dim))
    scale = 1.0
    group = np.zeros(n, dtype=int)
    for _ in range(tiers):
        n_groups = int(group.max()) + 1
        centers = rng.normal(scale=scale, size=(n_groups, branching, dim))
        sub = rng.integers(0, branching, size=n)
        points += centers[group, sub]
        group = group * branching + sub
        scale /= branching
    points += rng.normal(scale=scale, size=(n, dim))
    return _euclidean_points_graph(points, k, rng)
