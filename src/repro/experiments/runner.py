"""The experiment runner: spec → cells → (parallel) execution → ResultSet.

:func:`run` expands an :class:`~repro.experiments.spec.ExperimentSpec`
into grid cells and executes each through the facade —
:func:`repro.api.build` (sharing one :class:`~repro.api.BuildCache`, so
several schemes on one workload realize the metric once) and
:func:`repro.api.evaluate` over the cell's plan — then stamps
provenance and persists the :class:`~repro.experiments.results.ResultSet`
under ``benchmarks/results/``.

Two independent parallelism axes:

* ``processes`` — *across cells*: workload groups fan out over a process
  pool, each worker running one group serially with its own build cache.
  ``None``/``0`` resolves to ``os.cpu_count()`` (and the resolved value
  is recorded in the ResultSet provenance); ``1`` forces serial.
* ``build_workers`` — *within one build*: the construction scans
  (nets, rings) shard over a
  :class:`repro.construction.BuildExecutor`.  ``None`` is serial, ``0``
  resolves to every core.  When both axes are requested, the workers of
  the cell pool shard in-process (chunked) instead of nesting pools.

Results are deterministic and order-stable regardless of either knob.

``resume=True`` reloads a previously persisted set for the same spec
hash and only executes the missing cells — a killed grid run picks up
where it stopped.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.construction import make_executor, resolve_workers
from repro.experiments.probes import run_probes
from repro.experiments.results import (
    RESULTSET_SUFFIX,
    CellResult,
    ResultSet,
    default_results_dir,
    jsonify,
    run_provenance,
)
from repro.experiments.spec import Cell, ExperimentSpec

__all__ = ["run", "run_cell"]


def run_cell(cell: Cell, cache=None, executor=None) -> CellResult:
    """Execute one grid cell: build, evaluate over the plan, run probes."""
    from repro import api

    t0 = time.perf_counter()
    fitted = api.build(
        cell.scheme,
        workload=cell.workload,
        seed=cell.seed,
        config=dict(cell.config),
        cache=cache,
        executor=executor,
    )
    t1 = time.perf_counter()
    metrics = api.evaluate(fitted, cell.plan)
    t2 = time.perf_counter()
    probes = run_probes(fitted, cell.probes)
    t3 = time.perf_counter()
    account = fitted.size_account()
    return CellResult(
        key=cell.key,
        title=cell.title,
        cell=cell.to_dict(),
        metrics=jsonify(metrics),
        probes=jsonify(probes),
        timings={
            "build_s": round(t1 - t0, 6),
            "evaluate_s": round(t2 - t1, 6),
            "probes_s": round(t3 - t2, 6),
        },
        size_bits=int(account.total_bits),
        size_components={k: int(v) for k, v in account.components.items()},
    )


def _run_group(payload) -> List[Dict[str, Any]]:
    """Worker entry point: run one workload group with a private cache.

    Takes and returns plain dicts so the payload pickles cheaply across
    the process pool.  Build sharding inside a pooled worker stays
    in-process (chunked executor) — pools are never nested.
    """
    from repro.api import BuildCache

    cell_dicts, build_shards = payload
    cache = BuildCache(maxsize=4)
    executor = make_executor(1, shards=build_shards) if build_shards > 1 else None
    out = []
    for data in cell_dicts:
        out.append(
            run_cell(Cell.from_dict(data), cache=cache, executor=executor).to_dict()
        )
    return out


def _group_by_workload(cells: Sequence[Cell]) -> List[List[Cell]]:
    groups: Dict[Any, List[Cell]] = {}
    for cell in cells:
        groups.setdefault(cell.workload, []).append(cell)
    return list(groups.values())


def run(
    spec: ExperimentSpec,
    *,
    processes: Optional[int] = None,
    build_workers: Optional[int] = None,
    resume: bool = False,
    out_dir: Optional[Union[str, Path]] = None,
    persist: bool = True,
    cache=None,
    verbose: bool = False,
) -> ResultSet:
    """Execute every cell of ``spec`` and return the typed ResultSet.

    Parameters
    ----------
    processes:
        Cell-level process pool size.  ``None``/``0`` resolves from
        ``os.cpu_count()``; the resolved value lands in the provenance.
        A resolved value of 1 runs serially in-process.
    build_workers:
        Construction-scan sharding inside each build (``None`` = serial,
        ``0`` = every core); see :mod:`repro.construction`.
    resume:
        Reuse cell results from a previously persisted set for the same
        spec (matched by spec hash; a stale file for a *different* grid
        raises instead of silently mixing artifacts).
    out_dir / persist:
        Where (and whether) to write ``<name>.resultset.json``.
    cache:
        Optional :class:`~repro.api.BuildCache` for the serial path
        (defaults to the process-wide facade cache).
    """
    resolved_processes = resolve_workers(processes)
    resolved_build = (
        0 if build_workers is None else resolve_workers(build_workers)
    )
    cells = spec.cells()
    out_path = Path(out_dir) if out_dir is not None else default_results_dir()
    target = out_path / f"{spec.name}{RESULTSET_SUFFIX}"

    done: Dict[str, CellResult] = {}
    if resume and target.exists():
        prior = ResultSet.load(target)
        if prior.spec.spec_hash() != spec.spec_hash():
            raise ValueError(
                f"cannot resume {spec.name!r}: {target} was produced by a "
                f"different grid (spec hash {prior.spec.spec_hash()} != "
                f"{spec.spec_hash()}); delete it or disable resume"
            )
        done = {r.key: r for r in prior.results}

    todo = [cell for cell in cells if cell.key not in done]
    if verbose and done:
        print(f"[{spec.name}] resuming: {len(done)} cells cached, "
              f"{len(todo)} to run")

    fresh: Dict[str, CellResult] = {}
    if todo:
        if resolved_processes >= 2 and len(todo) > 1:
            from concurrent.futures import ProcessPoolExecutor

            groups = _group_by_workload(todo)
            shards = resolved_build if resolved_build > 1 else 1
            payloads = [
                ([c.to_dict() for c in group], shards) for group in groups
            ]
            with ProcessPoolExecutor(max_workers=resolved_processes) as pool:
                for group, results in zip(groups, pool.map(_run_group, payloads)):
                    for cell, data in zip(group, results):
                        fresh[cell.key] = CellResult.from_dict(data)
                        if verbose:
                            print(f"[{spec.name}] done {cell.title}")
        else:
            executor = (
                make_executor(resolved_build) if resolved_build > 1 else None
            )
            try:
                for cell in todo:
                    fresh[cell.key] = run_cell(cell, cache=cache, executor=executor)
                    if verbose:
                        print(f"[{spec.name}] done {cell.title}")
            finally:
                if executor is not None:
                    executor.close()

    results = [done.get(c.key) or fresh[c.key] for c in cells]
    provenance = run_provenance(spec)
    provenance["cells"] = len(cells)
    provenance["resumed_cells"] = len(cells) - len(todo)
    provenance["processes"] = resolved_processes
    provenance["build_workers"] = max(1, resolved_build)
    result_set = ResultSet(spec=spec, results=results, provenance=provenance)
    if persist:
        result_set.save(target)
    return result_set
