"""Typed, persisted experiment results.

A :class:`CellResult` is everything one grid cell produced: the metric
dict :func:`repro.api.evaluate` returned, probe outputs, wall-clock
timings, and the scheme's bit-level :class:`~repro.bits.SizeAccount`.
A :class:`ResultSet` bundles the results with the spec that generated
them and run provenance (spec hash, seeds, git describe, versions), and
round-trips losslessly through JSON — a reloaded set compares equal to
the in-memory one, so persisted artifacts are auditable and diffable.

The module also owns the shared JSON coercion (:func:`jsonify`,
:func:`dump_json`) used by the benchmark harness's ``record_table`` so
every artifact under ``benchmarks/results/`` goes through one encoder.
"""

from __future__ import annotations

import json
import math
import os
import subprocess
import sys
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.experiments.spec import Cell, ExperimentSpec

__all__ = [
    "CellResult",
    "ResultSet",
    "default_results_dir",
    "dump_json",
    "jsonify",
    "run_provenance",
]

#: Marker distinguishing persisted result sets from other JSON artifacts.
RESULTSET_KIND = "experiment-resultset"

#: Filename suffix for persisted result sets (``<spec name> + suffix``).
RESULTSET_SUFFIX = ".resultset.json"


def jsonify(obj: Any) -> Any:
    """Coerce numpy scalars/arrays, tuples and mappings to JSON-ready
    Python values (floats stay exact: json round-trips Python floats)."""
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (np.bool_,)):
        return bool(obj)
    if isinstance(obj, np.ndarray):
        return [jsonify(x) for x in obj.tolist()]
    if isinstance(obj, Mapping):
        return {str(k): jsonify(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [jsonify(x) for x in obj]
    return obj


def dump_json(data: Any, path: Union[str, Path], indent: int = 2) -> Path:
    """Write ``data`` as JSON through :func:`jsonify`; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(jsonify(data), indent=indent) + "\n")
    return path


def default_results_dir() -> Path:
    """``benchmarks/results/`` of this checkout (overridable via the
    ``REPRO_RESULTS_DIR`` environment variable)."""
    env = os.environ.get("REPRO_RESULTS_DIR")
    if env:
        return Path(env)
    repo_root = Path(__file__).resolve().parents[3]
    if (repo_root / "benchmarks").is_dir():
        return repo_root / "benchmarks" / "results"
    return Path.cwd() / "benchmarks" / "results"


def _git_describe() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def run_provenance(spec: ExperimentSpec) -> Dict[str, Any]:
    """Provenance stamped on every run: spec hash, git, versions, time."""
    return {
        "spec_hash": spec.spec_hash(),
        "git": _git_describe(),
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
    }


@dataclass
class CellResult:
    """Everything one executed grid cell produced."""

    key: str
    title: str
    cell: Dict[str, Any]
    metrics: Dict[str, Any] = field(default_factory=dict)
    probes: Dict[str, Any] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    size_bits: int = 0
    size_components: Dict[str, int] = field(default_factory=dict)

    @property
    def workload(self) -> Dict[str, Any]:
        return self.cell["workload"]

    @property
    def scheme(self) -> str:
        return self.cell["scheme"]

    @property
    def label(self) -> str:
        return self.cell.get("label") or self.cell["scheme"]

    @property
    def seed(self) -> int:
        return int(self.cell.get("seed", 0))

    def metric(self, name: str, default: Any = None) -> Any:
        """One metric (or probe output) by name; probes win on clash."""
        if name in self.probes:
            return self.probes[name]
        return self.metrics.get(name, default)

    def to_dict(self) -> Dict[str, Any]:
        return jsonify(
            {
                "key": self.key,
                "title": self.title,
                "cell": self.cell,
                "metrics": self.metrics,
                "probes": self.probes,
                "timings": self.timings,
                "size_bits": self.size_bits,
                "size_components": self.size_components,
            }
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellResult":
        return cls(
            key=data["key"],
            title=data.get("title", ""),
            cell=dict(data["cell"]),
            metrics=dict(data.get("metrics", {})),
            probes=dict(data.get("probes", {})),
            timings=dict(data.get("timings", {})),
            size_bits=int(data.get("size_bits", 0)),
            size_components=dict(data.get("size_components", {})),
        )


@dataclass
class ResultSet:
    """A spec plus its per-cell results and run provenance."""

    spec: ExperimentSpec
    results: List[CellResult] = field(default_factory=list)
    provenance: Dict[str, Any] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResultSet):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    # -- lookup --------------------------------------------------------

    def keys(self) -> List[str]:
        return [r.key for r in self.results]

    def get(self, key: str) -> Optional[CellResult]:
        for r in self.results:
            if r.key == key:
                return r
        return None

    def for_cell(self, cell: Cell) -> Optional[CellResult]:
        return self.get(cell.key)

    def select(
        self, *, workload: Optional[str] = None, label: Optional[str] = None
    ) -> List[CellResult]:
        """Results filtered by workload name and/or scheme display label."""
        out = []
        for r in self.results:
            if workload is not None and r.workload.get("workload") != workload:
                continue
            if label is not None and r.label != label:
                continue
            out.append(r)
        return out

    def one(self, *, workload: Optional[str] = None, label: Optional[str] = None,
            **cell_fields: Any) -> CellResult:
        """The unique matching result (errors list what matched)."""
        found = [
            r
            for r in self.select(workload=workload, label=label)
            if all(r.cell.get(k) == v for k, v in cell_fields.items())
        ]
        if len(found) != 1:
            raise LookupError(
                f"expected exactly one result for workload={workload!r} "
                f"label={label!r} {cell_fields}; matched "
                f"{[r.title for r in found]}"
            )
        return found[0]

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": RESULTSET_KIND,
            "spec": self.spec.to_dict(),
            "provenance": jsonify(self.provenance),
            "results": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ResultSet":
        kind = data.get("kind")
        if kind != RESULTSET_KIND:
            raise ValueError(
                f"not a persisted ResultSet (kind={kind!r}, "
                f"expected {RESULTSET_KIND!r})"
            )
        return cls(
            spec=ExperimentSpec.from_dict(data["spec"]),
            results=[CellResult.from_dict(r) for r in data.get("results", [])],
            provenance=dict(data.get("provenance", {})),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ResultSet":
        return cls.from_dict(json.loads(text))

    def default_path(self, out_dir: Optional[Union[str, Path]] = None) -> Path:
        out = Path(out_dir) if out_dir is not None else default_results_dir()
        return out / f"{self.spec.name}{RESULTSET_SUFFIX}"

    def save(self, path: Optional[Union[str, Path]] = None) -> Path:
        path = Path(path) if path is not None else self.default_path()
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ResultSet":
        return cls.from_json(Path(path).read_text())

    # -- reporting -----------------------------------------------------

    def rows(
        self, columns: Sequence[str], over_seeds: Optional[str] = None
    ) -> List[List[Any]]:
        """One row per result: cell fields (``workload``/``label``/``n``/
        ``seed``), then named metrics/probes looked up per column.

        ``over_seeds="mean"`` aggregates the per-seed rows of each cell
        group (same workload, scheme, config and plan — only the seed
        varies) into one row: numeric columns become the mean over seeds,
        the ``seed`` column becomes the number of seeds aggregated, and a
        column name suffixed ``:ci95`` yields the group's 95% confidence
        half-width (``1.96·s/√k``, 0.0 for a single seed) for the base
        metric — so a suite can declare ``seeds=[0..4]`` and report
        mean ± CI without bench-side post-processing.  Non-numeric values
        pass through when constant across the group, else become None.
        Group order follows first appearance.
        """
        if over_seeds is None:
            return [[self._cell_value(r, col) for col in columns]
                    for r in self.results]
        if over_seeds != "mean":
            raise ValueError(
                f"over_seeds must be None or 'mean', got {over_seeds!r}"
            )
        groups: "Dict[str, List[CellResult]]" = {}
        for r in self.results:
            key_cell = {k: v for k, v in r.cell.items() if k != "seed"}
            key = json.dumps(jsonify(key_cell), sort_keys=True)
            groups.setdefault(key, []).append(r)
        out = []
        for members in groups.values():
            row: List[Any] = []
            for col in columns:
                base, _, suffix = col.partition(":")
                values = [self._cell_value(r, base) for r in members]
                numeric = [
                    v for v in values
                    if isinstance(v, (int, float)) and not isinstance(v, bool)
                ]
                if suffix == "ci95":
                    if len(numeric) != len(values) or not numeric:
                        row.append(None)
                    elif len(numeric) == 1:
                        row.append(0.0)
                    else:
                        std = float(np.std(numeric, ddof=1))
                        row.append(1.96 * std / math.sqrt(len(numeric)))
                elif suffix:
                    raise ValueError(
                        f"unknown aggregate suffix {suffix!r} in column "
                        f"{col!r}; supported: ci95"
                    )
                elif base == "seed":
                    row.append(len(members))
                elif len(numeric) == len(values) and numeric:
                    row.append(float(np.mean(numeric)))
                elif all(v == values[0] for v in values):
                    row.append(values[0])
                else:
                    row.append(None)
            out.append(row)
        return out

    @staticmethod
    def _cell_value(r: "CellResult", col: str) -> Any:
        if col == "workload":
            return r.workload.get("workload")
        if col == "label":
            return r.label
        if col == "n":
            return r.workload.get("n")
        if col == "seed":
            return r.seed
        if col == "size_bits":
            return r.size_bits
        return r.metric(col)

    def diff(self, other: "ResultSet", rtol: float = 1e-9) -> Dict[str, Any]:
        """Cell-keyed comparison: missing cells and changed metric values.

        Entries are keyed by the exact cell key (titles alone collide
        across seeds/plans) and carry the title for display.
        """
        mine = {r.key: r for r in self.results}
        theirs = {r.key: r for r in other.results}
        changed: Dict[str, Dict[str, Any]] = {}
        for key in mine.keys() & theirs.keys():
            a, b = mine[key], theirs[key]
            deltas: Dict[str, Any] = {}
            names = set(a.metrics) | set(b.metrics)
            for name in sorted(names):
                va, vb = a.metrics.get(name), b.metrics.get(name)
                if _values_differ(va, vb, rtol):
                    deltas[name] = {"self": va, "other": vb}
            if deltas:
                changed[key] = {"title": a.title, "metrics": deltas}
        return {
            "only_self": [
                {"key": k, "title": mine[k].title}
                for k in sorted(mine.keys() - theirs.keys())
            ],
            "only_other": [
                {"key": k, "title": theirs[k].title}
                for k in sorted(theirs.keys() - mine.keys())
            ],
            "changed": changed,
        }


def _values_differ(a: Any, b: Any, rtol: float) -> bool:
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        if a == b:  # covers equal ints and identical infinities
            return False
        if not (np.isfinite(a) and np.isfinite(b)):
            return True
        return not np.isclose(a, b, rtol=rtol, atol=0.0)
    return a != b
