"""Declarative experiment specs: named grids of workloads × schemes × plans.

An :class:`ExperimentSpec` is a frozen value object naming everything a
paper-style evaluation touches: workload specs
(:class:`~repro.api.workloads.Workload`), scheme configurations
(:class:`SchemeSpec`), evaluation plans
(:class:`~repro.api.configs.PlanConfig`) and build seeds.  The grid is
the cartesian product of the four axes; :class:`CellOverride` rules
adjust individual cells (a different plan for one workload, extra
probes for one scheme) without breaking the product structure.

Specs round-trip through plain dicts and JSON (:meth:`ExperimentSpec.to_dict`
/ :meth:`ExperimentSpec.from_dict`, :meth:`to_json` / :meth:`from_json`),
reject unknown keys with the valid choices spelled out, and hash
canonically (:meth:`spec_hash`) so persisted results can be matched back
to the exact grid that produced them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple, Union

from repro.api.configs import PlanConfig
from repro.api.registry import SCHEMES
from repro.api.workloads import Workload

__all__ = [
    "Cell",
    "CellOverride",
    "ExperimentSpec",
    "SchemeSpec",
]


def _sorted_items(params: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(params.items()))


def _reject_unknown(cls_name: str, data: Mapping[str, Any], valid: Iterable[str]) -> None:
    valid = sorted(valid)
    unknown = sorted(set(data) - set(valid))
    if unknown:
        raise ValueError(
            f"unknown key(s) {unknown} for {cls_name}; "
            f"valid keys: {', '.join(valid) or '<none>'}"
        )


@dataclass(frozen=True)
class SchemeSpec:
    """One scheme axis entry: a registered scheme name plus config knobs.

    ``config`` is stored as a sorted tuple of items (hashable); ``label``
    is the display name benches use for rows (defaults to the scheme
    name, so it only needs setting when the same scheme appears several
    times with different configs, e.g. a δ sweep).
    """

    scheme: str
    config: Tuple[Tuple[str, Any], ...] = ()
    label: str = ""

    @classmethod
    def make(cls, scheme: str, label: str = "", **config: Any) -> "SchemeSpec":
        entry = SCHEMES.get(scheme)  # validates the name early
        entry.obj.config_cls.from_dict(config)  # validates fields + ranges
        return cls(scheme=scheme, config=_sorted_items(config), label=label)

    @property
    def display(self) -> str:
        return self.label or self.scheme

    @property
    def config_dict(self) -> Dict[str, Any]:
        return dict(self.config)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"scheme": self.scheme}
        if self.label:
            out["label"] = self.label
        if self.config:
            out["config"] = self.config_dict
        return out

    @classmethod
    def from_dict(cls, data: Union[str, Mapping[str, Any]]) -> "SchemeSpec":
        if isinstance(data, str):
            return cls.make(data)
        _reject_unknown("SchemeSpec", data, ("scheme", "label", "config"))
        return cls.make(
            data["scheme"], label=data.get("label", ""), **dict(data.get("config", {}))
        )


@dataclass(frozen=True)
class CellOverride:
    """A per-cell adjustment, matched by workload and/or scheme name.

    ``workload`` matches :attr:`Workload.name` or the sized display form
    ``"name(n=N)"`` (needed when one suite carries the same workload at
    several sizes); ``scheme`` matches the :class:`SchemeSpec` display
    label *or* its registered scheme name.  Omitted matchers match
    everything.  ``config`` entries are merged over the cell's config;
    ``plan`` and ``probes``, when given, replace the cell's plan and
    probe tuple; ``skip=True`` drops the matching cells from the grid
    entirely (how a suite runs a heavy scheme at only some of its
    scales).
    """

    workload: Optional[str] = None
    scheme: Optional[str] = None
    config: Tuple[Tuple[str, Any], ...] = ()
    plan: Optional[PlanConfig] = None
    probes: Optional[Tuple[str, ...]] = None
    skip: bool = False

    def matches(self, workload: Workload, scheme: SchemeSpec) -> bool:
        if self.workload is not None and self.workload not in (
            workload.name,
            workload.display,
        ):
            return False
        if self.scheme is not None and self.scheme not in (
            scheme.display,
            scheme.scheme,
        ):
            return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {}
        if self.workload is not None:
            out["workload"] = self.workload
        if self.scheme is not None:
            out["scheme"] = self.scheme
        if self.config:
            out["config"] = dict(self.config)
        if self.plan is not None:
            out["plan"] = self.plan.to_dict()
        if self.probes is not None:
            out["probes"] = list(self.probes)
        if self.skip:
            out["skip"] = True
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellOverride":
        _reject_unknown(
            "CellOverride", data,
            ("workload", "scheme", "config", "plan", "probes", "skip"),
        )
        plan = data.get("plan")
        probes = data.get("probes")
        return cls(
            workload=data.get("workload"),
            scheme=data.get("scheme"),
            config=_sorted_items(dict(data.get("config", {}))),
            plan=None if plan is None else PlanConfig.from_dict(plan),
            probes=None if probes is None else tuple(probes),
            skip=bool(data.get("skip", False)),
        )


@dataclass(frozen=True)
class Cell:
    """One fully-resolved grid cell: everything one evaluation needs."""

    workload: Workload
    scheme: str
    label: str
    config: Tuple[Tuple[str, Any], ...]
    plan: PlanConfig
    seed: int
    probes: Tuple[str, ...] = ()

    @property
    def title(self) -> str:
        """Short human-readable cell name for tables and progress lines."""
        return f"{self.label or self.scheme}@{self.workload.name}(n={self.workload.n})"

    @property
    def key(self) -> str:
        """Canonical cell identity: the sorted compact JSON of the cell.

        Exact (every axis value participates), deterministic across
        processes and runs — the resume/diff machinery matches on it.
        """
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload.to_dict(),
            "scheme": self.scheme,
            "label": self.label,
            "config": dict(self.config),
            "plan": self.plan.to_dict(),
            "seed": self.seed,
            "probes": list(self.probes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Cell":
        _reject_unknown(
            "Cell",
            data,
            ("workload", "scheme", "label", "config", "plan", "seed", "probes"),
        )
        return cls(
            workload=Workload.from_dict(data["workload"]),
            scheme=data["scheme"],
            label=data.get("label", ""),
            config=_sorted_items(dict(data.get("config", {}))),
            plan=PlanConfig.from_dict(data["plan"]),
            seed=int(data.get("seed", 0)),
            probes=tuple(data.get("probes", ())),
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """A named experiment grid: workloads × schemes × plans × seeds.

    Frozen and hashable; build with :meth:`make` (which coerces dicts and
    sequences into the frozen axis types) or :meth:`from_dict` /
    :meth:`from_json` (which additionally reject unknown keys).
    """

    name: str
    workloads: Tuple[Workload, ...]
    schemes: Tuple[SchemeSpec, ...]
    plans: Tuple[PlanConfig, ...] = (PlanConfig(),)
    seeds: Tuple[int, ...] = (0,)
    probes: Tuple[str, ...] = ()
    overrides: Tuple[CellOverride, ...] = ()
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("ExperimentSpec needs a non-empty name")
        if not self.workloads:
            raise ValueError(f"spec {self.name!r} has no workloads")
        if not self.schemes:
            raise ValueError(f"spec {self.name!r} has no schemes")
        if not self.plans:
            raise ValueError(f"spec {self.name!r} has no plans")
        if not self.seeds:
            raise ValueError(f"spec {self.name!r} has no seeds")

    # -- construction --------------------------------------------------

    @classmethod
    def make(
        cls,
        name: str,
        workloads: Sequence[Union[Workload, Mapping[str, Any]]],
        schemes: Sequence[Union[SchemeSpec, str, Mapping[str, Any]]],
        plans: Sequence[Union[PlanConfig, Mapping[str, Any]]] = (PlanConfig(),),
        seeds: Sequence[int] = (0,),
        probes: Sequence[str] = (),
        overrides: Sequence[Union[CellOverride, Mapping[str, Any]]] = (),
        description: str = "",
    ) -> "ExperimentSpec":
        return cls(
            name=name,
            workloads=tuple(
                w if isinstance(w, Workload) else Workload.from_dict(w)
                for w in workloads
            ),
            schemes=tuple(
                s if isinstance(s, SchemeSpec) else SchemeSpec.from_dict(s)
                for s in schemes
            ),
            plans=tuple(
                p if isinstance(p, PlanConfig) else PlanConfig.from_dict(p)
                for p in plans
            ),
            seeds=tuple(int(s) for s in seeds),
            probes=tuple(probes),
            overrides=tuple(
                o if isinstance(o, CellOverride) else CellOverride.from_dict(o)
                for o in overrides
            ),
            description=description,
        )

    # -- grid expansion ------------------------------------------------

    def cells(self) -> Tuple[Cell, ...]:
        """Expand the grid: one cell per workload × scheme × plan × seed,
        with every matching override applied (in declaration order)."""
        out = []
        for workload in self.workloads:
            for scheme in self.schemes:
                config = scheme.config_dict
                plan_default: Optional[PlanConfig] = None
                probes: Tuple[str, ...] = self.probes
                skipped = False
                for rule in self.overrides:
                    if rule.matches(workload, scheme):
                        if rule.skip:
                            skipped = True
                            break
                        config.update(dict(rule.config))
                        if rule.plan is not None:
                            plan_default = rule.plan
                        if rule.probes is not None:
                            probes = rule.probes
                if skipped:
                    continue
                plans = (plan_default,) if plan_default is not None else self.plans
                for plan in plans:
                    for seed in self.seeds:
                        out.append(
                            Cell(
                                workload=workload,
                                scheme=scheme.scheme,
                                label=scheme.display,
                                config=_sorted_items(config),
                                plan=plan,
                                seed=seed,
                                probes=probes,
                            )
                        )
        return tuple(out)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "workloads": [w.to_dict() for w in self.workloads],
            "schemes": [s.to_dict() for s in self.schemes],
            "plans": [p.to_dict() for p in self.plans],
            "seeds": list(self.seeds),
        }
        if self.probes:
            out["probes"] = list(self.probes)
        if self.overrides:
            out["overrides"] = [o.to_dict() for o in self.overrides]
        if self.description:
            out["description"] = self.description
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentSpec":
        _reject_unknown(
            "ExperimentSpec",
            data,
            (
                "name",
                "workloads",
                "schemes",
                "plans",
                "seeds",
                "probes",
                "overrides",
                "description",
            ),
        )
        return cls.make(
            name=data["name"],
            workloads=data["workloads"],
            schemes=data["schemes"],
            plans=data.get("plans", [PlanConfig()]),
            seeds=data.get("seeds", [0]),
            probes=data.get("probes", ()),
            overrides=data.get("overrides", ()),
            description=data.get("description", ""),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "ExperimentSpec":
        return cls.from_json(Path(path).read_text())

    def spec_hash(self) -> str:
        """12-hex-digit hash of the canonical JSON (provenance anchor)."""
        canon = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode()).hexdigest()[:12]
