"""Named experiment suites: the paper's artifacts as declarative grids.

Each suite is a zero-argument factory returning the
:class:`~repro.experiments.spec.ExperimentSpec` that regenerates one
paper artifact (Tables 1–3, Figures 1–2, the stretch-vs-δ sweep, the
labeling bit counts, the §6 distributed measurements) plus a fast
``smoke`` suite CI runs on every push.  The pytest benches under
``benchmarks/`` are thin wrappers: they call
:func:`repro.experiments.run` on these specs and assert the paper's
shape claims over the returned rows, so the pytest tables, the CLI
(``repro run table1``) and any persisted artifact all come from one
code path.
"""

from __future__ import annotations

from repro.api.configs import PlanConfig
from repro.api.workloads import Workload
from repro.registry import Registry

from repro.experiments.spec import CellOverride, ExperimentSpec, SchemeSpec

__all__ = ["SUITES", "get_suite", "render_index", "suite_names"]

#: Registered suite factories, keyed by the names the CLI accepts.
SUITES = Registry("suite")


def get_suite(name: str) -> ExperimentSpec:
    """The spec for a registered suite name (KeyError lists the names)."""
    return SUITES.get(name).obj()


def suite_names() -> tuple:
    return SUITES.names()


@SUITES.register("smoke", summary="fast cross-family sanity grid (CI gate)")
def _smoke() -> ExperimentSpec:
    return ExperimentSpec.make(
        "smoke",
        description=(
            "One small hypercube instance across the problem families — "
            "estimation, labeling, routing — with a sampled plan; runs in "
            "seconds and exercises the whole build/evaluate/persist path."
        ),
        workloads=[Workload.make("hypercube", n=32, dim=2, seed=0)],
        schemes=[
            SchemeSpec.make("triangulation", delta=0.3),
            SchemeSpec.make("beacons", beacons=8),
            SchemeSpec.make("labels", delta=0.3),
            SchemeSpec.make("route-thm2.1", delta=0.3),
        ],
        plans=[PlanConfig(kind="uniform", pairs=100, seed=0)],
    )


@SUITES.register("serve-smoke",
                 summary="save→load→serve round-trip parity across schemes")
def _serve_smoke() -> ExperimentSpec:
    return ExperimentSpec.make(
        "serve-smoke",
        description=(
            "Every persistable scheme family built on one kNN graph, "
            "saved to a container file, reopened zero-copy and replayed: "
            "the serve-roundtrip probe asserts bit-for-bit parity and "
            "reports save/load timings plus the on-disk footprint."
        ),
        workloads=[Workload.make("knn-graph", n=32, k=4, seed=80)],
        schemes=[
            SchemeSpec.make("triangulation", delta=0.3),
            SchemeSpec.make("labels", delta=0.3),
            SchemeSpec.make("labels-tri", delta=0.3),
            SchemeSpec.make("tz-oracle", k=2),
            SchemeSpec.make("route-trivial"),
            SchemeSpec.make("route-thm2.1", delta=0.3),
        ],
        plans=[PlanConfig(kind="uniform", pairs=100, seed=0)],
        probes=["serve-roundtrip"],
    )


@SUITES.register("table1", summary="Table 1: (1+δ)-stretch routing on doubling graphs")
def _table1() -> ExperimentSpec:
    return ExperimentSpec.make(
        "table1",
        description=(
            "Theorem 2.1 / Theorem 4.1 vs the trivial scheme on kNN "
            "geometric graphs across n: delivery, stretch, table and "
            "header bits (Table 1's columns, concrete bit counts)."
        ),
        workloads=[
            Workload.make("knn-graph", n=n, k=4, seed=300 + n)
            for n in (48, 96, 160)
        ],
        schemes=[
            SchemeSpec.make("route-trivial", label="trivial", delta=0.25),
            SchemeSpec.make("route-thm2.1", label="thm2.1", delta=0.25),
            SchemeSpec.make("route-thm4.1", label="thm4.1", delta=0.25,
                            estimator="triangulation"),
        ],
        plans=[PlanConfig(kind="uniform", pairs=400, seed=1)],
    )


@SUITES.register("table2", summary="Table 2: (1+δ)-stretch routing on metrics")
def _table2() -> ExperimentSpec:
    return ExperimentSpec.make(
        "table2",
        description=(
            "§4.1 self-chosen overlays on a polynomial-aspect-ratio metric "
            "and the exponential line; out-degree joins table/header bits "
            "as a quality column (Table 2's setting)."
        ),
        workloads=[
            Workload.make("hypercube", n=96, dim=2, seed=41),
            Workload.make("expline", n=64),
        ],
        schemes=[
            SchemeSpec.make("route-thm2.1", label="thm2.1-overlay",
                            delta=0.25, overlay_style="net"),
            SchemeSpec.make("route-thm4.1", label="thm4.1-overlay",
                            delta=0.25, estimator="triangulation",
                            overlay_style="scale"),
            SchemeSpec.make("route-thm4.2", label="thm4.2-overlay",
                            delta=0.25, overlay_style="scale"),
        ],
        plans=[PlanConfig(kind="uniform", pairs=250, seed=2)],
        probes=["overlay-out-degree"],
    )


@SUITES.register("table3", summary="Table 3: Theorem 4.2 mode M1/M2 split")
def _table3() -> ExperimentSpec:
    return ExperimentSpec.make(
        "table3",
        description=(
            "Appendix B's storage decomposition of Theorem 4.2 by routing "
            "mode on a doubling graph and a gap graph (Lemma B.5's "
            "regime), plus how often packets actually switch to M2."
        ),
        workloads=[
            Workload.make("knn-graph", n=64, k=4, seed=50),
            Workload.make("gap-path", n=40),
        ],
        schemes=[SchemeSpec.make("route-thm4.2", label="thm4.2", delta=0.2)],
        plans=[PlanConfig(kind="uniform", pairs=250, seed=3)],
        probes=["twomode-split"],
    )


@SUITES.register("fig1", summary="Figure 1: the idea-flow arrows, executed")
def _fig1() -> ExperimentSpec:
    return ExperimentSpec.make(
        "fig1",
        description=(
            "Every Figure 1 arrow realized on one shared workload: the "
            "rings structure feeds Thm 3.2/3.4 estimation, Thm 2.1/4.1/"
            "4.2 routing and the Thm 5.2 small worlds; each cell's "
            "metrics are the evidence the arrow's artifact is consumable."
        ),
        workloads=[Workload.make("knn-graph", n=40, k=4, seed=60)],
        schemes=[
            SchemeSpec.make("triangulation", label="thm3.2", delta=0.3),
            SchemeSpec.make("labels", label="thm3.4", delta=0.3),
            SchemeSpec.make("route-thm2.1", label="thm2.1", delta=0.3),
            SchemeSpec.make("route-thm4.1", label="thm4.1", delta=0.3,
                            estimator="triangulation"),
            SchemeSpec.make("route-thm4.2", label="thm4.2", delta=0.3),
            SchemeSpec.make("sw-5.2a", label="thm5.2a", c=2.0),
            SchemeSpec.make("sw-5.2b", label="thm5.2b", c=2.0),
        ],
        plans=[PlanConfig(kind="uniform", pairs=200, seed=0)],
    )


@SUITES.register("fig2", summary="Figure 2: host-enumeration translation triangles")
def _fig2() -> ExperimentSpec:
    return ExperimentSpec.make(
        "fig2",
        description=(
            "The (u, f, w) translation triangle of Theorem 2.1, audited "
            "exhaustively over a built instance: ζ must return exactly "
            "w's index for every in-ring triangle and null outside."
        ),
        workloads=[Workload.make("knn-graph", n=56, k=4, seed=70)],
        schemes=[SchemeSpec.make("route-thm2.1", label="thm2.1", delta=0.3)],
        plans=[PlanConfig(kind="uniform", pairs=100, seed=0)],
        probes=["translation-triangles"],
    )


@SUITES.register("stretch", summary="Claim 2.5: stretch vs δ for Theorem 2.1")
def _stretch() -> ExperimentSpec:
    deltas = (0.45, 0.3, 0.2, 0.1, 0.05)
    return ExperimentSpec.make(
        "stretch",
        description=(
            "δ sweep of the Theorem 2.1 scheme on one kNN graph: measured "
            "max/mean stretch tracks 1+O(δ) while the ring cardinality "
            "K = (16/δ)^α and table bits grow — the paper's trade-off."
        ),
        workloads=[Workload.make("knn-graph", n=96, k=4, seed=80)],
        schemes=[
            SchemeSpec.make("route-thm2.1", label=f"delta={d}", delta=d)
            for d in deltas
        ],
        plans=[PlanConfig(kind="uniform", pairs=400, seed=4)],
        probes=["ring-cardinality"],
    )


@SUITES.register("dls", summary="Theorem 3.4 vs 3.2-derived label bit counts")
def _dls() -> ExperimentSpec:
    return ExperimentSpec.make(
        "dls",
        description=(
            "Id-free Theorem 3.4 labels vs the Theorem-3.2-derived "
            "Mendel–Har-Peled labels on the exponential line (log Δ = "
            "Θ(n)): label bits and worst-pair accuracy over all pairs."
        ),
        workloads=[
            Workload.make("expline", n=n, base=1.8) for n in (32, 64, 128)
        ],
        schemes=[
            SchemeSpec.make("labels-tri", label="thm3.2+ids", delta=0.4),
            SchemeSpec.make("labels", label="thm3.4-id-free", delta=0.4),
        ],
        plans=[PlanConfig(kind="all-pairs")],
        probes=["label-bits"],
    )


@SUITES.register("distributed", summary="§6: distributed construction and the gap")
def _distributed() -> ExperimentSpec:
    return ExperimentSpec.make(
        "distributed",
        description=(
            "The §6 gap, operationalized: distributed r-net cost and "
            "gossip ring coverage on a hypercube metric, and Meridian "
            "search quality under churn (with and without repair probes) "
            "on an internet-like metric."
        ),
        workloads=[
            Workload.make("internet", n=72, seed=132),
            Workload.make("hypercube", n=64, dim=2, seed=130),
        ],
        schemes=[SchemeSpec.make("meridian")],
        plans=[PlanConfig(kind="uniform", pairs=80, seed=0)],
        overrides=[
            CellOverride(workload="internet",
                         probes=("churn-no-repair", "churn-repair")),
            CellOverride(workload="hypercube",
                         probes=("distributed-net", "gossip-gap")),
        ],
    )


@SUITES.register("netsim", summary="§6 under degradation: event-simulator "
                                   "scenario sweep with Byzantine audits")
def _netsim() -> ExperimentSpec:
    return ExperimentSpec.make(
        "netsim",
        description=(
            "The §6 protocols re-run on the event-driven simulator "
            "(repro.netsim) under five network scenarios — ideal (the "
            "bit-for-bit parity baseline), lossy links, a transient "
            "partition, a mixed Byzantine population and crash/restart "
            "churn.  Each scenario probe reports gossip convergence "
            "wall-clock, delivery rate, ring coverage, r-net validity, "
            "suffix-walk audit detection/false-positive rates and "
            "ring-table estimate quality scored against the fitted "
            "scheme's certified (stretch, δ) guarantee."
        ),
        workloads=[Workload.make("hypercube", n=48, dim=2, seed=140)],
        schemes=[SchemeSpec.make("triangulation", delta=0.25)],
        plans=[PlanConfig(kind="uniform", pairs=80, seed=0)],
        probes=[
            "netsim-ideal",
            "netsim-lossy",
            "netsim-partition",
            "netsim-byzantine",
            "netsim-crash-churn",
        ],
    )


@SUITES.register("netsim-smoke", summary="fast netsim gate: ideal-scenario "
                                         "health + Byzantine detection")
def _netsim_smoke() -> ExperimentSpec:
    return ExperimentSpec.make(
        "netsim-smoke",
        description=(
            "The per-PR netsim gate: one small hypercube instance under "
            "the ideal and byzantine scenarios — enough to exercise the "
            "event engine, the round adapter, fault injection and the "
            "ring audit on every push; the full five-scenario sweep runs "
            "nightly as `netsim`."
        ),
        workloads=[Workload.make("hypercube", n=32, dim=2, seed=140)],
        schemes=[SchemeSpec.make("triangulation", delta=0.25)],
        plans=[PlanConfig(kind="uniform", pairs=60, seed=0)],
        probes=["netsim-ideal", "netsim-byzantine"],
    )


@SUITES.register("churn-stream",
                 summary="streaming membership churn through mutable "
                         "schemes: quality, IVL bounds, amortized cost")
def _churn_stream_suite() -> ExperimentSpec:
    return ExperimentSpec.make(
        "churn-stream",
        description=(
            "A seeded ChurnTrace streamed through every update-capable "
            "scheme on the patch-buffered update path: estimate quality "
            "sampled at checkpoints mid-patch, IVL-bound check and "
            "violation counts (the guarantee is zero violations), merge "
            "cadence, amortized per-update cost against a timed "
            "scrub-and-rebuild reference, and bit-for-bit parity of the "
            "compacted structure against a fresh build bulk-updated to "
            "the same final active set.  Covers a euclidean metric and a "
            "lazy-backend graph metric; the routing scheme streams a "
            "shorter trace (its per-update label re-encode is the "
            "heaviest maintenance step)."
        ),
        workloads=[
            Workload.make("hypercube", n=400, dim=2, seed=210),
            Workload.make("knn-graph", n=160, k=4, seed=211, dense=False),
        ],
        schemes=[
            SchemeSpec.make("triangulation", delta=0.3),
            SchemeSpec.make("beacons", beacons=16),
            SchemeSpec.make("route-thm2.1", delta=0.3),
        ],
        plans=[PlanConfig(kind="uniform", pairs=200, seed=7)],
        probes=["churn-stream"],
        overrides=[
            # metric workloads route over a §4.1 overlay, which has no
            # incremental path — the graph cell is the mutable one
            CellOverride(workload="hypercube", scheme="route-thm2.1",
                         skip=True),
            CellOverride(workload="knn-graph", scheme="route-thm2.1",
                         probes=("churn-stream-lite",)),
        ],
    )


@SUITES.register("churn-stream-smoke",
                 summary="fast churn-stream gate: short traces through all "
                         "three mutable schemes (per-PR CI)")
def _churn_stream_smoke() -> ExperimentSpec:
    return ExperimentSpec.make(
        "churn-stream-smoke",
        description=(
            "The per-PR streaming-churn gate: a 16-event trace through "
            "the three update-capable schemes on small instances — "
            "enough to exercise patch application, IVL-checked reads, "
            "auto-merge, compaction parity and the rebuild-reference "
            "timing on every push; the full traces run nightly as "
            "`churn-stream`."
        ),
        workloads=[
            Workload.make("hypercube", n=64, dim=2, seed=210),
            Workload.make("knn-graph", n=48, k=4, seed=211),
        ],
        schemes=[
            SchemeSpec.make("triangulation", delta=0.3),
            SchemeSpec.make("beacons", beacons=12),
            SchemeSpec.make("route-thm2.1", delta=0.3),
        ],
        plans=[PlanConfig(kind="uniform", pairs=80, seed=7)],
        probes=["churn-stream-lite"],
        overrides=[
            CellOverride(workload="hypercube", scheme="route-thm2.1",
                         skip=True),
        ],
    )


# ----------------------------------------------------------------------
# Large-scale suites (n = 10⁴): the schemes whose evaluation is fully
# vectorized and whose structures stay o(n²).  Graph workloads select the
# lazy shortest-path backend (dense=False) so nothing Θ(n²) is ever
# allocated; net construction runs on the sharded batched scan (thread
# ``repro run --build-workers`` through it).
# ----------------------------------------------------------------------


@SUITES.register("table1-large",
                 summary="Table 1 at n=10⁴: packed Thm 2.1 rings, lazy graph "
                         "backend, matrix-free baseline, sharded nets")
def _table1_large() -> ExperimentSpec:
    return ExperimentSpec.make(
        "table1-large",
        description=(
            "The Table 1 setting pushed to n = 10⁴ on a kNN doubling "
            "graph with the lazy (dense=False) shortest-path backend: the "
            "stretch-1 baseline routes on lazy target-keyed first hops, "
            "the beacon triangulation supplies the estimation columns, "
            "the net-hierarchy probe builds the full nested 2^j-net "
            "stack through the sharded scan — and the paper's own "
            "Theorem 2.1 scheme runs on the packed CSR ring backend "
            "(derived ζ, no Θ(n·K²) Python tables), so no Θ(n²) "
            "allocation anywhere."
        ),
        workloads=[
            Workload.make("knn-graph", n=10_000, k=4, seed=310, dense=False)
        ],
        schemes=[
            SchemeSpec.make("route-trivial", label="trivial"),
            SchemeSpec.make("route-thm2.1", label="thm2.1", delta=0.45),
            SchemeSpec.make("beacons", label="beacons-64", beacons=64),
        ],
        plans=[PlanConfig(kind="uniform", pairs=300, seed=1)],
        overrides=[
            CellOverride(scheme="trivial", probes=("net-hierarchy",)),
            CellOverride(scheme="thm2.1", probes=("ring-cardinality",)),
        ],
    )


@SUITES.register("stretch-large",
                 summary="estimation stretch vs beacon order at n=10⁴, "
                         "mean±CI over 5 seeds")
def _stretch_large() -> ExperimentSpec:
    return ExperimentSpec.make(
        "stretch-large",
        description=(
            "The (ε,δ) trade-off Theorem 3.2 removes, measured at scale: "
            "distance-estimate stretch of the common-beacon baseline as "
            "the order grows, on 10⁴-point euclidean and clustered "
            "metrics, five beacon draws per cell — report with "
            "rows(..., over_seeds='mean') for mean ± CI columns."
        ),
        workloads=[
            Workload.make("hypercube", n=10_000, dim=2, seed=91),
            Workload.make("clustered", n=10_000, clusters=32, dim=3, seed=92),
        ],
        schemes=[
            SchemeSpec.make("beacons", label=f"order-{k}", beacons=k)
            for k in (16, 64, 256)
        ],
        plans=[PlanConfig(kind="uniform", pairs=2000, seed=5)],
        seeds=(0, 1, 2, 3, 4),
    )


@SUITES.register("dls-large",
                 summary="distance-labeling bits vs accuracy at scale, "
                         "including the paper's own packed-label schemes")
def _dls_large() -> ExperimentSpec:
    return ExperimentSpec.make(
        "dls-large",
        description=(
            "The labeling story at scale, on a ladder of hypercube sizes "
            "(n = 10⁴ / 2000 / 500): Thorup–Zwick k=2 bunches (3-stretch "
            "worst case) and common-beacon labels at every scale, plus "
            "the paper's own schemes on the packed CSR label backend at "
            "the largest size their *construction constants* allow — the "
            "Theorem 3.2-derived Mendel–Har-Peled labels (labels-tri, "
            "n = 2000; order grows ~linearly at δ=0.45 so n = 10⁴ label "
            "mass would be Θ(n²)) and the id-free Theorem 3.4 labels "
            "(n = 500; ζ/virtual-enumeration build is ~n^3.8).  Label "
            "bits (size_bits) vs measured relative error on a sampled "
            "plan; skip-overrides keep the heavy cells off the larger "
            "rungs."
        ),
        workloads=[
            Workload.make("hypercube", n=10_000, dim=2, seed=93),
            Workload.make("hypercube", n=2000, dim=2, seed=93),
            Workload.make("hypercube", n=500, dim=2, seed=93),
        ],
        schemes=[
            SchemeSpec.make("tz-oracle", label="tz-k2", k=2),
            SchemeSpec.make("beacons", label="beacons-14", beacons=14),
            SchemeSpec.make("beacons", label="beacons-64", beacons=64),
            SchemeSpec.make("labels-tri", label="thm3.2+ids", delta=0.45),
            SchemeSpec.make("labels", label="thm3.4-id-free", delta=0.45),
        ],
        plans=[PlanConfig(kind="uniform", pairs=2000, seed=6)],
        overrides=[
            CellOverride(scheme="thm3.2+ids", probes=("label-bits",)),
            CellOverride(scheme="thm3.4-id-free", probes=("label-bits",)),
            CellOverride(workload="hypercube(n=10000)",
                         scheme="thm3.2+ids", skip=True),
            CellOverride(workload="hypercube(n=500)",
                         scheme="thm3.2+ids", skip=True),
            CellOverride(workload="hypercube(n=10000)",
                         scheme="thm3.4-id-free", skip=True),
            CellOverride(workload="hypercube(n=2000)",
                         scheme="thm3.4-id-free", skip=True),
        ],
    )


def render_index() -> str:
    """The EXPERIMENTS.md index, regenerated from the registered suites."""
    lines = [
        "# Experiment index",
        "",
        "Generated from the named suites in `repro.experiments.suites` —",
        "regenerate with `python -m repro suites --write-index EXPERIMENTS.md`.",
        "",
        "Run any suite with `repro run <name>` (results persist to",
        "`benchmarks/results/<name>.resultset.json`); the pytest benches in",
        "`benchmarks/` run the same specs and assert the paper's claims on",
        "the returned rows.",
        "",
        "| suite | cells | workloads | schemes | summary |",
        "|---|---|---|---|---|",
    ]
    for name, entry in SUITES.items():
        spec = entry.obj()
        workloads = ", ".join(
            sorted({f"{w.name}(n={w.n})" for w in spec.workloads})
        )
        schemes = ", ".join(dict.fromkeys(s.display for s in spec.schemes))
        lines.append(
            f"| `{name}` | {len(spec.cells())} | {workloads} | "
            f"{schemes} | {entry.summary} |"
        )
    lines.append("")
    for name, entry in SUITES.items():
        spec = entry.obj()
        lines.append(f"## `{name}`")
        lines.append("")
        lines.append(spec.description or entry.summary)
        lines.append("")
    return "\n".join(lines)
