"""Registered cell probes: named extra measurements beyond the plan.

A probe is a callable ``probe(fitted: FittedScheme) -> dict`` registered
under a short stable name, so an :class:`~repro.experiments.spec.Cell`
can request scheme-specific measurements (overlay out-degree, the
Table 3 mode split, Figure 2's translation-triangle audit, §6 churn
runs) while the spec stays a plain JSON document — the probe *name* is
declarative, the code lives here.

Probes run after the plan evaluation; their outputs land in
:attr:`CellResult.probes` and win over plan metrics in
:meth:`CellResult.metric` lookups.
"""

from __future__ import annotations

import math
from typing import Any, Dict

from repro.registry import Registry

__all__ = ["PROBES", "register_probe", "run_probes"]

#: Registered probe callables, keyed by the names specs reference.
PROBES = Registry("probe")


def register_probe(name: str, **meta: Any):
    """Decorator: register a ``probe(fitted) -> dict`` under ``name``."""
    return PROBES.register(name, **meta)


def run_probes(fitted, names) -> Dict[str, Any]:
    """Run each named probe on a fitted scheme, merging the outputs."""
    out: Dict[str, Any] = {}
    for name in names:
        out.update(PROBES.get(name).obj(fitted))
    return out


@register_probe("overlay-out-degree",
                summary="max overlay out-degree of a §4.1 metric routing scheme")
def _overlay_out_degree(fitted) -> Dict[str, Any]:
    return {"out_degree": int(fitted.inner.out_degree())}


@register_probe("net-hierarchy",
                summary="nested 2^j-net sizes + build cost on the cell's "
                        "workload (sharded by the run's build executor)")
def _net_hierarchy(fitted) -> Dict[str, Any]:
    """Builds the workload's shared nested-net hierarchy and reports per-
    level sizes (Lemma 1.4's packing in action), wall-clock, and — on the
    lazy graph backend — the row cache's peak residency, evidencing that
    construction at n = 10⁴ never pinned a Θ(n²) matrix."""
    import time

    workload = fitted.workload
    t0 = time.perf_counter()
    nets = workload.nested_nets()
    build_s = time.perf_counter() - t0
    sizes = [len(nets.net(j)) for j in range(nets.levels)]
    out: Dict[str, Any] = {
        "net_levels": int(nets.levels),
        "net_sizes": sizes,
        "net_points_total": int(sum(sizes)),
        "net_build_s": round(build_s, 6),
    }
    stats = getattr(workload.metric, "row_cache_stats", lambda: {})()
    if stats:
        out["row_cache_peak_rows"] = int(stats["peak_rows"])
        out["row_cache_peak_bytes"] = int(stats["peak_bytes"])
    return out


@register_probe("ring-cardinality",
                summary="Theorem 2.1 max ring cardinality K = (16/δ)^α")
def _ring_cardinality(fitted) -> Dict[str, Any]:
    return {"max_ring_cardinality": int(fitted.inner.max_ring_cardinality())}


@register_probe("label-bits",
                summary="max per-node label bits of a distance labeling scheme")
def _label_bits(fitted) -> Dict[str, Any]:
    return {"max_label_bits": int(fitted.inner.max_label_bits())}


@register_probe("twomode-split",
                summary="Table 3 mode M1/M2 storage + header split and switch rate")
def _twomode_split(fitted) -> Dict[str, Any]:
    scheme = fitted.inner
    n = scheme.graph.n
    m1 = m2 = 0
    for u in range(n):
        account = scheme.table_bits(u)
        m1 = max(m1, sum(b for k, b in account.components.items()
                         if k.startswith("m1_")))
        m2 = max(m2, sum(b for k, b in account.components.items()
                         if k.startswith("m2_")))
    switches = 0
    total_pairs = 0
    for u in range(0, n, max(1, n // 8)):
        for v in range(n):
            if u != v:
                switches += scheme.route(u, v).mode_switches
                total_pairs += 1
    return {
        "m1_table_bits": m1,
        "m2_table_bits": m2,
        "m1_header_bits": int(scheme._header_bits_m1(scheme.labels[0])),
        "m2_header_bits": int(scheme._header_bits_m2()),
        "m2_switches": switches,
        "switch_pairs": total_pairs,
    }


@register_probe("translation-triangles",
                summary="Figure 2: exhaustive ζ translation-triangle audit")
def _translation_triangles(fitted) -> Dict[str, Any]:
    """Audits the packed scheme's derived ζ (binary search over the CSR
    host enumerations) against an independently-built dict of positions,
    for every (u, f, w) triangle."""
    scheme = fitted.inner
    checked = nulls = violations = 0
    for u in range(scheme.graph.n):
        for j in range(scheme.levels - 1):
            ring_u_next = {w: k for k, w in enumerate(scheme.ring(u, j + 1))}
            for fi, f in enumerate(scheme.ring(u, j)):
                for wi, w in enumerate(scheme.ring(f, j + 1)):
                    got = scheme.zeta_lookup(u, j, fi, wi)
                    expected = ring_u_next.get(w)
                    if got != expected:
                        violations += 1
                    checked += 1
                    if expected is None:
                        nulls += 1
    # One worked example for the regenerated figure caption.
    example = ""
    for u in range(scheme.graph.n):
        done = False
        for j in range(scheme.levels - 1):
            first = (
                next(scheme.zeta_items(u, j), None)
                if len(scheme.ring(u, j)) > 1
                else None
            )
            if first is not None:
                (fi, wi), result = first
                f = scheme.ring(u, j)[fi]
                w = scheme.ring(f, j + 1)[wi]
                example = (
                    f"example triangle: u={u}, f=ring_{u},{j}[{fi}]={f}, "
                    f"w=ring_{f},{j + 1}[{wi}]={w}  =>  zeta_u{j}({fi},{wi}) "
                    f"= {result} = position of {w} in ring_{u},{j + 1}"
                )
                done = True
                break
        if done:
            break
    return {
        "triangles_checked": checked,
        "null_entries": nulls,
        "violations": violations,
        "example": example,
    }


def _churn(fitted, repair_probes: int, prefix: str) -> Dict[str, Any]:
    from repro.distributed import ChurnSimulation

    sim = ChurnSimulation(
        fitted.workload.metric,
        fitted.inner,
        churn_rate=0.15,
        repair_probes=repair_probes,
        seed=6,
    )
    reports = sim.run(4, quality_queries=60)
    first, last = reports[0], reports[-1]
    return {
        f"{prefix}_first_mean_approximation": float(first.mean_approximation),
        f"{prefix}_last_mean_approximation": float(last.mean_approximation),
        f"{prefix}_first_exact_rate": float(first.exact_rate),
        f"{prefix}_last_exact_rate": float(last.exact_rate),
        f"{prefix}_last_ring_members": float(last.mean_ring_members),
    }


@register_probe("churn-no-repair",
                summary="§6 Meridian quality decay under churn, no maintenance")
def _churn_no_repair(fitted) -> Dict[str, Any]:
    return _churn(fitted, repair_probes=0, prefix="no_repair")


@register_probe("churn-repair",
                summary="§6 Meridian quality under churn with repair probes")
def _churn_repair(fitted) -> Dict[str, Any]:
    return _churn(fitted, repair_probes=6, prefix="repair")


@register_probe("distributed-net",
                summary="§6 distributed r-net construction cost and validity")
def _distributed_net(fitted) -> Dict[str, Any]:
    from repro.distributed import DistributedNetProtocol, SynchronousNetwork
    from repro.metrics.nets import greedy_net, is_r_net

    metric = fitted.workload.metric
    proto = DistributedNetProtocol(r=0.2)
    net = SynchronousNetwork(metric, proto, seed=1)
    stats = net.run(max_rounds=100)
    members = proto.net_members(net.ctx)
    return {
        "net_rounds": int(stats.rounds),
        "net_messages": int(stats.messages),
        "net_probes": int(stats.probes),
        "net_size": len(members),
        "net_central_size": len(greedy_net(metric, 0.2)),
        "net_valid": bool(is_r_net(metric, members, 0.2)),
        "net_converged": bool(stats.converged),
        "net_round_bound": float(4 * math.log2(metric.n)),
    }


@register_probe("gossip-gap",
                summary="§6 gossip ring coverage/recall vs the exact rings")
def _gossip_gap(fitted) -> Dict[str, Any]:
    from repro.distributed import (
        GossipRingProtocol,
        SynchronousNetwork,
        ring_coverage,
    )

    metric = fitted.workload.metric
    out: Dict[str, Any] = {}
    for rounds in (1, 6, 24):
        proto = GossipRingProtocol(
            bootstrap=3, exchange=8, ring_capacity=6, rounds=rounds
        )
        net = SynchronousNetwork(metric, proto, seed=3)
        net.run(max_rounds=10 * rounds + 10)
        scale_cov, recall = ring_coverage(metric, proto, net.ctx)
        out[f"gossip_r{rounds}_coverage"] = float(scale_cov)
        out[f"gossip_r{rounds}_recall"] = float(recall)
    return out


def _netsim(fitted, scenario_name: str) -> Dict[str, Any]:
    """The §6 battery under one named degradation scenario.

    Keys are prefixed with the scenario name; the scenario's expanded
    config and the resolved protocol seed ride along, so a persisted
    ResultSet fully determines the run.
    """
    from repro.netsim import SCENARIOS, measure_scenario

    guarantee = fitted.guarantee()
    out = measure_scenario(
        fitted.workload.metric,
        SCENARIOS.get(scenario_name).obj,
        seed=11,
        stretch=guarantee.get("stretch"),
        delta=guarantee.get("delta"),
    )
    prefix = scenario_name.replace("-", "_")
    return {f"{prefix}_{key}": value for key, value in out.items()}


for _scenario_name in ("ideal", "lossy", "partition", "byzantine", "crash-churn"):
    @register_probe(
        f"netsim-{_scenario_name}",
        summary=f"event-simulator §6 battery under the {_scenario_name} scenario",
    )
    def _netsim_probe(fitted, _scenario: str = _scenario_name) -> Dict[str, Any]:
        return _netsim(fitted, _scenario)


def _stream_pairs(active, rng, pairs: int):
    """Distinct sampled pairs among the currently-active nodes."""
    import numpy as np

    ids = np.flatnonzero(active)
    us = rng.choice(ids, size=pairs)
    vs = rng.choice(ids, size=pairs)
    keep = us != vs
    return us[keep], vs[keep]


def _stream_quality(fitted, active, rng, pairs: int):
    """Estimate (or routed-path) ratios vs the true metric on sampled
    active pairs — served straight off the patch-buffered structure, so
    mid-patch reads exercise the IVL-checked path."""
    import numpy as np

    metric = fitted.workload.metric
    us, vs = _stream_pairs(active, rng, pairs)
    inner = fitted.inner
    if hasattr(inner, "estimate_many"):
        est = np.asarray(inner.estimate_many(us, vs), dtype=float)
        true = np.array(
            [metric.distance(int(u), int(v)) for u, v in zip(us, vs)]
        )
        finite = np.isfinite(est) & (true > 0)
        return list(est[finite] / true[finite])
    ratios = []
    for u, v in zip(us, vs):
        result = inner.route(int(u), int(v))
        if result.reached:
            ratios.append(
                result.length(inner.graph) / metric.distance(int(u), int(v))
            )
    return ratios


def _stream_parity(fitted, ref, active, pairs: int) -> bool:
    """Bit-for-bit agreement between the streamed-and-compacted structure
    and the rebuild reference on sampled active pairs."""
    import numpy as np

    rng = np.random.default_rng(31)
    us, vs = _stream_pairs(active, rng, pairs)
    a, b = fitted.inner, ref.inner
    if hasattr(a, "estimate_many"):
        return bool(
            np.array_equal(
                np.asarray(a.estimate_many(us, vs)),
                np.asarray(b.estimate_many(us, vs)),
            )
        )
    return all(
        a.route(int(u), int(v)).path == b.route(int(u), int(v)).path
        for u, v in zip(us, vs)
    )


def _churn_stream(
    fitted,
    events: int,
    rate: float,
    checkpoints: int = 4,
    sample_pairs: int = 48,
    prefix: str = "stream",
) -> Dict[str, Any]:
    """Stream a seeded ChurnTrace through the scheme's update path.

    Reports checkpointed estimate quality, IVL check/violation counters
    (the guarantee is zero violations), merge cadence, the amortized
    per-update cost against a timed scrub-and-rebuild reference, and
    bit-for-bit parity of the compacted structure against a fresh build
    bulk-updated to the same final active set.
    """
    import time

    import numpy as np

    from repro.distributed.trace import ChurnTrace

    if not getattr(fitted, "supports_update", False) or not hasattr(
        fitted.inner, "apply_update"
    ):
        return {f"{prefix}_supported": False}

    n = fitted.workload.n
    trace = ChurnTrace.generate(n=n, events=events, rate=rate, seed=23)
    rng = np.random.default_rng(29)
    active = np.ones(n, dtype=bool)
    ratios = []
    update_s = 0.0
    every = max(1, len(trace.events) // checkpoints)
    for i, event in enumerate(trace.events):
        receipt = fitted.update(joins=event.joins, leaves=event.leaves)
        update_s += receipt.update_s
        active[list(event.joins)] = True
        active[list(event.leaves)] = False
        if (i + 1) % every == 0:
            ratios.extend(_stream_quality(fitted, active, rng, sample_pairs))
    stats = fitted.pending_patch_stats()

    # The scrub-and-rebuild baseline an epoch loop would pay per event:
    # a fresh pristine build, bulk-updated to the same active set.
    t0 = time.perf_counter()
    ref = type(fitted).build(
        fitted.workload, fitted.config, seed=getattr(fitted, "_build_seed", 0)
    )
    rebuild_s = time.perf_counter() - t0
    final = trace.final_active()
    gone = [int(x) for x in np.flatnonzero(~final)]
    if gone:
        ref.update(joins=(), leaves=gone)
    ref.compact()
    fitted.compact()
    parity = _stream_parity(fitted, ref, final, pairs=4 * sample_pairs)

    inner = fitted.inner
    amortized = update_s / max(1, len(trace.events))
    return {
        f"{prefix}_supported": True,
        f"{prefix}_trace": trace.describe(),
        f"{prefix}_events": len(trace.events),
        f"{prefix}_amortized_update_s": round(amortized, 6),
        f"{prefix}_rebuild_s": round(rebuild_s, 6),
        f"{prefix}_update_speedup": round(rebuild_s / max(amortized, 1e-12), 2),
        f"{prefix}_mean_ratio": float(np.mean(ratios)) if ratios else float("nan"),
        f"{prefix}_max_ratio": float(np.max(ratios)) if ratios else float("nan"),
        f"{prefix}_checkpoint_samples": len(ratios),
        f"{prefix}_merges": int(stats.merges),
        f"{prefix}_auto_merges": int(stats.auto_merges),
        f"{prefix}_ivl_checks": int(getattr(inner, "ivl_checks", 0)),
        f"{prefix}_ivl_violations": int(getattr(inner, "ivl_violations", 0)),
        f"{prefix}_parity_equal": bool(parity),
        f"{prefix}_final_active": int(final.sum()),
    }


@register_probe("churn-stream",
                summary="stream a seeded ChurnTrace through the scheme's "
                        "patch-buffered update path: quality, IVL, "
                        "amortized cost vs rebuild, compaction parity")
def _churn_stream_probe(fitted) -> Dict[str, Any]:
    return _churn_stream(fitted, events=120, rate=0.02)


@register_probe("churn-stream-lite",
                summary="short churn stream (CI gate cells and the heavier "
                        "routing scheme)")
def _churn_stream_lite_probe(fitted) -> Dict[str, Any]:
    return _churn_stream(
        fitted, events=16, rate=0.05, checkpoints=2, sample_pairs=32
    )


@register_probe("serve-roundtrip",
                summary="container save→load round-trip: parity + timings")
def _serve_roundtrip(fitted) -> Dict[str, Any]:
    """Saves the fitted scheme to a container file, reopens it zero-copy
    and replays sampled queries on both copies: ``roundtrip_equal`` is
    the bit-for-bit verdict, ``save_s``/``load_s`` the persistence cost
    and ``structure_bytes`` the on-disk footprint."""
    import tempfile
    import time
    from pathlib import Path

    import numpy as np

    from repro.serve.persist import load_structure, save_structure

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "structure.repro"
        tick = time.perf_counter()
        save_structure(fitted, path)
        save_s = time.perf_counter() - tick
        tick = time.perf_counter()
        loaded = load_structure(path)
        load_s = time.perf_counter() - tick
        n = fitted.workload.metric.n
        rng = np.random.default_rng(17)
        pairs = rng.integers(0, n, size=(256, 2))
        inner, again = fitted.inner, loaded.inner
        if hasattr(inner, "estimate_many"):
            equal = np.array_equal(
                inner.estimate_many(pairs[:, 0], pairs[:, 1]),
                again.estimate_many(pairs[:, 0], pairs[:, 1]),
            )
        elif hasattr(inner, "estimate"):
            equal = all(
                inner.estimate(int(u), int(v)) == again.estimate(int(u), int(v))
                for u, v in pairs
            )
        else:
            equal = all(
                inner.route(int(u), int(v)).path == again.route(int(u), int(v)).path
                for u, v in pairs
            )
        return {
            "roundtrip_equal": bool(equal),
            "save_s": float(save_s),
            "load_s": float(load_s),
            "structure_bytes": int(path.stat().st_size),
        }
