"""repro.experiments — declarative experiment grids over the facade.

The paper's evaluation is a grid — schemes × workloads × plans × seeds —
and this package expresses it as data instead of hand-rolled loops:

>>> from repro import experiments
>>> spec = experiments.get_suite("table1")      # or ExperimentSpec.load(path)
>>> result_set = experiments.run(spec)          # persists + returns results
>>> result_set.rows(["n", "label", "max_stretch", "max_table_bits"])

Pieces
------
* :mod:`~repro.experiments.spec` — :class:`ExperimentSpec` (frozen,
  JSON-round-tripping grid), :class:`SchemeSpec`, :class:`CellOverride`,
  and the expanded :class:`Cell`;
* :mod:`~repro.experiments.runner` — :func:`run`: grid execution through
  ``api.build`` / ``api.evaluate`` with a shared build cache, optional
  chunk-parallel process pool (workload-grouped), and resume-from-JSON;
* :mod:`~repro.experiments.results` — typed :class:`CellResult` /
  :class:`ResultSet` with lossless persistence under
  ``benchmarks/results/`` and cell-keyed diffing;
* :mod:`~repro.experiments.probes` — registered scheme-specific extra
  measurements cells can request by name;
* :mod:`~repro.experiments.suites` — the named paper artifacts
  (``table1``–``table3``, ``fig1``/``fig2``, ``stretch``, ``dls``,
  ``distributed``, ``smoke``) and the EXPERIMENTS.md index generator.
"""

from repro.experiments.spec import (
    Cell,
    CellOverride,
    ExperimentSpec,
    SchemeSpec,
)
from repro.experiments.results import (
    CellResult,
    ResultSet,
    default_results_dir,
    dump_json,
    jsonify,
)
from repro.experiments.probes import PROBES, register_probe
from repro.experiments.runner import run, run_cell
from repro.experiments.suites import SUITES, get_suite, render_index, suite_names

__all__ = [
    "Cell",
    "CellOverride",
    "CellResult",
    "ExperimentSpec",
    "PROBES",
    "ResultSet",
    "SUITES",
    "SchemeSpec",
    "default_results_dir",
    "dump_json",
    "get_suite",
    "jsonify",
    "register_probe",
    "render_index",
    "run",
    "run_cell",
    "suite_names",
]
