"""Meridian closest-node search.

Given a *query target* q (any point for which nodes can measure their
distance — in the real system, an arbitrary Internet host), the search
starts at some node u, asks the members of u's rings near the scale
``d(u, q)`` for their distances to q, and forwards the query to the best
member provided it improves the distance by the acceptance factor β;
otherwise u is returned as the (approximately) closest node.

In the simulation the target is a held-out node of the metric, and
"measuring" a distance is a metric lookup — the same information flow as
the real protocol's direct probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro._types import NodeId
from repro.meridian.rings import MeridianOverlay


@dataclass
class ClosestNodeResult:
    """Outcome of one closest-node query."""

    target: NodeId
    start: NodeId
    found: NodeId
    path: List[NodeId]
    distance: float  # d(found, target)
    optimal_distance: float  # min over candidate nodes of d(v, target)

    @property
    def hops(self) -> int:
        return len(self.path) - 1

    @property
    def approximation(self) -> float:
        """d(found, q) / min_v d(v, q); 1.0 means exact."""
        if self.optimal_distance == 0:
            return 1.0 if self.distance == 0 else float("inf")
        return self.distance / self.optimal_distance


def closest_node_search(
    overlay: MeridianOverlay,
    start: NodeId,
    target: NodeId,
    beta: float = 0.5,
    max_hops: Optional[int] = None,
) -> ClosestNodeResult:
    """Find the overlay node closest to ``target`` (excluded as a relay).

    ``beta`` is Meridian's acceptance threshold: the query moves to a ring
    member v only if ``d(v, q) <= beta * d(u, q)``.
    """
    if not 0 < beta < 1:
        raise ValueError("beta must be in (0, 1)")
    metric = overlay.metric
    limit = max_hops if max_hops is not None else 4 * overlay.num_rings + 8
    row_q = metric.distances_from(target)

    current = start
    path = [start]
    while len(path) <= limit:
        d_uq = float(row_q[current])
        if d_uq == 0:
            break
        node = overlay.nodes[current]
        ring_idx = overlay.ring_of_distance(d_uq)
        # Probe the rings within one scale of d(u, q), as Meridian does.
        candidates: List[NodeId] = []
        for i in range(max(0, ring_idx - 1), min(overlay.num_rings, ring_idx + 2)):
            candidates.extend(node.rings.get(i, ()))
        candidates = [v for v in set(candidates) if v != target]
        if not candidates:
            break
        cand = np.asarray(candidates, dtype=np.intp)
        dists = row_q[cand]
        best = int(np.argmin(dists))
        if dists[best] <= beta * d_uq:
            current = int(cand[best])
            path.append(current)
        else:
            break

    # Masked vector min instead of a Python generator over all nodes.
    masked = row_q.copy()
    masked[target] = np.inf
    optimal = float(masked.min())
    return ClosestNodeResult(
        target=target,
        start=start,
        found=current,
        path=path,
        distance=float(row_q[current]),
        optimal_distance=optimal,
    )
