"""Meridian-style closest-node discovery (Wong, Slivkins & Sirer [57]).

§6 of the paper: "rings of neighbors can be used in a distributed system
as a layer that supports various applications ... practically in Meridian,
a system for nearest-neighbor and multi-range queries in a peer-to-peer
network."  This subpackage implements that application on top of
:mod:`repro.core.rings`: every node keeps multi-resolution rings of
neighbors; a *closest-node* query greedily hops to the ring member closest
to the query target, stopping when no member improves the distance by the
β factor.
"""

from repro.meridian.rings import MeridianNode, MeridianOverlay
from repro.meridian.search import ClosestNodeResult, closest_node_search
from repro.meridian.multiconstraint import (
    MultiConstraintResult,
    multi_constraint_search,
)

__all__ = [
    "MeridianNode",
    "MeridianOverlay",
    "ClosestNodeResult",
    "closest_node_search",
    "MultiConstraintResult",
    "multi_constraint_search",
]
