"""Meridian ring membership.

Each Meridian node keeps ``log Δ`` concentric rings: ring i holds up to
``k`` neighbors whose distance lies in ``[α·s^{i-1}, α·s^i)`` (the
innermost ring covers ``[0, α·s^0)``).  Members are chosen at random among
eligible nodes — the original system refines membership by gossip and a
diversity criterion; random membership preserves the search behaviour the
paper's framework needs (a documented simplification).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro._types import NodeId
from repro.metrics.base import MetricSpace
from repro.rng import SeedLike, ensure_rng


@dataclass
class MeridianNode:
    """One node's rings: ring index -> member tuple."""

    node: NodeId
    rings: Dict[int, Tuple[NodeId, ...]]

    def all_members(self) -> List[NodeId]:
        out: List[NodeId] = []
        for members in self.rings.values():
            out.extend(members)
        return out

    def out_degree(self) -> int:
        return len(set(self.all_members()))


class MeridianOverlay:
    """The full overlay: per-node multi-resolution rings."""

    def __init__(
        self,
        metric: MetricSpace,
        ring_base: float = 2.0,
        nodes_per_ring: int = 8,
        seed: SeedLike = None,
    ) -> None:
        if ring_base <= 1:
            raise ValueError("ring_base must exceed 1")
        if nodes_per_ring < 1:
            raise ValueError("nodes_per_ring must be positive")
        self.metric = metric
        self.ring_base = ring_base
        self.nodes_per_ring = nodes_per_ring
        rng = ensure_rng(seed)

        self._inner_radius = metric.min_distance()
        self.num_rings = (
            int(
                math.ceil(
                    math.log(metric.diameter() / self._inner_radius, ring_base)
                )
            )
            + 2
        )
        self.nodes: List[MeridianNode] = []
        for u in range(metric.n):
            row = metric.distances_from(u)
            rings: Dict[int, Tuple[NodeId, ...]] = {}
            for i in range(self.num_rings):
                lo = 0.0 if i == 0 else self._inner_radius * ring_base ** (i - 1)
                hi = self._inner_radius * ring_base**i
                eligible = np.flatnonzero((row > lo) & (row <= hi))
                eligible = eligible[eligible != u]
                if eligible.size == 0:
                    continue
                take = min(self.nodes_per_ring, eligible.size)
                members = rng.choice(eligible, size=take, replace=False)
                rings[i] = tuple(sorted(int(x) for x in members))
            self.nodes.append(MeridianNode(node=u, rings=rings))

    def ring_of_distance(self, d: float) -> int:
        """The ring index a node at distance d falls into."""
        if d <= self._inner_radius:
            return 0
        return int(math.ceil(math.log(d / self._inner_radius, self.ring_base)))

    def max_out_degree(self) -> int:
        return max(node.out_degree() for node in self.nodes)

    def mean_out_degree(self) -> float:
        return float(np.mean([node.out_degree() for node in self.nodes]))
