"""Meridian multi-constraint queries ([57], §6 "multi-range queries").

Given a set of targets with per-target latency *constraints*, find an
overlay node satisfying all of them (e.g. "a server within 30 ms of
clients A and B and 50 ms of C").  The Meridian protocol routes the query
greedily on the *violation score*:

    score(v) = Σ_targets max(0, d(v, target) - bound)

hopping to the ring member with the smallest score until it reaches 0
(success) or no member improves it (failure).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro._types import NodeId
from repro.meridian.rings import MeridianOverlay

#: One constraint: (target node, latency upper bound).
Constraint = Tuple[NodeId, float]


@dataclass
class MultiConstraintResult:
    """Outcome of one multi-constraint query."""

    constraints: List[Constraint]
    start: NodeId
    found: Optional[NodeId]
    path: List[NodeId]
    final_score: float

    @property
    def satisfied(self) -> bool:
        return self.found is not None

    @property
    def hops(self) -> int:
        return len(self.path) - 1


def _score(overlay: MeridianOverlay, v: NodeId, constraints: Sequence[Constraint]) -> float:
    row_getter = overlay.metric.distances_from
    total = 0.0
    for target, bound in constraints:
        total += max(0.0, float(row_getter(v)[target]) - bound)
    return total


def multi_constraint_search(
    overlay: MeridianOverlay,
    start: NodeId,
    constraints: Sequence[Constraint],
    max_hops: Optional[int] = None,
) -> MultiConstraintResult:
    """Greedy violation-score descent over ring members."""
    constraints = list(constraints)
    if not constraints:
        raise ValueError("need at least one constraint")
    for target, bound in constraints:
        if not 0 <= target < overlay.metric.n:
            raise ValueError(f"target {target} out of range")
        if bound < 0:
            raise ValueError("latency bounds must be non-negative")

    limit = max_hops if max_hops is not None else 4 * overlay.num_rings + 8
    current = start
    path = [start]
    current_score = _score(overlay, current, constraints)
    while current_score > 0 and len(path) <= limit:
        node = overlay.nodes[current]
        candidates = sorted(set(node.all_members()))
        if not candidates:
            break
        scores = np.array([_score(overlay, v, constraints) for v in candidates])
        best = int(np.argmin(scores))
        if scores[best] >= current_score:
            break  # no ring member improves the violation
        current = candidates[best]
        current_score = float(scores[best])
        path.append(current)
    return MultiConstraintResult(
        constraints=constraints,
        start=start,
        found=current if current_score == 0 else None,
        path=path,
        final_score=current_score,
    )
