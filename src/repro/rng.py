"""Deterministic random-number handling.

All randomized constructions in the library (sampled rings, small-world
contact graphs, synthetic workloads) accept either an integer seed or a
ready :class:`numpy.random.Generator`.  Centralizing the coercion keeps
each constructor's signature small and the behaviour uniform:

* ``ensure_rng(None)`` — a fresh non-deterministic generator,
* ``ensure_rng(seed)`` — a fresh deterministic generator,
* ``ensure_rng(generator)`` — the generator itself (shared state).
"""

from __future__ import annotations

from typing import Union

import numpy as np

#: Accepted everywhere randomness is needed.
SeedLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: SeedLike = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def rng_entropy(rng: np.random.Generator):
    """The resolved seed material of a generator, JSON-serializable.

    ``ensure_rng(None)`` draws fresh OS entropy; recording the resolved
    entropy in run provenance makes even "unseeded" runs reproducible.
    Returns the seed-sequence entropy (an int), a list ``[entropy,
    *spawn_key]`` for spawned children, or ``None`` when the bit
    generator has no seed sequence (foreign generators).
    """
    seq = getattr(rng.bit_generator, "seed_seq", None)
    if seq is None or seq.entropy is None:
        return None
    if seq.spawn_key:
        return [int(seq.entropy), *map(int, seq.spawn_key)]
    return int(seq.entropy)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` independent child generators.

    Used by per-node sampling loops so results do not depend on iteration
    order.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(count)]
