"""Shared type aliases for the :mod:`repro` package.

Nodes of every metric space and graph in this library are identified by
dense integer ids in ``[0, n)``.  Keeping the alias in one module makes the
intent of signatures such as ``def distance(self, u: NodeId, v: NodeId)``
explicit without pulling in heavyweight typing machinery.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

#: Identifier of a node in a metric space or graph: a dense int in ``[0, n)``.
NodeId = int

#: Anything accepted where a collection of node ids is expected.
NodeIds = Union[Sequence[int], np.ndarray]

#: A non-negative edge weight / distance.
Distance = float
