"""Frozen per-scheme configuration objects.

Every scheme family gets one frozen dataclass whose fields are the
tunable knobs the paper exposes (δ, Chernoff constants, ring bases…).
Configs validate on construction and round-trip through plain dicts
(:meth:`SchemeConfig.from_dict` / :meth:`SchemeConfig.to_dict`) so the
CLI, JSON files and the benchmark suite all speak the same language.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional


@dataclass(frozen=True)
class SchemeConfig:
    """Base class: dict round-tripping plus subclass validation hooks."""

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Raise ValueError on out-of-range fields (subclass hook)."""

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Optional[Mapping[str, Any]] = None) -> "SchemeConfig":
        data = dict(data or {})
        names = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - names
        if unknown:
            valid = ", ".join(sorted(names)) or "<none>"
            raise ValueError(
                f"unknown option(s) {sorted(unknown)} for {cls.__name__}; "
                f"valid options: {valid}"
            )
        return cls(**data)

    def replace(self, **changes: Any) -> "SchemeConfig":
        return dataclasses.replace(self, **changes)

    @classmethod
    def field_names(cls) -> frozenset:
        return frozenset(f.name for f in dataclasses.fields(cls))


def _check_delta(delta: float, hi: float = 0.5) -> None:
    if not 0 < delta < hi:
        raise ValueError(f"delta must be in (0, {hi}), got {delta}")


@dataclass(frozen=True)
class TriangulationConfig(SchemeConfig):
    """Theorem 3.2 rings triangulation (and its DLS corollary)."""

    delta: float = 0.3

    def validate(self) -> None:
        _check_delta(self.delta)


@dataclass(frozen=True)
class BeaconsConfig(SchemeConfig):
    """Common-beacon (ε,δ)-triangulation baseline [33, 50]."""

    beacons: int = 16
    mantissa_bits: int = 12

    def validate(self) -> None:
        if self.beacons < 1:
            raise ValueError(f"beacons must be positive, got {self.beacons}")
        if self.mantissa_bits < 1:
            raise ValueError("mantissa_bits must be positive")


@dataclass(frozen=True)
class DLSConfig(SchemeConfig):
    """Theorem 3.4 id-free distance labeling."""

    delta: float = 0.3
    mantissa_bits: Optional[int] = None

    def validate(self) -> None:
        _check_delta(self.delta)
        if self.mantissa_bits is not None and self.mantissa_bits < 1:
            raise ValueError("mantissa_bits must be positive")


@dataclass(frozen=True)
class OracleConfig(SchemeConfig):
    """Thorup–Zwick (2k−1)-approximate oracle baseline."""

    k: int = 2
    mantissa_bits: int = 10

    def validate(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be at least 1, got {self.k}")


@dataclass(frozen=True)
class RoutingConfig(SchemeConfig):
    """Compact routing (Theorems 2.1 / 4.1 / 4.2, trivial baseline).

    ``estimator`` only affects Theorem 4.1; ``strict_goodness`` only
    Theorem 4.2; ``overlay_style`` only metric (graph-free) workloads,
    where the scheme routes over a self-chosen overlay (§4.1).
    """

    delta: float = 0.25
    estimator: str = "triangulation"
    strict_goodness: bool = False
    overlay_style: str = "net"

    def validate(self) -> None:
        _check_delta(self.delta, hi=0.5)
        if self.estimator not in ("triangulation", "exact", "ring"):
            raise ValueError(
                f"estimator must be 'triangulation', 'ring' or 'exact', "
                f"got {self.estimator!r}"
            )
        if self.overlay_style not in ("net", "scale"):
            raise ValueError(
                f"overlay_style must be 'net' or 'scale', got {self.overlay_style!r}"
            )


@dataclass(frozen=True)
class SmallWorldConfig(SchemeConfig):
    """Searchable small worlds (Theorems 5.2a/5.2b/5.5, baselines)."""

    c: float = 2.0
    alpha_factor: float = 2.0
    exponent: float = 2.0  # Kleinberg-grid long-link exponent
    degree_factor: float = 1.0  # group-structures degree multiplier

    def validate(self) -> None:
        if self.c <= 0:
            raise ValueError(f"c must be positive, got {self.c}")
        if self.alpha_factor <= 0:
            raise ValueError("alpha_factor must be positive")
        if self.degree_factor <= 0:
            raise ValueError("degree_factor must be positive")


@dataclass(frozen=True)
class PlanConfig(SchemeConfig):
    """An evaluation plan: which node pairs a benchmark touches.

    ``kind`` names a plan registered in :data:`repro.engine.PLANS`:
    ``all-pairs`` (exhaustive), ``uniform`` (``pairs`` sampled pairs) or
    ``stratified`` (``per_scale`` pairs per power-of-two distance
    scale).  ``seed`` makes sampled plans deterministic.
    """

    kind: str = "uniform"
    pairs: int = 2000
    per_scale: int = 64
    seed: int = 0

    def validate(self) -> None:
        if self.kind not in ("all-pairs", "uniform", "stratified"):
            raise ValueError(
                f"kind must be 'all-pairs', 'uniform' or 'stratified', "
                f"got {self.kind!r}"
            )
        if self.pairs < 1:
            raise ValueError(f"pairs must be positive, got {self.pairs}")
        if self.per_scale < 1:
            raise ValueError(f"per_scale must be positive, got {self.per_scale}")

    def build(self):
        """The :class:`repro.engine.QueryPlan` this config describes."""
        from repro.engine import make_plan

        if self.kind == "all-pairs":
            return make_plan("all-pairs")
        if self.kind == "uniform":
            return make_plan("uniform", size=self.pairs, seed=self.seed)
        return make_plan("stratified", per_scale=self.per_scale, seed=self.seed)


@dataclass(frozen=True)
class MeridianConfig(SchemeConfig):
    """Meridian closest-node overlay (§6, [57])."""

    ring_base: float = 2.0
    nodes_per_ring: int = 8
    beta: float = 0.5

    def validate(self) -> None:
        if self.ring_base <= 1:
            raise ValueError(f"ring_base must exceed 1, got {self.ring_base}")
        if self.nodes_per_ring < 1:
            raise ValueError("nodes_per_ring must be positive")
        if not 0 < self.beta < 1:
            raise ValueError(f"beta must be in (0, 1), got {self.beta}")
