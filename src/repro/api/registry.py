"""String-keyed registries for workloads and schemes.

The paper solves four problems with one structure; the library mirrors
that by making every workload generator and every scheme discoverable
under a short stable name.  A :class:`Registry` maps names to
:class:`Entry` records (the registered object plus metadata), supports
decorator-based registration, and raises a :class:`KeyError` that lists
the valid names — so a typo in a CLI flag or a config file is
self-diagnosing.

Two module-level registries are the single source of truth:

* :data:`WORKLOADS` — workload builders (see :mod:`repro.api.workloads`);
* :data:`SCHEMES` — scheme adapters (see :mod:`repro.api.schemes`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple


@dataclass(frozen=True)
class Entry:
    """One registered object plus its metadata."""

    name: str
    obj: Any
    summary: str = ""
    #: free-form metadata (e.g. workload parameter defaults, problem family)
    meta: Mapping[str, Any] = field(default_factory=dict)


class Registry:
    """An ordered, string-keyed registry with decorator registration."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, Entry] = {}

    # -- registration --------------------------------------------------

    def register(
        self,
        name: str,
        obj: Optional[Any] = None,
        *,
        summary: str = "",
        **meta: Any,
    ):
        """Register ``obj`` under ``name``; usable as a decorator.

        ``registry.register("foo", thing)`` registers directly;
        ``@registry.register("foo")`` registers the decorated object.
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} name must be a non-empty string")

        def _add(target: Any) -> Any:
            if name in self._entries:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered "
                    f"(to {self._entries[name].obj!r})"
                )
            doc_summary = summary
            if not doc_summary and getattr(target, "__doc__", None):
                doc_summary = target.__doc__.strip().splitlines()[0]
            self._entries[name] = Entry(name, target, doc_summary, dict(meta))
            return target

        if obj is None:
            return _add
        return _add(obj)

    def unregister(self, name: str) -> None:
        """Remove ``name`` (mainly for tests registering temporaries)."""
        self._entries.pop(name, None)

    # -- lookup --------------------------------------------------------

    def get(self, name: str) -> Entry:
        """The entry for ``name``; a KeyError listing valid names otherwise."""
        try:
            return self._entries[name]
        except KeyError:
            valid = ", ".join(sorted(self._entries)) or "<none>"
            raise KeyError(
                f"unknown {self.kind} {name!r}; valid {self.kind}s: {valid}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        """All registered names, in registration order."""
        return tuple(self._entries)

    def items(self) -> Iterator[Tuple[str, Entry]]:
        return iter(self._entries.items())

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {list(self._entries)})"


#: Workload generators, keyed by the names the CLI exposes.
WORKLOADS = Registry("workload")

#: Scheme adapters for the paper's problems, keyed by stable names.
SCHEMES = Registry("scheme")


def register_workload(
    name: str, *, summary: str = "", kind: str = "metric", **defaults: Any
) -> Callable:
    """Decorator: register a workload builder.

    ``kind`` is ``"metric"`` (builder returns a MetricSpace) or
    ``"graph"`` (builder returns a WeightedGraph; its shortest-path
    metric is derived lazily).  ``defaults`` document the extra keyword
    parameters the builder accepts beyond ``n`` and ``seed``, and serve
    as the authoritative parameter list for CLI/config splitting.
    """
    if kind not in ("metric", "graph"):
        raise ValueError(f"workload kind must be 'metric' or 'graph', got {kind!r}")
    return WORKLOADS.register(name, summary=summary, kind=kind, defaults=defaults)


def register_scheme(name: str, *, summary: str = "", problem: str = "") -> Callable:
    """Decorator: register a :class:`~repro.api.schemes.Scheme` adapter."""
    return SCHEMES.register(name, summary=summary, problem=problem)


def workload_names() -> Tuple[str, ...]:
    return WORKLOADS.names()


def scheme_names() -> Tuple[str, ...]:
    return SCHEMES.names()
