"""String-keyed registries for workloads and schemes.

The paper solves four problems with one structure; the library mirrors
that by making every workload generator and every scheme discoverable
under a short stable name.  The generic machinery (:class:`Registry`,
:class:`Entry`) lives in :mod:`repro.registry` so lower layers — the
query engine registers its evaluation plans the same way — can use it
without importing the API package; this module re-exports it for
backward compatibility.

Two module-level registries are the single source of truth here:

* :data:`WORKLOADS` — workload builders (see :mod:`repro.api.workloads`);
* :data:`SCHEMES` — scheme adapters (see :mod:`repro.api.schemes`).
"""

from __future__ import annotations

from typing import Any, Callable, Tuple

from repro.registry import Entry, Registry

__all__ = [
    "Entry",
    "Registry",
    "WORKLOADS",
    "SCHEMES",
    "register_workload",
    "register_scheme",
    "workload_names",
    "scheme_names",
]

#: Workload generators, keyed by the names the CLI exposes.
WORKLOADS = Registry("workload")

#: Scheme adapters for the paper's problems, keyed by stable names.
SCHEMES = Registry("scheme")


def register_workload(
    name: str, *, summary: str = "", kind: str = "metric", **defaults: Any
) -> Callable:
    """Decorator: register a workload builder.

    ``kind`` is ``"metric"`` (builder returns a MetricSpace) or
    ``"graph"`` (builder returns a WeightedGraph; its shortest-path
    metric is derived lazily).  ``defaults`` document the extra keyword
    parameters the builder accepts beyond ``n`` and ``seed``, and serve
    as the authoritative parameter list for CLI/config splitting.
    """
    if kind not in ("metric", "graph"):
        raise ValueError(f"workload kind must be 'metric' or 'graph', got {kind!r}")
    return WORKLOADS.register(name, summary=summary, kind=kind, defaults=defaults)


def register_scheme(
    name: str,
    *,
    summary: str = "",
    problem: str = "",
    supports_update: bool = False,
) -> Callable:
    """Decorator: register a :class:`~repro.api.schemes.Scheme` adapter.

    ``supports_update=True`` marks schemes whose fitted instances
    implement the :class:`~repro.api.mutation.MutableScheme` extension
    (``update``/``pending_patch_stats``/``compact``); ``repro list``
    surfaces the flag and :func:`repro.api.update` consults it in error
    messages.
    """
    return SCHEMES.register(
        name, summary=summary, problem=problem, supports_update=supports_update
    )


def workload_names() -> Tuple[str, ...]:
    return WORKLOADS.names()


def scheme_names() -> Tuple[str, ...]:
    return SCHEMES.names()
