"""The build facade: one entry point for every workload and scheme.

>>> from repro import api
>>> tri = api.build("triangulation", workload="hypercube", n=128, delta=0.25)
>>> tri.query(3, 77)            # (1+O(delta))-approximate distance
>>> tri.stats()                 # the paper's quality/size numbers
>>> tri.size_account()          # bit-level storage breakdown

Builds are memoized: a :class:`BuildCache` keys realized workloads by
their :class:`~repro.api.workloads.Workload` spec (name, n, seed,
params), so the CLI or a benchmark that runs several schemes on one
instance generates the metric once and shares the lazily-built scale
structures through the common :class:`WorkloadInstance`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Mapping, Optional, Tuple, Union

from repro.rng import SeedLike

from repro.api.mutation import MutableScheme, UnsupportedUpdate, UpdateReceipt
from repro.api.registry import SCHEMES, WORKLOADS
from repro.api.schemes import FittedScheme
from repro.api.workloads import DEFAULT_N, Workload, WorkloadInstance, realize

WorkloadLike = Union[str, Workload, WorkloadInstance]


class BuildCache:
    """LRU-memoizes realized workloads per (name, n, seed, params) spec.

    Bounded because every entry pins an O(n²) distance matrix (plus any
    lazily-built scale structures) for as long as it stays cached.

    With ``structure_dir`` set, metric workloads additionally spill to /
    hydrate from container files in that directory (keyed by a stable
    hash of the spec), so a fresh process skips the generator and its
    O(n²) distance pass.  Hydrated instances carry the persisted matrix
    as a :class:`~repro.metrics.matrix.DistanceMatrixMetric` — same
    distances, but generator-specific extras (point coordinates) are
    reattached only if they were saved.  Graph workloads always rebuild
    (their full structure persists via :func:`save` instead).
    """

    def __init__(
        self,
        maxsize: int = 32,
        structure_dir: Optional[Any] = None,
    ) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be positive")
        self.maxsize = maxsize
        self._instances: "OrderedDict[Workload, WorkloadInstance]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        from pathlib import Path

        self.structure_dir = None if structure_dir is None else Path(structure_dir)
        self.spills = 0
        self.hydrations = 0
        self.invalidations = 0

    def _spill_path(self, spec: Workload):
        import hashlib
        import json

        key = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:16]
        return self.structure_dir / f"{spec.name}-n{spec.n}-{digest}.metric"

    def _spillable(self, spec: Workload) -> bool:
        return (
            self.structure_dir is not None
            and WORKLOADS.get(spec.name).meta.get("kind") == "metric"
        )

    def _hydrate(self, spec: Workload) -> Optional[WorkloadInstance]:
        path = self._spill_path(spec)
        if not path.exists():
            return None
        from repro.metrics.io import load_metric

        try:
            metric = load_metric(path)
        except (ValueError, OSError):
            return None  # stale or foreign file: fall through to a build
        if metric.n != spec.n:
            return None
        self.hydrations += 1
        return WorkloadInstance(spec, metric)

    def _spill(self, spec: Workload, instance: WorkloadInstance) -> None:
        path = self._spill_path(spec)
        if path.exists():
            return
        from repro.metrics.io import save_metric

        self.structure_dir.mkdir(parents=True, exist_ok=True)
        save_metric(instance.metric, path)
        self.spills += 1

    def instance(self, spec: Workload, executor=None) -> WorkloadInstance:
        try:
            hash(spec)
        except TypeError:
            # Unhashable seed (e.g. a live Generator): build uncached.
            return self._attach(realize(spec), executor)
        if spec in self._instances:
            cached = self._instances[spec]
            if getattr(cached, "revision", 0):
                # A mutable scheme applied in-place updates to this
                # instance; its shared structures no longer match the
                # pristine spec.  Evict and rebuild instead of serving
                # a stale (mutated) instance under the original key.
                del self._instances[spec]
                self.invalidations += 1
            else:
                self.hits += 1
                self._instances.move_to_end(spec)
                return self._attach(cached, executor)
        self.misses += 1
        built = self._hydrate(spec) if self._spillable(spec) else None
        if built is None:
            built = realize(spec)
            if self._spillable(spec):
                self._spill(spec, built)
        self._instances[spec] = built
        while len(self._instances) > self.maxsize:
            self._instances.popitem(last=False)
        return self._attach(built, executor)

    @staticmethod
    def _attach(instance: WorkloadInstance, executor) -> WorkloadInstance:
        # The executor is execution policy, not identity: sharded builds
        # are bit-for-bit serial builds, so attaching it to a cached
        # instance is safe and it never participates in the cache key.
        if executor is not None:
            instance.executor = executor
        return instance

    def clear(self) -> None:
        """Drop memoized instances (spilled files stay on disk)."""
        self._instances.clear()
        self.hits = 0
        self.misses = 0

    def info(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "entries": len(self._instances),
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
        }
        if self.structure_dir is not None:
            out["structure_dir"] = str(self.structure_dir)
            out["spills"] = self.spills
            out["hydrations"] = self.hydrations
        return out


#: The process-wide default cache (cleared with :func:`clear_cache`).
_DEFAULT_CACHE = BuildCache()


def clear_cache() -> None:
    """Drop all memoized workload instances."""
    _DEFAULT_CACHE.clear()


def cache_info() -> Dict[str, int]:
    """Entries/hits/misses of the default build cache."""
    return _DEFAULT_CACHE.info()


def build_workload(
    workload: WorkloadLike = "hypercube",
    n: Optional[int] = None,
    seed: Optional[SeedLike] = 0,
    *,
    cache: Optional[BuildCache] = None,
    executor: Any = None,
    **params: Any,
) -> WorkloadInstance:
    """Realize a workload by name (memoized) or pass an instance through.

    ``build_workload("expline", n=64, base=1.7)`` builds (or fetches) the
    64-point exponential line; deterministic generators ignore ``seed``.
    When ``n`` is omitted the instance size falls back to
    :data:`DEFAULT_N` (= 96).  ``executor`` (a
    :class:`repro.construction.BuildExecutor`) is attached to the
    instance so scheme builders shard their construction scans; it never
    changes results.
    """
    if isinstance(workload, WorkloadInstance):
        if n is not None or params:
            raise ValueError(
                "cannot override n/params of an already-built WorkloadInstance"
            )
        return BuildCache._attach(workload, executor)
    if isinstance(workload, Workload):
        if n is not None or params:
            raise ValueError("pass parameters via Workload.make, not both")
        spec = workload
    else:
        spec = Workload.make(workload, n=n, seed=seed, **params)
    return (cache or _DEFAULT_CACHE).instance(spec, executor=executor)


def _split_params(
    scheme_cls, workload_name: Optional[str], params: Mapping[str, Any]
) -> Tuple[Dict[str, Any], Dict[str, Any]]:
    """Split loose kwargs into (workload params, config params)."""
    config_fields = scheme_cls.config_cls.field_names()
    workload_fields: frozenset = frozenset()
    if workload_name is not None:
        workload_fields = frozenset(WORKLOADS.get(workload_name).meta["defaults"])
    wl: Dict[str, Any] = {}
    cfg: Dict[str, Any] = {}
    for key, value in params.items():
        in_cfg = key in config_fields
        in_wl = key in workload_fields
        if in_cfg and in_wl:
            raise ValueError(
                f"parameter {key!r} is ambiguous: both workload "
                f"{workload_name!r} and {scheme_cls.config_cls.__name__} "
                f"accept it; pass it via workload_params= or config= instead"
            )
        if in_cfg:
            cfg[key] = value
        elif in_wl:
            wl[key] = value
        else:
            valid = sorted(config_fields | workload_fields)
            raise ValueError(
                f"unknown parameter {key!r}; valid parameters here: "
                f"{', '.join(valid)}"
            )
    return wl, cfg


def build(
    scheme: str,
    workload: WorkloadLike = "hypercube",
    n: Optional[int] = None,
    seed: SeedLike = 0,
    *,
    config: Union[None, Mapping[str, Any], Any] = None,
    workload_params: Optional[Mapping[str, Any]] = None,
    cache: Optional[BuildCache] = None,
    executor: Any = None,
    **params: Any,
) -> FittedScheme:
    """Build a registered scheme on a registered workload.

    Loose keyword arguments are routed automatically: names matching the
    scheme's config go to the config, names matching the workload's
    parameters go to the generator, anything else (or anything both
    accept) raises with the valid choices spelled out.  ``seed`` drives
    both the workload generator and every randomized part of the scheme,
    so equal seeds give identical builds.  ``executor`` shards the
    construction scans (see :mod:`repro.construction`) without changing
    a single bit of the built structure.
    """
    entry = SCHEMES.get(scheme)
    scheme_cls = entry.obj
    wl_name = workload if isinstance(workload, str) else None
    wl_params, cfg_params = _split_params(scheme_cls, wl_name, params)
    if workload_params:
        overlap = set(wl_params) & set(workload_params)
        if overlap:
            raise ValueError(f"workload parameter(s) given twice: {sorted(overlap)}")
        wl_params.update(workload_params)
    if config is not None and cfg_params:
        raise ValueError(
            f"pass scheme options either via config= or as keywords, not both "
            f"(got config= plus {sorted(cfg_params)})"
        )
    if config is None:
        config = scheme_cls.config_cls.from_dict(cfg_params)
    elif isinstance(config, Mapping):
        config = scheme_cls.config_cls.from_dict(config)

    instance = build_workload(
        workload, n=n, seed=seed, cache=cache, executor=executor, **wl_params
    )
    return scheme_cls.build(instance, config, seed=seed)


def supports_update(scheme: Union[str, FittedScheme, type]) -> bool:
    """Whether a scheme (by registered name, class, or fitted instance)
    implements the :class:`MutableScheme` churn extension."""
    if isinstance(scheme, str):
        return bool(SCHEMES.get(scheme).meta.get("supports_update", False))
    target = scheme if isinstance(scheme, type) else type(scheme)
    return bool(getattr(target, "supports_update", False))


def update(scheme: FittedScheme, joins=(), leaves=()) -> UpdateReceipt:
    """Apply one join/leave batch to a fitted mutable scheme.

    >>> tri = api.build("triangulation", "hypercube", n=256)
    >>> receipt = api.update(tri, leaves=[3, 77])
    >>> tri.query(5, 9)        # served from the patched structure

    Static schemes raise the typed :class:`UnsupportedUpdate` (never an
    ``AttributeError``) naming the schemes that do support updates.
    """
    if not supports_update(scheme):
        mutable = sorted(
            name for name, entry in SCHEMES.items()
            if entry.meta.get("supports_update")
        )
        raise UnsupportedUpdate(
            f"{type(scheme).__name__} does not support incremental updates; "
            f"schemes with update support: {', '.join(mutable)}"
        )
    return scheme.update(joins=joins, leaves=leaves)


def evaluate(
    scheme: FittedScheme,
    plan: Union[str, Any] = "uniform",
    **plan_params: Any,
) -> Dict[str, Any]:
    """Evaluate a fitted scheme over a query plan.

    ``plan`` is a name registered in :data:`repro.engine.PLANS`
    (``all-pairs``, ``uniform``, ``stratified``) with its parameters as
    keywords, a ready :class:`repro.engine.QueryPlan`, a
    :class:`~repro.api.configs.PlanConfig`, or an explicit pair array:

    >>> api.evaluate(scheme, "uniform", size=5000, seed=1)
    >>> api.evaluate(scheme, "all-pairs")
    >>> api.evaluate(scheme, PlanConfig(kind="stratified", per_scale=32))

    Sampled plans make quality evaluation tractable at n = 10⁴⁺, where
    the Θ(n²) all-pairs sweep is the bottleneck rather than the scheme.
    """
    from repro.engine import make_plan

    from repro.api.configs import PlanConfig

    if isinstance(plan, PlanConfig):
        if plan_params:
            raise ValueError("pass plan parameters inside the PlanConfig")
        resolved = plan.build()
    else:
        resolved = make_plan(plan, **plan_params)
    return scheme.evaluate(resolved)


def save(scheme: FittedScheme, path: Any) -> str:
    """Persist a fitted scheme to a container file; returns its hash.

    >>> tri = api.build("triangulation", "hypercube", n=1000)
    >>> api.save(tri, "tri.repro")
    >>> api.load("tri.repro").query(3, 77)   # no rebuild, same bits

    Thin wrapper over :func:`repro.serve.persist.save_structure`; see
    :data:`repro.serve.PERSISTABLE_SCHEMES` for coverage.
    """
    from repro.serve.persist import save_structure

    return save_structure(scheme, path)


def load(path: Any, **options: Any) -> FittedScheme:
    """Reopen a scheme saved by :func:`save` — zero-copy, no rebuild.

    The file's array segments are memory-mapped (pass ``mmap=False`` to
    read them into private memory, ``verify=True`` to recheck the
    content hash first).  Estimates and routes from the loaded scheme
    are bit-for-bit identical to the scheme that was saved.
    """
    from repro.serve.persist import load_structure

    return load_structure(path, **options)


def list_workloads() -> Tuple[Tuple[str, str], ...]:
    """(name, summary) for every registered workload."""
    return tuple((name, entry.summary) for name, entry in WORKLOADS.items())


def list_schemes() -> Tuple[Tuple[str, str, str], ...]:
    """(name, problem, summary) for every registered scheme."""
    return tuple(
        (name, entry.meta.get("problem", ""), entry.summary)
        for name, entry in SCHEMES.items()
    )


def describe() -> str:
    """A human-readable listing of all workloads and schemes."""
    lines = [f"workloads ({len(WORKLOADS)})"]
    for name, summary in list_workloads():
        lines.append(f"  {name:<14s} {summary}")
    lines.append("")
    lines.append(f"schemes ({len(SCHEMES)})")
    for name, problem, summary in list_schemes():
        tag = (
            " [+update]"
            if SCHEMES.get(name).meta.get("supports_update")
            else ""
        )
        lines.append(f"  {name:<14s} [{problem}]{tag} {summary}")
    return "\n".join(lines)
