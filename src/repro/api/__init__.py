"""repro.api — the unified build/query surface over the whole library.

The paper solves four node-labeling problems with one structure (rings
of neighbors); this package gives them one API:

>>> from repro import api
>>> scheme = api.build("triangulation", workload="hypercube", n=128)
>>> scheme.query(3, 77)
>>> scheme.stats()
>>> scheme.size_account().describe()

Pieces
------
* :mod:`~repro.api.registry` — string-keyed registries of workloads and
  schemes (``api.workload_names()``, ``api.scheme_names()``);
* :mod:`~repro.api.workloads` — :class:`Workload` specs and the
  registered generators; realized instances share scale structures and
  doubling measures across schemes;
* :mod:`~repro.api.configs` — frozen, validating per-scheme configs
  with dict round-tripping for CLI/JSON use;
* :mod:`~repro.api.schemes` — adapters giving every construction the
  uniform ``build`` / ``query`` / ``stats`` / ``size_account`` surface;
* :mod:`~repro.api.facade` — ``build()`` / ``build_workload()`` with a
  memoized per-(workload, seed) cache.
"""

from repro.api.registry import (
    SCHEMES,
    WORKLOADS,
    Registry,
    register_scheme,
    register_workload,
    scheme_names,
    workload_names,
)
from repro.api.configs import (
    BeaconsConfig,
    DLSConfig,
    MeridianConfig,
    OracleConfig,
    PlanConfig,
    RoutingConfig,
    SchemeConfig,
    SmallWorldConfig,
    TriangulationConfig,
)
from repro.api.workloads import DEFAULT_N, Workload, WorkloadInstance
from repro.api.mutation import MutableScheme, UnsupportedUpdate, UpdateReceipt
from repro.api.schemes import FittedScheme, Scheme
from repro.api.facade import (
    BuildCache,
    build,
    build_workload,
    cache_info,
    clear_cache,
    describe,
    evaluate,
    list_schemes,
    list_workloads,
    load,
    save,
    supports_update,
    update,
)

__all__ = [
    "SCHEMES",
    "WORKLOADS",
    "Registry",
    "register_scheme",
    "register_workload",
    "scheme_names",
    "workload_names",
    "SchemeConfig",
    "TriangulationConfig",
    "BeaconsConfig",
    "DLSConfig",
    "OracleConfig",
    "PlanConfig",
    "RoutingConfig",
    "SmallWorldConfig",
    "MeridianConfig",
    "DEFAULT_N",
    "Workload",
    "WorkloadInstance",
    "Scheme",
    "FittedScheme",
    "MutableScheme",
    "UnsupportedUpdate",
    "UpdateReceipt",
    "BuildCache",
    "build",
    "build_workload",
    "cache_info",
    "clear_cache",
    "describe",
    "evaluate",
    "list_schemes",
    "list_workloads",
    "load",
    "save",
    "supports_update",
    "update",
]
