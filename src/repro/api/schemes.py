"""Scheme adapters: one uniform surface over the paper's four problems.

Every adapter implements the :class:`Scheme` protocol —

* ``build(workload, config, seed=...)`` → a fitted scheme,
* ``query(u, v)`` — the problem's natural point query (a distance
  estimate, a routed packet, a small-world lookup, a closest-node
  search),
* ``stats(samples=..., seed=...)`` — a flat dict of the quality/size
  numbers the paper's tables report,
* ``size_account()`` — the bit-level storage breakdown of the heaviest
  node (the paper's per-node size claims are always worst-case).

Adapters share expensive intermediates through the
:class:`~repro.api.workloads.WorkloadInstance` (scale structures,
doubling measures), so building several schemes on one workload does
not redo the O(n²) groundwork.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional, Protocol, runtime_checkable

import numpy as np

from repro._types import NodeId
from repro.bits import SizeAccount, bits_for_count
from repro.rng import SeedLike, ensure_rng

from repro.api.configs import (
    BeaconsConfig,
    DLSConfig,
    MeridianConfig,
    OracleConfig,
    RoutingConfig,
    SchemeConfig,
    SmallWorldConfig,
    TriangulationConfig,
)
from repro.api.mutation import UnsupportedUpdate, UpdateReceipt
from repro.api.registry import register_scheme
from repro.api.workloads import WorkloadInstance


@runtime_checkable
class Scheme(Protocol):
    """The uniform build/query surface every adapter implements."""

    def query(self, u: NodeId, v: NodeId) -> Any: ...

    def stats(self, *, samples: int = 200, seed: SeedLike = 0) -> Dict[str, Any]: ...

    def size_account(self) -> SizeAccount: ...


class FittedScheme:
    """Common plumbing: workload + config + the wrapped structure."""

    #: the config dataclass this scheme family accepts
    config_cls = SchemeConfig

    #: whether fitted instances implement the MutableScheme extension
    supports_update = False

    def __init__(
        self, workload: WorkloadInstance, config: SchemeConfig, inner: Any
    ) -> None:
        self.workload = workload
        self.config = config
        #: the underlying paper structure (RingTriangulation, RingRouting, …)
        self.inner = inner

    @classmethod
    def build(
        cls,
        workload: WorkloadInstance,
        config: Optional[SchemeConfig] = None,
        *,
        seed: SeedLike = 0,
    ) -> "FittedScheme":
        if config is None:
            config = cls.config_cls()
        elif isinstance(config, dict):
            config = cls.config_cls.from_dict(config)
        elif not isinstance(config, cls.config_cls):
            raise TypeError(
                f"{cls.__name__} expects a {cls.config_cls.__name__}, "
                f"got {type(config).__name__}"
            )
        fitted = cls._build(workload, config, seed=seed)
        # Recorded so churn probes can rebuild an identical reference
        # structure without threading the seed through separately.
        fitted._build_seed = seed
        return fitted

    @classmethod
    def _build(
        cls, workload: WorkloadInstance, config: SchemeConfig, *, seed: SeedLike
    ) -> "FittedScheme":
        raise NotImplementedError

    def query(self, u: NodeId, v: NodeId) -> Any:
        raise NotImplementedError

    def stats(self, *, samples: int = 200, seed: SeedLike = 0) -> Dict[str, Any]:
        raise NotImplementedError

    def evaluate(self, plan: Any) -> Dict[str, Any]:
        """Quality stats over an engine query plan (see :mod:`repro.engine`).

        Every shipped adapter family overrides this; a subclass that does
        not gets a :class:`NotImplementedError` (there is no meaningful
        generic aggregation over :meth:`query`'s per-family result types).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not support plan-driven evaluation"
        )

    def size_account(self) -> SizeAccount:
        raise NotImplementedError

    # -- mutation (the MutableScheme extension; static by default) ------

    def update(self, joins=(), leaves=()) -> UpdateReceipt:
        raise UnsupportedUpdate(
            f"scheme {type(self).__name__} is static: it does not support "
            f"incremental joins/leaves (see api.supports_update)"
        )

    def pending_patch_stats(self):
        raise UnsupportedUpdate(
            f"scheme {type(self).__name__} is static: no patch buffer"
        )

    def compact(self):
        raise UnsupportedUpdate(
            f"scheme {type(self).__name__} is static: nothing to compact"
        )

    def guarantee(self) -> Dict[str, Any]:
        """The scheme's advertised quality guarantee, JSON-serializable.

        The serve layer stamps this dict (plus the structure's content
        hash) on every response, so estimates are *optimistically*
        serveable: the caller knows the certified (stretch, δ) envelope
        without any coordination.  ``stretch`` is a numeric worst-case
        factor when the paper certifies one, else ``None`` with a
        ``stretch_formula`` describing the asymptotic bound.
        """
        return {"kind": "none", "stretch": None}

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(workload={self.workload.name!r}, "
            f"n={self.workload.n}, config={self.config})"
        )

    # -- shared helpers ------------------------------------------------

    def _sample_pairs(self, samples: int, seed: SeedLike, n: int) -> np.ndarray:
        rng = ensure_rng(seed)
        pairs = rng.integers(0, n, size=(samples, 2))
        return pairs[pairs[:, 0] != pairs[:, 1]]


class _MutableSchemeMixin:
    """The MutableScheme extension for adapters whose inner structure
    implements ``apply_update``/``pending_patch_stats``/``compact``."""

    supports_update = True

    def _registered_name(self) -> str:
        from repro.api.registry import SCHEMES

        for name in SCHEMES.names():
            if SCHEMES.get(name).obj is type(self):
                return name
        return type(self).__name__

    def update(self, joins=(), leaves=()) -> UpdateReceipt:
        """Apply one join/leave batch to the fitted structure.

        Bumps the workload instance's revision counter, which is what
        :class:`~repro.api.facade.BuildCache` re-keys on — a mutated
        instance is never served as if it were the pristine build.
        """
        import time

        inner = self.inner
        if not hasattr(inner, "apply_update"):
            raise UnsupportedUpdate(
                f"{self._registered_name()} built this workload without an "
                f"updatable structure (metric-overlay routing is static); "
                f"use a graph workload for incremental updates"
            )
        t0 = time.perf_counter()
        merged = inner.apply_update(joins=joins, leaves=leaves)
        update_s = time.perf_counter() - t0
        self.workload.revision = getattr(self.workload, "revision", 0) + 1
        stats = inner.pending_patch_stats()
        return UpdateReceipt(
            scheme=self._registered_name(),
            joins=tuple(sorted(int(x) for x in set(joins))),
            leaves=tuple(sorted(int(x) for x in set(leaves))),
            revision=int(inner.revision),
            active_nodes=stats.active_nodes,
            pending_joins=stats.pending_joins,
            pending_leaves=stats.pending_leaves,
            dirty_rows=stats.dirty_rows,
            merged=bool(merged),
            update_s=float(update_s),
        )

    def pending_patch_stats(self):
        inner = self.inner
        if not hasattr(inner, "pending_patch_stats"):
            raise UnsupportedUpdate(
                f"{self._registered_name()}: no patch buffer on this build"
            )
        return inner.pending_patch_stats()

    def compact(self):
        inner = self.inner
        if not hasattr(inner, "compact"):
            raise UnsupportedUpdate(
                f"{self._registered_name()}: nothing to compact on this build"
            )
        stats = inner.compact()
        self.workload.revision = getattr(self.workload, "revision", 0) + 1
        return stats


# ----------------------------------------------------------------------
# Distance estimation (§3): triangulations, labels, oracle baselines
# ----------------------------------------------------------------------


class _EstimatorScheme(FittedScheme):
    """Shared stats for anything with an ``estimate(u, v)`` method."""

    def query(self, u: NodeId, v: NodeId) -> float:
        """A (1+O(δ))-approximate distance estimate."""
        return float(self.inner.estimate(u, v))

    def _worst_label_account(self) -> SizeAccount:
        """label_bits of the node with the largest label (the paper's
        per-node size claims are worst-case)."""
        n = self.workload.metric.n
        best = max(range(n), key=lambda u: self.inner.label_bits(u).total_bits)
        return self.inner.label_bits(best)

    def _error_stats(self, samples: int, seed: SeedLike) -> Dict[str, Any]:
        metric = self.workload.metric
        pairs = self._sample_pairs(samples, seed, metric.n)
        report = self.evaluate(pairs)
        return {
            "sampled_pairs": report["sampled_pairs"],
            "max_relative_error": report["max_relative_error"],
            "mean_relative_error": report["mean_relative_error"],
        }

    def evaluate(self, plan: Any) -> Dict[str, Any]:
        """Batched error stats over an engine plan (or explicit pairs)."""
        from repro.engine import evaluate_estimator

        report = evaluate_estimator(self.inner, self.workload.metric, plan)
        return report.to_dict()


@register_scheme(
    "triangulation", problem="distance-estimation",
    summary="Theorem 3.2 (0,δ)-triangulation via rings of neighbors",
    supports_update=True,
)
class TriangulationScheme(_MutableSchemeMixin, _EstimatorScheme):
    config_cls = TriangulationConfig

    @classmethod
    def _build(cls, workload, config, *, seed):
        from repro.labeling.triangulation import RingTriangulation

        tri = RingTriangulation(
            workload.metric, delta=config.delta,
            scales=workload.scales(config.delta),
        )
        return cls(workload, config, tri)

    def stats(self, *, samples: int = 200, seed: SeedLike = 0) -> Dict[str, Any]:
        tri = self.inner
        out = {
            "order": tri.order,
            "mean_order": tri.mean_order(),
            "certified_ratio_bound": tri.certified_ratio_bound(),
        }
        out.update(self._error_stats(samples, seed))
        return out

    def size_account(self) -> SizeAccount:
        tri = self.inner
        n = self.workload.metric.n
        k = tri.order  # max beacons per node, straight off the CSR offsets
        account = SizeAccount()
        account.add("neighbor_ids", k * bits_for_count(n))
        account.add("neighbor_distances", k * 64)  # exact float64 distances
        return account

    def guarantee(self) -> Dict[str, Any]:
        return {
            "kind": "triangulation-thm3.2",
            "stretch": self.inner.certified_ratio_bound(),
            "delta": self.config.delta,
        }


@register_scheme(
    "beacons", problem="distance-estimation",
    summary="common-beacon (ε,δ)-triangulation baseline [33, 50]",
    supports_update=True,
)
class BeaconsScheme(_MutableSchemeMixin, _EstimatorScheme):
    config_cls = BeaconsConfig

    @classmethod
    def _build(cls, workload, config, *, seed):
        from repro.labeling.beacons import BeaconTriangulation

        tri = BeaconTriangulation(
            workload.metric, k=config.beacons,
            seed=seed, mantissa_bits=config.mantissa_bits,
        )
        return cls(workload, config, tri)

    def stats(self, *, samples: int = 200, seed: SeedLike = 0) -> Dict[str, Any]:
        out = {"order": self.inner.order}
        out.update(self._error_stats(samples, seed))
        return out

    def size_account(self) -> SizeAccount:
        return self.inner.label_bits(0)

    def guarantee(self) -> Dict[str, Any]:
        # Shared beacon sets give an (ε,δ)-triangulation: the ratio bound
        # holds for most pairs but fails for an ε-fraction (§1).
        return {
            "kind": "beacons-eps-delta",
            "stretch": None,
            "stretch_formula": "1+delta for a (1-eps) fraction of pairs",
            "beacons": self.config.beacons,
        }


@register_scheme(
    "labels", problem="distance-labeling",
    summary="Theorem 3.4 id-free (1+δ)-approximate distance labels",
)
class RingDLSScheme(_EstimatorScheme):
    config_cls = DLSConfig

    @classmethod
    def _build(cls, workload, config, *, seed):
        from repro.labeling.dls import RingDLS

        dls = RingDLS(
            workload.metric, delta=config.delta,
            scales=workload.scales(config.delta),
            mantissa_bits=config.mantissa_bits,
        )
        return cls(workload, config, dls)

    def stats(self, *, samples: int = 200, seed: SeedLike = 0) -> Dict[str, Any]:
        dls = self.inner
        out = {
            "max_label_bits": dls.max_label_bits(),
            "mean_label_bits": dls.mean_label_bits(),
            "max_virtual_neighbors": dls.max_virtual_neighbors(),
        }
        out.update(self._error_stats(samples, seed))
        return out

    def size_account(self) -> SizeAccount:
        return self._worst_label_account()

    def guarantee(self) -> Dict[str, Any]:
        return {
            "kind": "labels-thm3.4",
            "stretch": None,
            "stretch_formula": "1+O(delta)",
            "delta": self.config.delta,
        }


@register_scheme(
    "labels-tri", problem="distance-labeling",
    summary="Theorem 3.2's corollary DLS (Mendel–Har-Peled bound)",
)
class TriangulationDLSScheme(_EstimatorScheme):
    config_cls = DLSConfig

    @classmethod
    def _build(cls, workload, config, *, seed):
        from repro.labeling.triangulation import RingTriangulation, TriangulationDLS

        tri = RingTriangulation(
            workload.metric, delta=config.delta,
            scales=workload.scales(config.delta),
        )
        dls = TriangulationDLS(tri, mantissa_bits=config.mantissa_bits)
        return cls(workload, config, dls)

    def stats(self, *, samples: int = 200, seed: SeedLike = 0) -> Dict[str, Any]:
        out = {
            "max_label_bits": self.inner.max_label_bits(),
            "order": self.inner.triangulation.order,
        }
        out.update(self._error_stats(samples, seed))
        return out

    def size_account(self) -> SizeAccount:
        return self._worst_label_account()

    def guarantee(self) -> Dict[str, Any]:
        inner = self.inner
        return {
            "kind": "dls-thm3.2",
            # Quantization inflates the certified triangulation ratio by
            # at most the codec's relative error (round-up encoding).
            "stretch": inner.triangulation.certified_ratio_bound()
            * (1.0 + inner.codec.relative_error),
            "delta": self.config.delta,
            "mantissa_bits": inner.codec.mantissa_bits,
        }


@register_scheme(
    "tz-oracle", problem="distance-labeling",
    summary="Thorup–Zwick (2k−1)-approximate oracle baseline",
)
class OracleScheme(_EstimatorScheme):
    config_cls = OracleConfig

    @classmethod
    def _build(cls, workload, config, *, seed):
        from repro.labeling.thorup_zwick import ThorupZwickOracle

        oracle = ThorupZwickOracle(
            workload.metric, k=config.k, seed=seed,
            mantissa_bits=config.mantissa_bits,
        )
        return cls(workload, config, oracle)

    def stats(self, *, samples: int = 200, seed: SeedLike = 0) -> Dict[str, Any]:
        out = {
            "stretch_bound": self.inner.stretch_bound(),
            "max_label_bits": self.inner.max_label_bits(),
            "max_bunch_size": self.inner.max_bunch_size(),
        }
        out.update(self._error_stats(samples, seed))
        return out

    def size_account(self) -> SizeAccount:
        return self._worst_label_account()

    def guarantee(self) -> Dict[str, Any]:
        return {
            "kind": "tz-oracle",
            "stretch": float(self.inner.stretch_bound())
            * (1.0 + self.inner.codec.relative_error),
            "k": self.config.k,
        }


# ----------------------------------------------------------------------
# Compact routing (§2, §4)
# ----------------------------------------------------------------------


class _RoutingAdapter(FittedScheme):
    """Runs on graph workloads directly; on metric workloads the scheme
    routes over the self-chosen §4.1 overlay (Table 2's setting)."""

    config_cls = RoutingConfig

    @classmethod
    def _factory(cls, graph, config: RoutingConfig, metric=None, executor=None):
        raise NotImplementedError

    @classmethod
    def _build(cls, workload, config, *, seed):
        from repro.routing.metric_overlay import MetricRouting

        if workload.graph is not None:
            inner = cls._factory(
                workload.graph, config,
                metric=workload.metric, executor=workload.executor,
            )
            # Lazy metric backend: keep everything matrix-free and let the
            # evaluators take true distances from batched metric queries.
            dense = getattr(workload.metric, "dense", True)
            matrix = workload.metric.matrix if dense else None
        else:
            inner = MetricRouting(
                workload.metric, config.delta,
                scheme_factory=lambda g, _d: cls._factory(g, config),
                style=config.overlay_style,
            )
            matrix = inner.stretch_matrix()
        fitted = cls(workload, config, inner)
        fitted._matrix = matrix
        return fitted

    def query(self, u: NodeId, v: NodeId):
        """Route one packet; returns the :class:`RouteResult`."""
        return self.inner.route(u, v)

    @staticmethod
    def _stats_dict(rs) -> Dict[str, Any]:
        return {
            "pairs": rs.pairs,
            "delivery_rate": rs.delivery_rate,
            "max_stretch": rs.max_stretch,
            "mean_stretch": rs.mean_stretch,
            "max_hops": rs.max_hops,
            "max_header_bits": rs.max_header_bits,
            "max_table_bits": rs.max_table_bits,
            "max_label_bits": rs.max_label_bits,
        }

    def stats(self, *, samples: int = 200, seed: SeedLike = 0) -> Dict[str, Any]:
        from repro.routing.base import evaluate_scheme

        rs = evaluate_scheme(
            self.inner, self._matrix, sample_pairs=samples, seed=seed,
            metric=self.workload.metric,
        )
        return self._stats_dict(rs)

    def evaluate(self, plan: Any) -> Dict[str, Any]:
        """Routing stats over an engine plan (or explicit pairs)."""
        from repro.engine import evaluate_routing

        rs = evaluate_routing(
            self.inner, self._matrix, plan, metric=self.workload.metric
        )
        return self._stats_dict(rs)

    def size_account(self) -> SizeAccount:
        inner = self.inner
        n = inner.graph.n
        best = max(
            range(n),
            key=lambda u: inner.table_bits(u).total_bits
            + inner.label_bits(u).total_bits,
        )
        return inner.table_bits(best) + inner.label_bits(best)

    def guarantee(self) -> Dict[str, Any]:
        return {
            "kind": "routing",
            "stretch": None,
            "stretch_formula": "1+O(delta)",
            "delta": self.config.delta,
        }


@register_scheme(
    "route-trivial", problem="routing",
    summary="stretch-1 full shortest-path tables (the §1 strawman)",
)
class TrivialRoutingScheme(_RoutingAdapter):
    @classmethod
    def _factory(cls, graph, config, metric=None, executor=None):
        from repro.routing.trivial import TrivialRouting

        return TrivialRouting(
            graph,
            dense=getattr(metric, "dense", True),
            row_cache_bytes=getattr(metric, "row_cache_budget", None),
        )

    def guarantee(self) -> Dict[str, Any]:
        return {"kind": "routing-trivial", "stretch": 1.0}


@register_scheme(
    "route-thm2.1", problem="routing",
    summary="Theorem 2.1 rings-over-nets (1+δ)-stretch routing",
    supports_update=True,
)
class RingRoutingScheme(_MutableSchemeMixin, _RoutingAdapter):
    @classmethod
    def _factory(cls, graph, config, metric=None, executor=None):
        from repro.routing.ring_scheme import RingRouting

        return RingRouting(
            graph, delta=config.delta, metric=metric, executor=executor
        )

    def guarantee(self) -> Dict[str, Any]:
        out = super().guarantee()
        out["kind"] = "routing-thm2.1"
        return out


@register_scheme(
    "route-thm4.1", problem="routing",
    summary="Theorem 4.1 routing with distance labels as a black box",
)
class LabelRoutingScheme(_RoutingAdapter):
    @classmethod
    def _factory(cls, graph, config, metric=None, executor=None):
        from repro.routing.label_scheme import LabelRouting

        return LabelRouting(
            graph, delta=config.delta, estimator=config.estimator,
            metric=metric, executor=executor,
        )


@register_scheme(
    "route-thm4.2", problem="routing",
    summary="Theorem 4.2/B.1 two-mode routing for huge aspect ratios",
)
class TwoModeRoutingScheme(_RoutingAdapter):
    @classmethod
    def _factory(cls, graph, config, metric=None, executor=None):
        from repro.routing.twomode import TwoModeRouting

        return TwoModeRouting(
            graph, delta=config.delta, metric=metric,
            strict_goodness=config.strict_goodness,
        )


# ----------------------------------------------------------------------
# Searchable small worlds (§5)
# ----------------------------------------------------------------------


class _SmallWorldAdapter(FittedScheme):
    config_cls = SmallWorldConfig

    @classmethod
    def _model(cls, workload, config: SmallWorldConfig, seed):
        raise NotImplementedError

    @classmethod
    def _build(cls, workload, config, *, seed):
        fitted = cls(workload, config, cls._model(workload, config, seed))
        fitted._seed = seed
        fitted._graph = None
        return fitted

    def contact_graph(self):
        """One sampled contact graph, drawn lazily with the build seed."""
        if self._graph is None:
            self._graph = self.inner.sample_contacts(seed=self._seed)
        return self._graph

    def query(self, u: NodeId, v: NodeId):
        """Route one strongly-local query; returns the QueryResult."""
        from repro.smallworld.base import route_query

        return route_query(self.inner, self.contact_graph(), u, v)

    @staticmethod
    def _stats_dict(sw) -> Dict[str, Any]:
        return {
            "queries": sw.queries,
            "completion_rate": sw.completion_rate,
            "max_hops": sw.max_hops,
            "mean_hops": sw.mean_hops,
            "max_out_degree": sw.max_out_degree,
            "mean_out_degree": sw.mean_out_degree,
        }

    def stats(self, *, samples: int = 200, seed: SeedLike = 0) -> Dict[str, Any]:
        from repro.smallworld.base import evaluate_model

        sw = evaluate_model(
            self.inner, graph=self.contact_graph(),
            sample_queries=samples, seed=seed,
        )
        return self._stats_dict(sw)

    def evaluate(self, plan: Any) -> Dict[str, Any]:
        """Query stats over an engine plan (or explicit pairs)."""
        from repro.engine import resolve_pairs
        from repro.smallworld.base import evaluate_model

        pairs = resolve_pairs(plan, self.inner.metric)
        sw = evaluate_model(
            self.inner, graph=self.contact_graph(),
            queries=[(int(u), int(v)) for u, v in pairs],
        )
        return self._stats_dict(sw)

    def size_account(self) -> SizeAccount:
        graph = self.contact_graph()
        account = SizeAccount()
        account.add(
            "contact_pointers",
            graph.max_out_degree() * bits_for_count(self.inner.metric.n),
        )
        return account


@register_scheme(
    "sw-5.2a", problem="small-world",
    summary="Theorem 5.2(a) greedy rings (X- and Y-type contacts)",
)
class GreedyRingsScheme(_SmallWorldAdapter):
    @classmethod
    def _model(cls, workload, config, seed):
        from repro.smallworld.rings_greedy import GreedyRingsModel

        return GreedyRingsModel(
            workload.metric, c=config.c, alpha_factor=config.alpha_factor,
            mu=workload.measure(),
        )


@register_scheme(
    "sw-5.2b", problem="small-world",
    summary="Theorem 5.2(b) pruned rings with the non-greedy step (**)",
)
class PrunedRingsScheme(_SmallWorldAdapter):
    @classmethod
    def _model(cls, workload, config, seed):
        from repro.smallworld.rings_pruned import PrunedRingsModel

        return PrunedRingsModel(
            workload.metric, c=config.c, alpha_factor=config.alpha_factor,
            mu=workload.measure(),
        )


@register_scheme(
    "sw-5.5", problem="small-world",
    summary="Theorem 5.5 one long-range link over local contacts",
)
class SingleLinkScheme(_SmallWorldAdapter):
    @classmethod
    def _model(cls, workload, config, seed):
        from repro.metrics.graphmetric import ShortestPathMetric
        from repro.routing.metric_overlay import overlay_for_metric
        from repro.smallworld.single_link import SingleLinkModel

        if workload.graph is not None:
            return SingleLinkModel(
                workload.metric, workload.graph, mu=workload.measure()
            )
        # Metric-only workload: route over the self-chosen rings overlay,
        # whose shortest-path metric is the model's d_G.
        local = overlay_for_metric(workload.metric, delta=0.5)
        return SingleLinkModel(ShortestPathMetric(local), local)


@register_scheme(
    "sw-structures", problem="small-world",
    summary="Kleinberg's group-structures baseline [32]",
)
class GroupStructuresScheme(_SmallWorldAdapter):
    @classmethod
    def _model(cls, workload, config, seed):
        from repro.smallworld.structures import GroupStructuresModel

        return GroupStructuresModel(
            workload.metric, degree_factor=config.degree_factor
        )


@register_scheme(
    "sw-kleinberg", problem="small-world",
    summary="Kleinberg's 2-D grid model [30] (side derived from n)",
)
class KleinbergGridScheme(_SmallWorldAdapter):
    @classmethod
    def _model(cls, workload, config, seed):
        from repro.smallworld.kleinberg_grid import KleinbergGridModel

        side = max(2, int(round(math.sqrt(workload.n))))
        return KleinbergGridModel(side, exponent=config.exponent)


# ----------------------------------------------------------------------
# Object location (§6): Meridian
# ----------------------------------------------------------------------


@register_scheme(
    "meridian", problem="object-location",
    summary="Meridian closest-node discovery over multi-resolution rings",
)
class MeridianScheme(FittedScheme):
    config_cls = MeridianConfig

    @classmethod
    def _build(cls, workload, config, *, seed):
        from repro.meridian.rings import MeridianOverlay

        overlay = MeridianOverlay(
            workload.metric, ring_base=config.ring_base,
            nodes_per_ring=config.nodes_per_ring, seed=seed,
        )
        return cls(workload, config, overlay)

    def query(self, u: NodeId, v: NodeId):
        """Closest-node search started at ``u`` for target ``v``."""
        from repro.meridian.search import closest_node_search

        return closest_node_search(self.inner, u, v, beta=self.config.beta)

    def stats(self, *, samples: int = 200, seed: SeedLike = 0) -> Dict[str, Any]:
        pairs = self._sample_pairs(samples, seed, self.workload.metric.n)
        return self._query_stats(pairs)

    def evaluate(self, plan: Any) -> Dict[str, Any]:
        """Search-quality stats over an engine plan (or explicit pairs)."""
        from repro.engine import resolve_pairs

        return self._query_stats(resolve_pairs(plan, self.workload.metric))

    def _query_stats(self, pairs) -> Dict[str, Any]:
        approximations = []
        hops = []
        for u, v in pairs:
            result = self.query(int(u), int(v))
            approximations.append(result.approximation)
            hops.append(result.hops)
        exact = sum(1 for a in approximations if a <= 1.0 + 1e-9)
        return {
            "queries": len(approximations),
            "exact_rate": exact / max(1, len(approximations)),
            "max_approximation": max(approximations) if approximations else 1.0,
            "mean_approximation": (
                float(np.mean(approximations)) if approximations else 1.0
            ),
            "mean_hops": float(np.mean(hops)) if hops else 0.0,
            "num_rings": self.inner.num_rings,
            "max_out_degree": self.inner.max_out_degree(),
        }

    def size_account(self) -> SizeAccount:
        overlay = self.inner
        account = SizeAccount()
        id_bits = bits_for_count(self.workload.metric.n)
        worst = max(node.out_degree() for node in overlay.nodes)
        account.add("ring_member_ids", worst * id_bits)
        return account
