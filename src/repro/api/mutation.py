"""The mutation extension of the Scheme protocol — streaming churn.

The paper's distributed constructions (§6) live with continuous joins
and leaves; the facade mirrors that with an *optional* extension of the
static :class:`~repro.api.schemes.Scheme` protocol:

* :class:`MutableScheme` — fitted schemes that additionally implement
  ``update(joins, leaves) -> UpdateReceipt``, ``pending_patch_stats()``
  and ``compact()``;
* :class:`UpdateReceipt` — the frozen, JSON-round-trippable record of
  one applied batch;
* :class:`UnsupportedUpdate` — the typed error static schemes raise
  (``api.update`` never leaks an ``AttributeError``).

Which registered schemes are mutable is registry metadata
(``supports_update``), surfaced by ``repro list`` and
:func:`repro.api.supports_update`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Mapping, Protocol, Tuple, runtime_checkable

__all__ = ["MutableScheme", "UnsupportedUpdate", "UpdateReceipt"]


class UnsupportedUpdate(TypeError):
    """The scheme does not implement the mutable (churn) extension."""


@dataclass(frozen=True)
class UpdateReceipt:
    """What one ``update(joins, leaves)`` call did, as a value object.

    ``revision`` is the structure's post-update revision counter — the
    same counter :class:`~repro.api.facade.BuildCache` re-keys on, so a
    receipt pins exactly which structure state answered later queries.
    """

    scheme: str
    joins: Tuple[int, ...]
    leaves: Tuple[int, ...]
    revision: int
    active_nodes: int
    pending_joins: int
    pending_leaves: int
    dirty_rows: int
    merged: bool
    update_s: float

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        out = asdict(self)
        out["joins"] = list(self.joins)
        out["leaves"] = list(self.leaves)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "UpdateReceipt":
        data = dict(data)
        return cls(
            scheme=str(data["scheme"]),
            joins=tuple(int(x) for x in data["joins"]),
            leaves=tuple(int(x) for x in data["leaves"]),
            revision=int(data["revision"]),
            active_nodes=int(data["active_nodes"]),
            pending_joins=int(data["pending_joins"]),
            pending_leaves=int(data["pending_leaves"]),
            dirty_rows=int(data["dirty_rows"]),
            merged=bool(data["merged"]),
            update_s=float(data["update_s"]),
        )


@runtime_checkable
class MutableScheme(Protocol):
    """The optional churn extension of ``Scheme`` (structural typing)."""

    supports_update: bool

    def update(self, joins=(), leaves=()) -> UpdateReceipt:
        """Apply one join/leave batch; returns the receipt."""
        ...

    def pending_patch_stats(self):
        """A :class:`~repro.core.patch.PatchStats` for the pending patch."""
        ...

    def compact(self):
        """Force-merge pending churn into fresh packed arrays."""
        ...
