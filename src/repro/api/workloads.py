"""Workload specs, instances, and the registered generators.

A :class:`Workload` is a *hashable value object* naming a registered
generator plus its parameters — the cache key for the facade's memoized
builds.  A :class:`WorkloadInstance` is the realized workload: the
metric (always), the underlying graph (for graph workloads), and
lazily-built shared structures (:class:`ScaleStructure`, doubling
measures, sampled rings) that several schemes on the same instance
reuse instead of rebuilding their own O(n²) machinery.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.graphs.generators import grid_graph, knn_geometric_graph
from repro.graphs.graph import WeightedGraph
from repro.labeling._scales import ScaleStructure
from repro.metrics.base import MetricSpace
from repro.metrics.graphmetric import ShortestPathMetric
from repro.metrics.nets import NestedNets
from repro.metrics.measure import DoublingMeasure, doubling_measure
from repro.metrics.synthetic import (
    clustered_metric,
    exponential_line,
    grid_metric,
    internet_like_metric,
    random_hypercube_metric,
    ring_metric,
    uniform_line,
)
from repro.api.registry import WORKLOADS, register_workload
from repro.core.rings import AnyRings, cardinality_rings

#: The instance size used when a caller does not pass ``n``.  Chosen so
#: every workload/scheme combination builds in well under a second on a
#: laptop; pass ``n`` explicitly for anything size-sensitive.  Surfaced
#: as ``repro.api.DEFAULT_N`` and mentioned in size-validation errors.
DEFAULT_N = 96


@dataclass(frozen=True)
class Workload:
    """A named workload plus parameters — hashable, so it is a cache key."""

    name: str
    n: int = DEFAULT_N
    seed: Optional[int] = 0
    #: extra generator parameters, stored sorted for stable hashing
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls,
        name: str,
        n: Optional[int] = None,
        seed: Optional[int] = 0,
        **params: Any,
    ) -> "Workload":
        entry = WORKLOADS.get(name)  # validates the name early
        defaulted = n is None
        n = DEFAULT_N if defaulted else int(n)
        if n < 2:
            origin = (
                f"defaulted from repro.api.DEFAULT_N = {DEFAULT_N}"
                if defaulted
                else "passed explicitly"
            )
            raise ValueError(
                f"workload {name!r} needs n >= 2, got n={n} ({origin}); "
                f"omit n to use DEFAULT_N = {DEFAULT_N}"
            )
        defaults: Mapping[str, Any] = entry.meta["defaults"]
        unknown = set(params) - set(defaults)
        if unknown:
            valid = ", ".join(sorted(defaults)) or "<none>"
            raise ValueError(
                f"unknown parameter(s) {sorted(unknown)} for workload "
                f"{name!r}; valid parameters: {valid}"
            )
        # Normalize against the registry defaults so explicitly passing a
        # default value yields the same (hashable) spec — and cache key —
        # as omitting it.
        full = {**defaults, **params}
        return cls(name=name, n=int(n), seed=seed,
                   params=tuple(sorted(full.items())))

    @property
    def kwargs(self) -> Dict[str, Any]:
        return dict(self.params)

    @property
    def display(self) -> str:
        """The sized display form (``"hypercube(n=2000)"``) — what suite
        overrides use to target one scale of a multi-size workload."""
        return f"{self.name}(n={self.n})"

    @staticmethod
    def parse_display(text: str) -> Optional[Tuple[str, int]]:
        """Invert :attr:`display`: ``"hypercube(n=2000)"`` →
        ``("hypercube", 2000)``, None for bare workload names.  The one
        parser for the sized form, so producers and consumers (override
        matching, ``--override-n`` rule remapping) cannot drift apart."""
        match = re.fullmatch(r"(.+)\(n=(\d+)\)", text)
        if match is None:
            return None
        return match.group(1), int(match.group(2))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        out: Dict[str, Any] = {"workload": self.name, "n": self.n, "seed": self.seed}
        out.update(self.kwargs)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Workload":
        data = dict(data)
        name = data.pop("workload")
        return cls.make(
            name, n=data.pop("n", None), seed=data.pop("seed", 0), **data
        )


class WorkloadInstance:
    """A realized workload: metric, optional graph, shared structures.

    ``executor`` is the :class:`repro.construction.BuildExecutor` scheme
    builders should shard their construction scans over; it is attached
    by the facade (``build_workers``), never part of the cache key —
    sharded builds are bit-for-bit identical to serial ones.
    """

    def __init__(
        self,
        spec: Workload,
        metric: MetricSpace,
        graph: Optional[WeightedGraph] = None,
    ) -> None:
        self.spec = spec
        self.metric = metric
        self.graph = graph
        self.executor = None
        #: bumped by MutableScheme updates; BuildCache refuses to serve a
        #: cached instance whose revision moved past the pristine build
        self.revision = 0
        self._scales: Dict[float, ScaleStructure] = {}
        self._measure: Optional[DoublingMeasure] = None
        self._rings: Dict[Tuple[int, Optional[int]], AnyRings] = {}
        self._nets: Optional[NestedNets] = None

    @property
    def n(self) -> int:
        return self.metric.n

    @property
    def name(self) -> str:
        return self.spec.name

    # -- shared lazily-built structures --------------------------------
    #
    # These are the expensive O(n²)-ish intermediates several schemes
    # need; memoizing them here is what makes "build two schemes on one
    # workload" cheap.

    def scales(self, delta: float) -> ScaleStructure:
        """The §3 scale structure for ``delta``, built once per delta."""
        key = round(float(delta), 12)
        if key not in self._scales:
            self._scales[key] = ScaleStructure(
                self.metric, delta=float(delta), executor=self.executor
            )
        return self._scales[key]

    def nested_nets(self) -> NestedNets:
        """The canonical nested 2^j-net hierarchy of this metric (scaled by
        the minimum distance so ``G_0`` holds every node), built once and
        shared — e.g. by the ``net-hierarchy`` probe."""
        if self._nets is None:
            metric = self.metric
            self._nets = NestedNets(
                metric,
                levels=metric.log_aspect_ratio() + 1,
                base_radius=metric.min_distance(),
                executor=self.executor,
            )
        return self._nets

    def measure(self) -> DoublingMeasure:
        """A doubling measure on the metric (Theorem 1.3), built once."""
        if self._measure is None:
            self._measure = doubling_measure(self.metric)
        return self._measure

    def sampled_rings(
        self, samples_per_ring: int, seed: Optional[int] = 0
    ) -> AnyRings:
        """Shared X-type sampled rings (§5.1), built once per (k, seed)."""
        key = (int(samples_per_ring), seed)
        if key not in self._rings:
            self._rings[key] = cardinality_rings(
                self.metric, samples_per_ring=int(samples_per_ring), seed=seed
            )
        return self._rings[key]

    def __repr__(self) -> str:
        return (
            f"WorkloadInstance({self.spec.name!r}, n={self.metric.n}, "
            f"graph={'yes' if self.graph is not None else 'no'})"
        )


def realize(spec: Workload) -> WorkloadInstance:
    """Run the registered generator for ``spec`` (no caching here)."""
    entry = WORKLOADS.get(spec.name)
    kwargs = spec.kwargs
    if entry.meta.get("kind") == "graph":
        # Metric-backend knobs every graph workload shares: they select
        # how the shortest-path metric is realized (dense APSP vs lazy
        # Dijkstra rows under a byte budget), not what the generator makes.
        dense = bool(kwargs.pop("dense", True))
        cache_mb = float(kwargs.pop("cache_mb", 64))
        built = entry.obj(n=spec.n, seed=spec.seed, **kwargs)
        if not isinstance(built, WeightedGraph):
            raise TypeError(
                f"workload {spec.name!r} is registered as kind='graph' but "
                f"built a {type(built).__name__}"
            )
        metric = ShortestPathMetric(
            built, dense=dense, row_cache_bytes=int(cache_mb * 1024 * 1024)
        )
        return WorkloadInstance(spec, metric, graph=built)
    built = entry.obj(n=spec.n, seed=spec.seed, **kwargs)
    if not isinstance(built, MetricSpace):
        raise TypeError(
            f"workload {spec.name!r} is registered as kind='metric' but "
            f"built a {type(built).__name__}"
        )
    return WorkloadInstance(spec, built)


# ----------------------------------------------------------------------
# Registered generators.  Each accepts (n, seed, **params); deterministic
# generators simply ignore the seed so one calling convention fits all.
# ----------------------------------------------------------------------


@register_workload("hypercube", summary="uniform points in the unit cube", dim=2)
def _hypercube(n: int, seed: Optional[int] = 0, dim: int = 2) -> MetricSpace:
    return random_hypercube_metric(n, dim=dim, seed=seed)


@register_workload("grid", summary="the side^dim integer grid (side from n)", dim=2)
def _grid(n: int, seed: Optional[int] = 0, dim: int = 2) -> MetricSpace:
    side = max(2, int(round(n ** (1.0 / dim))))
    return grid_metric(side, dim=dim)


@register_workload(
    "expline", summary="exponential line {base^i}: aspect ratio base^n", base=2.0
)
def _expline(n: int, seed: Optional[int] = 0, base: float = 2.0) -> MetricSpace:
    return exponential_line(n, base=base)


@register_workload(
    "internet", summary="hierarchically clustered internet-like latencies"
)
def _internet(n: int, seed: Optional[int] = 0) -> MetricSpace:
    return internet_like_metric(n, seed=seed)


@register_workload("uline", summary="evenly spaced line (UL-constrained)", spacing=1.0)
def _uline(n: int, seed: Optional[int] = 0, spacing: float = 1.0) -> MetricSpace:
    return uniform_line(n, spacing=spacing)


@register_workload("ring", summary="points evenly spaced on a circle", radius=1.0)
def _ring(n: int, seed: Optional[int] = 0, radius: float = 1.0) -> MetricSpace:
    return ring_metric(n, radius=radius)


@register_workload(
    "clustered", summary="Gaussian clusters around uniform centers",
    clusters=8, dim=3, spread=0.05,
)
def _clustered(
    n: int,
    seed: Optional[int] = 0,
    clusters: int = 8,
    dim: int = 3,
    spread: float = 0.05,
) -> MetricSpace:
    return clustered_metric(n, clusters=clusters, dim=dim, spread=spread, seed=seed)


# Graph workloads share the metric-backend knobs ``dense`` (True: full
# APSP matrix; False: lazy Dijkstra rows, nothing Θ(n²) ever allocated)
# and ``cache_mb`` (row-cache byte budget for the lazy backend) —
# consumed by :func:`realize`, not by the generator.

@register_workload(
    "knn-graph", summary="k-nearest-neighbor geometric graph (doubling)",
    kind="graph", k=4, dense=True, cache_mb=64,
)
def _knn_graph(n: int, seed: Optional[int] = 0, k: int = 4) -> WeightedGraph:
    return knn_geometric_graph(n, k=k, seed=seed)


@register_workload(
    "grid-graph", summary="side^dim grid graph (side from n)",
    kind="graph", dim=2, jitter=0.0, dense=True, cache_mb=64,
)
def _grid_graph(
    n: int, seed: Optional[int] = 0, dim: int = 2, jitter: float = 0.0
) -> WeightedGraph:
    side = max(2, int(round(n ** (1.0 / dim))))
    return grid_graph(side, dim=dim, jitter=jitter, seed=seed)


@register_workload(
    "gap-path", summary="path graph with exponential edge weights (Lemma B.5)",
    kind="graph", base=2.0, dense=True, cache_mb=64,
)
def _gap_path(n: int, seed: Optional[int] = 0, base: float = 2.0) -> WeightedGraph:
    graph = WeightedGraph(n)
    for i in range(n - 1):
        graph.add_edge(i, i + 1, float(base) ** i)
    return graph
