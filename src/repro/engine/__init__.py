"""The batched query engine: plans + vectorized evaluation drivers.

This layer sits between the structures (metrics, rings, schemes) and the
API facade: it decides *which* node pairs an evaluation touches
(:mod:`repro.engine.plans`) and runs the touch loop with batched
distance queries and NumPy aggregation (:mod:`repro.engine.evaluate`).
Exhaustive all-pairs evaluation and seed-deterministic sampling are the
same code path, so benchmarks scale from n = 10² (exact) to n = 10⁴⁺
(sampled) by swapping one plan object.
"""

from repro.engine.evaluate import (
    EstimatorStats,
    bulk_estimates,
    evaluate_estimator,
    evaluate_routing,
)
from repro.engine.plans import (
    PLANS,
    AllPairsPlan,
    PlanLike,
    QueryPlan,
    StratifiedPlan,
    UniformSamplePlan,
    make_plan,
    resolve_pairs,
)

__all__ = [
    "AllPairsPlan",
    "EstimatorStats",
    "PLANS",
    "PlanLike",
    "QueryPlan",
    "StratifiedPlan",
    "UniformSamplePlan",
    "bulk_estimates",
    "evaluate_estimator",
    "evaluate_routing",
    "make_plan",
    "resolve_pairs",
]
