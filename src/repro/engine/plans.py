"""Query plans: which node pairs an evaluation touches.

Every evaluation in the library — stretch of a routing scheme, relative
error of a distance estimator, approximation ratio of a closest-node
search — is a reduction over a set of node pairs.  A :class:`QueryPlan`
names that set declaratively, so the same benchmark can run exhaustively
at small n and on a seed-deterministic sample at n = 10⁴⁺ without any
caller materializing Θ(n²) Python tuples:

* :class:`AllPairsPlan` — every ordered (or unordered) pair, generated
  as one vectorized array;
* :class:`UniformSamplePlan` — ``size`` distinct pairs drawn uniformly,
  deterministic per seed;
* :class:`StratifiedPlan` — up to ``per_scale`` pairs per distance scale
  (power-of-two annuli of the metric's distance range), so sparse far
  scales are not drowned out by the quadratic mass of near pairs.

Plans are registered in :data:`PLANS` under short names, mirroring the
workload/scheme registries of :mod:`repro.api`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np

from repro.metrics.base import MetricSpace
from repro.registry import Registry
from repro.rng import ensure_rng

#: Anything evaluations accept as a pair set: a plan or an (m, 2) array.
PlanLike = Union["QueryPlan", np.ndarray, Sequence]

#: Registered plan factories, keyed by the names the CLI/configs expose.
PLANS = Registry("plan")


def _n_of(metric: Union[MetricSpace, int]) -> int:
    return metric if isinstance(metric, (int, np.integer)) else metric.n


class QueryPlan(abc.ABC):
    """A declarative set of node pairs to evaluate on."""

    @abc.abstractmethod
    def pairs(self, metric: Union[MetricSpace, int]) -> np.ndarray:
        """The ``(m, 2)`` int array of (source, target) pairs, source ≠
        target.  ``metric`` may be a bare node count for plans that do
        not inspect distances.
        """

    def describe(self) -> str:
        return repr(self)


@PLANS.register("all-pairs", summary="every pair — exhaustive, Θ(n²)")
@dataclass(frozen=True)
class AllPairsPlan(QueryPlan):
    """Every pair of distinct nodes; ``ordered=False`` keeps only u < v."""

    ordered: bool = True

    def pairs(self, metric: Union[MetricSpace, int]) -> np.ndarray:
        n = _n_of(metric)
        if n < 2:
            return np.empty((0, 2), dtype=np.intp)
        if not self.ordered:
            us, vs = np.triu_indices(n, k=1)
            return np.stack([us, vs], axis=1).astype(np.intp)
        # u-major order with v skipping u — the same sequence the old
        # nested-loop enumeration produced, without the Python list.
        us = np.repeat(np.arange(n, dtype=np.intp), n - 1)
        k = np.tile(np.arange(n - 1, dtype=np.intp), n)
        vs = k + (k >= us)
        return np.stack([us, vs], axis=1)


@PLANS.register("uniform", summary="uniform sample of distinct pairs")
@dataclass(frozen=True)
class UniformSamplePlan(QueryPlan):
    """``size`` distinct ordered pairs drawn uniformly, seed-deterministic.

    Sampling is by rejection (draw, drop duplicates/diagonal, redraw), so
    it never materializes the Θ(n²) pair universe; when the universe is
    smaller than ``size`` it degrades to all pairs.
    """

    size: int = 1000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"size must be positive, got {self.size}")

    def pairs(self, metric: Union[MetricSpace, int]) -> np.ndarray:
        n = _n_of(metric)
        universe = n * (n - 1)
        if universe <= 0:
            return np.empty((0, 2), dtype=np.intp)
        if self.size >= universe:
            return AllPairsPlan().pairs(n)
        rng = ensure_rng(self.seed)
        chosen = np.empty(0, dtype=np.int64)
        while chosen.size < self.size:
            draw = rng.integers(0, universe, size=2 * (self.size - chosen.size) + 8)
            merged = np.concatenate([chosen, draw])
            # Stable dedupe: keep first occurrence, preserve draw order.
            _, first = np.unique(merged, return_index=True)
            chosen = merged[np.sort(first)]
        chosen = chosen[: self.size]
        us = chosen // (n - 1)
        k = chosen % (n - 1)
        vs = k + (k >= us)
        return np.stack([us, vs], axis=1).astype(np.intp)


@PLANS.register("stratified", summary="per-distance-scale pair sample")
@dataclass(frozen=True)
class StratifiedPlan(QueryPlan):
    """Up to ``per_scale`` pairs from each power-of-two distance annulus.

    Scales follow the paper's convention: scale 0 is ``d <= min_dist``,
    scale j > 0 is ``min_dist·2^(j-1) < d <= min_dist·2^j``.  Uniform
    candidate pairs are drawn in rounds and bucketed by true distance;
    scales the workload simply does not populate stay short, which is
    reported honestly rather than padded.
    """

    per_scale: int = 64
    seed: int = 0
    rounds: int = 8

    def __post_init__(self) -> None:
        if self.per_scale < 1:
            raise ValueError(f"per_scale must be positive, got {self.per_scale}")
        if self.rounds < 1:
            raise ValueError(f"rounds must be positive, got {self.rounds}")

    def pairs(self, metric: MetricSpace) -> np.ndarray:
        if not isinstance(metric, MetricSpace):
            raise TypeError("StratifiedPlan needs the metric, not just n")
        n = metric.n
        if n < 2:
            return np.empty((0, 2), dtype=np.intp)
        base = metric.min_distance()
        levels = metric.log_aspect_ratio() + 1
        rng = ensure_rng(self.seed)
        want = self.per_scale
        buckets: list[np.ndarray] = [np.empty((0, 2), dtype=np.intp)] * levels
        seen = np.empty(0, dtype=np.int64)
        batch = max(64, 4 * want * levels)
        for _ in range(self.rounds):
            if all(b.shape[0] >= want for b in buckets):
                break
            draw = rng.integers(0, n * (n - 1), size=batch)
            merged = np.concatenate([seen, draw])
            _, first = np.unique(merged, return_index=True)
            fresh = merged[np.sort(first)][seen.size :]
            seen = np.concatenate([seen, fresh])
            us = fresh // (n - 1)
            k = fresh % (n - 1)
            vs = k + (k >= us)
            cand = np.stack([us, vs], axis=1).astype(np.intp)
            d = metric.pairwise(cand)
            scale = np.zeros(d.shape[0], dtype=np.intp)
            far = d > base
            scale[far] = np.ceil(np.log2(d[far] / base)).astype(np.intp)
            np.clip(scale, 0, levels - 1, out=scale)
            for j in range(levels):
                short = want - buckets[j].shape[0]
                if short > 0:
                    picks = cand[scale == j][:short]
                    if picks.size:
                        buckets[j] = np.concatenate([buckets[j], picks])
        if not any(b.size for b in buckets):
            return np.empty((0, 2), dtype=np.intp)
        return np.concatenate([b for b in buckets if b.size])


def resolve_pairs(plan: PlanLike, metric: Union[MetricSpace, int]) -> np.ndarray:
    """Coerce a plan, an array, or a pair sequence into an ``(m, 2)`` array."""
    if isinstance(plan, QueryPlan):
        return plan.pairs(metric)
    pairs = np.asarray(list(plan) if not isinstance(plan, np.ndarray) else plan)
    if pairs.size == 0:
        return np.empty((0, 2), dtype=np.intp)
    return pairs.reshape(-1, 2).astype(np.intp)


def make_plan(plan: Union[str, PlanLike] = "all-pairs", **params) -> PlanLike:
    """Build a plan from a registered name (``**params`` to its factory).

    Non-string plans (a :class:`QueryPlan` or explicit pair array) pass
    through untouched, so callers can accept either form with one line.
    """
    if not isinstance(plan, str):
        if params:
            raise ValueError("plan parameters only apply to plans built by name")
        return plan
    return PLANS.get(plan).obj(**params)
