"""Batched evaluation over query plans.

Two drivers cover the library's evaluation shapes:

* :func:`evaluate_estimator` — anything with an ``estimate(u, v)``
  method (triangulations, distance labels, oracles).  True distances
  come from one :meth:`~repro.metrics.base.MetricSpace.pairwise` call;
  estimators exposing a vectorized ``estimate_many(us, vs)`` are queried
  in bulk, others fall back to a per-pair loop — either way the error
  aggregation is a handful of NumPy reductions, never a Python
  accumulate.
* :func:`evaluate_routing` — packet simulation per pair (inherently
  sequential hop-by-hop), but pair generation, true-distance lookup and
  stretch/hop aggregation are all vectorized, so no Θ(n²) Python pair
  list is ever materialized.

Both accept any :data:`~repro.engine.plans.PlanLike`: a
:class:`~repro.engine.plans.QueryPlan`, an explicit ``(m, 2)`` array, or
a sequence of pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.metrics.base import MetricSpace

from repro.engine.plans import PlanLike, resolve_pairs


@dataclass
class EstimatorStats:
    """Aggregate quality of a distance estimator over a pair set."""

    pairs: int
    evaluated: int  # pairs with positive true distance and finite estimate
    max_relative_error: float
    mean_relative_error: float
    p95_relative_error: float
    max_stretch: float  # max over-estimate ratio est / true
    mean_stretch: float

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sampled_pairs": self.evaluated,
            "max_relative_error": self.max_relative_error,
            "mean_relative_error": self.mean_relative_error,
            "p95_relative_error": self.p95_relative_error,
            "max_stretch": self.max_stretch,
            "mean_stretch": self.mean_stretch,
        }


def bulk_estimates(estimator: Any, pairs: np.ndarray) -> np.ndarray:
    """Estimates for every pair, vectorized when the estimator allows.

    Uses ``estimator.estimate_many(us, vs)`` when present; otherwise
    loops ``estimator.estimate`` (or the estimator itself, if it is a
    bare callable) pair by pair.
    """
    many = getattr(estimator, "estimate_many", None)
    if many is not None:
        return np.asarray(many(pairs[:, 0], pairs[:, 1]), dtype=float)
    one = getattr(estimator, "estimate", estimator)
    return np.array([one(int(u), int(v)) for u, v in pairs], dtype=float)


def evaluate_estimator(
    estimator: Any,
    metric: MetricSpace,
    plan: PlanLike,
) -> EstimatorStats:
    """Relative-error statistics of ``estimator`` against ``metric``."""
    pairs = resolve_pairs(plan, metric)
    if pairs.shape[0] == 0:
        return EstimatorStats(0, 0, float("inf"), float("inf"), float("inf"),
                              float("inf"), float("inf"))
    true = metric.pairwise(pairs)
    est = bulk_estimates(estimator, pairs)
    valid = (true > 0) & np.isfinite(est)
    true_v = true[valid]
    est_v = est[valid]
    if true_v.size == 0:
        return EstimatorStats(int(pairs.shape[0]), 0, float("inf"), float("inf"),
                              float("inf"), float("inf"), float("inf"))
    rel = np.abs(est_v - true_v) / true_v
    stretch = est_v / true_v
    return EstimatorStats(
        pairs=int(pairs.shape[0]),
        evaluated=int(true_v.size),
        max_relative_error=float(rel.max()),
        mean_relative_error=float(rel.mean()),
        p95_relative_error=float(np.percentile(rel, 95)),
        max_stretch=float(stretch.max()),
        mean_stretch=float(stretch.mean()),
    )


def evaluate_routing(
    scheme: Any,
    distance_matrix: Optional[np.ndarray],
    plan: PlanLike,
    *,
    metric: Optional[Union[MetricSpace, int]] = None,
    max_hops: Optional[int] = None,
):
    """Route one packet per planned pair and aggregate a RoutingStats.

    ``distance_matrix`` supplies true shortest-path distances for the
    stretch computation; pass ``None`` to take them from one batched
    ``metric.pairwise`` query instead (the lazy, matrix-free backends —
    bit-for-bit equal where both exist).  ``metric`` is otherwise only
    needed for distance-aware plans (stratified); it defaults to the
    scheme's node count.  The returned object is the
    :class:`repro.routing.base.RoutingStats` the per-pair path produced,
    bit-for-bit at equal pair sets.
    """
    from repro.routing.base import RoutingStats  # local: avoids layer cycle

    if distance_matrix is None and not isinstance(metric, MetricSpace):
        raise ValueError(
            "evaluate_routing needs either a distance matrix or a "
            "MetricSpace to take true distances from"
        )
    n = scheme.graph.n
    pairs = resolve_pairs(plan, metric if metric is not None else n)
    m = pairs.shape[0]
    header_bits = np.zeros(m, dtype=np.int64)
    hops = np.zeros(m, dtype=np.int64)
    routed = np.zeros(m, dtype=float)
    reached = np.zeros(m, dtype=bool)
    for i in range(m):
        result = scheme.route(int(pairs[i, 0]), int(pairs[i, 1]), max_hops=max_hops)
        header_bits[i] = result.header_bits
        if result.reached:
            reached[i] = True
            hops[i] = result.hops
            routed[i] = result.length(scheme.graph)

    if distance_matrix is None:
        true = metric.pairwise(pairs)
    else:
        true = distance_matrix[pairs[:, 0], pairs[:, 1]]
    true_r = true[reached]
    stretches = np.where(true_r > 0, routed[reached] / np.where(true_r > 0, true_r, 1.0), 1.0)
    delivered = int(reached.sum())
    return RoutingStats(
        pairs=m,
        delivered=delivered,
        max_stretch=float(stretches.max()) if delivered else float("inf"),
        mean_stretch=float(stretches.mean()) if delivered else float("inf"),
        max_hops=int(hops[reached].max()) if delivered else 0,
        max_header_bits=int(header_bits.max()) if m else 0,
        max_table_bits=scheme.max_table_bits(),
        max_label_bits=scheme.max_label_bits(),
        stretches=[float(s) for s in stretches],
    )
