"""Gossip-based ring discovery — the §6 coverage-gap experiment.

Target structure: the radius-scaled rings ``Y_uj = B_u(2^j) ∩ membership``
every construction in the paper needs.  Distributedly, a node cannot
enumerate a ball; it can only learn node addresses from peers and probe
the ones it hears about.  The protocol is Meridian-style gossip:

* each node bootstraps with ``k`` random acquaintances;
* each round it picks a random acquaintance and they exchange (capped)
  samples of their acquaintance sets;
* every newly heard-of node is probed once and filed into the ring its
  distance falls in (rings keep up to ``ring_capacity`` members).

:func:`ring_coverage` scores the result against the *theoretical* rings
(the exact ball contents): the fraction of scales per node whose ring
found at least one member, and the fraction of exact members discovered.
Coverage climbs with gossip rounds but plateaus below 1 at bounded
capacity — the gap §6 calls bridging "an interesting open question".
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

import numpy as np

from repro._types import NodeId
from repro.distributed.simulator import Context, Message, RoundBasedProtocol
from repro.metrics.base import MetricSpace


class GossipRingProtocol(RoundBasedProtocol):
    """Discover radius-scaled rings by acquaintance gossip."""

    def __init__(
        self,
        bootstrap: int = 3,
        exchange: int = 8,
        ring_capacity: int = 8,
        rounds: int = 10,
    ) -> None:
        if bootstrap < 1 or exchange < 1 or ring_capacity < 1:
            raise ValueError("bootstrap/exchange/ring_capacity must be positive")
        self.bootstrap = bootstrap
        self.exchange = exchange
        self.ring_capacity = ring_capacity
        self.rounds_budget = rounds
        self._round = 0

    # -- ring filing --------------------------------------------------------

    def _ring_index(self, ctx: Context, d: float) -> int:
        base = ctx.state["__config__"]["base"]
        if d <= base:
            return 0
        return int(math.ceil(math.log2(d / base)))

    def _file(self, ctx: Context, u: NodeId, v: NodeId) -> None:
        """Probe v once and insert into u's appropriate ring."""
        state = ctx.state[u]
        if v == u or v in state["known"]:
            return
        d = ctx.probe(u, v)
        state["known"][v] = d
        ring = state["rings"].setdefault(self._ring_index(ctx, d), {})
        if len(ring) < self.ring_capacity:
            ring[v] = d

    # -- protocol ------------------------------------------------------------

    def initialize(self, ctx: Context) -> None:
        metric: MetricSpace = ctx._metric
        ctx.state["__config__"] = {"base": metric.min_distance()}
        for u in range(ctx.n):
            state = ctx.state[u]
            state["known"] = {}
            state["rings"] = {}
        # One cached id range; per-node "everyone but u" is a vectorized
        # delete, not a rebuilt Python list per node.
        ids = np.arange(ctx.n)
        for u in range(ctx.n):
            others = np.delete(ids, u)
            for v in ctx.rng.choice(others, size=min(self.bootstrap, others.size), replace=False):
                self._file(ctx, u, int(v))
        self._round = 0
        self._kick_off(ctx)

    def _kick_off(self, ctx: Context) -> None:
        """Each node opens one gossip exchange with a random acquaintance."""
        for u in range(ctx.n):
            known = list(ctx.state[u]["known"])
            if not known:
                continue
            peer = int(ctx.rng.choice(known))
            sample = self._sample_of(ctx, u)
            ctx.send(u, peer, "exchange", nodes=sample, reply_to=u)

    def _sample_of(self, ctx: Context, u: NodeId) -> List[NodeId]:
        known = list(ctx.state[u]["known"])
        if len(known) <= self.exchange:
            return known
        return [int(x) for x in ctx.rng.choice(known, size=self.exchange, replace=False)]

    def on_round(self, node: NodeId, inbox: List[Message], ctx: Context) -> None:
        for message in inbox:
            if message.kind == "exchange":
                for v in message.payload["nodes"]:
                    self._file(ctx, node, v)
                ctx.send(
                    node,
                    message.payload["reply_to"],
                    "exchange_reply",
                    nodes=self._sample_of(ctx, node),
                )
            elif message.kind == "exchange_reply":
                for v in message.payload["nodes"]:
                    self._file(ctx, node, v)
        if node == ctx.n - 1:
            self._round += 1
            if self._round < self.rounds_budget:
                self._kick_off(ctx)

    def is_done(self, ctx: Context) -> bool:
        return self._round >= self.rounds_budget

    # -- results --------------------------------------------------------------

    def rings_of(self, ctx: Context, u: NodeId) -> Dict[int, Dict[NodeId, float]]:
        return ctx.state[u]["rings"]


def ring_coverage(
    metric: MetricSpace,
    protocol: GossipRingProtocol,
    ctx: Context,
    member_cap: int | None = None,
) -> Tuple[float, float]:
    """Score gossip rings against the theoretical ball contents.

    The reference structure is one packed CSR block
    (:func:`repro.core.packed.exact_capped_rings`): the exact annulus
    rings truncated to the ``member_cap`` (default: the protocol's ring
    capacity) nearest members, since bounded rings cannot hold more.
    Gossip-found ids are compared against each exact slice with one
    vectorized membership test per (node, scale).

    Returns ``(scale_coverage, member_recall)``:

    * scale_coverage — fraction of (node, scale) pairs with a non-empty
      exact ring for which gossip found at least one member;
    * member_recall — fraction of exact ring members discovered.
    """
    from repro.core.packed import exact_capped_rings

    cap = member_cap if member_cap is not None else protocol.ring_capacity
    base = metric.min_distance()
    levels = metric.log_aspect_ratio() + 1
    exact = exact_capped_rings(metric, base, levels, cap=cap)

    scales_hit = scales_total = 0
    members_hit = members_total = 0
    for u in range(metric.n):
        gossip_rings = protocol.rings_of(ctx, u)
        for j in range(levels):
            ring = exact.members_of(u, j)
            if ring.size == 0:
                continue
            found = gossip_rings.get(j, {})
            scales_total += 1
            members_total += int(ring.size)
            if found:
                scales_hit += 1
                found_ids = np.fromiter(found, dtype=np.int64, count=len(found))
                members_hit += int(np.isin(found_ids, ring).sum())
    scale_coverage = scales_hit / max(1, scales_total)
    member_recall = members_hit / max(1, members_total)
    return scale_coverage, member_recall
