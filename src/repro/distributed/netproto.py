"""Distributed r-net construction (Luby-style symmetry breaking).

r-nets are the backbone of every ring family (Theorem 2.1's G_j, 3.2's
nested nets, 4.1's F_j); constructing them distributedly is the first
step toward distributed rings.  The protocol is the classic MIS dance on
the *r-conflict graph* (nodes adjacent iff within distance r):

* every node starts *live*;
* each round, every live node draws a random priority and sends it to
  the live nodes in its conflict neighborhood (discovered by probing,
  cached);
* a node that beats all its live conflict neighbors **joins the net**
  and tells them; covered neighbors go inactive.

Expected O(log n) rounds; the result is exactly an r-net (packing because
two conflict-adjacent nodes can't both be round-winners; covering because
a node only deactivates when a net member is within r).
"""

from __future__ import annotations

from typing import List, Set

from repro._types import NodeId
from repro.distributed.simulator import Context, Message, RoundBasedProtocol


class DistributedNetProtocol(RoundBasedProtocol):
    """Construct an r-net over the full node set."""

    def __init__(self, r: float) -> None:
        if r <= 0:
            raise ValueError("net radius must be positive")
        self.r = r

    # -- protocol ----------------------------------------------------------

    def initialize(self, ctx: Context) -> None:
        for u in range(ctx.n):
            state = ctx.state[u]
            state["status"] = "live"  # live | net | covered
            state["neighbors"] = None  # conflict neighborhood, probed lazily
            state["priority"] = None

        # Round 0 discovery: each node probes every other node once to
        # learn its conflict neighborhood.  (Θ(n) probes per node — the
        # honest cost of having no prior distance knowledge; the gossip
        # ring protocol shows the cheap-but-partial alternative.)
        for u in range(ctx.n):
            neighbors: Set[NodeId] = set()
            for v in range(ctx.n):
                if v != u and ctx.probe(u, v) <= self.r:
                    neighbors.add(v)
            ctx.state[u]["neighbors"] = neighbors

        self._announce_priorities(ctx)

    def _announce_priorities(self, ctx: Context) -> None:
        """Every live node draws a fresh priority and tells live neighbors."""
        for u in range(ctx.n):
            state = ctx.state[u]
            if state["status"] != "live":
                continue
            state["priority"] = float(ctx.rng.random())
            for v in state["neighbors"]:
                if ctx.state[v]["status"] == "live":
                    ctx.send(u, v, "priority", value=state["priority"])

    def on_round(self, node: NodeId, inbox: List[Message], ctx: Context) -> None:
        state = ctx.state[node]
        if state["status"] == "covered":
            return

        joined_neighbors = [m for m in inbox if m.kind == "joined"]
        if state["status"] == "live" and joined_neighbors:
            state["status"] = "covered"
            return

        if state["status"] != "live":
            return

        # Compare against every priority received this round (senders were
        # live when they sent; filtering by their *current* status would
        # make the outcome depend on intra-round processing order and can
        # let two conflict-adjacent nodes both win).  (priority, id)
        # lexicographic order breaks ties deterministically.
        my_priority = state["priority"]
        if my_priority is None:
            return
        rivals = [
            (m.payload["value"], m.sender) for m in inbox if m.kind == "priority"
        ]
        if all((my_priority, node) > rival for rival in rivals):
            state["status"] = "net"
            for v in state["neighbors"]:
                if ctx.state[v]["status"] == "live":
                    ctx.send(node, v, "joined")
        # Losers wait; on_round_end redraws priorities for the next round.
        state["priority"] = None

    def on_round_end(self, ctx: Context) -> None:
        self._announce_priorities(ctx)

    def is_done(self, ctx: Context) -> bool:
        return all(ctx.state[u]["status"] != "live" for u in range(ctx.n))

    # -- result -----------------------------------------------------------

    def net_members(self, ctx: Context) -> List[NodeId]:
        return sorted(u for u in range(ctx.n) if ctx.state[u]["status"] == "net")
