"""Distributed construction and maintenance of rings of neighbors.

The paper's §6: "rings of neighbors can be used in a distributed system
as a layer that supports various applications … [but] rings that we can
define theoretically provide a much better coverage than the ones that we
know how to construct and maintain in a distributed fashion.  Bridging
this gap is an interesting open question."

This subpackage turns that discussion into runnable experiments:

* :mod:`~repro.distributed.simulator` — a synchronous round-based
  message-passing simulator (PODC model): per-round inboxes/outboxes,
  counted messages and distance probes.
* :mod:`~repro.distributed.netproto` — Luby-style distributed r-net
  construction (the building block of every ring family), with validity
  verified against the centralized construction.
* :mod:`~repro.distributed.ringproto` — gossip-based ring discovery:
  nodes learn ring members from bootstrap peers; coverage vs rounds
  quantifies the §6 gap against the exact rings.
* :mod:`~repro.distributed.churn` — Meridian-style overlay maintenance
  under join/leave churn, measuring closest-node search quality decay
  and repair.
"""

from repro.distributed.simulator import (
    Context,
    Message,
    RoundBasedProtocol,
    RunStats,
    SynchronousNetwork,
)
from repro.distributed.netproto import DistributedNetProtocol
from repro.distributed.ringproto import GossipRingProtocol, ring_coverage
from repro.distributed.churn import ChurnRoundProtocol, ChurnSimulation
from repro.distributed.trace import ChurnEvent, ChurnTrace

__all__ = [
    "ChurnEvent",
    "ChurnTrace",
    "Context",
    "Message",
    "RoundBasedProtocol",
    "RunStats",
    "SynchronousNetwork",
    "DistributedNetProtocol",
    "GossipRingProtocol",
    "ring_coverage",
    "ChurnRoundProtocol",
    "ChurnSimulation",
]
