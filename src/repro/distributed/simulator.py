"""Synchronous round-based message-passing simulator.

The classic PODC model: computation proceeds in rounds; in each round
every node reads its inbox, updates local state and sends messages that
arrive at the start of the next round.  Two costs are counted:

* **messages** — every :meth:`Context.send`;
* **probes** — distance measurements via :meth:`Context.probe` (in a
  deployed system, an RTT ping).  Nodes know the address space (node
  ids) but *not* the metric; all distance knowledge must be probed,
  which is what makes ring construction non-trivial distributedly.

Protocols subclass :class:`RoundBasedProtocol` and keep per-node state in
``ctx.state[node]`` (a dict); the simulator is deterministic given the
seed.
"""

from __future__ import annotations

import abc
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro._types import NodeId
from repro.metrics.base import MetricSpace
from repro.rng import SeedLike, ensure_rng, rng_entropy


@dataclass(frozen=True)
class Message:
    """One message in flight."""

    sender: NodeId
    recipient: NodeId
    kind: str
    payload: Dict[str, Any] = field(default_factory=dict)


@dataclass
class RunStats:
    """Cost summary of one protocol run.

    Message accounting is explicit: ``messages`` counts sends,
    ``delivered`` the messages actually consumed by a node's step, and
    the two loss buckets say where the rest went — ``dropped`` (the
    network discarded them: link loss, partition, crashed recipient;
    always 0 on the perfect synchronous network) and ``undelivered``
    (still in flight when the run ended, e.g. sent in the final round).
    ``messages == delivered + dropped + undelivered`` holds for every
    run.  ``seed`` is the resolved RNG entropy (recorded even for
    unseeded runs) and ``config`` carries the scenario description on
    event-simulator runs — together they make any run reproducible from
    its persisted stats.
    """

    rounds: int
    messages: int
    probes: int
    converged: bool
    delivered: int = 0
    dropped: int = 0
    undelivered: int = 0
    wall_clock: float = 0.0
    seed: Any = None
    config: Dict[str, Any] = field(default_factory=dict)


class Context:
    """Per-run environment handed to the protocol."""

    def __init__(self, metric: MetricSpace, rng) -> None:
        self._metric = metric
        self.rng = rng
        self.n = metric.n
        #: per-node protocol state
        self.state: Dict[NodeId, Dict[str, Any]] = defaultdict(dict)
        self._outbox: List[Message] = []
        self.messages_sent = 0
        self.probes = 0

    def send(self, sender: NodeId, recipient: NodeId, kind: str, **payload: Any) -> None:
        """Queue a message for delivery at the next round."""
        if not (0 <= recipient < self.n):
            raise ValueError(f"recipient {recipient} out of range")
        self._outbox.append(Message(sender, recipient, kind, payload))
        self.messages_sent += 1

    def probe(self, u: NodeId, v: NodeId) -> float:
        """Measure d(u, v) — one counted network probe."""
        self.probes += 1
        return self._metric.distance(u, v)

    def _drain_outbox(self) -> Dict[NodeId, List[Message]]:
        inboxes: Dict[NodeId, List[Message]] = defaultdict(list)
        for message in self._outbox:
            inboxes[message.recipient].append(message)
        self._outbox = []
        return inboxes


class RoundBasedProtocol(abc.ABC):
    """A distributed protocol executed by :class:`SynchronousNetwork`."""

    @abc.abstractmethod
    def initialize(self, ctx: Context) -> None:
        """Set up per-node state; may send round-0 messages."""

    @abc.abstractmethod
    def on_round(self, node: NodeId, inbox: List[Message], ctx: Context) -> None:
        """One node's step: read inbox, update state, send messages."""

    @abc.abstractmethod
    def is_done(self, ctx: Context) -> bool:
        """Global termination predicate (checked between rounds)."""

    def on_round_end(self, ctx: Context) -> None:
        """Hook after every node has taken its step this round.

        Default: no-op.  Protocols that need a synchronized phase change
        (e.g. redrawing priorities) override this instead of piggybacking
        on some specific node's step.
        """


class SynchronousNetwork:
    """Drives a protocol over a metric's node set."""

    def __init__(
        self, metric: MetricSpace, protocol: RoundBasedProtocol, seed: SeedLike = None
    ) -> None:
        self.metric = metric
        self.protocol = protocol
        rng = ensure_rng(seed)
        #: resolved RNG entropy, recorded in every RunStats
        self.resolved_seed = rng_entropy(rng)
        self.ctx = Context(metric, rng)

    def run(self, max_rounds: int = 1000) -> RunStats:
        """Execute until the protocol reports done or the budget ends."""
        protocol, ctx = self.protocol, self.ctx
        protocol.initialize(ctx)
        rounds = 0
        delivered = 0
        converged = protocol.is_done(ctx)
        while not converged and rounds < max_rounds:
            inboxes = ctx._drain_outbox()
            delivered += sum(len(box) for box in inboxes.values())
            for node in range(ctx.n):
                protocol.on_round(node, inboxes.get(node, []), ctx)
            protocol.on_round_end(ctx)
            rounds += 1
            converged = protocol.is_done(ctx)
        return RunStats(
            rounds=rounds,
            messages=ctx.messages_sent,
            probes=ctx.probes,
            converged=converged,
            delivered=delivered,
            dropped=0,
            undelivered=len(ctx._outbox),
            wall_clock=float(rounds),
            seed=self.resolved_seed,
        )
