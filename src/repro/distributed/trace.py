"""ChurnTrace — one seeded join/leave schedule for every churn consumer.

The repo used to have two unrelated churn entry points: the epoch loop
in :class:`~repro.distributed.churn.ChurnSimulation` drew its own random
victims per epoch, and the netsim ``crash-churn`` scenario drew crash
windows from its fault RNG.  A :class:`ChurnTrace` is the shared spec
both now consume — a deterministic, JSON-round-trippable sequence of
:class:`ChurnEvent` batches over a fixed node universe — and what the
``churn-stream`` suite streams through mutable schemes.  Result sets
record ``trace.describe()`` (sizes, seed and a content digest) as
provenance, so any measured run names the exact schedule it saw.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.rng import SeedLike, ensure_rng

__all__ = ["ChurnEvent", "ChurnTrace"]


@dataclass(frozen=True)
class ChurnEvent:
    """One batch of membership changes at logical time ``at``."""

    at: float
    leaves: Tuple[int, ...] = ()
    joins: Tuple[int, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        return {
            "at": self.at,
            "leaves": list(self.leaves),
            "joins": list(self.joins),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ChurnEvent":
        return cls(
            at=float(data["at"]),
            leaves=tuple(int(x) for x in data.get("leaves", ())),
            joins=tuple(int(x) for x in data.get("joins", ())),
        )


@dataclass(frozen=True)
class ChurnTrace:
    """A deterministic join/leave schedule over a fixed n-node universe.

    Semantics are membership-churn: node ids never change, a leave
    deactivates an id and a (re)join reactivates it.  Every consumer —
    the distributed epoch simulation, the netsim fault planner, the
    mutable-scheme streaming path — replays the same events.
    """

    n: int
    events: Tuple[ChurnEvent, ...]
    seed: Optional[int] = 0
    rate: float = 0.0

    @classmethod
    def generate(
        cls,
        n: int,
        events: int,
        rate: float = 0.01,
        seed: SeedLike = 0,
        rejoin_after: int = 2,
        exclude: Iterable[int] = (),
    ) -> "ChurnTrace":
        """A replacement-model schedule: each event removes ``~rate·n``
        active nodes, and each departed cohort rejoins exactly
        ``rejoin_after`` events later (a node is never away forever, so
        long traces keep a stable active population).  ``exclude`` pins
        nodes that never churn (round drivers, observers).
        """
        if n < 2:
            raise ValueError(f"need n >= 2, got n={n}")
        if not 0 < rate < 1:
            raise ValueError(f"rate must be in (0, 1), got {rate}")
        rng = ensure_rng(seed)
        protected = np.zeros(n, dtype=bool)
        excl = np.asarray(sorted(set(int(x) for x in exclude)), dtype=np.int64)
        if excl.size:
            if excl.min() < 0 or excl.max() >= n:
                raise ValueError(f"exclude ids out of range [0, {n})")
            protected[excl] = True
        active = np.ones(n, dtype=bool)
        per_event = max(1, int(round(rate * n)))
        cohorts: List[Tuple[int, ...]] = []
        out: List[ChurnEvent] = []
        for e in range(int(events)):
            joins: Tuple[int, ...] = ()
            fresh = np.zeros(n, dtype=bool)
            if e >= rejoin_after and cohorts[e - rejoin_after]:
                joins = cohorts[e - rejoin_after]
                active[list(joins)] = True
                # keep joins and leaves disjoint within one event — the
                # batch-update invariant every consumer relies on
                fresh[list(joins)] = True
            pool = np.flatnonzero(active & ~protected & ~fresh)
            count = min(per_event, max(0, pool.size - 1))
            if count > 0:
                picked = rng.choice(pool, size=count, replace=False)
                leaves = tuple(int(x) for x in np.sort(picked))
                active[list(leaves)] = False
            else:
                leaves = ()
            cohorts.append(leaves)
            out.append(ChurnEvent(at=float(e), leaves=leaves, joins=joins))
        seed_val = None if seed is None else int(seed) if np.isscalar(seed) else None
        return cls(n=int(n), events=tuple(out), seed=seed_val, rate=float(rate))

    # -- queries --------------------------------------------------------

    def final_active(self) -> np.ndarray:
        """The active mask after replaying every event."""
        active = np.ones(self.n, dtype=bool)
        for event in self.events:
            active[list(event.joins)] = True
            active[list(event.leaves)] = False
        return active

    def crash_windows(
        self, start: float = 0.0, spacing: float = 1.0
    ) -> List[Tuple[int, float, float]]:
        """(node, down_at, up_at) windows, pairing each leave with the
        node's next rejoin (``inf`` if it never rejoins).  Times are
        ``start + at·spacing`` — how the netsim fault planner maps
        logical event indices onto simulated seconds."""
        windows: List[Tuple[int, float, float]] = []
        for i, event in enumerate(self.events):
            for node in event.leaves:
                up_at = float("inf")
                for later in self.events[i + 1 :]:
                    if node in later.joins:
                        up_at = start + later.at * spacing
                        break
                windows.append((int(node), start + event.at * spacing, up_at))
        return windows

    # -- serialization --------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        return {
            "n": self.n,
            "seed": self.seed,
            "rate": self.rate,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ChurnTrace":
        return cls(
            n=int(data["n"]),
            events=tuple(
                ChurnEvent.from_dict(e) for e in data.get("events", ())
            ),
            seed=None if data.get("seed") is None else int(data["seed"]),
            rate=float(data.get("rate", 0.0)),
        )

    def digest(self) -> str:
        """Stable content hash of the full schedule."""
        payload = json.dumps(self.to_dict(), sort_keys=True,
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> Dict[str, object]:
        """The compact provenance record result sets carry."""
        return {
            "n": self.n,
            "events": len(self.events),
            "rate": self.rate,
            "seed": self.seed,
            "digest": self.digest(),
        }
