"""Meridian overlay maintenance under churn.

The applied side of §6: a deployed rings overlay must survive nodes
joining and leaving.  :class:`ChurnSimulation` runs epochs over a
:class:`~repro.meridian.rings.MeridianOverlay`:

* each epoch, a ``churn_rate`` fraction of nodes is replaced: leavers
  are scrubbed from every ring; joiners bootstrap their rings from a
  random sample (they don't get the full-metric ring quality);
* optionally, ``repair_probes`` random ring-maintenance probes per node
  per epoch re-fill decayed rings;
* closest-node search quality is measured every epoch.

The finding the benchmark records: without repair the search
approximation ratio decays with accumulated churn; modest repair
stabilizes it — the practical face of the theory/practice coverage gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro._types import NodeId
from repro.distributed.simulator import Context, Message, RoundBasedProtocol
from repro.meridian.rings import MeridianOverlay
from repro.meridian.search import closest_node_search
from repro.metrics.base import MetricSpace
from repro.rng import SeedLike, ensure_rng, rng_entropy


@dataclass
class EpochReport:
    """Quality snapshot after one epoch of churn."""

    epoch: int
    replaced_nodes: int
    mean_approximation: float
    exact_rate: float
    mean_ring_members: float


class ChurnSimulation:
    """Epoch-driven churn over a Meridian overlay."""

    def __init__(
        self,
        metric: MetricSpace,
        overlay: MeridianOverlay,
        churn_rate: float = 0.1,
        bootstrap_probes: int = 8,
        repair_probes: int = 0,
        seed: SeedLike = None,
    ) -> None:
        if not 0 <= churn_rate < 1:
            raise ValueError("churn_rate must be in [0, 1)")
        self.metric = metric
        self.overlay = overlay
        self.churn_rate = churn_rate
        self.bootstrap_probes = bootstrap_probes
        self.repair_probes = repair_probes
        self.rng = ensure_rng(seed)
        #: resolved RNG entropy (reproducibility even for seed=None runs)
        self.resolved_seed = rng_entropy(self.rng)
        self.probes = 0
        # Cached id range: per-event "everyone but u" candidate sets are
        # vectorized deletes from this, never rebuilt Python lists.
        self._ids = np.arange(metric.n)

    # -- ring surgery ---------------------------------------------------------

    def _scrub(self, leaver: NodeId) -> None:
        """Remove a leaver from every ring of every node."""
        self._scrub_many(np.asarray([leaver]))

    def _scrub_many(self, leavers: np.ndarray) -> None:
        """Remove a whole epoch's leavers in one pass: one vectorized
        membership test per ring instead of a full overlay sweep per
        leaver (identical result — every victim is scrubbed before any
        rejoins happen)."""
        for node in self.overlay.nodes:
            for idx, members in list(node.rings.items()):
                if not members:
                    continue
                arr = np.asarray(members)
                keep = ~np.isin(arr, leavers)
                if not keep.all():
                    node.rings[idx] = tuple(int(v) for v in arr[keep])

    def _insert(self, u: NodeId, v: NodeId, distance: float) -> None:
        """File v into u's ring if capacity allows."""
        idx = self.overlay.ring_of_distance(distance)
        node = self.overlay.nodes[u]
        members = node.rings.get(idx, ())
        if v != u and v not in members and len(members) < self.overlay.nodes_per_ring:
            node.rings[idx] = tuple(sorted(members + (v,)))

    def _bootstrap(self, joiner: NodeId) -> None:
        """A (re)joining node probes a random sample to seed its rings,
        and announces itself to the probed nodes."""
        self.overlay.nodes[joiner].rings = {}
        others = np.delete(self._ids, joiner)
        sample = self.rng.choice(
            others, size=min(self.bootstrap_probes, others.size), replace=False
        )
        row = self.metric.distances_from(joiner)
        for v in sample:
            v = int(v)
            self.probes += 1
            d = float(row[v])
            self._insert(joiner, v, d)
            self._insert(v, joiner, d)

    def _repair(self) -> None:
        """Random maintenance probes re-filling decayed rings."""
        for u in range(self.metric.n):
            row = self.metric.distances_from(u)
            others = np.delete(self._ids, u)
            sample = self.rng.choice(
                others, size=min(self.repair_probes, others.size), replace=False
            )
            for v in sample:
                v = int(v)
                self.probes += 1
                self._insert(u, v, float(row[v]))

    # -- epochs ---------------------------------------------------------------

    def run_epoch(self, epoch: int, quality_queries: int = 60) -> EpochReport:
        n = self.metric.n
        replaced = max(0, int(round(self.churn_rate * n)))
        if replaced:
            victims = self.rng.choice(n, size=replaced, replace=False)
            self._scrub_many(victims)
            for v in victims:
                self._bootstrap(int(v))
        if self.repair_probes:
            self._repair()

        # Quality probe pairs come from an engine plan: exactly
        # ``quality_queries`` distinct (start, target) pairs per epoch,
        # deterministic given the simulation's rng state.
        from repro.engine import UniformSamplePlan

        approximations: List[float] = []
        size = min(quality_queries, n * (n - 1))
        if size > 0:
            plan = UniformSamplePlan(size=size, seed=int(self.rng.integers(2**31)))
            for start, target in plan.pairs(n):
                result = closest_node_search(self.overlay, int(start), int(target))
                approximations.append(result.approximation)
        mean_members = float(
            np.mean([node.out_degree() for node in self.overlay.nodes])
        )
        return EpochReport(
            epoch=epoch,
            replaced_nodes=replaced,
            mean_approximation=(
                float(np.mean(approximations)) if approximations else float("nan")
            ),
            exact_rate=(
                float(np.mean([a == 1.0 for a in approximations]))
                if approximations
                else float("nan")
            ),
            mean_ring_members=mean_members,
        )

    def run(self, epochs: int, quality_queries: int = 60) -> List[EpochReport]:
        return [self.run_epoch(e, quality_queries) for e in range(epochs)]


class ChurnRoundProtocol(RoundBasedProtocol):
    """The churn simulation as a round-based protocol: one epoch per round.

    Puts the third §6 experiment on the same simulator surface as the
    gossip and r-net protocols, so the event-driven adapter
    (:class:`repro.netsim.RoundAdapter`) can drive it too.  The overlay
    and :class:`ChurnSimulation` are built in :meth:`initialize` from the
    context's metric and RNG — the epoch trace draws from the shared
    protocol stream, so equal seeds give identical reports on the
    synchronous network and on a zero-latency event network.
    """

    def __init__(
        self,
        epochs: int = 4,
        churn_rate: float = 0.1,
        bootstrap_probes: int = 8,
        repair_probes: int = 0,
        quality_queries: int = 60,
        nodes_per_ring: int = 8,
    ) -> None:
        if epochs < 1:
            raise ValueError("epochs must be positive")
        self.epochs = epochs
        self.churn_rate = churn_rate
        self.bootstrap_probes = bootstrap_probes
        self.repair_probes = repair_probes
        self.quality_queries = quality_queries
        self.nodes_per_ring = nodes_per_ring
        self.reports: List[EpochReport] = []
        self.sim: "ChurnSimulation | None" = None
        self._epoch = 0

    def initialize(self, ctx: Context) -> None:
        overlay = MeridianOverlay(
            ctx._metric, nodes_per_ring=self.nodes_per_ring, seed=ctx.rng
        )
        self.sim = ChurnSimulation(
            ctx._metric,
            overlay,
            churn_rate=self.churn_rate,
            bootstrap_probes=self.bootstrap_probes,
            repair_probes=self.repair_probes,
            seed=ctx.rng,
        )
        self.reports = []
        self._epoch = 0

    def on_round(self, node: NodeId, inbox: List[Message], ctx: Context) -> None:
        # Epoch surgery is overlay-global; node 0 performs it for the
        # round and mirrors the simulation's probe count into the
        # context, so RunStats.probes reports the true probing cost.
        if node != 0 or self._epoch >= self.epochs:
            return
        report = self.sim.run_epoch(self._epoch, self.quality_queries)
        self.reports.append(report)
        self._epoch += 1
        ctx.probes = self.sim.probes

    def is_done(self, ctx: Context) -> bool:
        return self._epoch >= self.epochs
