"""Meridian overlay maintenance under churn.

The applied side of §6: a deployed rings overlay must survive nodes
joining and leaving.  :class:`ChurnSimulation` runs epochs over a
:class:`~repro.meridian.rings.MeridianOverlay`:

* each epoch, a ``churn_rate`` fraction of nodes is replaced: leavers
  are scrubbed from every ring; joiners bootstrap their rings from a
  random sample (they don't get the full-metric ring quality);
* optionally, ``repair_probes`` random ring-maintenance probes per node
  per epoch re-fill decayed rings;
* closest-node search quality is measured every epoch.

The finding the benchmark records: without repair the search
approximation ratio decays with accumulated churn; modest repair
stabilizes it — the practical face of the theory/practice coverage gap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro._types import NodeId
from repro.distributed.simulator import Context, Message, RoundBasedProtocol
from repro.distributed.trace import ChurnTrace
from repro.meridian.rings import MeridianOverlay
from repro.meridian.search import closest_node_search
from repro.metrics.base import MetricSpace
from repro.rng import SeedLike, ensure_rng, rng_entropy


@dataclass
class EpochReport:
    """Quality snapshot after one epoch of churn."""

    epoch: int
    replaced_nodes: int
    mean_approximation: float
    exact_rate: float
    mean_ring_members: float


class ChurnSimulation:
    """Epoch-driven churn over a Meridian overlay."""

    def __init__(
        self,
        metric: MetricSpace,
        overlay: MeridianOverlay,
        churn_rate: float = 0.1,
        bootstrap_probes: int = 8,
        repair_probes: int = 0,
        seed: SeedLike = None,
        trace: Optional[ChurnTrace] = None,
        incremental: bool = False,
    ) -> None:
        if not 0 <= churn_rate < 1:
            raise ValueError("churn_rate must be in [0, 1)")
        if trace is not None and trace.n != metric.n:
            raise ValueError(
                f"trace covers n={trace.n} nodes, metric has n={metric.n}"
            )
        self.metric = metric
        self.overlay = overlay
        self.churn_rate = churn_rate
        self.bootstrap_probes = bootstrap_probes
        self.repair_probes = repair_probes
        #: optional shared schedule; when set, epoch e replays
        #: ``trace.events[e]`` instead of drawing victims from the RNG
        self.trace = trace
        #: incremental scrub: maintain a member → {(node, ring_idx)}
        #: inverted index instead of sweeping every ring per epoch
        self.incremental = incremental
        self.rng = ensure_rng(seed)
        #: resolved RNG entropy (reproducibility even for seed=None runs)
        self.resolved_seed = rng_entropy(self.rng)
        self.probes = 0
        # Cached id range: per-event "everyone but u" candidate sets are
        # vectorized deletes from this, never rebuilt Python lists.
        self._ids = np.arange(metric.n)
        # Trace mode tracks the live set so bootstrap/repair probes only
        # touch active peers; legacy replacement churn keeps all active.
        self._active = np.ones(metric.n, dtype=bool)
        self._member_index: Optional[Dict[int, Set[Tuple[int, int]]]] = None

    # -- incremental inverted index -------------------------------------------

    def _index(self) -> Dict[int, Set[Tuple[int, int]]]:
        """member → {(node, ring_idx)} over the whole overlay, built once
        by a full sweep and maintained by every subsequent mutation."""
        if self._member_index is None:
            index: Dict[int, Set[Tuple[int, int]]] = {}
            for node_id, node in enumerate(self.overlay.nodes):
                for idx, members in node.rings.items():
                    for v in members:
                        index.setdefault(int(v), set()).add((node_id, idx))
            self._member_index = index
        return self._member_index

    def _others(self, u: NodeId) -> np.ndarray:
        """Active candidate peers for probes from ``u``."""
        cands = np.flatnonzero(self._active)
        return cands[cands != u]

    def _clear_rings(self, u: NodeId) -> None:
        """Drop all of u's outgoing ring entries (leave / rebootstrap)."""
        node = self.overlay.nodes[u]
        if self._member_index is not None:
            for idx, members in node.rings.items():
                for v in members:
                    entries = self._member_index.get(int(v))
                    if entries is not None:
                        entries.discard((u, idx))
        node.rings = {}

    # -- ring surgery ---------------------------------------------------------

    def _scrub(self, leaver: NodeId) -> None:
        """Remove a leaver from every ring of every node."""
        self._scrub_many(np.asarray([leaver]))

    def _scrub_many(self, leavers: np.ndarray) -> None:
        """Remove a whole epoch's leavers in one pass: one vectorized
        membership test per ring instead of a full overlay sweep per
        leaver (identical result — every victim is scrubbed before any
        rejoins happen).  With ``incremental=True``, the inverted index
        names exactly the (node, ring) pairs holding a leaver, so the
        cost is O(affected rings), not O(total rings)."""
        if self.incremental:
            index = self._index()
            gone = set(int(v) for v in np.asarray(leavers).ravel())
            for leaver in sorted(gone):
                for node_id, idx in sorted(index.pop(leaver, set())):
                    members = self.overlay.nodes[node_id].rings.get(idx, ())
                    self.overlay.nodes[node_id].rings[idx] = tuple(
                        v for v in members if int(v) not in gone
                    )
            return
        for node in self.overlay.nodes:
            for idx, members in list(node.rings.items()):
                if not members:
                    continue
                arr = np.asarray(members)
                keep = ~np.isin(arr, leavers)
                if not keep.all():
                    node.rings[idx] = tuple(int(v) for v in arr[keep])

    def _insert(self, u: NodeId, v: NodeId, distance: float) -> None:
        """File v into u's ring if capacity allows."""
        idx = self.overlay.ring_of_distance(distance)
        node = self.overlay.nodes[u]
        members = node.rings.get(idx, ())
        if v != u and v not in members and len(members) < self.overlay.nodes_per_ring:
            node.rings[idx] = tuple(sorted(members + (v,)))
            if self._member_index is not None:
                self._member_index.setdefault(int(v), set()).add((int(u), idx))

    def _bootstrap(self, joiner: NodeId) -> None:
        """A (re)joining node probes a random sample to seed its rings,
        and announces itself to the probed nodes."""
        self._clear_rings(joiner)
        others = self._others(joiner)
        sample = self.rng.choice(
            others, size=min(self.bootstrap_probes, others.size), replace=False
        )
        row = self.metric.distances_from(joiner)
        for v in sample:
            v = int(v)
            self.probes += 1
            d = float(row[v])
            self._insert(joiner, v, d)
            self._insert(v, joiner, d)

    def _repair(self) -> None:
        """Random maintenance probes re-filling decayed rings."""
        for u in range(self.metric.n):
            if not self._active[u]:
                continue
            row = self.metric.distances_from(u)
            others = self._others(u)
            sample = self.rng.choice(
                others, size=min(self.repair_probes, others.size), replace=False
            )
            for v in sample:
                v = int(v)
                self.probes += 1
                self._insert(u, v, float(row[v]))

    # -- epochs ---------------------------------------------------------------

    def run_epoch(self, epoch: int, quality_queries: int = 60) -> EpochReport:
        n = self.metric.n
        if self.trace is not None:
            # Replay the shared schedule: scrub this epoch's leavers (and
            # drop their own rings — they are away, not replaced), then
            # bootstrap the cohort rejoining now.
            event = (
                self.trace.events[epoch]
                if epoch < len(self.trace.events)
                else None
            )
            leaves = tuple(event.leaves) if event is not None else ()
            joins = tuple(event.joins) if event is not None else ()
            replaced = len(leaves) + len(joins)
            # Joins before leaves — the order ChurnTrace.generate and
            # final_active() use (a node in both rejoins, then leaves).
            for v in joins:
                self._active[v] = True
                self._bootstrap(int(v))
            if leaves:
                self._scrub_many(np.asarray(leaves, dtype=np.int64))
                for v in leaves:
                    self._clear_rings(int(v))
                    self._active[v] = False
        else:
            replaced = max(0, int(round(self.churn_rate * n)))
            if replaced:
                victims = self.rng.choice(n, size=replaced, replace=False)
                self._scrub_many(victims)
                for v in victims:
                    self._bootstrap(int(v))
        if self.repair_probes:
            self._repair()

        # Quality probe pairs come from an engine plan: exactly
        # ``quality_queries`` distinct (start, target) pairs per epoch,
        # deterministic given the simulation's rng state.
        from repro.engine import UniformSamplePlan

        approximations: List[float] = []
        size = min(quality_queries, n * (n - 1))
        if size > 0:
            plan = UniformSamplePlan(size=size, seed=int(self.rng.integers(2**31)))
            for start, target in plan.pairs(n):
                result = closest_node_search(self.overlay, int(start), int(target))
                approximations.append(result.approximation)
        mean_members = float(
            np.mean([node.out_degree() for node in self.overlay.nodes])
        )
        return EpochReport(
            epoch=epoch,
            replaced_nodes=replaced,
            mean_approximation=(
                float(np.mean(approximations)) if approximations else float("nan")
            ),
            exact_rate=(
                float(np.mean([a == 1.0 for a in approximations]))
                if approximations
                else float("nan")
            ),
            mean_ring_members=mean_members,
        )

    def run(self, epochs: int, quality_queries: int = 60) -> List[EpochReport]:
        return [self.run_epoch(e, quality_queries) for e in range(epochs)]


class ChurnRoundProtocol(RoundBasedProtocol):
    """The churn simulation as a round-based protocol: one epoch per round.

    Puts the third §6 experiment on the same simulator surface as the
    gossip and r-net protocols, so the event-driven adapter
    (:class:`repro.netsim.RoundAdapter`) can drive it too.  The overlay
    and :class:`ChurnSimulation` are built in :meth:`initialize` from the
    context's metric and RNG — the epoch trace draws from the shared
    protocol stream, so equal seeds give identical reports on the
    synchronous network and on a zero-latency event network.
    """

    def __init__(
        self,
        epochs: int = 4,
        churn_rate: float = 0.1,
        bootstrap_probes: int = 8,
        repair_probes: int = 0,
        quality_queries: int = 60,
        nodes_per_ring: int = 8,
    ) -> None:
        if epochs < 1:
            raise ValueError("epochs must be positive")
        self.epochs = epochs
        self.churn_rate = churn_rate
        self.bootstrap_probes = bootstrap_probes
        self.repair_probes = repair_probes
        self.quality_queries = quality_queries
        self.nodes_per_ring = nodes_per_ring
        self.reports: List[EpochReport] = []
        self.sim: "ChurnSimulation | None" = None
        self._epoch = 0

    def initialize(self, ctx: Context) -> None:
        overlay = MeridianOverlay(
            ctx._metric, nodes_per_ring=self.nodes_per_ring, seed=ctx.rng
        )
        self.sim = ChurnSimulation(
            ctx._metric,
            overlay,
            churn_rate=self.churn_rate,
            bootstrap_probes=self.bootstrap_probes,
            repair_probes=self.repair_probes,
            seed=ctx.rng,
        )
        self.reports = []
        self._epoch = 0

    def on_round(self, node: NodeId, inbox: List[Message], ctx: Context) -> None:
        # Epoch surgery is overlay-global; node 0 performs it for the
        # round and mirrors the simulation's probe count into the
        # context, so RunStats.probes reports the true probing cost.
        if node != 0 or self._epoch >= self.epochs:
            return
        report = self.sim.run_epoch(self._epoch, self.quality_queries)
        self.reports.append(report)
        self._epoch += 1
        ctx.probes = self.sim.probes

    def is_done(self, ctx: Context) -> bool:
        return self._epoch >= self.epochs
