"""Small-world model interface, contact graphs and the routing driver.

The driver enforces the *strongly local* discipline of §5: a model's
:meth:`SmallWorldModel.next_hop` receives only the current node's contact
list with (distance-to-contact, contact-to-target-distance) pairs — never
the full metric.  Queries that stall (no admissible hop) or exceed the hop
budget are recorded as failures, matching the paper's "with high
probability all queries complete" framing: we measure the failure rate
instead of looping forever.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro._types import NodeId
from repro.metrics.base import MetricSpace
from repro.rng import SeedLike, ensure_rng


@dataclass
class ContactGraph:
    """A sampled directed graph of contacts (out-links per node)."""

    contacts: List[Tuple[NodeId, ...]]

    def out_degree(self, u: NodeId) -> int:
        return len(self.contacts[u])

    def max_out_degree(self) -> int:
        return max(len(c) for c in self.contacts)

    def mean_out_degree(self) -> float:
        return float(np.mean([len(c) for c in self.contacts]))


@dataclass
class QueryResult:
    """One routed query."""

    source: NodeId
    target: NodeId
    path: List[NodeId]
    reached: bool

    @property
    def hops(self) -> int:
        return len(self.path) - 1


class SmallWorldModel(abc.ABC):
    """Contact distribution + strongly local routing algorithm."""

    metric: MetricSpace

    @abc.abstractmethod
    def sample_contacts(self, seed: SeedLike = None) -> ContactGraph:
        """Draw one contact graph (out-links chosen independently per node)."""

    def next_hop(
        self,
        u: NodeId,
        d_ut: float,
        contacts: Sequence[NodeId],
        d_uc: np.ndarray,
        d_ct: np.ndarray,
    ) -> Optional[NodeId]:
        """Choose the next hop (strongly local: only the arrays supplied).

        Default: plain greedy — the contact closest to the target,
        provided it makes strict progress.
        """
        if len(contacts) == 0:
            return None
        k = int(np.argmin(d_ct))
        if d_ct[k] < d_ut:
            return contacts[k]
        return None


def route_query(
    model: SmallWorldModel,
    graph: ContactGraph,
    source: NodeId,
    target: NodeId,
    max_hops: Optional[int] = None,
) -> QueryResult:
    """Run one query under the strongly-local discipline."""
    metric = model.metric
    limit = max_hops if max_hops is not None else 8 * metric.n
    path = [source]
    current = source
    row_t = metric.distances_from(target)
    while current != target and len(path) <= limit:
        contacts = graph.contacts[current]
        row_u = metric.distances_from(current)
        idx = np.asarray(contacts, dtype=int)
        d_uc = row_u[idx] if len(contacts) else np.empty(0)
        d_ct = row_t[idx] if len(contacts) else np.empty(0)
        nxt = model.next_hop(current, float(row_t[current]), contacts, d_uc, d_ct)
        if nxt is None or nxt == current:
            break
        path.append(nxt)
        current = nxt
    return QueryResult(source=source, target=target, path=path, reached=current == target)


@dataclass
class SmallWorldStats:
    """Aggregate query statistics for one sampled contact graph."""

    queries: int
    completed: int
    max_hops: int
    mean_hops: float
    max_out_degree: int
    mean_out_degree: float
    hop_counts: List[int] = field(default_factory=list, repr=False)

    @property
    def completion_rate(self) -> float:
        return self.completed / max(1, self.queries)


def evaluate_model(
    model: SmallWorldModel,
    graph: Optional[ContactGraph] = None,
    queries: Optional[Iterable[Tuple[NodeId, NodeId]]] = None,
    sample_queries: int = 500,
    seed: SeedLike = 0,
    max_hops: Optional[int] = None,
) -> SmallWorldStats:
    """Sample (or use given) queries and collect hop statistics."""
    rng = ensure_rng(seed)
    if graph is None:
        graph = model.sample_contacts(seed=rng)
    n = model.metric.n
    if queries is None:
        pairs = rng.integers(0, n, size=(sample_queries, 2))
        queries = [(int(a), int(b)) for a, b in pairs if a != b]
    queries = list(queries)

    hops: List[int] = []
    completed = 0
    for s, t in queries:
        result = route_query(model, graph, s, t, max_hops=max_hops)
        if result.reached:
            completed += 1
            hops.append(result.hops)
    return SmallWorldStats(
        queries=len(queries),
        completed=completed,
        max_hops=max(hops) if hops else 0,
        mean_hops=float(np.mean(hops)) if hops else float("inf"),
        max_out_degree=graph.max_out_degree(),
        mean_out_degree=graph.mean_out_degree(),
        hop_counts=hops,
    )
