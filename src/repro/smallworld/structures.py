"""Kleinberg's group-structures small world [32] — "STRUCTURES" (§5.2).

For a node pair (u, v) let ``x_uv`` be the smallest cardinality of a ball
containing both u and v.  Each node u draws ``Θ(log² n)`` contacts i.i.d.
from ``π_u(v) = c_1 / x_uv``; routing is greedy.  Theorem 5.4 shows that
on UL-constrained metrics the paper's ring models share all four
characteristic properties of this model (hop count, greediness, degree,
and ``Pr[v contact of u] = Θ(log n)/x_uv``).

``x_uv`` here is computed as ``min(|B_u(d_uv)|, |B_v(d_uv)|)``, which is
within a constant factor of the true minimum over all ball centers (any
ball containing both has radius >= d_uv/2 around some center; standard
doubling argument) — documented approximation.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro._types import NodeId
from repro.metrics.base import MetricSpace
from repro.rng import SeedLike, ensure_rng
from repro.smallworld.base import ContactGraph, SmallWorldModel


class GroupStructuresModel(SmallWorldModel):
    """STRUCTURES: contacts ~ 1/x_uv, greedy routing."""

    def __init__(self, metric: MetricSpace, degree_factor: float = 1.0) -> None:
        """Each node gets ``ceil(degree_factor · log2(n)^2)`` contact draws."""
        self.metric = metric
        self.degree_factor = degree_factor

    @property
    def draws_per_node(self) -> int:
        log_n = math.log2(max(2, self.metric.n))
        return max(1, int(math.ceil(self.degree_factor * log_n * log_n)))

    def contact_probabilities(self, u: NodeId) -> np.ndarray:
        """π_u over all nodes (0 at u itself)."""
        metric = self.metric
        row = metric.distances_from(u)
        weights = np.zeros(metric.n)
        for v in range(metric.n):
            if v == u:
                continue
            d = float(row[v])
            x_uv = min(metric.ball_size(u, d), metric.ball_size(v, d))
            weights[v] = 1.0 / max(1, x_uv)
        total = weights.sum()
        if total <= 0:
            raise ValueError("degenerate metric: no other nodes")
        return weights / total

    def sample_contacts(self, seed: SeedLike = None) -> ContactGraph:
        rng = ensure_rng(seed)
        contacts: List[Tuple[NodeId, ...]] = []
        for u in range(self.metric.n):
            pi_u = self.contact_probabilities(u)
            picks = rng.choice(self.metric.n, size=self.draws_per_node, p=pi_u)
            chosen = set(int(x) for x in picks)
            chosen.discard(u)
            contacts.append(tuple(sorted(chosen)))
        return ContactGraph(contacts=contacts)
