"""Kleinberg's group-structures small world [32] — "STRUCTURES" (§5.2).

For a node pair (u, v) let ``x_uv`` be the smallest cardinality of a ball
containing both u and v.  Each node u draws ``Θ(log² n)`` contacts i.i.d.
from ``π_u(v) = c_1 / x_uv``; routing is greedy.  Theorem 5.4 shows that
on UL-constrained metrics the paper's ring models share all four
characteristic properties of this model (hop count, greediness, degree,
and ``Pr[v contact of u] = Θ(log n)/x_uv``).

``x_uv`` here is computed as ``min(|B_u(d_uv)|, |B_v(d_uv)|)``, which is
within a constant factor of the true minimum over all ball centers (any
ball containing both has radius >= d_uv/2 around some center; standard
doubling argument) — documented approximation.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro._types import NodeId
from repro.metrics.base import MetricSpace
from repro.rng import SeedLike, ensure_rng
from repro.smallworld.base import ContactGraph, SmallWorldModel


class GroupStructuresModel(SmallWorldModel):
    """STRUCTURES: contacts ~ 1/x_uv, greedy routing."""

    def __init__(self, metric: MetricSpace, degree_factor: float = 1.0) -> None:
        """Each node gets ``ceil(degree_factor · log2(n)^2)`` contact draws."""
        self.metric = metric
        self.degree_factor = degree_factor
        # Model-owned sorted rows: π_u needs |B_v(d_uv)| for *every* v on
        # every call, a cyclic access pattern that would evict-and-resort
        # constantly in the metric's byte-bounded LRU.  This model is
        # inherently dense (Θ(log² n) draws per node over all-pairs ball
        # ranks), so it pins its own O(n²) store, like the dense
        # structures it is compared against.
        self._sorted_rows: dict[int, np.ndarray] = {}

    def _sorted_row(self, v: NodeId) -> np.ndarray:
        row = self._sorted_rows.get(v)
        if row is None:
            row = np.sort(self.metric.distances_from(v))
            self._sorted_rows[v] = row
        return row

    @property
    def draws_per_node(self) -> int:
        log_n = math.log2(max(2, self.metric.n))
        return max(1, int(math.ceil(self.degree_factor * log_n * log_n)))

    def contact_probabilities(self, u: NodeId) -> np.ndarray:
        """π_u over all nodes (0 at u itself)."""
        metric = self.metric
        n = metric.n
        row = metric.distances_from(u)
        # |B_u(d_uv)| for every v in one batched searchsorted; |B_v(d_uv)|
        # is a per-node O(log n) lookup against the model-owned sorted rows.
        counts_u = np.searchsorted(self._sorted_row(u), row, side="right")
        counts_v = np.fromiter(
            (
                np.searchsorted(self._sorted_row(int(v)), row[v], side="right")
                for v in range(n)
            ),
            dtype=np.int64,
            count=n,
        )
        x_uv = np.minimum(counts_u, counts_v)
        weights = 1.0 / np.maximum(1, x_uv)
        weights[u] = 0.0
        total = weights.sum()
        if total <= 0:
            raise ValueError("degenerate metric: no other nodes")
        return weights / total

    def sample_contacts(self, seed: SeedLike = None) -> ContactGraph:
        rng = ensure_rng(seed)
        contacts: List[Tuple[NodeId, ...]] = []
        for u in range(self.metric.n):
            pi_u = self.contact_probabilities(u)
            picks = rng.choice(self.metric.n, size=self.draws_per_node, p=pi_u)
            chosen = set(int(x) for x in picks)
            chosen.discard(u)
            contacts.append(tuple(sorted(chosen)))
        return ContactGraph(contacts=contacts)
