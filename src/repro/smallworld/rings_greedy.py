"""Theorem 5.2(a) — greedy small world with X- and Y-type rings.

Contacts of node u (§5.1):

* **X-type**: for each ``i ∈ [log n]``, ``c·log n`` nodes sampled
  independently and uniformly from ``B_ui`` (the smallest ball around u
  with at least ``n/2^i`` nodes);
* **Y-type**: for each ``j ∈ [log Δ]``, ``2·c·α·log n`` nodes sampled from
  ``B_u(2^j)`` with probability proportional to a doubling measure µ
  ("we need to oversample nodes that lie in very sparse neighborhoods").

Routing is plain greedy.  Property (*): from any node in the annulus
``B_{t,i-1} \\ B_ti`` the walk enters ``B_ti`` within a constant number of
hops — a Y-hop to within ``d/4`` of t, then an X-hop into ``B_ti`` — so
queries finish in O(log n) hops even when Δ is exponential in n.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro._types import NodeId
from repro.metrics.base import MetricSpace
from repro.metrics.measure import DoublingMeasure, doubling_measure
from repro.rng import SeedLike, ensure_rng
from repro.smallworld.base import ContactGraph, SmallWorldModel


class GreedyRingsModel(SmallWorldModel):
    """The Theorem 5.2(a) model."""

    def __init__(
        self,
        metric: MetricSpace,
        c: float = 2.0,
        alpha_factor: float = 2.0,
        mu: Optional[DoublingMeasure] = None,
    ) -> None:
        """``c`` is the Chernoff constant (samples per X-ring are
        ``ceil(c log2 n)``); ``alpha_factor`` plays the role of 2α in the
        Y-ring sample count ``ceil(alpha_factor · c · log2 n)``."""
        self.metric = metric
        self.c = c
        self.alpha_factor = alpha_factor
        self.mu = mu if mu is not None else doubling_measure(metric)
        self._levels_n = max(1, int(math.ceil(math.log2(max(2, metric.n)))))
        self._levels_d = metric.log_aspect_ratio() + 1
        self._base = metric.min_distance()

    @property
    def x_samples(self) -> int:
        return max(1, int(math.ceil(self.c * math.log2(max(2, self.metric.n)))))

    @property
    def y_samples(self) -> int:
        return max(
            1,
            int(
                math.ceil(
                    self.alpha_factor * self.c * math.log2(max(2, self.metric.n))
                )
            ),
        )

    def sample_contacts(self, seed: SeedLike = None) -> ContactGraph:
        rng = ensure_rng(seed)
        metric = self.metric
        contacts: List[Tuple[NodeId, ...]] = []
        for u in range(metric.n):
            chosen: set[NodeId] = set()
            row = metric.distances_from(u)
            # X-type rings.
            for i in range(self._levels_n):
                radius = metric.rui(u, i)
                members = np.flatnonzero(row <= radius)
                picks = rng.choice(members, size=self.x_samples, replace=True)
                chosen.update(int(x) for x in picks)
            # Y-type rings.
            for j in range(self._levels_d):
                radius = self._base * float(2**j)
                picks = self.mu.sample_from_ball(u, radius, self.y_samples, rng)
                chosen.update(int(x) for x in picks)
            chosen.discard(u)
            contacts.append(tuple(sorted(chosen)))
        return ContactGraph(contacts=contacts)
