"""Lookahead ("know thy neighbor's neighbor") routing — Manku et al. [41].

§1's related work: several *non-strongly-local* routing algorithms beat
plain greedy by inspecting contacts of contacts.  We implement the NoN
variant as a baseline: the next hop is the contact c whose own best
contact is closest to the target (one level of lookahead), which needs
each node to know its neighbors' neighbor lists — strictly more
information than the paper's strongly local model allows.

The bench compares greedy vs lookahead on the same sampled contact graph
to quantify what the strongly-local restriction costs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro._types import NodeId
from repro.smallworld.base import ContactGraph, QueryResult, SmallWorldModel


def route_query_lookahead(
    model: SmallWorldModel,
    graph: ContactGraph,
    source: NodeId,
    target: NodeId,
    max_hops: Optional[int] = None,
) -> QueryResult:
    """NoN routing on a contact graph sampled from any model.

    At node u, for every contact c compute ``min over c's contacts c2 of
    d(c2, target)`` (including c itself) and hop to the contact whose
    lookahead value is smallest; ties broken toward the closer contact.
    """
    metric = model.metric
    limit = max_hops if max_hops is not None else 8 * metric.n
    row_t = metric.distances_from(target)
    path = [source]
    visited = {source}
    current = source
    while current != target and len(path) <= limit:
        contacts = graph.contacts[current]
        best_contact: Optional[NodeId] = None
        best_key = (float("inf"), float("inf"))
        for c in contacts:
            if c == target:
                best_contact, best_key = c, (-1.0, -1.0)
                break
            if c in visited:
                # A lookahead hop may move away from the target, so loops
                # are possible in principle; the simulation forbids
                # revisits (Manku et al.'s walks are self-avoiding in the
                # same sense).
                continue
            second = graph.contacts[c]
            lookahead = float(row_t[c])
            if second:
                lookahead = min(
                    lookahead, float(np.min(row_t[np.asarray(second, dtype=int)]))
                )
            key = (lookahead, float(row_t[c]))
            if key < best_key:
                best_contact, best_key = c, key
        if best_contact is None or best_contact == current:
            break
        path.append(best_contact)
        visited.add(best_contact)
        current = best_contact
    return QueryResult(source=source, target=target, path=path, reached=current == target)
