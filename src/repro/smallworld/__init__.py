"""Searchable small-world networks on metrics (paper §5).

A small-world model (Definition 5.1) is a distribution over contact
graphs plus a *strongly local* routing algorithm: the next hop is chosen
among the current node's contacts by looking only at distances to those
contacts and from those contacts to the target.

Models provided:

* :mod:`~repro.smallworld.rings_greedy` — **Theorem 5.2(a)**: X-type
  (uniform-in-B_ui) and Y-type (doubling-measure) rings, greedy routing,
  O(log n)-hop queries even for aspect ratio exponential in n.
* :mod:`~repro.smallworld.rings_pruned` — **Theorem 5.2(b)**: pruned
  Y-rings + Z-type annulus contacts and the first *non-greedy* strongly
  local routing step (**), breaking the O(log Δ) out-degree barrier.
* :mod:`~repro.smallworld.single_link` — **Theorem 5.5**: one long-range
  contact per node over a graph of local contacts.
* :mod:`~repro.smallworld.structures` — Kleinberg's group-structures
  model [32] (the Theorem 5.4 comparison baseline).
* :mod:`~repro.smallworld.kleinberg_grid` — Kleinberg's original 2-D grid
  model [30] (inverse-square long-range links).
"""

from repro.smallworld.base import (
    ContactGraph,
    QueryResult,
    SmallWorldModel,
    SmallWorldStats,
    evaluate_model,
    route_query,
)
from repro.smallworld.rings_greedy import GreedyRingsModel
from repro.smallworld.rings_pruned import PrunedRingsModel
from repro.smallworld.single_link import SingleLinkModel
from repro.smallworld.structures import GroupStructuresModel
from repro.smallworld.kleinberg_grid import KleinbergGridModel
from repro.smallworld.lookahead import route_query_lookahead

__all__ = [
    "ContactGraph",
    "QueryResult",
    "SmallWorldModel",
    "SmallWorldStats",
    "evaluate_model",
    "route_query",
    "GreedyRingsModel",
    "PrunedRingsModel",
    "SingleLinkModel",
    "GroupStructuresModel",
    "KleinbergGridModel",
    "route_query_lookahead",
]
