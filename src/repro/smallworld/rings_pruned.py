"""Theorem 5.2(b) — out-degree ~ sqrt(log Δ) via pruned rings + Z-contacts.

The (log Δ) Y-rings of Theorem 5.2(a) are pruned down to the scales that
matter near each cardinality level: ``Y_{u,i,j}`` exists only for signed j
with ``|j| <= (3x+3) log log Δ`` and ``r_{u,i+1} < r_ui·2^j < r_{u,i-1}``,
where ``x = sqrt(log Δ)``.  To survive the pruning, a third family is
added: the **Z-type** contacts ``z_uj`` — one node sampled uniformly from
each annulus ``B_u(ρ_j) \\ B_u(ρ_{j-1})`` with ``ρ_j = 2^{(1+1/x)^j}``
(or, when the annulus is empty, the closest node beyond ``ρ_j``).

Routing is the paper's first *non-greedy strongly local* algorithm:

    if u has a contact within d_ut/4 of the target, hop greedily to the
    contact closest to the target; **otherwise (step (**))** hop to the
    contact v that is farthest from u subject to ``d_uv <= d_ut``.

Intuition from the proof sketch: when u cannot make good progress it sits
in a "bad" neighborhood; the sideways Z-hop lands in a "good" one, from
which a pruned Y-ring reaches within ``d/16`` of the target.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro._types import NodeId
from repro.metrics.base import MetricSpace
from repro.metrics.measure import DoublingMeasure, doubling_measure
from repro.rng import SeedLike, ensure_rng
from repro.smallworld.base import ContactGraph, SmallWorldModel


class PrunedRingsModel(SmallWorldModel):
    """The Theorem 5.2(b) model with the non-greedy step (**)."""

    def __init__(
        self,
        metric: MetricSpace,
        c: float = 2.0,
        alpha_factor: float = 2.0,
        mu: Optional[DoublingMeasure] = None,
    ) -> None:
        self.metric = metric
        self.c = c
        self.alpha_factor = alpha_factor
        self.mu = mu if mu is not None else doubling_measure(metric)
        self._levels_n = max(1, int(math.ceil(math.log2(max(2, metric.n)))))
        self._base = metric.min_distance()
        self._log_delta = max(2.0, math.log2(metric.aspect_ratio()))
        self.x_param = math.sqrt(self._log_delta)

    @property
    def x_samples(self) -> int:
        return max(1, int(math.ceil(self.c * math.log2(max(2, self.metric.n)))))

    @property
    def y_samples(self) -> int:
        return max(
            1,
            int(
                math.ceil(
                    self.alpha_factor * self.c * math.log2(max(2, self.metric.n))
                )
            ),
        )

    def _rho(self, j: int) -> float:
        """``ρ_j = 2^{(1+1/x)^j}`` in units of the minimum distance."""
        return self._base * 2.0 ** ((1.0 + 1.0 / self.x_param) ** j)

    def _y_scale_indices(self, u: NodeId, i: int) -> List[int]:
        """Admissible signed offsets j for the pruned ring Y_{u,i,j}."""
        metric = self.metric
        r_ui = metric.rui(u, i)
        if r_ui <= 0:
            return []
        r_up = metric.rui(u, i + 1) if i + 1 < self._levels_n else 0.0
        r_down = metric.rui(u, i - 1) if i >= 1 else float("inf")
        j_cap = int((3 * self.x_param + 3) * max(1.0, math.log2(self._log_delta)))
        out: List[int] = []
        for j in range(-j_cap, j_cap + 1):
            radius = r_ui * (2.0**j)
            if r_up < radius < r_down:
                out.append(j)
        return out

    def sample_contacts(self, seed: SeedLike = None) -> ContactGraph:
        rng = ensure_rng(seed)
        metric = self.metric
        contacts: List[Tuple[NodeId, ...]] = []
        delta = metric.aspect_ratio()
        for u in range(metric.n):
            chosen: set[NodeId] = set()
            row = metric.distances_from(u)
            # X-type rings (same as Theorem 5.2(a)).
            for i in range(self._levels_n):
                radius = metric.rui(u, i)
                members = np.flatnonzero(row <= radius)
                picks = rng.choice(members, size=self.x_samples, replace=True)
                chosen.update(int(x) for x in picks)
            # Pruned Y-type rings.
            for i in range(self._levels_n):
                r_ui = metric.rui(u, i)
                for j in self._y_scale_indices(u, i):
                    radius = r_ui * (2.0**j)
                    picks = self.mu.sample_from_ball(u, radius, self.y_samples, rng)
                    chosen.update(int(x) for x in picks)
            # Z-type contacts: one per annulus.
            j = 0
            while True:
                rho_j = self._rho(j)
                if rho_j > self._base * delta * 2.0:
                    break
                rho_prev = self._rho(j - 1) if j >= 1 else 0.0
                in_annulus = np.flatnonzero((row > rho_prev) & (row <= rho_j))
                if in_annulus.size:
                    chosen.add(int(rng.choice(in_annulus)))
                else:
                    beyond = np.flatnonzero(row > rho_j)
                    if beyond.size:
                        chosen.add(int(beyond[np.argmin(row[beyond])]))
                j += 1
            chosen.discard(u)
            contacts.append(tuple(sorted(chosen)))
        return ContactGraph(contacts=contacts)

    # -- the non-greedy strongly local routing algorithm ---------------------

    def next_hop(
        self,
        u: NodeId,
        d_ut: float,
        contacts: Sequence[NodeId],
        d_uc: np.ndarray,
        d_ct: np.ndarray,
    ) -> Optional[NodeId]:
        if len(contacts) == 0:
            return None
        k = int(np.argmin(d_ct))
        if d_ct[k] <= d_ut / 4.0:
            # Greedy case: a contact within d/4 of the target exists.
            return contacts[k]
        # Step (**): go far sideways, but not beyond the target distance.
        admissible = np.flatnonzero(d_uc <= d_ut)
        if admissible.size == 0:
            # Fall back to plain greedy progress if even (**) is stuck.
            if d_ct[k] < d_ut:
                return contacts[k]
            return None
        far = int(admissible[np.argmax(d_uc[admissible])])
        if d_uc[far] <= 0:
            return None
        return contacts[far]
