"""Kleinberg's original 2-D grid small world [30] (baseline).

Nodes are the ``side × side`` lattice; local contacts are the (up to four)
lattice neighbors; each node additionally draws ``q`` long-range contacts
with ``Pr[v] ∝ d(u,v)^{-r}``.  Kleinberg's theorem: at the critical
exponent ``r = 2`` greedy routing finds O(log² n)-hop paths; for ``r ≠ 2``
greedy needs polynomially many hops.  The benchmark sweep over ``r``
reproduces that phase transition as a sanity anchor for the §5 models.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro._types import NodeId
from repro.metrics.euclidean import EuclideanMetric
from repro.rng import SeedLike, ensure_rng
from repro.smallworld.base import ContactGraph, SmallWorldModel


class KleinbergGridModel(SmallWorldModel):
    """The inverse-r^th-power grid model (Manhattan distances)."""

    def __init__(self, side: int, exponent: float = 2.0, q: int = 1) -> None:
        if side < 2:
            raise ValueError("side must be at least 2")
        if q < 1:
            raise ValueError("need at least one long-range contact")
        self.side = side
        self.exponent = exponent
        self.q = q
        coords = np.array([(x, y) for x in range(side) for y in range(side)], dtype=float)
        # Kleinberg uses lattice (Manhattan) distance.
        self.metric = EuclideanMetric(coords, p=1.0)
        self._coords = coords

    def _lattice_neighbors(self, u: NodeId) -> List[NodeId]:
        x, y = self._coords[u]
        out = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = int(x + dx), int(y + dy)
            if 0 <= nx < self.side and 0 <= ny < self.side:
                out.append(nx * self.side + ny)
        return out

    def sample_contacts(self, seed: SeedLike = None) -> ContactGraph:
        rng = ensure_rng(seed)
        n = self.metric.n
        contacts: List[Tuple[NodeId, ...]] = []
        for u in range(n):
            row = self.metric.distances_from(u)
            weights = np.where(row > 0, row, np.inf) ** (-self.exponent)
            weights[u] = 0.0
            probs = weights / weights.sum()
            picks = rng.choice(n, size=self.q, p=probs)
            chosen = set(self._lattice_neighbors(u))
            chosen.update(int(x) for x in picks)
            chosen.discard(u)
            contacts.append(tuple(sorted(chosen)))
        return ContactGraph(contacts=contacts)
