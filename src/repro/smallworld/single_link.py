"""Theorem 5.5 — one long-range contact per node.

The original Kleinberg setting [30]: we are given a *graph of local
contacts* and add exactly one long-range contact per node.  For each node
u, choose a scale ``j ∈ [log Δ]`` uniformly at random, then sample the
contact from ``B_u(2^j)`` with probability proportional to a doubling
measure.  Greedy routing completes each query in ``2^O(α) log² Δ`` hops
with high probability: local contacts always make some progress, and with
probability ``(2^O(α) log Δ)^{-1}`` per step the long-range link halves
the distance.
"""

from __future__ import annotations

from typing import List, Optional, Tuple


from repro._types import NodeId
from repro.graphs.graph import WeightedGraph
from repro.metrics.base import MetricSpace
from repro.metrics.measure import DoublingMeasure, doubling_measure
from repro.rng import SeedLike, ensure_rng
from repro.smallworld.base import ContactGraph, SmallWorldModel


class SingleLinkModel(SmallWorldModel):
    """Local contact graph + exactly one sampled long-range link per node."""

    def __init__(
        self,
        metric: MetricSpace,
        local_graph: WeightedGraph,
        mu: Optional[DoublingMeasure] = None,
    ) -> None:
        """``metric`` should be (an approximation of) the shortest-path
        metric of ``local_graph`` — the paper's d_G."""
        if local_graph.n != metric.n:
            raise ValueError("metric and local graph must have the same node set")
        self.metric = metric
        self.local_graph = local_graph
        self.mu = mu if mu is not None else doubling_measure(metric)
        self._levels_d = metric.log_aspect_ratio() + 1
        self._base = metric.min_distance()

    def sample_contacts(self, seed: SeedLike = None) -> ContactGraph:
        rng = ensure_rng(seed)
        contacts: List[Tuple[NodeId, ...]] = []
        for u in range(self.metric.n):
            local = [v for v, _w in self.local_graph.neighbors(u)]
            j = int(rng.integers(0, self._levels_d))
            radius = self._base * float(2**j)
            long_range = int(self.mu.sample_from_ball(u, radius, 1, rng)[0])
            chosen = set(local)
            if long_range != u:
                chosen.add(long_range)
            contacts.append(tuple(sorted(chosen)))
        return ContactGraph(contacts=contacts)
