"""Triangulation and distance labeling (paper §3).

* :mod:`~repro.labeling.encoding` — the mantissa/exponent distance codes
  that let labels store a (1+δ)-approximate distance in
  ``O(log 1/δ) + O(log log Δ)`` bits.
* :mod:`~repro.labeling.beacons` — the common-beacon-set
  (ε,δ)-triangulation baseline of [33, 50] that Theorem 3.2 improves on.
* :mod:`~repro.labeling.triangulation` — Theorem 3.2: a
  (0,δ)-triangulation of order ``(1/δ)^O(α) log n`` via X-neighbors
  ((ε,µ)-packing representatives) and Y-neighbors (net points at the
  r_ui scale), plus the derived distance labeling scheme that matches
  Mendel & Har-Peled [44].
* :mod:`~repro.labeling.dls` — Theorem 3.4: the
  ``O_{α,δ}(log n)(log log Δ)``-bit scheme that eliminates global node
  ids with virtual neighbors, zooming sequences and translation maps.
"""

from repro.labeling.encoding import DistanceCodec, DistanceCode
from repro.labeling.beacons import BeaconTriangulation
from repro.labeling.triangulation import RingTriangulation, TriangulationDLS
from repro.labeling.dls import RingDLS
from repro.labeling.thorup_zwick import ThorupZwickOracle

__all__ = [
    "DistanceCodec",
    "DistanceCode",
    "BeaconTriangulation",
    "RingTriangulation",
    "TriangulationDLS",
    "RingDLS",
    "ThorupZwickOracle",
]
