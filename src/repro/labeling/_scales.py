"""Shared scale structure for the §3 constructions (and Theorem 4.2).

Theorems 3.2, 3.4 and 4.2/B.1 all build on the same skeleton:

* ``L_n = ceil(log2 n)`` cardinality scales ``i`` with radii
  ``r_ui = r_u(2^-i)`` (smallest ball around u holding >= n/2^i nodes);
* a nested hierarchy of 2^j-nets ``G_j`` (scaled by the metric's minimum
  distance, so ``G_0`` contains every node);
* per-scale (2^-i, µ)-packings ``F_i`` with µ the counting measure;
* **X_i-neighbors** of u: packed-ball representatives ``h_B``, ``B ∈ F_i``
  with ``d(u, h_B) + radius(B) <= r_{u,i-1}`` (the strengthened Appendix-B
  form of "B ⊂ B_{u,i-1}");
* **Y_i-neighbors** of u: net points of ``G_{j}`` with
  ``j = max(0, floor(log2(δ r_ui / 4)))`` inside ``B_u(12 r_ui / δ)``;
* the **zooming sequence** ``f_ui ∈ G_l``, ``l = floor(log2(r_ui/4))``,
  within ``r_ui/4`` of u.

Level-0 convention (documented deviation): the paper asserts the sets
``X_u0`` and ``Y_u0`` coincide across nodes; to make that literally true we
define ``r_{u,-1} = +inf`` (so X_u0 is all of F_0's representatives) and
``Y_u0 = G_{j0}`` with the *global* level ``j0 = floor(log2(δ·diam/8))``
(one level finer than the per-node value, which keeps every step of the
paper's correctness argument valid — see DESIGN.md).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple


from repro._types import NodeId
from repro.metrics.base import MetricSpace
from repro.metrics.nets import NestedNets
from repro.metrics.packing import EpsMuPacking, eps_mu_packing


class ScaleStructure:
    """Nets, packings and the X/Y/zooming vocabulary of §3."""

    def __init__(
        self,
        metric: MetricSpace,
        delta: float,
        y_ball_factor: float = 12.0,
        executor=None,
    ) -> None:
        """``y_ball_factor`` is the paper's constant 12 in the Y-ring ball
        radius ``12 r_ui / δ``; the ablation benches sweep it to show how
        much of the order is theory-constant slack at laptop n.
        ``executor`` shards the nested-net build (results unchanged)."""
        if not 0 < delta < 1:
            raise ValueError(f"delta must be in (0,1), got {delta}")
        if y_ball_factor <= 0:
            raise ValueError("y_ball_factor must be positive")
        self.metric = metric
        self.delta = delta
        self.y_ball_factor = y_ball_factor
        self.base = metric.min_distance()
        self.diameter = metric.diameter()
        self.levels_n = max(1, int(math.ceil(math.log2(max(2, metric.n)))))
        net_levels = metric.log_aspect_ratio() + 4
        self.nets = NestedNets(
            metric, levels=net_levels, base_radius=self.base, executor=executor
        )
        self.packings: List[EpsMuPacking] = [
            eps_mu_packing(metric, 2.0**-i) for i in range(self.levels_n)
        ]
        # Global level-0 Y set (see module docstring).
        self._y0_level = self.net_level(self.delta * self.diameter / 8.0)
        self._rui_cache: Dict[Tuple[NodeId, int], float] = {}
        self._x_cache: Dict[Tuple[NodeId, int], Tuple[NodeId, ...]] = {}
        self._y_cache: Dict[Tuple[NodeId, int], Tuple[NodeId, ...]] = {}

    # -- scale helpers ---------------------------------------------------

    def rui(self, u: NodeId, i: int) -> float:
        key = (u, i)
        if key not in self._rui_cache:
            self._rui_cache[key] = self.metric.rui(u, i)
        return self._rui_cache[key]

    def r_prev(self, u: NodeId, i: int) -> float:
        """``r_{u,i-1}``, with the ``i = 0`` convention of +inf (2·diam)."""
        if i == 0:
            return 2.0 * self.diameter + self.base
        return self.rui(u, i - 1)

    def net_level(self, radius: float) -> int:
        """The net level whose scale is ~radius: clamp(floor(log2(r/base)))."""
        if radius <= self.base:
            return 0
        level = int(math.floor(math.log2(radius / self.base)))
        return max(0, min(self.nets.levels - 1, level))

    def net_scale(self, level: int) -> float:
        """Radius of the level's net."""
        return self.nets.radius_of(level)

    # -- neighbor sets -----------------------------------------------------

    def x_neighbors(self, u: NodeId, i: int) -> Tuple[NodeId, ...]:
        """X_i-neighbors: reachable packed-ball representatives (Thm 3.2)."""
        key = (u, i)
        if key not in self._x_cache:
            bound = self.r_prev(u, i)
            row = self.metric.distances_from(u)
            reps = [
                ball.center
                for ball in self.packings[i]
                if float(row[ball.center]) + ball.radius <= bound
            ]
            self._x_cache[key] = tuple(sorted(set(reps)))
        return self._x_cache[key]

    def nearest_x_neighbor(self, u: NodeId, i: int) -> NodeId | None:
        """The paper's ``x_ui`` — the nearest X_i-neighbor, if any."""
        xs = self.x_neighbors(u, i)
        if not xs:
            return None
        row = self.metric.distances_from(u)
        return min(xs, key=lambda w: float(row[w]))

    def y_level(self, u: NodeId, i: int) -> int:
        """Net level of the Y_i ring: j = max(0, floor(log2(δ r_ui / 4)))."""
        if i == 0:
            return self._y0_level
        return self.net_level(self.delta * self.rui(u, i) / 4.0)

    def y_neighbors(self, u: NodeId, i: int) -> Tuple[NodeId, ...]:
        """Y_i-neighbors: ``B_u(12 r_ui / δ) ∩ G_{y_level}`` (Thm 3.2)."""
        key = (u, i)
        if key not in self._y_cache:
            level = self.y_level(u, i)
            if i == 0:
                members = tuple(int(x) for x in self.nets.net(level))
            else:
                radius = self.y_ball_factor * self.rui(u, i) / self.delta
                members = tuple(
                    int(x) for x in self.nets.members_in_ball(level, u, radius)
                )
            self._y_cache[key] = tuple(sorted(members))
        return self._y_cache[key]

    def neighbors(self, u: NodeId, i: int) -> Tuple[NodeId, ...]:
        """``N(i) = X_ui ∪ Y_ui`` (Theorem 3.4's notation)."""
        return tuple(sorted(set(self.x_neighbors(u, i)) | set(self.y_neighbors(u, i))))

    def all_neighbors(self, u: NodeId) -> Tuple[NodeId, ...]:
        """All X- and Y-neighbors of u across scales."""
        out: set[NodeId] = set()
        for i in range(self.levels_n):
            out.update(self.x_neighbors(u, i))
            out.update(self.y_neighbors(u, i))
        return tuple(sorted(out))

    # -- zooming sequence --------------------------------------------------

    def zoom_node(self, u: NodeId, i: int) -> NodeId:
        """``f_ui``: a net point of ``G_{floor(log2(r_ui/4))}`` within
        ``r_ui/4`` of u (possibly u itself)."""
        level = self.net_level(self.rui(u, i) / 4.0)
        return self.nets.nearest_member(level, u)

    def zooming_sequence(self, u: NodeId) -> Tuple[NodeId, ...]:
        """``f_u = (f_u0, ..., f_u,L_n-1)``."""
        return tuple(self.zoom_node(u, i) for i in range(self.levels_n))
