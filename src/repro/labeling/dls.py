"""Theorem 3.4 — distance labeling in ``O_{α,δ}(log n)(log log Δ)`` bits.

This is the paper's flagship labeling result: it removes the
``ceil(log n)``-bit global node ids from the Theorem 3.2 labels.  A label
stores only

* per-scale arrays of **quantized distances** to the X/Y-neighbors (no
  ids — a neighbor is referred to by its position in its scale segment);
* **translation maps** ζ_ui: knowing the position of a node f in u's
  level-i segments and the index of w in f's *virtual enumeration*,
  produce w's position in u's level-(i+1) segments;
* the **zooming sequence** f_u, where ``f_u0`` is given by its position in
  the (globally coinciding) level-0 segment and each ``f_{u,i}`` by its
  index in the virtual enumeration of ``f_{u,i-1}`` (Claim 3.5(c)
  guarantees that index exists).

*Virtual neighbors* (the set T_u) are the paper's trick for keeping those
indices short: ``T_u = X_u ∪ Z_u ∪ (∪_{v ∈ X_u} Z_v)`` where
``Z_uj = B_u(2^j) ∩ G_{max(0, floor(log2(2^j δ/64)))}``, so
``|T_u| = O_{α,δ}(log n · log Δ)`` and an index costs
``O(log log n + log log Δ)`` bits.

Decoding (two labels only, no ids): identify both zooming sequences level
by level through the translation maps of *both* labels; every identified
node is a common neighbor with known stored distances; additionally scan
the translation maps for entries keyed by an identified f — matching
virtual indices on both sides identify more common neighbors (this is how
the proof's near-optimal common neighbor w0 is found).  The estimate is
D+ = min over identified common neighbors b of (d_ub + d_vb); the paper's
analysis makes it a (1+O(δ))-approximation for every pair.

Level-0 segments coincide across nodes by the ScaleStructure convention,
so positions in them are globally meaningful — the decoder seeds both
chains from them and also harvests every level-0 member directly (this
covers the boundary case where the pair's critical scale is i = 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro._types import NodeId
from repro.bits import SizeAccount, bits_for_count
from repro.labeling._scales import ScaleStructure
from repro.labeling.encoding import DistanceCodec
from repro.metrics.base import MetricSpace

#: A position in a node's per-scale segments: (segment type, level, index).
SegmentPointer = Tuple[str, int, int]


class _DetachedScales:
    """Stand-in scale structure for labels loaded from disk.

    Decoding only ever consults ``levels_n``; anything else was
    construction scaffolding and raises if touched.
    """

    def __init__(self, levels_n: int) -> None:
        self.levels_n = levels_n

    def __getattr__(self, name: str):
        raise RuntimeError(
            f"ScaleStructure.{name} is construction-time state and is not "
            "persisted; unavailable on a loaded structure"
        )


@dataclass
class NodeLabel:
    """The Theorem 3.4 label of one node (id-free).

    ``segments[(typ, i)]`` is the tuple of quantized distances to that
    scale's neighbors, in segment order.  ``zeta[i]`` maps
    ``(pointer_at_level_i, virtual_index) -> pointer_at_level_i_plus_1``.
    """

    segments: Dict[Tuple[str, int], Tuple[float, ...]]
    zeta: Dict[int, Dict[Tuple[SegmentPointer, int], SegmentPointer]]
    zoom0: SegmentPointer
    zoom_virtual_indices: Tuple[Optional[int], ...]
    size: SizeAccount

    def distance_at(self, ptr: SegmentPointer) -> float:
        typ, level, idx = ptr
        return self.segments[(typ, level)][idx]


class RingDLS:
    """Theorem 3.4's (1+δ)-approximate distance labeling scheme."""

    def __init__(
        self,
        metric: MetricSpace,
        delta: float,
        scales: Optional[ScaleStructure] = None,
        mantissa_bits: Optional[int] = None,
    ) -> None:
        if not 0 < delta < 0.5:
            raise ValueError(f"Theorem 3.4 needs delta in (0, 1/2), got {delta}")
        self.metric = metric
        self.delta = delta
        self.scales = scales if scales is not None else ScaleStructure(metric, delta)
        if mantissa_bits is None:
            mantissa_bits = max(4, int(np.ceil(np.log2(8.0 / delta))))
        self.codec = DistanceCodec.for_metric(metric, mantissa_bits)

        self._z_levels = metric.log_aspect_ratio() + 2
        self._virtual: List[Tuple[NodeId, ...]] = [
            self._virtual_neighbors(u) for u in range(metric.n)
        ]
        self._virtual_index: List[Dict[NodeId, int]] = [
            {v: k for k, v in enumerate(t)} for t in self._virtual
        ]
        self.labels: List[NodeLabel] = [self._build_label(u) for u in range(metric.n)]
        # Lazily-built per-node decode index for the batched estimator:
        # zeta reorganized by source pointer + level-0 distance arrays.
        self._decode_index: List[Optional[tuple]] = [None] * metric.n

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _z_neighbors(self, u: NodeId, j: int) -> Tuple[NodeId, ...]:
        """``Z_uj = B_u(2^j) ∩ G_l``, ``l = max(0, floor(log2(2^j δ/64)))``.

        Radii are scaled by the metric's minimum distance (the paper
        normalizes the minimum distance to 1).
        """
        scales = self.scales
        radius = scales.base * float(2**j)
        level = scales.net_level(radius * self.delta / 64.0)
        members = scales.nets.members_in_ball(level, u, radius)
        return tuple(int(x) for x in members)

    def _virtual_neighbors(self, u: NodeId) -> Tuple[NodeId, ...]:
        """``T_u = X_u ∪ Z_u ∪ (∪_{v ∈ X_u} Z_v)`` as a sorted tuple."""
        scales = self.scales
        x_all: set[NodeId] = set()
        for i in range(scales.levels_n):
            x_all.update(scales.x_neighbors(u, i))
        out: set[NodeId] = set(x_all)
        for v in [u, *x_all]:
            for j in range(self._z_levels + 1):
                out.update(self._z_neighbors(v, j))
        return tuple(sorted(out))

    def _segment_members(self, u: NodeId, typ: str, i: int) -> Tuple[NodeId, ...]:
        if typ == "X":
            return self.scales.x_neighbors(u, i)
        return self.scales.y_neighbors(u, i)

    def _pointers_of(self, u: NodeId, node: NodeId, i: int) -> List[SegmentPointer]:
        """All segment pointers of ``node`` among u's level-i segments."""
        out: List[SegmentPointer] = []
        for typ in ("X", "Y"):
            members = self._segment_members(u, typ, i)
            # Segments are sorted tuples; binary search for the position.
            idx = int(np.searchsorted(members, node))
            if idx < len(members) and members[idx] == node:
                out.append((typ, i, idx))
        return out

    def _build_label(self, u: NodeId) -> NodeLabel:
        scales = self.scales
        row = np.asarray(self.metric.distances_from(u), dtype=float)
        size = SizeAccount()

        segments: Dict[Tuple[str, int], Tuple[float, ...]] = {}
        for i in range(scales.levels_n):
            for typ in ("X", "Y"):
                members = self._segment_members(u, typ, i)
                if members:
                    # One vectorized quantization per segment instead of a
                    # scalar codec call per member.
                    quantized = self.codec.roundtrip_many(
                        row[np.asarray(members, dtype=np.int64)]
                    )
                    segments[(typ, i)] = tuple(float(x) for x in quantized)
                else:
                    segments[(typ, i)] = ()
                size.add(
                    "neighbor_distances", len(members) * self.codec.bits_per_distance
                )

        # Per-level pointer maps (node -> its segment pointers at that
        # level); avoids a binary search per translation entry.
        pointer_maps: List[Dict[NodeId, List[SegmentPointer]]] = []
        for i in range(scales.levels_n):
            level_map: Dict[NodeId, List[SegmentPointer]] = {}
            for typ in ("X", "Y"):
                for idx, member in enumerate(self._segment_members(u, typ, i)):
                    level_map.setdefault(member, []).append((typ, i, idx))
            pointer_maps.append(level_map)

        zeta: Dict[int, Dict[Tuple[SegmentPointer, int], SegmentPointer]] = {}
        for i in range(scales.levels_n - 1):
            table: Dict[Tuple[SegmentPointer, int], SegmentPointer] = {}
            next_map = pointer_maps[i + 1]
            ptr_bits = self._pointer_bits(u, i) + self._pointer_bits(u, i + 1)
            for v, v_ptrs in pointer_maps[i].items():
                v_virtual = self._virtual_index[v]
                psi_bits = bits_for_count(len(self._virtual[v]))
                for w, w_ptrs in next_map.items():
                    psi = v_virtual.get(w)
                    if psi is None:
                        continue
                    for w_ptr in w_ptrs:
                        for v_ptr in v_ptrs:
                            table[(v_ptr, psi)] = w_ptr
                            size.add("translation_triples", ptr_bits + psi_bits)
            zeta[i] = table

        # Zooming sequence encoding.
        zoom = scales.zooming_sequence(u)
        y0_members = self._segment_members(u, "Y", 0)
        idx0 = int(np.searchsorted(y0_members, zoom[0]))
        if idx0 >= len(y0_members) or y0_members[idx0] != zoom[0]:
            raise RuntimeError(
                f"zooming anchor f_{u},0 not in the level-0 Y segment "
                "(ScaleStructure invariant violated)"
            )
        zoom0: SegmentPointer = ("Y", 0, idx0)
        size.add("zoom_anchor", bits_for_count(len(y0_members)))

        virtual_indices: List[Optional[int]] = [None]
        for i in range(1, scales.levels_n):
            prev = zoom[i - 1]
            psi = self._virtual_index[prev].get(zoom[i])
            # Claim 3.5(c): f_ui is a virtual neighbor of f_{u,i-1}.
            if psi is None:
                raise RuntimeError(
                    f"Claim 3.5(c) violated: f_({u},{i})={zoom[i]} is not a "
                    f"virtual neighbor of f_({u},{i-1})={prev}"
                )
            virtual_indices.append(psi)
            size.add("zoom_virtual_indices", bits_for_count(len(self._virtual[prev])))

        return NodeLabel(
            segments=segments,
            zeta=zeta,
            zoom0=zoom0,
            zoom_virtual_indices=tuple(virtual_indices),
            size=size,
        )

    def _pointer_bits(self, u: NodeId, i: int) -> int:
        """Bits for a level-i segment pointer: type flag + index."""
        longest = max(
            len(self._segment_members(u, "X", i)),
            len(self._segment_members(u, "Y", i)),
        )
        return 1 + bits_for_count(longest)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    _TYP_CODE = {"X": 0, "Y": 1}
    _TYP_NAME = ("X", "Y")

    def to_arrays(self) -> tuple:
        """(meta, arrays) inventory for the on-disk container.

        Labels flatten into CSR blocks: segment distances node-major by
        (level, type); translation triples as 5-column int rows
        ``[v_typ, v_idx, psi, w_typ, w_idx]`` (levels are implied — a
        level-i entry always maps a level-i pointer to a level-(i+1)
        one); zooming sequences as an anchor index plus a ψ matrix with
        -1 for "none".  Per-label :class:`SizeAccount` components go in
        a dense (n, categories) matrix so accounting survives reload.
        """
        n = self.metric.n
        levels_n = self.scales.levels_n
        seg_indptr = np.zeros(n * levels_n * 2 + 1, dtype=np.int64)
        seg_chunks: List[np.ndarray] = []
        zeta_indptr = np.zeros(n * max(0, levels_n - 1) + 1, dtype=np.int64)
        zeta_rows: List[List[int]] = []
        zoom0_idx = np.zeros(n, dtype=np.int64)
        zoom_psi = np.full((n, levels_n), -1, dtype=np.int64)
        categories = sorted(
            {cat for label in self.labels for cat in label.size.as_dict()}
        )
        cat_index = {cat: j for j, cat in enumerate(categories)}
        size_bits = np.zeros((n, len(categories)), dtype=np.int64)

        cursor = 0
        for u, label in enumerate(self.labels):
            for i in range(levels_n):
                for typ in ("X", "Y"):
                    seg = label.segments.get((typ, i), ())
                    seg_chunks.append(np.asarray(seg, dtype=np.float64))
                    cursor += 1
                    seg_indptr[cursor] = seg_indptr[cursor - 1] + len(seg)
            for i in range(levels_n - 1):
                slot = u * (levels_n - 1) + i
                table = label.zeta.get(i, {})
                for ((v_typ, _v_lvl, v_idx), psi), (
                    w_typ,
                    _w_lvl,
                    w_idx,
                ) in table.items():
                    zeta_rows.append(
                        [
                            self._TYP_CODE[v_typ],
                            v_idx,
                            psi,
                            self._TYP_CODE[w_typ],
                            w_idx,
                        ]
                    )
                zeta_indptr[slot + 1] = zeta_indptr[slot] + len(table)
            zoom0_idx[u] = label.zoom0[2]
            for i, psi in enumerate(label.zoom_virtual_indices):
                if psi is not None:
                    zoom_psi[u, i] = psi
            for cat, bits in label.size.as_dict().items():
                size_bits[u, cat_index[cat]] = bits

        meta = {
            "n": int(n),
            "delta": self.delta,
            "levels_n": int(levels_n),
            "size_categories": categories,
            "codec": {
                "min_distance": self.codec.min_distance,
                "max_distance": self.codec.max_distance,
                "mantissa_bits": self.codec.mantissa_bits,
            },
        }
        arrays = {
            "seg_indptr": seg_indptr,
            "seg_dist": np.concatenate(seg_chunks)
            if seg_chunks
            else np.empty(0, dtype=np.float64),
            "zeta_indptr": zeta_indptr,
            "zeta_data": np.asarray(zeta_rows, dtype=np.int64).reshape(
                len(zeta_rows), 5
            ),
            "zoom0_idx": zoom0_idx,
            "zoom_psi": zoom_psi,
            "size_bits": size_bits,
        }
        return meta, arrays

    @classmethod
    def from_arrays(cls, metric: MetricSpace, meta: dict, arrays: dict) -> "RingDLS":
        """Rehydrate from :meth:`to_arrays`.

        The result is *detached*: labels decode bit-for-bit (segments,
        translation maps, zooming sequences and size accounts are fully
        restored), while the construction-time scale structure and
        virtual-neighbor enumerations are not — only ``levels_n``
        survives, which is all the decoders consult.
        """
        codec_meta = meta["codec"]
        n = int(meta["n"])
        levels_n = int(meta["levels_n"])
        categories = list(meta["size_categories"])

        dls = cls.__new__(cls)
        dls.metric = metric
        dls.delta = float(meta["delta"])
        dls.scales = _DetachedScales(levels_n)
        dls.codec = DistanceCodec(
            float(codec_meta["min_distance"]),
            float(codec_meta["max_distance"]),
            int(codec_meta["mantissa_bits"]),
        )
        dls._z_levels = None
        dls._virtual = None
        dls._virtual_index = None

        seg_indptr = np.asarray(arrays["seg_indptr"])
        seg_dist = np.asarray(arrays["seg_dist"])
        zeta_indptr = np.asarray(arrays["zeta_indptr"])
        zeta_data = np.asarray(arrays["zeta_data"])
        zoom0_idx = np.asarray(arrays["zoom0_idx"])
        zoom_psi = np.asarray(arrays["zoom_psi"])
        size_bits = np.asarray(arrays["size_bits"])

        labels: List[NodeLabel] = []
        cursor = 0
        for u in range(n):
            segments: Dict[Tuple[str, int], Tuple[float, ...]] = {}
            for i in range(levels_n):
                for typ in ("X", "Y"):
                    lo, hi = seg_indptr[cursor], seg_indptr[cursor + 1]
                    segments[(typ, i)] = tuple(float(x) for x in seg_dist[lo:hi])
                    cursor += 1
            zeta: Dict[int, Dict[Tuple[SegmentPointer, int], SegmentPointer]] = {}
            for i in range(levels_n - 1):
                slot = u * (levels_n - 1) + i
                lo, hi = int(zeta_indptr[slot]), int(zeta_indptr[slot + 1])
                table: Dict[Tuple[SegmentPointer, int], SegmentPointer] = {}
                for row in zeta_data[lo:hi]:
                    v_ptr = (cls._TYP_NAME[int(row[0])], i, int(row[1]))
                    w_ptr = (cls._TYP_NAME[int(row[3])], i + 1, int(row[4]))
                    table[(v_ptr, int(row[2]))] = w_ptr
                zeta[i] = table
            size = SizeAccount()
            for j, cat in enumerate(categories):
                bits = int(size_bits[u, j])
                if bits:
                    size.add(cat, bits)
            labels.append(
                NodeLabel(
                    segments=segments,
                    zeta=zeta,
                    zoom0=("Y", 0, int(zoom0_idx[u])),
                    zoom_virtual_indices=tuple(
                        None if psi < 0 else int(psi) for psi in zoom_psi[u]
                    ),
                    size=size,
                )
            )
        dls.labels = labels
        dls._decode_index = [None] * n
        return dls

    # ------------------------------------------------------------------
    # Decoding (labels only)
    # ------------------------------------------------------------------

    @staticmethod
    def _chain(
        label_a: NodeLabel, label_b: NodeLabel
    ) -> List[Tuple[SegmentPointer, SegmentPointer]]:
        """Identify label_a's zooming sequence inside both labels.

        Returns (pointer in a, pointer in b) pairs; stops at the first
        level either translation map returns null.
        """
        pairs: List[Tuple[SegmentPointer, SegmentPointer]] = []
        pa = label_a.zoom0
        pb = label_a.zoom0  # level-0 segments coincide across nodes
        typ, lvl, idx = pb
        if idx >= len(label_b.segments.get((typ, lvl), ())):
            return pairs
        pairs.append((pa, pb))
        for i in range(1, len(label_a.zoom_virtual_indices)):
            psi = label_a.zoom_virtual_indices[i]
            if psi is None:
                break
            table_a = label_a.zeta.get(i - 1, {})
            table_b = label_b.zeta.get(i - 1, {})
            next_a = table_a.get((pa, psi))
            next_b = table_b.get((pb, psi))
            if next_a is None or next_b is None:
                break
            pa, pb = next_a, next_b
            pairs.append((pa, pb))
        return pairs

    @staticmethod
    def _scan_common(
        label_u: NodeLabel,
        label_v: NodeLabel,
        f_u: SegmentPointer,
        f_v: SegmentPointer,
    ) -> List[Tuple[SegmentPointer, SegmentPointer]]:
        """Common neighbors found via translation entries keyed by f.

        Both labels hold entries ``((f, psi) -> w)`` exactly when w is a
        virtual neighbor of f that is also their own neighbor; a psi
        present on both sides identifies a *common* neighbor (psi indices
        refer to f's single, shared virtual enumeration).
        """
        level = f_u[1]
        table_u = label_u.zeta.get(level, {})
        table_v = label_v.zeta.get(level, {})
        by_psi_u = {
            psi: w_ptr for (ptr, psi), w_ptr in table_u.items() if ptr == f_u
        }
        out: List[Tuple[SegmentPointer, SegmentPointer]] = []
        for (ptr, psi), w_ptr_v in table_v.items():
            if ptr == f_v:
                w_ptr_u = by_psi_u.get(psi)
                if w_ptr_u is not None:
                    out.append((w_ptr_u, w_ptr_v))
        return out

    def estimate_from_labels(self, label_u: NodeLabel, label_v: NodeLabel) -> float:
        """D+ from two labels alone."""
        common: List[Tuple[SegmentPointer, SegmentPointer]] = []

        # Level-0 segments coincide globally: every member is common.
        for typ in ("X", "Y"):
            seg_u = label_u.segments.get((typ, 0), ())
            seg_v = label_v.segments.get((typ, 0), ())
            for idx in range(min(len(seg_u), len(seg_v))):
                common.append(((typ, 0, idx), (typ, 0, idx)))

        # Both zooming chains, identified in both labels.
        chain_u = self._chain(label_u, label_v)
        chain_v = [(pu, pv) for (pv, pu) in self._chain(label_v, label_u)]
        common.extend(chain_u)
        common.extend(chain_v)

        # Harvest extra common neighbors through each identified f.
        for f_u, f_v in list(chain_u) + list(chain_v):
            common.extend(self._scan_common(label_u, label_v, f_u, f_v))

        best = float("inf")
        for ptr_u, ptr_v in common:
            best = min(best, label_u.distance_at(ptr_u) + label_v.distance_at(ptr_v))
        return best

    def estimate(self, u: NodeId, v: NodeId) -> float:
        """Distance estimate for a node pair via their labels."""
        if u == v:
            return 0.0
        return self.estimate_from_labels(self.labels[u], self.labels[v])

    # -- batched estimation --------------------------------------------

    def _index_of(self, u: NodeId) -> tuple:
        """u's decode index: per-level ``ptr -> {psi: (w_ptr, d_w)}``
        maps (ζ keyed by source pointer, so the common-neighbor harvest
        intersects two small dicts instead of scanning whole tables) plus
        the level-0 segment distances as arrays."""
        cached = self._decode_index[u]
        if cached is None:
            label = self.labels[u]
            by_ptr: List[Dict[SegmentPointer, Dict[int, tuple]]] = []
            for i in range(self.scales.levels_n - 1):
                level_map: Dict[SegmentPointer, Dict[int, tuple]] = {}
                for (ptr, psi), w_ptr in label.zeta.get(i, {}).items():
                    level_map.setdefault(ptr, {})[psi] = (
                        w_ptr,
                        label.distance_at(w_ptr),
                    )
                by_ptr.append(level_map)
            seg0 = {
                typ: np.asarray(label.segments.get((typ, 0), ()), dtype=float)
                for typ in ("X", "Y")
            }
            cached = (by_ptr, seg0)
            self._decode_index[u] = cached
        return cached

    def _chain_indexed(self, label_a: NodeLabel, by_ptr_a, label_b: NodeLabel,
                       by_ptr_b) -> List[Tuple[SegmentPointer, SegmentPointer]]:
        """:meth:`_chain` over the decode indexes (same pairs, O(1) steps)."""
        pairs: List[Tuple[SegmentPointer, SegmentPointer]] = []
        pa = pb = label_a.zoom0  # level-0 segments coincide across nodes
        typ, lvl, idx = pb
        if idx >= len(label_b.segments.get((typ, lvl), ())):
            return pairs
        pairs.append((pa, pb))
        for i in range(1, len(label_a.zoom_virtual_indices)):
            psi = label_a.zoom_virtual_indices[i]
            if psi is None or i - 1 >= len(by_ptr_a):
                break
            entry_a = by_ptr_a[i - 1].get(pa, {}).get(psi)
            entry_b = by_ptr_b[i - 1].get(pb, {}).get(psi)
            if entry_a is None or entry_b is None:
                break
            pa, pb = entry_a[0], entry_b[0]
            pairs.append((pa, pb))
        return pairs

    def _estimate_indexed(self, u: NodeId, v: NodeId) -> float:
        """:meth:`estimate` over the decode indexes — the identical
        candidate set (level-0 members, both chains, the ζ harvest), so
        the minimum matches the per-pair decoder bit for bit."""
        label_u, label_v = self.labels[u], self.labels[v]
        by_ptr_u, seg0_u = self._index_of(u)
        by_ptr_v, seg0_v = self._index_of(v)
        best = float("inf")
        for typ in ("X", "Y"):
            a, b = seg0_u[typ], seg0_v[typ]
            m = min(a.size, b.size)
            if m:
                best = min(best, float((a[:m] + b[:m]).min()))
        chain_u = self._chain_indexed(label_u, by_ptr_u, label_v, by_ptr_v)
        chain_v = [
            (pu, pv)
            for (pv, pu) in self._chain_indexed(label_v, by_ptr_v, label_u, by_ptr_u)
        ]
        for f_u, f_v in chain_u + chain_v:
            best = min(best, label_u.distance_at(f_u) + label_v.distance_at(f_v))
            level = f_u[1]
            if level >= len(by_ptr_u):
                continue
            map_u = by_ptr_u[level].get(f_u, {})
            map_v = by_ptr_v[level].get(f_v, {})
            if not map_u or not map_v:
                continue
            if len(map_v) < len(map_u):
                map_u, map_v = map_v, map_u
            for psi, (_w_ptr, d_small) in map_u.items():
                other = map_v.get(psi)
                if other is not None:
                    best = min(best, d_small + other[1])
        return best

    def estimate_many(self, us, vs) -> np.ndarray:
        """Batched estimates via the per-node decode indexes.

        The ζ harvest dominates per-pair decoding; reorganizing each
        label's translation tables by source pointer (once, lazily) turns
        it from a full-table scan into a small-dict intersection, which
        is what makes :func:`repro.engine.bulk_estimates` fast for the
        paper's own labeling scheme.
        """
        us = np.asarray(us, dtype=np.intp).ravel()
        vs = np.asarray(vs, dtype=np.intp).ravel()
        out = np.empty(us.shape[0], dtype=float)
        for i in range(us.shape[0]):
            u, v = int(us[i]), int(vs[i])
            out[i] = 0.0 if u == v else self._estimate_indexed(u, v)
        return out

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def label_bits(self, u: NodeId) -> SizeAccount:
        return self.labels[u].size

    def max_label_bits(self) -> int:
        return max(label.size.total_bits for label in self.labels)

    def mean_label_bits(self) -> float:
        return float(np.mean([label.size.total_bits for label in self.labels]))

    def max_virtual_neighbors(self) -> int:
        """max_u |T_u| — the paper bounds it by O_{α,δ}(log n · log Δ)."""
        if self._virtual is None:
            raise RuntimeError(
                "virtual-neighbor enumerations are construction-time state "
                "and are not persisted; unavailable on a loaded structure"
            )
        return max(len(t) for t in self._virtual)

    # ------------------------------------------------------------------
    # Simulation/test helpers (not part of the decoding protocol)
    # ------------------------------------------------------------------

    def _segment_node_for_test(self, u: NodeId, ptr: SegmentPointer) -> NodeId:
        """Resolve a segment pointer of u back to the physical node.

        Only tests and the Theorem 4.2 simulator use this — the decoding
        protocol itself never converts pointers to global ids.
        """
        typ, level, idx = ptr
        return self._segment_members(u, typ, level)[idx]
