"""Common-beacon-set (ε,δ)-triangulation — the [33, 50] baseline.

"Triangulation of order k is a labeling of the nodes such that a label of
a given node u consists of distances from u to each node in a beacon set
S_u of at most k other nodes" (§1).  The earlier distributed constructions
[33, 50] give *all nodes the same beacon set*, which yields an
(ε,δ)-triangulation: the quality guarantee fails for an ε-fraction of node
pairs.  Theorem 3.2's whole point is removing that ε; this module exists
as the baseline the benchmarks compare against.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro._types import NodeId
from repro.bits import SizeAccount, bits_for_count
from repro.labeling.encoding import DistanceCodec
from repro.metrics.base import MetricSpace
from repro.rng import SeedLike, ensure_rng


class BeaconTriangulation:
    """Triangulation where every node's beacon set is the same k nodes.

    Estimates for a pair (u, v):

    * upper bound  D+ = min_b (d_ub + d_vb)
    * lower bound  D- = max_b |d_ub - d_vb|

    Both are exact consequences of the triangle inequality; D+/D- <= 1+δ
    holds for "most" pairs only, and :meth:`epsilon_for_delta` measures the
    failing fraction ε empirically.
    """

    def __init__(
        self,
        metric: MetricSpace,
        k: int,
        beacons: Optional[Sequence[NodeId]] = None,
        seed: SeedLike = None,
        mantissa_bits: int = 12,
    ) -> None:
        if k < 1:
            raise ValueError("need at least one beacon")
        self.metric = metric
        if beacons is None:
            rng = ensure_rng(seed)
            beacons = rng.choice(metric.n, size=min(k, metric.n), replace=False)
        self.beacons = np.asarray(sorted(int(b) for b in beacons), dtype=int)
        self.codec = DistanceCodec.for_metric(metric, mantissa_bits)
        # labels[u, j] = stored (quantized) distance from u to beacon j —
        # one batched distance block, quantized in one pass.  Computed in
        # the (k, n) orientation and transposed: distances are symmetric,
        # and row-on-demand backends (the lazy graph metric) then pay k
        # row computations instead of n.
        self._labels = self.codec.roundtrip_many(
            metric.distances_between(self.beacons, np.arange(metric.n)).T
        )

    @property
    def order(self) -> int:
        """The triangulation order (beacons per node)."""
        return len(self.beacons)

    def to_arrays(self) -> Tuple[dict, dict]:
        """(meta, arrays) inventory for the on-disk container."""
        meta = {
            "n": int(self.metric.n),
            "codec": {
                "min_distance": self.codec.min_distance,
                "max_distance": self.codec.max_distance,
                "mantissa_bits": self.codec.mantissa_bits,
            },
        }
        arrays = {
            "beacons": self.beacons,
            "labels": self._labels,
        }
        return meta, arrays

    @classmethod
    def from_arrays(
        cls, metric: MetricSpace, meta: dict, arrays: dict
    ) -> "BeaconTriangulation":
        """Rehydrate from :meth:`to_arrays` — the quantized (n, k) label
        matrix is used as-is, no distance recomputation."""
        codec_meta = meta["codec"]
        tri = cls.__new__(cls)
        tri.metric = metric
        tri.beacons = np.asarray(arrays["beacons"])
        tri.codec = DistanceCodec(
            float(codec_meta["min_distance"]),
            float(codec_meta["max_distance"]),
            int(codec_meta["mantissa_bits"]),
        )
        tri._labels = np.asarray(arrays["labels"])
        return tri

    def label(self, u: NodeId) -> np.ndarray:
        """Stored beacon distances of u."""
        return self._labels[u]

    def label_bits(self, u: NodeId) -> SizeAccount:
        account = SizeAccount()
        account.add("beacon_ids", self.order * bits_for_count(self.metric.n))
        account.add("beacon_distances", self.order * self.codec.bits_per_distance)
        return account

    def bounds(self, u: NodeId, v: NodeId) -> Tuple[float, float]:
        """(D-, D+) for the pair, from labels only."""
        lu, lv = self._labels[u], self._labels[v]
        upper = float(np.min(lu + lv))
        lower = float(np.max(np.abs(lu - lv)))
        return lower, upper

    def estimate(self, u: NodeId, v: NodeId) -> float:
        """The distance estimate (the upper bound D+, as in the paper)."""
        if u == v:
            return 0.0
        return self.bounds(u, v)[1]

    def bounds_many(self, us, vs) -> Tuple[np.ndarray, np.ndarray]:
        """Batched (D-, D+) for aligned source/target index arrays."""
        us = np.asarray(us, dtype=np.intp)
        vs = np.asarray(vs, dtype=np.intp)
        lu = self._labels[us]
        lv = self._labels[vs]
        upper = (lu + lv).min(axis=1)
        lower = np.abs(lu - lv).max(axis=1)
        return lower, upper

    def estimate_many(self, us, vs) -> np.ndarray:
        """Batched D+ estimates (0 on the diagonal), one matrix pass."""
        us = np.asarray(us, dtype=np.intp)
        vs = np.asarray(vs, dtype=np.intp)
        _, upper = self.bounds_many(us, vs)
        return np.where(us == vs, 0.0, upper)

    def _iter_pair_bounds(self):
        """Yield (D-, D+) blocks covering every unordered pair u < v.

        One source node per block (vectorized over its n-u-1 partners),
        so peak memory stays O(n·k) even at n = 10⁴⁺.
        """
        n = self.metric.n
        for u in range(n - 1):
            lu = self._labels[u]
            lv = self._labels[u + 1 :]
            yield np.abs(lv - lu).max(axis=1), (lv + lu).min(axis=1)

    def epsilon_for_delta(self, delta: float) -> float:
        """Fraction of pairs with D+/D- > 1 + delta (the ε in (ε,δ))."""
        failing = 0
        total = 0
        for lower, upper in self._iter_pair_bounds():
            total += lower.size
            failing += int(np.count_nonzero((lower <= 0) | (upper > (1 + delta) * lower)))
        return failing / max(1, total)

    def worst_ratio(self) -> float:
        """Max over pairs of D+/D- (inf when some D- is 0)."""
        worst = 1.0
        for lower, upper in self._iter_pair_bounds():
            if np.any(lower <= 0):
                return float("inf")
            worst = max(worst, float((upper / lower).max()))
        return worst
