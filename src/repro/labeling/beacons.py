"""Common-beacon-set (ε,δ)-triangulation — the [33, 50] baseline.

"Triangulation of order k is a labeling of the nodes such that a label of
a given node u consists of distances from u to each node in a beacon set
S_u of at most k other nodes" (§1).  The earlier distributed constructions
[33, 50] give *all nodes the same beacon set*, which yields an
(ε,δ)-triangulation: the quality guarantee fails for an ε-fraction of node
pairs.  Theorem 3.2's whole point is removing that ε; this module exists
as the baseline the benchmarks compare against.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro._types import NodeId
from repro.bits import SizeAccount, bits_for_count
from repro.labeling.encoding import DistanceCodec
from repro.metrics.base import MetricSpace
from repro.rng import SeedLike, ensure_rng


class BeaconTriangulation:
    """Triangulation where every node's beacon set is the same k nodes.

    Estimates for a pair (u, v):

    * upper bound  D+ = min_b (d_ub + d_vb)
    * lower bound  D- = max_b |d_ub - d_vb|

    Both are exact consequences of the triangle inequality; D+/D- <= 1+δ
    holds for "most" pairs only, and :meth:`epsilon_for_delta` measures the
    failing fraction ε empirically.
    """

    def __init__(
        self,
        metric: MetricSpace,
        k: int,
        beacons: Optional[Sequence[NodeId]] = None,
        seed: SeedLike = None,
        mantissa_bits: int = 12,
    ) -> None:
        if k < 1:
            raise ValueError("need at least one beacon")
        self.metric = metric
        if beacons is None:
            rng = ensure_rng(seed)
            beacons = rng.choice(metric.n, size=min(k, metric.n), replace=False)
        self.beacons = np.asarray(sorted(int(b) for b in beacons), dtype=int)
        self.codec = DistanceCodec.for_metric(metric, mantissa_bits)
        # labels[u, j] = stored (quantized) distance from u to beacon j.
        self._labels = np.zeros((metric.n, len(self.beacons)))
        for u in range(metric.n):
            row = metric.distances_from(u)
            for j, b in enumerate(self.beacons):
                self._labels[u, j] = self.codec.roundtrip(float(row[b]))

    @property
    def order(self) -> int:
        """The triangulation order (beacons per node)."""
        return len(self.beacons)

    def label(self, u: NodeId) -> np.ndarray:
        """Stored beacon distances of u."""
        return self._labels[u]

    def label_bits(self, u: NodeId) -> SizeAccount:
        account = SizeAccount()
        account.add("beacon_ids", self.order * bits_for_count(self.metric.n))
        account.add("beacon_distances", self.order * self.codec.bits_per_distance)
        return account

    def bounds(self, u: NodeId, v: NodeId) -> Tuple[float, float]:
        """(D-, D+) for the pair, from labels only."""
        lu, lv = self._labels[u], self._labels[v]
        upper = float(np.min(lu + lv))
        lower = float(np.max(np.abs(lu - lv)))
        return lower, upper

    def estimate(self, u: NodeId, v: NodeId) -> float:
        """The distance estimate (the upper bound D+, as in the paper)."""
        if u == v:
            return 0.0
        return self.bounds(u, v)[1]

    def epsilon_for_delta(self, delta: float) -> float:
        """Fraction of pairs with D+/D- > 1 + delta (the ε in (ε,δ))."""
        n = self.metric.n
        failing = 0
        total = 0
        for u in range(n):
            for v in range(u + 1, n):
                lower, upper = self.bounds(u, v)
                total += 1
                if lower <= 0 or upper / lower > 1 + delta:
                    failing += 1
        return failing / max(1, total)

    def worst_ratio(self) -> float:
        """Max over pairs of D+/D- (inf when some D- is 0)."""
        worst = 1.0
        for u, v in self.metric.pairs():
            lower, upper = self.bounds(u, v)
            if lower <= 0:
                return float("inf")
            worst = max(worst, upper / lower)
        return worst
