"""Common-beacon-set (ε,δ)-triangulation — the [33, 50] baseline.

"Triangulation of order k is a labeling of the nodes such that a label of
a given node u consists of distances from u to each node in a beacon set
S_u of at most k other nodes" (§1).  The earlier distributed constructions
[33, 50] give *all nodes the same beacon set*, which yields an
(ε,δ)-triangulation: the quality guarantee fails for an ε-fraction of node
pairs.  Theorem 3.2's whole point is removing that ε; this module exists
as the baseline the benchmarks compare against.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro._types import NodeId
from repro.bits import SizeAccount, bits_for_count
from repro.core.patch import InactiveNode, Membership, PatchStats
from repro.labeling.encoding import DistanceCodec
from repro.metrics.base import MetricSpace
from repro.rng import SeedLike, ensure_rng


class BeaconTriangulation:
    """Triangulation where every node's beacon set is the same k nodes.

    Estimates for a pair (u, v):

    * upper bound  D+ = min_b (d_ub + d_vb)
    * lower bound  D- = max_b |d_ub - d_vb|

    Both are exact consequences of the triangle inequality; D+/D- <= 1+δ
    holds for "most" pairs only, and :meth:`epsilon_for_delta` measures the
    failing fraction ε empirically.
    """

    def __init__(
        self,
        metric: MetricSpace,
        k: int,
        beacons: Optional[Sequence[NodeId]] = None,
        seed: SeedLike = None,
        mantissa_bits: int = 12,
    ) -> None:
        if k < 1:
            raise ValueError("need at least one beacon")
        self.metric = metric
        if beacons is None:
            rng = ensure_rng(seed)
            beacons = rng.choice(metric.n, size=min(k, metric.n), replace=False)
        self.beacons = np.asarray(sorted(int(b) for b in beacons), dtype=int)
        self.codec = DistanceCodec.for_metric(metric, mantissa_bits)
        # labels[u, j] = stored (quantized) distance from u to beacon j —
        # one batched distance block, quantized in one pass.  Computed in
        # the (k, n) orientation and transposed: distances are symmetric,
        # and row-on-demand backends (the lazy graph metric) then pay k
        # row computations instead of n.
        self._labels = self.codec.roundtrip_many(
            metric.distances_between(self.beacons, np.arange(metric.n)).T
        )
        self._init_mutation_state()

    def _init_mutation_state(self) -> None:
        # Pristine copies: churn masks beacon *columns*, never recomputes
        # distances.  ``self.beacons``/``self._labels`` always hold the
        # state as of the last merge (what clean reads serve).
        self._beacons0 = self.beacons
        self._labels0 = self._labels
        self._membership: Optional[Membership] = None
        self._view = None
        self.revision = 0
        self.ivl_checks = 0
        self.ivl_violations = 0
        self.merge_threshold = 0.5
        self.staleness_limit = 128
        self._auto_merges = 0

    # -- incremental updates -------------------------------------------

    def _ensure_membership(self) -> Membership:
        if self._membership is None:
            self._membership = Membership(self.metric.n)
        return self._membership

    def _pending_beacon_changes(self) -> int:
        m = self._membership
        if m is None or m.is_clean():
            return 0
        return int(
            np.count_nonzero(m.active[self._beacons0] != m.snapshot[self._beacons0])
        )

    def _beacon_dirty(self) -> bool:
        return self._pending_beacon_changes() > 0

    def _live_view(self):
        """(live beacon ids, live (n, k') label view) under pending churn,
        cached per membership update."""
        m = self._membership
        if self._view is None or self._view[0] != m.updates:
            mask = m.active[self._beacons0]
            self._view = (m.updates, self._beacons0[mask], self._labels0[:, mask])
        return self._view[1], self._view[2]

    def apply_update(self, joins=(), leaves=()) -> bool:
        """Apply one join/leave batch.  Label distances stay pristine;
        beacons owned by departed nodes are masked out of every read.
        Returns whether this update triggered an automatic merge."""
        m = self._ensure_membership()
        m.apply(joins, leaves)
        self.revision += 1
        self._view = None
        changed = self._pending_beacon_changes()
        if not m.is_clean() and (
            changed / max(1, self._beacons0.size) >= self.merge_threshold
            or m.updates_since_merge >= self.staleness_limit
        ):
            self.compact()
            self._auto_merges += 1
            return True
        return False

    def compact(self) -> PatchStats:
        """Fold pending churn into served ``beacons``/``labels`` arrays."""
        m = self._ensure_membership()
        mask = m.active[self._beacons0]
        self.beacons = self._beacons0[mask]
        self._labels = self._labels0[:, mask]
        m.commit()
        self._view = None
        return self.pending_patch_stats()

    def pending_patch_stats(self) -> PatchStats:
        m = self._membership
        n = self.metric.n
        if m is None:
            return PatchStats(
                universe=n, active_nodes=n, rows=int(self._beacons0.size),
                dirty_rows=0, pending_joins=0, pending_leaves=0, updates=0,
                updates_since_merge=0, merges=0, auto_merges=0,
            )
        return PatchStats(
            universe=n,
            active_nodes=m.active_count,
            rows=int(self._beacons0.size),
            dirty_rows=self._pending_beacon_changes(),
            pending_joins=m.pending_joins(),
            pending_leaves=m.pending_leaves(),
            updates=m.updates,
            updates_since_merge=m.updates_since_merge,
            merges=m.merges,
            auto_merges=self._auto_merges,
        )

    def _check_active(self, u: NodeId, v: NodeId) -> None:
        m = self._membership
        if m is None:
            return
        if not m.active[u] or not m.active[v]:
            missing = [x for x in (u, v) if not m.active[x]]
            raise InactiveNode(f"node(s) {missing} are not active")

    @property
    def order(self) -> int:
        """The triangulation order (beacons per node)."""
        return len(self.beacons)

    def to_arrays(self) -> Tuple[dict, dict]:
        """(meta, arrays) inventory for the on-disk container."""
        meta = {
            "n": int(self.metric.n),
            "codec": {
                "min_distance": self.codec.min_distance,
                "max_distance": self.codec.max_distance,
                "mantissa_bits": self.codec.mantissa_bits,
            },
        }
        arrays = {
            "beacons": self.beacons,
            "labels": self._labels,
        }
        return meta, arrays

    @classmethod
    def from_arrays(
        cls, metric: MetricSpace, meta: dict, arrays: dict
    ) -> "BeaconTriangulation":
        """Rehydrate from :meth:`to_arrays` — the quantized (n, k) label
        matrix is used as-is, no distance recomputation."""
        codec_meta = meta["codec"]
        tri = cls.__new__(cls)
        tri.metric = metric
        tri.beacons = np.asarray(arrays["beacons"])
        tri.codec = DistanceCodec(
            float(codec_meta["min_distance"]),
            float(codec_meta["max_distance"]),
            int(codec_meta["mantissa_bits"]),
        )
        tri._labels = np.asarray(arrays["labels"])
        tri._init_mutation_state()
        return tri

    def label(self, u: NodeId) -> np.ndarray:
        """Stored beacon distances of u."""
        return self._labels[u]

    def label_bits(self, u: NodeId) -> SizeAccount:
        account = SizeAccount()
        account.add("beacon_ids", self.order * bits_for_count(self.metric.n))
        account.add("beacon_distances", self.order * self.codec.bits_per_distance)
        return account

    def bounds(self, u: NodeId, v: NodeId) -> Tuple[float, float]:
        """(D-, D+) for the pair, from labels only."""
        self._check_active(u, v)
        if self._beacon_dirty():
            _, view = self._live_view()
            lu, lv = view[u], view[v]
            if lu.size == 0:
                return 0.0, float("inf")
            upper = float(np.min(lu + lv))
            lower = float(np.max(np.abs(lu - lv)))
            self._ivl_check_one(u, v, upper)
            return lower, upper
        lu, lv = self._labels[u], self._labels[v]
        if lu.size == 0:
            return 0.0, float("inf")
        upper = float(np.min(lu + lv))
        lower = float(np.max(np.abs(lu - lv)))
        return lower, upper

    def _ivl_bracket(self, us, vs):
        """(pre, post) D+ endpoints for the IVL hull: ``pre`` over the
        last-merged beacon columns, ``post`` over the live columns but
        recomputed by fancy column indexing — a different slicing path
        than the boolean-masked serving view."""
        m = self._membership
        us = np.asarray(us, dtype=np.intp)
        vs = np.asarray(vs, dtype=np.intp)
        if self._labels.shape[1]:
            pre = (self._labels[us] + self._labels[vs]).min(axis=1)
        else:
            pre = np.full(us.shape, np.inf)
        idx = np.flatnonzero(m.active[self._beacons0])
        if idx.size:
            post = (
                self._labels0[us][:, idx] + self._labels0[vs][:, idx]
            ).min(axis=1)
        else:
            post = np.full(us.shape, np.inf)
        return pre, post

    def _ivl_check_one(self, u: NodeId, v: NodeId, served: float) -> None:
        pre, post = self._ivl_bracket([u], [v])
        lo, hi = min(pre[0], post[0]), max(pre[0], post[0])
        tol = 1e-9 * max(1.0, abs(served)) if np.isfinite(served) else 0.0
        self.ivl_checks += 1
        if not (lo - tol <= served <= hi + tol):
            self.ivl_violations += 1

    def estimate(self, u: NodeId, v: NodeId) -> float:
        """The distance estimate (the upper bound D+, as in the paper)."""
        if u == v:
            return 0.0
        return self.bounds(u, v)[1]

    def bounds_many(self, us, vs) -> Tuple[np.ndarray, np.ndarray]:
        """Batched (D-, D+) for aligned source/target index arrays."""
        us = np.asarray(us, dtype=np.intp)
        vs = np.asarray(vs, dtype=np.intp)
        m = self._membership
        if m is not None:
            bad = ~(m.active[us] & m.active[vs])
            if np.any(bad):
                nodes = np.unique(np.concatenate([us[bad], vs[bad]]))
                raise InactiveNode(
                    f"node(s) {nodes[~m.active[nodes]].tolist()} are not active"
                )
        if self._beacon_dirty():
            _, view = self._live_view()
            if view.shape[1] == 0:
                upper = np.full(us.shape, np.inf)
                lower = np.zeros(us.shape)
            else:
                lu = view[us]
                lv = view[vs]
                upper = (lu + lv).min(axis=1)
                lower = np.abs(lu - lv).max(axis=1)
            pre, post = self._ivl_bracket(us, vs)
            lo = np.minimum(pre, post)
            hi = np.maximum(pre, post)
            tol = np.where(
                np.isfinite(upper), 1e-9 * np.maximum(1.0, np.abs(upper)), 0.0
            )
            self.ivl_checks += int(us.size)
            self.ivl_violations += int(
                np.count_nonzero((upper < lo - tol) | (upper > hi + tol))
            )
            return lower, upper
        lu = self._labels[us]
        lv = self._labels[vs]
        if lu.shape[1] == 0:
            return np.zeros(us.shape), np.full(us.shape, np.inf)
        upper = (lu + lv).min(axis=1)
        lower = np.abs(lu - lv).max(axis=1)
        return lower, upper

    def estimate_many(self, us, vs) -> np.ndarray:
        """Batched D+ estimates (0 on the diagonal), one matrix pass."""
        us = np.asarray(us, dtype=np.intp)
        vs = np.asarray(vs, dtype=np.intp)
        _, upper = self.bounds_many(us, vs)
        return np.where(us == vs, 0.0, upper)

    def _iter_pair_bounds(self):
        """Yield (D-, D+) blocks covering every unordered pair u < v.

        One source node per block (vectorized over its n-u-1 partners),
        so peak memory stays O(n·k) even at n = 10⁴⁺.
        """
        n = self.metric.n
        for u in range(n - 1):
            lu = self._labels[u]
            lv = self._labels[u + 1 :]
            yield np.abs(lv - lu).max(axis=1), (lv + lu).min(axis=1)

    def epsilon_for_delta(self, delta: float) -> float:
        """Fraction of pairs with D+/D- > 1 + delta (the ε in (ε,δ))."""
        failing = 0
        total = 0
        for lower, upper in self._iter_pair_bounds():
            total += lower.size
            failing += int(np.count_nonzero((lower <= 0) | (upper > (1 + delta) * lower)))
        return failing / max(1, total)

    def worst_ratio(self) -> float:
        """Max over pairs of D+/D- (inf when some D- is 0)."""
        worst = 1.0
        for lower, upper in self._iter_pair_bounds():
            if np.any(lower <= 0):
                return float("inf")
            worst = max(worst, float((upper / lower).max()))
        return worst
