"""Mantissa/exponent distance encoding.

Theorem 3.4 stores each distance "as a O(log 1/δ)-bit mantissa and
O(log log Δ)-bit exponent", relying on the fact that if x', y' are
(1+δ)-approximations of x, y then x'+y' approximates x+y — which is why the
schemes use the *upper* bound D+ and we must round *up* when encoding.

:class:`DistanceCodec` is bound to a metric's distance range: the exponent
field covers ``[log2(min distance), log2(diameter)]``, so its width is
``ceil(log2(log2 Δ + O(1)))`` bits, and a ``b``-bit mantissa gives relative
error at most ``2^(1-b)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bits import bits_for_count


@dataclass(frozen=True)
class DistanceCode:
    """An encoded distance: value ``mantissa * 2^exponent_scale``.

    ``mantissa == 0`` encodes exactly zero.
    """

    mantissa: int
    exponent: int


class DistanceCodec:
    """Round-up floating-point encoding over a fixed distance range."""

    def __init__(
        self, min_distance: float, max_distance: float, mantissa_bits: int = 8
    ) -> None:
        if mantissa_bits < 2:
            raise ValueError("need at least 2 mantissa bits")
        if not (0 < min_distance <= max_distance):
            raise ValueError("need 0 < min_distance <= max_distance")
        self.mantissa_bits = mantissa_bits
        # Exponent e is chosen so the scaled mantissa m in [2^(b-1), 2^b)
        # satisfies m * 2^e >= d.  Smallest e needed: for d = min_distance;
        # largest: for d slightly above max_distance.
        # Clamp so 2^e never underflows to 0 (float64 denormal floor).
        self._e_min = max(-1070, math.floor(math.log2(min_distance)) - mantissa_bits)
        self._e_max = max(
            self._e_min, math.ceil(math.log2(max_distance)) - mantissa_bits + 2
        )
        self.min_distance = min_distance
        self.max_distance = max_distance

    @property
    def exponent_bits(self) -> int:
        """Bits for the exponent field (offset-encoded)."""
        return bits_for_count(self._e_max - self._e_min + 1)

    @property
    def bits_per_distance(self) -> int:
        """Total bits per stored distance (mantissa + exponent)."""
        return self.mantissa_bits + self.exponent_bits

    @property
    def relative_error(self) -> float:
        """Upper bound on (decoded/true - 1)."""
        return 2.0 ** (1 - self.mantissa_bits)

    def encode(self, d: float) -> DistanceCode:
        """Encode ``d`` rounding *up* (decoded value >= d)."""
        if d < 0:
            raise ValueError(f"distances are non-negative, got {d}")
        if d == 0:
            return DistanceCode(0, self._e_min)
        e = math.floor(math.log2(d)) - self.mantissa_bits + 1
        e = max(self._e_min, min(self._e_max, e))
        mantissa = math.ceil(d / 2.0**e)
        # Rounding up can push the mantissa to 2^b; renormalize.
        if mantissa >= 2**self.mantissa_bits:
            e += 1
            if e > self._e_max:
                raise ValueError(f"distance {d} above codec range")
            mantissa = math.ceil(d / 2.0**e)
        return DistanceCode(mantissa, e)

    def decode(self, code: DistanceCode) -> float:
        """The represented value."""
        return code.mantissa * 2.0**code.exponent

    def roundtrip(self, d: float) -> float:
        """decode(encode(d)) — the stored approximation of d."""
        return self.decode(self.encode(d))

    def roundtrip_many(self, d) -> "np.ndarray":
        """Vectorized :meth:`roundtrip` over an array of distances.

        Bit-for-bit equivalent to the scalar path (same floor/clip/ceil
        sequence), shaped like the input.
        """
        import numpy as np

        d = np.asarray(d, dtype=float)
        if np.any(d < 0):
            raise ValueError("distances are non-negative")
        out = np.zeros_like(d)
        pos = d > 0
        x = d[pos]
        if x.size == 0:
            return out
        e = np.floor(np.log2(x)) - self.mantissa_bits + 1
        e = np.clip(e, self._e_min, self._e_max)
        mantissa = np.ceil(x / np.exp2(e))
        # Rounding up can push the mantissa to 2^b; renormalize.
        over = mantissa >= 2**self.mantissa_bits
        if np.any(over):
            if np.any(e[over] + 1 > self._e_max):
                raise ValueError("distance above codec range")
            e = np.where(over, e + 1, e)
            mantissa = np.where(over, np.ceil(x / np.exp2(e)), mantissa)
        out[pos] = mantissa * np.exp2(e)
        return out

    @classmethod
    def for_metric(cls, metric, mantissa_bits: int = 8) -> "DistanceCodec":
        """A codec covering a metric's full distance range."""
        return cls(metric.min_distance(), metric.diameter(), mantissa_bits)
