"""Thorup–Zwick approximate distance oracles [53] — the general-metric
baseline of the paper's §1.

"For any integer k there exists a (2k−1)-approximate DLS on weighted
graphs with ~O(n^{1/k} log Δ)-bit labels" — this is the scheme the
doubling-metric results of §3 improve on when the doubling dimension is
small.  We implement the classic construction:

* sampled hierarchy ``A_0 = V ⊇ A_1 ⊇ … ⊇ A_{k-1}``, each level keeping
  nodes with probability ``n^{-1/k}``;
* *pivots* ``p_i(v)`` — the nearest level-i node to v;
* *bunches* ``B(v) = ∪_i { w ∈ A_i \\ A_{i+1} : d(w,v) < d(A_{i+1}, v) }``;
* the query walks pivots, swapping roles, until a common bunch member is
  found; the returned estimate is a (2k−1)-approximation.

The label of v stores its pivots and its bunch with distances; the bench
compares its label size and accuracy against the doubling-aware schemes
of §3 on doubling and non-doubling inputs.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro._types import NodeId
from repro.bits import SizeAccount, bits_for_count
from repro.labeling.encoding import DistanceCodec
from repro.metrics.base import MetricSpace
from repro.rng import SeedLike, ensure_rng


class ThorupZwickOracle:
    """A (2k−1)-approximate distance oracle / labeling scheme."""

    def __init__(
        self,
        metric: MetricSpace,
        k: int = 2,
        seed: SeedLike = None,
        mantissa_bits: int = 10,
    ) -> None:
        if k < 1:
            raise ValueError("k must be at least 1")
        self.metric = metric
        self.k = k
        self.codec = DistanceCodec.for_metric(metric, mantissa_bits)
        rng = ensure_rng(seed)
        n = metric.n

        # Sampled hierarchy A_0 ⊇ ... ⊇ A_{k-1}; A_k = ∅.
        self.levels: List[np.ndarray] = [np.arange(n)]
        keep_probability = n ** (-1.0 / k) if k > 1 else 0.0
        for _ in range(1, k):
            prev = self.levels[-1]
            mask = rng.random(prev.size) < keep_probability
            current = prev[mask]
            if current.size == 0:
                # Guarantee non-emptiness below the top so pivots exist
                # (standard fix: resample one element).
                current = np.array([int(rng.choice(prev))])
            self.levels.append(current)

        # Pivots p_i(v) and the distances d(A_i, v).
        self._pivots = np.zeros((n, k), dtype=int)
        self._pivot_dist = np.zeros((n, k))
        for v in range(n):
            row = metric.distances_from(v)
            for i, level in enumerate(self.levels):
                idx = int(level[np.argmin(row[level])])
                self._pivots[v, i] = idx
                self._pivot_dist[v, i] = float(row[idx])

        # Bunches.
        self._bunches: List[Dict[NodeId, float]] = []
        level_sets = [set(int(x) for x in level) for level in self.levels]
        for v in range(n):
            row = metric.distances_from(v)
            bunch: Dict[NodeId, float] = {}
            for i in range(k):
                # d(A_{i+1}, v); A_k = ∅ -> +inf.
                next_dist = (
                    self._pivot_dist[v, i + 1] if i + 1 < k else float("inf")
                )
                exclusive = level_sets[i] - (
                    level_sets[i + 1] if i + 1 < k else set()
                )
                for w in exclusive:
                    if float(row[w]) < next_dist:
                        bunch[w] = self.codec.roundtrip(float(row[w]))
            # Pivots are always available to the query algorithm.
            for i in range(k):
                p = int(self._pivots[v, i])
                bunch.setdefault(p, self.codec.roundtrip(float(row[p])))
            self._bunches.append(bunch)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_arrays(self) -> tuple:
        """(meta, arrays) inventory: pivots/pivot distances as dense
        (n, k) blocks, the level hierarchy and the bunches as CSR."""
        n = self.metric.n
        level_indptr = np.zeros(self.k + 1, dtype=np.int64)
        for i, level in enumerate(self.levels):
            level_indptr[i + 1] = level_indptr[i] + level.size
        level_ids = (
            np.concatenate(self.levels).astype(np.int64)
            if self.levels
            else np.empty(0, dtype=np.int64)
        )
        bunch_indptr = np.zeros(n + 1, dtype=np.int64)
        ids_chunks, dist_chunks = [], []
        for v, bunch in enumerate(self._bunches):
            ids = np.fromiter(sorted(bunch), dtype=np.int64, count=len(bunch))
            ids_chunks.append(ids)
            dist_chunks.append(
                np.array([bunch[int(w)] for w in ids], dtype=np.float64)
            )
            bunch_indptr[v + 1] = bunch_indptr[v] + ids.size
        meta = {
            "n": int(n),
            "k": int(self.k),
            "codec": {
                "min_distance": self.codec.min_distance,
                "max_distance": self.codec.max_distance,
                "mantissa_bits": self.codec.mantissa_bits,
            },
        }
        arrays = {
            "level_indptr": level_indptr,
            "level_ids": level_ids,
            "pivots": self._pivots.astype(np.int64),
            "pivot_dist": self._pivot_dist,
            "bunch_indptr": bunch_indptr,
            "bunch_ids": np.concatenate(ids_chunks)
            if ids_chunks
            else np.empty(0, dtype=np.int64),
            "bunch_dist": np.concatenate(dist_chunks)
            if dist_chunks
            else np.empty(0, dtype=np.float64),
        }
        return meta, arrays

    @classmethod
    def from_arrays(
        cls, metric: MetricSpace, meta: dict, arrays: dict
    ) -> "ThorupZwickOracle":
        """Rehydrate from :meth:`to_arrays`.

        Bunches are rebuilt as dicts (the query walk needs membership
        tests); estimates are unaffected by dict order, so the sorted
        CSR layout is bit-for-bit equivalent to the built oracle.
        """
        codec_meta = meta["codec"]
        oracle = cls.__new__(cls)
        oracle.metric = metric
        oracle.k = int(meta["k"])
        oracle.codec = DistanceCodec(
            float(codec_meta["min_distance"]),
            float(codec_meta["max_distance"]),
            int(codec_meta["mantissa_bits"]),
        )
        level_indptr = np.asarray(arrays["level_indptr"])
        level_ids = np.asarray(arrays["level_ids"])
        oracle.levels = [
            np.array(level_ids[level_indptr[i] : level_indptr[i + 1]])
            for i in range(oracle.k)
        ]
        oracle._pivots = np.asarray(arrays["pivots"])
        oracle._pivot_dist = np.asarray(arrays["pivot_dist"])
        bunch_indptr = np.asarray(arrays["bunch_indptr"])
        bunch_ids = np.asarray(arrays["bunch_ids"])
        bunch_dist = np.asarray(arrays["bunch_dist"])
        oracle._bunches = []
        for v in range(int(meta["n"])):
            lo, hi = int(bunch_indptr[v]), int(bunch_indptr[v + 1])
            oracle._bunches.append(
                {
                    int(w): float(d)
                    for w, d in zip(bunch_ids[lo:hi], bunch_dist[lo:hi])
                }
            )
        return oracle

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def bunch(self, v: NodeId) -> Dict[NodeId, float]:
        """B(v) with stored (quantized) distances."""
        return self._bunches[v]

    def estimate(self, u: NodeId, v: NodeId) -> float:
        """The TZ query walk; a (2k−1)-approximation of d(u, v)."""
        if u == v:
            return 0.0
        w = u
        i = 0
        while w not in self._bunches[v]:
            i += 1
            if i >= self.k:
                break  # cannot happen for k>=1 (top pivots are global)
            u, v = v, u
            w = int(self._pivots[u, i])
        d_wu = self._bunches[u].get(w)
        if d_wu is None:
            d_wu = self.codec.roundtrip(self.metric.distance(w, u))
        d_wv = self._bunches[v].get(w)
        if d_wv is None:
            d_wv = self.codec.roundtrip(self.metric.distance(w, v))
        return d_wu + d_wv

    def stretch_bound(self) -> int:
        """The guaranteed worst-case stretch 2k−1."""
        return 2 * self.k - 1

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def label_bits(self, v: NodeId) -> SizeAccount:
        account = SizeAccount()
        n = self.metric.n
        entries = len(self._bunches[v])
        account.add("bunch_ids", entries * bits_for_count(n))
        account.add("bunch_distances", entries * self.codec.bits_per_distance)
        account.add("pivot_ids", self.k * bits_for_count(n))
        return account

    def max_label_bits(self) -> int:
        return max(self.label_bits(v).total_bits for v in range(self.metric.n))

    def max_bunch_size(self) -> int:
        """Expected O(k n^{1/k}); measured."""
        return max(len(b) for b in self._bunches)

    def expected_bunch_bound(self) -> float:
        """The theory's k·n^{1/k} expectation, for shape comparison."""
        return self.k * self.metric.n ** (1.0 / self.k)
