"""Batched D+ over common-beacon labels (shared by the ring schemes).

Both :class:`~repro.labeling.triangulation.RingTriangulation` and its
corollary DLS store, per node, a ``beacon -> distance`` mapping and
answer ``estimate(u, v)`` with ``D+ = min_b (d_ub + d_vb)`` over the
*common* beacons ``b``.  :class:`PackedLabels` packs those mappings once
into a CSR layout (per-row sorted beacon ids + distances), and a pair
batch reduces to one sorted-key intersection over the gathered rows —
``(pair, beacon)`` keys from both sides meet in
:func:`numpy.intersect1d` and a single grouped ``minimum.reduceat``
yields every pair's D+.  Work is linear-ish in the gathered label mass
(O(L log L) with L = Σ label sizes over the batch), never the Θ(K²)
per-pair cross product, which is what lets
:func:`repro.engine.bulk_estimates` stay vectorized for the paper's own
schemes instead of falling back to the per-pair loop.
"""

from __future__ import annotations

from typing import Mapping, Sequence, Tuple

import numpy as np

from repro._types import NodeId

__all__ = ["PackedLabels"]


class PackedLabels:
    """Common-neighbor labels packed (CSR) for batched D+ evaluation."""

    def __init__(self, labels: Sequence[Mapping[NodeId, float]]) -> None:
        n = len(labels)
        counts = np.fromiter((len(label) for label in labels), dtype=np.int64,
                             count=n)
        self.indptr = np.concatenate([[0], np.cumsum(counts)])
        total = int(self.indptr[-1])
        self.ids = np.empty(total, dtype=np.int64)
        self.dist = np.empty(total, dtype=float)
        for u, label in enumerate(labels):
            lo, hi = self.indptr[u], self.indptr[u + 1]
            if lo == hi:
                continue
            ids = np.fromiter(label.keys(), dtype=np.int64, count=len(label))
            dist = np.fromiter(label.values(), dtype=float, count=len(label))
            order = np.argsort(ids, kind="stable")
            self.ids[lo:hi] = ids[order]
            self.dist[lo:hi] = dist[order]
        self.n = n
        #: chunk bound on the gathered label mass per batch (~tens of MB)
        self.max_gather = 4_000_000

    @classmethod
    def from_csr(
        cls, n: int, indptr: np.ndarray, ids: np.ndarray, dist: np.ndarray
    ) -> "PackedLabels":
        """Wrap already-packed label arrays (ids sorted within each row)
        without the per-dict conversion pass — the zero-copy path for
        structures that keep their labels in CSR form natively."""
        packed = cls.__new__(cls)
        packed.indptr = np.asarray(indptr, dtype=np.int64)
        packed.ids = np.asarray(ids, dtype=np.int64)
        packed.dist = np.asarray(dist, dtype=float)
        packed.n = int(n)
        packed.max_gather = 4_000_000
        return packed

    def _gather(self, rows: np.ndarray) -> Tuple[np.ndarray, ...]:
        """(keys, dists) of every (row-position, beacon) entry, where
        ``key = position * n + beacon`` — ascending, since ids are sorted
        within each row and positions are emitted in order."""
        starts = self.indptr[rows]
        counts = self.indptr[rows + 1] - starts
        total = int(counts.sum())
        pair_of = np.repeat(np.arange(rows.shape[0], dtype=np.int64), counts)
        # Entry index into the CSR arrays: a per-row arange offset by starts.
        base = np.cumsum(counts) - counts
        idx = np.arange(total, dtype=np.int64) - base[pair_of] + starts[pair_of]
        keys = pair_of * self.n + self.ids[idx]
        return keys, self.dist[idx]

    def dplus_many(self, us, vs) -> np.ndarray:
        """``min_b (d_ub + d_vb)`` per pair (0 on the diagonal, ``inf``
        when a pair shares no beacon), chunked to bound peak memory."""
        us = np.asarray(us, dtype=np.int64).ravel()
        vs = np.asarray(vs, dtype=np.int64).ravel()
        m = us.shape[0]
        out = np.full(m, np.inf, dtype=float)
        if m == 0:
            return out
        mean_row = max(1.0, self.ids.size / max(1, self.n))
        chunk = max(1, int(self.max_gather / mean_row))
        for lo in range(0, m, chunk):
            hi = min(m, lo + chunk)
            keys_u, dist_u = self._gather(us[lo:hi])
            keys_v, dist_v = self._gather(vs[lo:hi])
            # Keys are unique per side (distinct beacons within a row),
            # so the intersection is exactly the common beacons per pair.
            common, iu, iv = np.intersect1d(
                keys_u, keys_v, assume_unique=True, return_indices=True
            )
            if common.size == 0:
                continue
            sums = dist_u[iu] + dist_v[iv]
            pair_of = common // self.n
            starts = np.flatnonzero(np.diff(pair_of, prepend=-1))
            out[lo + pair_of[starts]] = np.minimum.reduceat(sums, starts)
        out[us == vs] = 0.0
        return out
