"""Theorem 3.2 — a (0,δ)-triangulation of order ``(1/δ)^O(α) log n``.

The label of node u consists of distances to its *neighbors*: the
X_i-neighbors (representatives of (2^-i, µ)-packings reachable within
``r_{u,i-1}``) and the Y_i-neighbors (net points at the δ·r_ui/4 scale
inside ``B_u(12 r_ui / δ)``), for ``i ∈ [log n]``.

The theorem guarantees that **every** node pair (u, v) has a common
neighbor within distance δ·d_uv of u or v, so the triangle-inequality
bounds

    D+ = min_b (d_ub + d_vb)        D- = max_b |d_ub - d_vb|

over common neighbors b satisfy ``D+/D- <= (1+2δ)/(1-2δ)`` for *all*
pairs — a (0, O(δ))-triangulation, unlike the common-beacon baseline's
(ε, δ).

:class:`TriangulationDLS` turns the triangulation into the distance
labeling scheme matching Mendel & Har-Peled [44]: store each neighbor as a
``(ID, quantized distance)`` pair and return D+.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro._types import NodeId
from repro.bits import SizeAccount, bits_for_count
from repro.core.packed import pack_csr
from repro.core.patch import CSRPatch, InactiveNode, PatchStats
from repro.labeling._dplus import PackedLabels
from repro.labeling._scales import ScaleStructure
from repro.labeling.encoding import DistanceCodec
from repro.metrics.base import MetricSpace


class RingTriangulation:
    """The Theorem 3.2 construction.

    Parameters
    ----------
    metric:
        A finite (preferably doubling) metric.
    delta:
        The paper's δ ∈ (0, 1/2).
    scales:
        Optional pre-built :class:`ScaleStructure` (shared with other
        constructions over the same metric/δ).
    """

    def __init__(
        self,
        metric: MetricSpace,
        delta: float,
        scales: Optional[ScaleStructure] = None,
    ) -> None:
        if not 0 < delta < 0.5:
            raise ValueError(f"Theorem 3.2 needs delta in (0, 1/2), got {delta}")
        self.metric = metric
        self.delta = delta
        self.scales = scales if scales is not None else ScaleStructure(metric, delta)
        # Labels live in CSR arrays: per-node sorted beacon ids + true
        # distances (quantization is applied by TriangulationDLS; the raw
        # triangulation keeps exact distances, as in the paper's
        # definition of a triangulation label).
        chunks_ids: list[np.ndarray] = []
        chunks_dist: list[np.ndarray] = []
        for u in range(metric.n):
            row = np.asarray(metric.distances_from(u), dtype=float)
            ids = np.asarray(self.scales.all_neighbors(u), dtype=np.int64)
            chunks_ids.append(ids)
            chunks_dist.append(row[ids])
        self._indptr, self._ids = pack_csr(chunks_ids, dtype=np.int64)
        _, self._dist = pack_csr(chunks_dist, dtype=float)
        self._packed: Optional[PackedLabels] = None
        self._patch: Optional[CSRPatch] = None
        self.revision = 0
        self.ivl_checks = 0
        self.ivl_violations = 0
        #: patch-merge policy (consulted when the patch is first created)
        self.merge_threshold = 0.5
        self.staleness_limit = 128

    # -- CSR access --------------------------------------------------------

    def _label_arrays(self, u: NodeId) -> Tuple[np.ndarray, np.ndarray]:
        patch = self._patch
        if patch is not None and patch.row_dirty(u):
            ids, (dist,) = patch.filtered_row(u)
            return ids, dist
        lo, hi = self._indptr[u], self._indptr[u + 1]
        return self._ids[lo:hi], self._dist[lo:hi]

    # -- incremental updates ----------------------------------------------

    def _ensure_patch(self) -> CSRPatch:
        if self._patch is None:
            self._patch = CSRPatch(
                self._indptr, self._ids, payloads=(self._dist,),
                universe=self.metric.n,
                merge_threshold=self.merge_threshold,
                staleness_limit=self.staleness_limit,
            )
        return self._patch

    def _adopt_merged(self) -> None:
        patch = self._patch
        self._indptr = patch.merged_indptr
        self._ids = patch.merged_keys
        self._dist = patch.merged_payloads[0]
        self._packed = None

    def apply_update(self, joins=(), leaves=()) -> bool:
        """Apply one join/leave batch to the label structure.

        Labels stay pristine; reads filter by the live active set until
        the patch's size/staleness threshold trips a merge.  Returns
        whether this update triggered an automatic merge.
        """
        patch = self._ensure_patch()
        patch.apply(joins, leaves)
        self.revision += 1
        merged = patch.maybe_merge()
        if merged:
            self._adopt_merged()
        return merged

    def compact(self) -> PatchStats:
        """Force-merge pending churn into a fresh packed CSR block."""
        patch = self._ensure_patch()
        patch.merge()
        self._adopt_merged()
        return patch.stats()

    def pending_patch_stats(self) -> PatchStats:
        if self._patch is None:
            n = self.metric.n
            return PatchStats(
                universe=n, active_nodes=n, rows=n, dirty_rows=0,
                pending_joins=0, pending_leaves=0, updates=0,
                updates_since_merge=0, merges=0, auto_merges=0,
            )
        return self._patch.stats()

    def _check_active(self, u: NodeId, v: NodeId) -> None:
        patch = self._patch
        if patch is None:
            return
        act = patch.membership.active
        if not act[u] or not act[v]:
            missing = [x for x in (u, v) if not act[x]]
            raise InactiveNode(f"node(s) {missing} are not active")

    def _ivl_check(self, u: NodeId, v: NodeId, served: float) -> None:
        """IVL-style bound for a read overlapping a pending patch.

        ``pre`` is D+ over the last-merged arrays, ``post`` D+ over the
        pristine arrays intersected *before* masking by the active set —
        a deliberately different code path from the serving one (which
        masks before intersecting).  The served value must land in
        ``[min(pre, post), max(pre, post)]``; for pairs the pending churn
        does not actually affect, pre == post and the check becomes a
        bit-level cross-validation of the two paths.
        """
        patch = self._patch
        ids_u, (dist_u,) = patch.merged_row(u)
        ids_v, (dist_v,) = patch.merged_row(v)
        _, iu, iv = np.intersect1d(
            ids_u, ids_v, assume_unique=True, return_indices=True
        )
        pre = float((dist_u[iu] + dist_v[iv]).min()) if iu.size else float("inf")
        plo_u, phi_u = patch.pristine_indptr[u], patch.pristine_indptr[u + 1]
        plo_v, phi_v = patch.pristine_indptr[v], patch.pristine_indptr[v + 1]
        common, ju, jv = np.intersect1d(
            patch.pristine_keys[plo_u:phi_u], patch.pristine_keys[plo_v:phi_v],
            assume_unique=True, return_indices=True,
        )
        keep = patch.membership.active[common] if common.size else common.astype(bool)
        if np.any(keep):
            dsum = (
                patch.pristine_payloads[0][plo_u:phi_u][ju][keep]
                + patch.pristine_payloads[0][plo_v:phi_v][jv][keep]
            )
            post = float(dsum.min())
        else:
            post = float("inf")
        lo, hi = min(pre, post), max(pre, post)
        tol = 1e-9 * max(1.0, abs(served)) if np.isfinite(served) else 0.0
        self.ivl_checks += 1
        if not (lo - tol <= served <= hi + tol):
            self.ivl_violations += 1

    # -- structure metrics -------------------------------------------------

    @property
    def order(self) -> int:
        """Triangulation order: the max number of beacons per node."""
        return int(np.diff(self._indptr).max())

    def mean_order(self) -> float:
        return float(np.diff(self._indptr).mean())

    def beacons_of(self, u: NodeId) -> Dict[NodeId, float]:
        """u's beacon set S_u with exact distances (a materialized view;
        the packed arrays are the storage)."""
        ids, dist = self._label_arrays(u)
        return {int(b): float(d) for b, d in zip(ids, dist)}

    # -- estimation ----------------------------------------------------------

    def common_beacons(self, u: NodeId, v: NodeId) -> list[NodeId]:
        """``S_u ∩ S_v`` (the b's both labels know), ascending."""
        ids_u, _ = self._label_arrays(u)
        ids_v, _ = self._label_arrays(v)
        return [int(b) for b in np.intersect1d(ids_u, ids_v, assume_unique=True)]

    def _common_distances(
        self, u: NodeId, v: NodeId
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(d_ub, d_vb) arrays over the common beacons b."""
        ids_u, dist_u = self._label_arrays(u)
        ids_v, dist_v = self._label_arrays(v)
        _, iu, iv = np.intersect1d(
            ids_u, ids_v, assume_unique=True, return_indices=True
        )
        return dist_u[iu], dist_v[iv]

    def bounds(self, u: NodeId, v: NodeId) -> Tuple[float, float]:
        """(D-, D+) over common beacons; (0, inf) when none exist."""
        du, dv = self._common_distances(u, v)
        if du.size == 0:
            return 0.0, float("inf")
        return float(np.abs(du - dv).max()), float((du + dv).min())

    def estimate(self, u: NodeId, v: NodeId) -> float:
        """Distance estimate D+ (exact-distance labels)."""
        if u == v:
            return 0.0
        patch = self._patch
        if patch is None:
            return self.bounds(u, v)[1]
        self._check_active(u, v)
        served = self.bounds(u, v)[1]
        if patch.row_dirty(u) or patch.row_dirty(v):
            self._ivl_check(u, v, served)
        return served

    def estimate_many(self, us, vs) -> np.ndarray:
        """Batched D+ over the packed labels (0 on the diagonal).

        The CSR label arrays are handed to :class:`PackedLabels` without
        any per-dict conversion, so a whole pair batch runs as chunked
        broadcast intersections instead of per-pair dict walks.  With a
        pending patch, clean-row pairs still take the packed fast path
        (their merged rows are unaffected by the pending churn); pairs
        touching a dirty row fall back to per-pair filtered estimates
        with the IVL bound checked on each.
        """
        patch = self._patch
        if patch is None:
            if self._packed is None:
                self._packed = PackedLabels.from_csr(
                    self.metric.n, self._indptr, self._ids, self._dist
                )
            return self._packed.dplus_many(us, vs)
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        act = patch.membership.active
        bad = ~(act[us] & act[vs])
        if np.any(bad):
            nodes = np.unique(np.concatenate([us[bad], vs[bad]]))
            raise InactiveNode(
                f"node(s) {nodes[~act[nodes]].tolist()} are not active"
            )
        if patch.is_clean():
            if self._packed is None:
                self._packed = PackedLabels.from_csr(
                    self.metric.n, self._indptr, self._ids, self._dist
                )
            return self._packed.dplus_many(us, vs)
        dirty = patch.rows_dirty(us) | patch.rows_dirty(vs)
        out = np.empty(us.shape, dtype=float)
        clean = ~dirty
        if np.any(clean):
            if self._packed is None:
                self._packed = PackedLabels.from_csr(
                    self.metric.n, self._indptr, self._ids, self._dist
                )
            out[clean] = self._packed.dplus_many(us[clean], vs[clean])
        for i in np.flatnonzero(dirty):
            out[i] = self.estimate(int(us[i]), int(vs[i]))
        return out

    def to_arrays(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        """(meta, arrays) inventory for the on-disk container.

        The CSR label arrays *are* the queryable structure; the
        construction-time :class:`ScaleStructure` is scaffolding and is
        not persisted.
        """
        meta: Dict[str, object] = {"delta": self.delta, "n": int(self.metric.n)}
        arrays = {
            "label_indptr": self._indptr,
            "label_ids": self._ids,
            "label_dist": self._dist,
        }
        return meta, arrays

    @classmethod
    def from_arrays(
        cls,
        metric: MetricSpace,
        meta: Dict[str, object],
        arrays: Dict[str, np.ndarray],
    ) -> "RingTriangulation":
        """Rehydrate from :meth:`to_arrays` — zero copy, no net rebuild.

        The result is *detached*: estimation works bit-for-bit off the
        CSR arrays, but ``scales`` is ``None`` (construction internals
        were scaffolding, not part of the queryable structure).
        """
        tri = cls.__new__(cls)
        tri.metric = metric
        tri.delta = float(meta["delta"])
        tri.scales = None
        tri._indptr = np.asarray(arrays["label_indptr"])
        tri._ids = np.asarray(arrays["label_ids"])
        tri._dist = np.asarray(arrays["label_dist"])
        tri._packed = None
        tri._patch = None
        tri.revision = 0
        tri.ivl_checks = 0
        tri.ivl_violations = 0
        tri.merge_threshold = 0.5
        tri.staleness_limit = 128
        return tri

    def certified_ratio_bound(self) -> float:
        """The guaranteed worst-pair D+/D- ratio: (1+2δ)/(1-2δ)."""
        return (1 + 2 * self.delta) / (1 - 2 * self.delta)

    def has_close_common_beacon(self, u: NodeId, v: NodeId) -> bool:
        """Theorem 3.2's core guarantee for one pair: a common beacon
        within δ·d_uv of u or of v."""
        d = self.metric.distance(u, v)
        common = np.asarray(self.common_beacons(u, v), dtype=np.int64)
        if common.size == 0:
            return False
        row_u = np.asarray(self.metric.distances_from(u), dtype=float)
        row_v = np.asarray(self.metric.distances_from(v), dtype=float)
        limit = self.delta * d + 1e-12 * max(1.0, d)
        return bool(np.minimum(row_u[common], row_v[common]).min() <= limit)

    def worst_ratio(self) -> float:
        """Measured max over all pairs of D+/D-."""
        worst = 1.0
        for u, v in self.metric.pairs():
            lower, upper = self.bounds(u, v)
            if lower <= 0:
                return float("inf")
            worst = max(worst, upper / lower)
        return worst


class TriangulationDLS:
    """Theorem 3.2's corollary DLS (the Mendel–Har-Peled [44] bound).

    Each neighbor is stored as ``(ceil(log n)-bit ID, quantized
    distance)``; the estimate is the quantized D+.  Label length is
    ``O_{α,δ}(log n)(log n + log log Δ)`` bits.
    """

    def __init__(
        self,
        triangulation: RingTriangulation,
        mantissa_bits: Optional[int] = None,
    ) -> None:
        self.triangulation = triangulation
        metric = triangulation.metric
        if mantissa_bits is None:
            # O(log 1/δ)-bit mantissa: relative error 2^(1-b) <= δ/4.
            mantissa_bits = max(4, int(np.ceil(np.log2(8.0 / triangulation.delta))))
        self.codec = DistanceCodec.for_metric(metric, mantissa_bits)
        # Quantize the triangulation's whole CSR distance block in one
        # vectorized pass; the id/offset arrays are shared, not copied.
        self._indptr = triangulation._indptr
        self._ids = triangulation._ids
        self._dist = self.codec.roundtrip_many(triangulation._dist)
        self._packed: Optional[PackedLabels] = None

    def label(self, u: NodeId) -> Dict[NodeId, float]:
        lo, hi = self._indptr[u], self._indptr[u + 1]
        return {
            int(b): float(d)
            for b, d in zip(self._ids[lo:hi], self._dist[lo:hi])
        }

    def label_bits(self, u: NodeId) -> SizeAccount:
        account = SizeAccount()
        n = self.triangulation.metric.n
        k = int(self._indptr[u + 1] - self._indptr[u])
        account.add("neighbor_ids", k * bits_for_count(n))
        account.add("neighbor_distances", k * self.codec.bits_per_distance)
        return account

    def max_label_bits(self) -> int:
        n = self.triangulation.metric.n
        per_beacon = bits_for_count(n) + self.codec.bits_per_distance
        return int(np.diff(self._indptr).max()) * per_beacon

    def to_arrays(self) -> Tuple[Dict[str, object], Dict[str, np.ndarray]]:
        """(meta, arrays) inventory: shared CSR ids plus *both* distance
        blocks (raw for the carrier triangulation, quantized for the DLS
        itself), and the codec's three defining parameters."""
        meta: Dict[str, object] = {
            "delta": self.triangulation.delta,
            "n": int(self.triangulation.metric.n),
            "codec": {
                "min_distance": self.codec.min_distance,
                "max_distance": self.codec.max_distance,
                "mantissa_bits": self.codec.mantissa_bits,
            },
        }
        arrays = {
            "label_indptr": self._indptr,
            "label_ids": self._ids,
            "label_dist": self.triangulation._dist,
            "label_dist_quantized": self._dist,
        }
        return meta, arrays

    @classmethod
    def from_arrays(
        cls,
        metric: MetricSpace,
        meta: Dict[str, object],
        arrays: Dict[str, np.ndarray],
    ) -> "TriangulationDLS":
        """Rehydrate from :meth:`to_arrays` without re-quantizing."""
        codec_meta = meta["codec"]
        dls = cls.__new__(cls)
        dls.triangulation = RingTriangulation.from_arrays(metric, meta, arrays)
        dls.codec = DistanceCodec(
            float(codec_meta["min_distance"]),
            float(codec_meta["max_distance"]),
            int(codec_meta["mantissa_bits"]),
        )
        dls._indptr = dls.triangulation._indptr
        dls._ids = dls.triangulation._ids
        dls._dist = np.asarray(arrays["label_dist_quantized"])
        dls._packed = None
        return dls

    def estimate(self, u: NodeId, v: NodeId) -> float:
        """D+ over common stored beacons (labels only)."""
        if u == v:
            return 0.0
        lo_u, hi_u = self._indptr[u], self._indptr[u + 1]
        lo_v, hi_v = self._indptr[v], self._indptr[v + 1]
        _, iu, iv = np.intersect1d(
            self._ids[lo_u:hi_u], self._ids[lo_v:hi_v],
            assume_unique=True, return_indices=True,
        )
        if iu.size == 0:
            return float("inf")
        return float((self._dist[lo_u:hi_u][iu] + self._dist[lo_v:hi_v][iv]).min())

    def estimate_many(self, us, vs) -> np.ndarray:
        """Batched quantized D+ (same packed-label path as Theorem 3.2)."""
        if self._packed is None:
            self._packed = PackedLabels.from_csr(
                self.triangulation.metric.n, self._indptr, self._ids, self._dist
            )
        return self._packed.dplus_many(us, vs)
