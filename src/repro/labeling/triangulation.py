"""Theorem 3.2 — a (0,δ)-triangulation of order ``(1/δ)^O(α) log n``.

The label of node u consists of distances to its *neighbors*: the
X_i-neighbors (representatives of (2^-i, µ)-packings reachable within
``r_{u,i-1}``) and the Y_i-neighbors (net points at the δ·r_ui/4 scale
inside ``B_u(12 r_ui / δ)``), for ``i ∈ [log n]``.

The theorem guarantees that **every** node pair (u, v) has a common
neighbor within distance δ·d_uv of u or v, so the triangle-inequality
bounds

    D+ = min_b (d_ub + d_vb)        D- = max_b |d_ub - d_vb|

over common neighbors b satisfy ``D+/D- <= (1+2δ)/(1-2δ)`` for *all*
pairs — a (0, O(δ))-triangulation, unlike the common-beacon baseline's
(ε, δ).

:class:`TriangulationDLS` turns the triangulation into the distance
labeling scheme matching Mendel & Har-Peled [44]: store each neighbor as a
``(ID, quantized distance)`` pair and return D+.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro._types import NodeId
from repro.bits import SizeAccount, bits_for_count
from repro.labeling._dplus import PackedLabels
from repro.labeling._scales import ScaleStructure
from repro.labeling.encoding import DistanceCodec
from repro.metrics.base import MetricSpace


class RingTriangulation:
    """The Theorem 3.2 construction.

    Parameters
    ----------
    metric:
        A finite (preferably doubling) metric.
    delta:
        The paper's δ ∈ (0, 1/2).
    scales:
        Optional pre-built :class:`ScaleStructure` (shared with other
        constructions over the same metric/δ).
    """

    def __init__(
        self,
        metric: MetricSpace,
        delta: float,
        scales: Optional[ScaleStructure] = None,
    ) -> None:
        if not 0 < delta < 0.5:
            raise ValueError(f"Theorem 3.2 needs delta in (0, 1/2), got {delta}")
        self.metric = metric
        self.delta = delta
        self.scales = scales if scales is not None else ScaleStructure(metric, delta)
        # label[u]: neighbor -> true distance (quantization is applied by
        # TriangulationDLS; the raw triangulation keeps exact distances, as
        # in the paper's definition of a triangulation label).
        self._labels: list[Dict[NodeId, float]] = []
        for u in range(metric.n):
            row = metric.distances_from(u)
            self._labels.append(
                {int(b): float(row[b]) for b in self.scales.all_neighbors(u)}
            )
        self._packed: Optional[PackedLabels] = None

    # -- structure metrics -------------------------------------------------

    @property
    def order(self) -> int:
        """Triangulation order: the max number of beacons per node."""
        return max(len(label) for label in self._labels)

    def mean_order(self) -> float:
        return float(np.mean([len(label) for label in self._labels]))

    def beacons_of(self, u: NodeId) -> Dict[NodeId, float]:
        """u's beacon set S_u with exact distances."""
        return self._labels[u]

    # -- estimation ----------------------------------------------------------

    def common_beacons(self, u: NodeId, v: NodeId) -> list[NodeId]:
        """``S_u ∩ S_v`` (the b's both labels know)."""
        lu, lv = self._labels[u], self._labels[v]
        if len(lv) < len(lu):
            lu, lv = lv, lu
        return [b for b in lu if b in lv]

    def bounds(self, u: NodeId, v: NodeId) -> Tuple[float, float]:
        """(D-, D+) over common beacons; (0, inf) when none exist."""
        lu, lv = self._labels[u], self._labels[v]
        lower, upper = 0.0, float("inf")
        for b in self.common_beacons(u, v):
            du, dv = lu[b], lv[b]
            upper = min(upper, du + dv)
            lower = max(lower, abs(du - dv))
        return lower, upper

    def estimate(self, u: NodeId, v: NodeId) -> float:
        """Distance estimate D+ (exact-distance labels)."""
        if u == v:
            return 0.0
        return self.bounds(u, v)[1]

    def estimate_many(self, us, vs) -> np.ndarray:
        """Batched D+ over the packed labels (0 on the diagonal).

        Labels are packed into padded id/distance arrays on first use, so
        a whole pair batch runs as chunked broadcast intersections
        instead of per-pair dict walks.
        """
        if self._packed is None:
            self._packed = PackedLabels(self._labels)
        return self._packed.dplus_many(us, vs)

    def certified_ratio_bound(self) -> float:
        """The guaranteed worst-pair D+/D- ratio: (1+2δ)/(1-2δ)."""
        return (1 + 2 * self.delta) / (1 - 2 * self.delta)

    def has_close_common_beacon(self, u: NodeId, v: NodeId) -> bool:
        """Theorem 3.2's core guarantee for one pair: a common beacon
        within δ·d_uv of u or of v."""
        d = self.metric.distance(u, v)
        row_u = self.metric.distances_from(u)
        row_v = self.metric.distances_from(v)
        limit = self.delta * d + 1e-12 * max(1.0, d)
        return any(
            min(float(row_u[b]), float(row_v[b])) <= limit
            for b in self.common_beacons(u, v)
        )

    def worst_ratio(self) -> float:
        """Measured max over all pairs of D+/D-."""
        worst = 1.0
        for u, v in self.metric.pairs():
            lower, upper = self.bounds(u, v)
            if lower <= 0:
                return float("inf")
            worst = max(worst, upper / lower)
        return worst


class TriangulationDLS:
    """Theorem 3.2's corollary DLS (the Mendel–Har-Peled [44] bound).

    Each neighbor is stored as ``(ceil(log n)-bit ID, quantized
    distance)``; the estimate is the quantized D+.  Label length is
    ``O_{α,δ}(log n)(log n + log log Δ)`` bits.
    """

    def __init__(
        self,
        triangulation: RingTriangulation,
        mantissa_bits: Optional[int] = None,
    ) -> None:
        self.triangulation = triangulation
        metric = triangulation.metric
        if mantissa_bits is None:
            # O(log 1/δ)-bit mantissa: relative error 2^(1-b) <= δ/4.
            mantissa_bits = max(4, int(np.ceil(np.log2(8.0 / triangulation.delta))))
        self.codec = DistanceCodec.for_metric(metric, mantissa_bits)
        self._labels: list[Dict[NodeId, float]] = [
            {b: self.codec.roundtrip(d) for b, d in triangulation.beacons_of(u).items()}
            for u in range(metric.n)
        ]
        self._packed: Optional[PackedLabels] = None

    def label(self, u: NodeId) -> Dict[NodeId, float]:
        return self._labels[u]

    def label_bits(self, u: NodeId) -> SizeAccount:
        account = SizeAccount()
        n = self.triangulation.metric.n
        k = len(self._labels[u])
        account.add("neighbor_ids", k * bits_for_count(n))
        account.add("neighbor_distances", k * self.codec.bits_per_distance)
        return account

    def max_label_bits(self) -> int:
        return max(
            self.label_bits(u).total_bits for u in range(self.triangulation.metric.n)
        )

    def estimate(self, u: NodeId, v: NodeId) -> float:
        """D+ over common stored beacons (labels only)."""
        if u == v:
            return 0.0
        lu, lv = self._labels[u], self._labels[v]
        if len(lv) < len(lu):
            lu, lv = lv, lu
        best = float("inf")
        for b, du in lu.items():
            dv = lv.get(b)
            if dv is not None:
                best = min(best, du + dv)
        return best

    def estimate_many(self, us, vs) -> np.ndarray:
        """Batched quantized D+ (same packed-label path as Theorem 3.2)."""
        if self._packed is None:
            self._packed = PackedLabels(self._labels)
        return self._packed.dplus_many(us, vs)
