"""Sharded construction: executors and the batched net-building scans.

The paper's structures are all built from the same primitive — distance
rows from a few *sources* against a span of *targets* — so construction
parallelism reduces to one abstraction: a :class:`BuildExecutor` that
maps pure block tasks over contiguous shards of the node space.  Three
executors ship:

* :class:`SerialExecutor` — one shard, inline (the default everywhere);
* :class:`ChunkedExecutor` — k shards, still inline: bounds peak block
  memory without any parallelism machinery;
* :class:`ProcessPoolBuildExecutor` — k shards over a process pool; the
  metric is shipped to each worker once (pool initializer) and reused
  across every subsequent task, so per-round communication is just the
  reduced distance blocks.

Every builder in :mod:`repro.construction.nets` is **bit-for-bit
identical to the sequential scan for any shard count** — executors
change wall-clock and peak memory, never results.  The facade threads an
executor through :class:`repro.api.WorkloadInstance`, the experiment
runner exposes it as ``build_workers``, and the CLI as
``repro run --build-workers``.
"""

from repro.construction.executor import (
    BuildExecutor,
    ChunkedExecutor,
    ProcessPoolBuildExecutor,
    SerialExecutor,
    make_executor,
    resolve_workers,
    span_chunks,
)
from repro.construction.nets import (
    ball_members_sharded,
    greedy_scan,
    min_distance_update,
    nearest_members_sharded,
)

__all__ = [
    "BuildExecutor",
    "ChunkedExecutor",
    "ProcessPoolBuildExecutor",
    "SerialExecutor",
    "ball_members_sharded",
    "greedy_scan",
    "make_executor",
    "min_distance_update",
    "nearest_members_sharded",
    "resolve_workers",
    "span_chunks",
]
