"""Build executors: serial, chunked, and process-pool block mapping.

An executor's job is tiny on purpose: ``map(fn, tasks, payload)`` runs
``fn(payload, *task)`` for every task and returns the results in task
order.  ``payload`` is the expensive shared object (a metric); the
process-pool executor installs it in each worker once via the pool
initializer and keeps the pool alive across calls for as long as the
same payload is used, so repeated builder rounds never re-pickle the
metric.

Tasks and results must pickle (plain tuples of ints/arrays in, arrays
out); ``fn`` must be a module-level function.
"""

from __future__ import annotations

import os
from typing import Any, Callable, List, Optional, Sequence, Tuple

__all__ = [
    "BuildExecutor",
    "ChunkedExecutor",
    "ProcessPoolBuildExecutor",
    "SerialExecutor",
    "make_executor",
    "resolve_workers",
    "span_chunks",
]

#: A contiguous node-id span ``[lo, hi)``.
Span = Tuple[int, int]


def resolve_workers(requested: Optional[int] = None) -> int:
    """Worker count for a request: ``None``/``0`` means every core.

    This is the single resolution rule shared by the experiment runner
    (``--processes``), the facade (``build_workers``) and the bench
    scripts, so "use the machine" is spelled the same way everywhere.
    """
    if requested is None or requested == 0:
        return os.cpu_count() or 1
    if requested < 0:
        raise ValueError(f"worker count must be >= 0, got {requested}")
    return int(requested)


def span_chunks(n: int, shards: int) -> List[Span]:
    """Split ``range(n)`` into up to ``shards`` balanced contiguous spans."""
    if n <= 0:
        return []
    shards = max(1, min(int(shards), n))
    bounds = [(n * i) // shards for i in range(shards + 1)]
    return [(bounds[i], bounds[i + 1]) for i in range(shards)]


class BuildExecutor:
    """Maps pure block tasks over shards of the node space."""

    #: how many target spans builders should shard their work into
    shards: int = 1

    def map(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[Tuple[Any, ...]],
        payload: Any = None,
    ) -> List[Any]:
        """Run ``fn(payload, *task)`` for every task, in task order."""
        raise NotImplementedError

    def spans(self, n: int) -> List[Span]:
        """The target spans this executor shards ``range(n)`` into."""
        return span_chunks(n, self.shards)

    def close(self) -> None:
        """Release any pooled resources (idempotent)."""

    def __enter__(self) -> "BuildExecutor":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class SerialExecutor(BuildExecutor):
    """One shard, inline execution — the default everywhere."""

    shards = 1

    def map(self, fn, tasks, payload=None):
        return [fn(payload, *task) for task in tasks]


class ChunkedExecutor(SerialExecutor):
    """Inline execution over ``shards`` spans: bounds peak block memory
    (and is the in-process stand-in for the pool in nested contexts)."""

    def __init__(self, shards: int = 4) -> None:
        if shards < 1:
            raise ValueError(f"shards must be positive, got {shards}")
        self.shards = int(shards)


# -- process pool ------------------------------------------------------

_WORKER_PAYLOAD: Any = None


def _init_worker(payload: Any) -> None:
    global _WORKER_PAYLOAD
    _WORKER_PAYLOAD = payload


def _invoke(fn: Callable[..., Any], task: Tuple[Any, ...]) -> Any:
    return fn(_WORKER_PAYLOAD, *task)


class ProcessPoolBuildExecutor(BuildExecutor):
    """Shards mapped over a persistent :class:`ProcessPoolExecutor`.

    The pool is created lazily on the first :meth:`map` and rebuilt only
    when the payload object changes, so one executor can serve every
    level of a nested-net build (or several builds over one metric) with
    a single metric transfer per worker.
    """

    _UNSET = object()

    def __init__(
        self, workers: Optional[int] = None, shards: Optional[int] = None
    ) -> None:
        self.workers = resolve_workers(workers)
        self.shards = int(shards) if shards else self.workers
        if self.shards < 1:
            raise ValueError(f"shards must be positive, got {self.shards}")
        self._pool = None
        self._payload: Any = self._UNSET
        self._closed = False

    def _ensure_pool(self, payload: Any):
        if self._pool is None or payload is not self._payload:
            self.close()
            from concurrent.futures import ProcessPoolExecutor

            self._closed = False
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_init_worker,
                initargs=(payload,),
            )
            self._payload = payload
        return self._pool

    def map(self, fn, tasks, payload=None):
        if self._closed:
            # A closed executor may still be referenced (e.g. attached to
            # a cached WorkloadInstance by an earlier run).  Results are
            # executor-independent by contract, so degrade to inline
            # execution rather than silently resurrecting worker pools.
            return [fn(payload, *task) for task in tasks]
        pool = self._ensure_pool(payload)
        futures = [pool.submit(_invoke, fn, tuple(task)) for task in tasks]
        return [f.result() for f in futures]

    def close(self) -> None:
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._payload = self._UNSET


def make_executor(
    workers: Optional[int] = None, shards: Optional[int] = None
) -> BuildExecutor:
    """The right executor for a worker request.

    ``workers=None`` or ``1`` is serial (``shards`` > 1 still chunks
    inline); ``workers=0`` resolves to every core; >= 2 builds a
    process-pool executor.
    """
    count = resolve_workers(workers if workers is not None else 1)
    if count <= 1:
        if shards and shards > 1:
            return ChunkedExecutor(shards)
        return SerialExecutor()
    return ProcessPoolBuildExecutor(workers=count, shards=shards)
