"""Batched, shardable builders behind ``greedy_net`` and the ring scans.

The sequential farthest-point scan of :func:`repro.metrics.nets.greedy_net`
admits one node per distance row.  The batched scan here is **bit-for-bit
identical** for any executor and shard count, but restructures the work
into block queries:

* **Batch admission.**  Candidates (ids whose distance to the current net
  is >= r) are taken a batch at a time; one small batch-by-batch block
  resolves, *exactly as the sequential scan would*, which batch members
  survive the admissions before them (a member is admitted iff its
  distance to every earlier-admitted batch member is >= r — the only way
  its net-distance can have dropped below r since the batch was formed).
* **Sharded min update.**  Admitted points fold into the running
  net-distance array via ``min`` over (sources x span) blocks, mapped
  across the executor's shards.  ``min`` over floats is exact and
  order-independent, so shard geometry cannot change a single bit.
* **Radius-capped rows.**  The scan only ever compares net-distances
  against r, so any distance known to exceed r may be stored as ``+inf``.
  Metrics exposing ``rows_within(sources, radius)`` (the lazy
  shortest-path backend: Dijkstra with an early cutoff) exploit this —
  each source explores only its r-ball instead of the whole graph.
* **Carried state.**  A coarser scan's final net-distance array seeds the
  next finer level of a nested hierarchy directly (values capped at the
  coarser radius are still exact wherever they matter), eliminating the
  per-level re-initialization entirely.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.construction.executor import BuildExecutor, SerialExecutor

__all__ = [
    "ball_members_sharded",
    "greedy_scan",
    "min_distance_update",
    "nearest_members_sharded",
]

#: Max elements per transient distance block (~8 MB of float64), so peak
#: memory stays bounded at any n regardless of shard geometry.
_BLOCK_ELEMS = 1 << 20

#: Candidate batch size for the admission scan.
_ADMIT_BATCH = 256


def _pair_block(metric, heads: np.ndarray, radius: float) -> np.ndarray:
    """The heads-by-heads distance block; entries > radius may be ``+inf``.

    Uses the metric's radius-capped fast path when it has one (the lazy
    graph backend explores only each source's radius-ball); otherwise an
    exact batched gather.  Callers may only use the result through the
    ``value >= radius`` predicate, where the cap is invisible.
    """
    rows_within = getattr(metric, "rows_within", None)
    if rows_within is not None and np.isfinite(radius):
        out = np.empty((heads.size, heads.size))
        chunk = max(1, _BLOCK_ELEMS // max(1, metric.n))
        for start in range(0, heads.size, chunk):
            rows = rows_within(heads[start : start + chunk], radius)
            out[start : start + rows.shape[0]] = rows[:, heads]
        return out
    return metric.distances_between(heads, heads)


def _span_min(metric, sources, lo: int, hi: int) -> np.ndarray:
    """Task: elementwise min over sources of d(s, x) for x in [lo, hi).

    Sub-chunks the sources so the transient block never exceeds
    :data:`_BLOCK_ELEMS` elements, whatever the caller's shard geometry.
    """
    sources = np.asarray(sources, dtype=np.intp)
    out = np.full(hi - lo, np.inf)
    if sources.size == 0 or hi <= lo:
        return out
    targets = np.arange(lo, hi)
    chunk = max(1, _BLOCK_ELEMS // max(1, hi - lo))
    for start in range(0, sources.size, chunk):
        block = metric.distances_between(sources[start : start + chunk], targets)
        np.minimum(out, block.min(axis=0), out=out)
    return out


def _source_min(metric, sources, radius: float) -> np.ndarray:
    """Task: full-width elementwise min over a source chunk's capped rows."""
    sources = np.asarray(sources, dtype=np.intp)
    out = np.full(metric.n, np.inf)
    chunk = max(1, _BLOCK_ELEMS // max(1, metric.n))
    for start in range(0, sources.size, chunk):
        block = metric.rows_within(sources[start : start + chunk], radius)
        np.minimum(out, block.min(axis=0), out=out)
    return out


def min_distance_update(
    metric,
    min_dist: np.ndarray,
    sources: np.ndarray,
    r: Optional[float],
    executor: BuildExecutor,
) -> None:
    """Fold d(source, ·) into ``min_dist`` in place, sharded.

    Two shard geometries, picked by where the metric's cost lives:

    * **Capped backends** (``rows_within``: the lazy graph metric, whose
      per-source Dijkstra cost is independent of how many targets are
      read) shard over *source* chunks — each source is explored exactly
      once regardless of shard count, and a process pool parallelizes the
      explorations.
    * Everything else (euclidean, dense matrix: per-element block cost)
      shards over *target spans*, each worker computing only its slice.

    Both reduce by exact order-independent ``min``, so the geometry never
    changes a bit of the result.
    """
    sources = np.asarray(sources, dtype=np.intp)
    if sources.size == 0:
        return
    capped = (
        r is not None
        and np.isfinite(r)
        and getattr(metric, "rows_within", None) is not None
    )
    if capped:
        bounds = [
            (sources.size * i) // executor.shards
            for i in range(executor.shards + 1)
        ]
        tasks = [
            (sources[bounds[i] : bounds[i + 1]], r)
            for i in range(executor.shards)
            if bounds[i + 1] > bounds[i]
        ]
        for part in executor.map(_source_min, tasks, payload=metric):
            np.minimum(min_dist, part, out=min_dist)
        return
    spans = executor.spans(min_dist.size)
    tasks = [(sources, lo, hi) for lo, hi in spans]
    for (lo, hi), part in zip(spans, executor.map(_span_min, tasks, payload=metric)):
        np.minimum(min_dist[lo:hi], part, out=min_dist[lo:hi])


def greedy_scan(
    metric,
    r: float,
    seed_points: Optional[Sequence[int]] = None,
    executor: Optional[BuildExecutor] = None,
    min_dist: Optional[np.ndarray] = None,
    batch: int = _ADMIT_BATCH,
) -> Tuple[List[int], np.ndarray]:
    """The batched id-order farthest-point scan; returns ``(net, min_dist)``.

    Identical output to the sequential scan for every executor.  When
    ``min_dist`` is given it must already hold the (possibly capped, at
    some radius >= r) distances to ``seed_points``, e.g. the array a
    coarser :func:`greedy_scan` returned — the seed initialization is
    then skipped.  The returned array holds, for every node, the distance
    to the final net, capped at values >= r (exact below r).
    """
    ex = executor if executor is not None else SerialExecutor()
    n = metric.n
    net: List[int] = list(seed_points) if seed_points else []
    if min_dist is None:
        min_dist = np.full(n, np.inf)
        if net:
            min_distance_update(metric, min_dist, np.asarray(net, dtype=np.intp), r, ex)
    pos = 0
    while pos < n:
        candidates = np.flatnonzero(min_dist[pos:] >= r)
        if candidates.size == 0:
            break
        heads = (pos + candidates[:batch]).astype(np.intp)
        if heads.size == 1:
            admitted = heads
        else:
            # One block among the batch resolves intra-batch conflicts in
            # the exact order the sequential scan would visit them.
            block = _pair_block(metric, heads, r)
            survivors_min = np.full(heads.size, np.inf)
            keep: List[int] = []
            for idx in range(heads.size):
                if survivors_min[idx] >= r:
                    keep.append(idx)
                    np.minimum(survivors_min, block[idx], out=survivors_min)
            admitted = heads[keep]
        net.extend(int(v) for v in admitted)
        pos = int(heads[-1]) + 1
        # Full-span update (not just the unsettled suffix): the returned
        # array must be the capped distance-to-net for *every* node, so it
        # can seed the next finer level of a nested hierarchy.
        min_distance_update(metric, min_dist, admitted, r, ex)
    return net, min_dist


# -- ring-building blocks ----------------------------------------------


def _ball_members_task(metric, us, candidates, radius) -> List[np.ndarray]:
    """Task: ``candidates`` within the closed ball ``B_u(radius)`` per u."""
    us = np.asarray(us, dtype=np.intp)
    candidates = np.asarray(candidates, dtype=np.intp)
    out: List[np.ndarray] = []
    chunk = max(1, _BLOCK_ELEMS // max(1, candidates.size))
    for start in range(0, us.size, chunk):
        block = metric.distances_between(us[start : start + chunk], candidates)
        for i in range(block.shape[0]):
            out.append(candidates[block[i] <= radius])
    return out


def ball_members_sharded(
    metric,
    us: np.ndarray,
    candidates: np.ndarray,
    radius: float,
    executor: Optional[BuildExecutor] = None,
) -> List[np.ndarray]:
    """``candidates ∩ B_u(radius)`` for many centers, sharded over centers."""
    ex = executor if executor is not None else SerialExecutor()
    us = np.asarray(us, dtype=np.intp)
    candidates = np.asarray(candidates, dtype=np.intp)
    spans = ex.spans(us.size)
    tasks = [(us[lo:hi], candidates, radius) for lo, hi in spans]
    out: List[np.ndarray] = []
    for part in ex.map(_ball_members_task, tasks, payload=metric):
        out.extend(part)
    return out


def _nearest_members_task(metric, us, candidates) -> np.ndarray:
    """Task: the candidate nearest to each u (first index on ties)."""
    us = np.asarray(us, dtype=np.intp)
    candidates = np.asarray(candidates, dtype=np.intp)
    out = np.empty(us.size, dtype=np.intp)
    chunk = max(1, _BLOCK_ELEMS // max(1, candidates.size))
    for start in range(0, us.size, chunk):
        block = metric.distances_between(us[start : start + chunk], candidates)
        out[start : start + block.shape[0]] = candidates[np.argmin(block, axis=1)]
    return out


def nearest_members_sharded(
    metric,
    us: np.ndarray,
    candidates: np.ndarray,
    executor: Optional[BuildExecutor] = None,
) -> np.ndarray:
    """The nearest candidate per center, sharded over centers."""
    ex = executor if executor is not None else SerialExecutor()
    us = np.asarray(us, dtype=np.intp)
    candidates = np.asarray(candidates, dtype=np.intp)
    spans = ex.spans(us.size)
    tasks = [(us[lo:hi], candidates) for lo, hi in spans]
    parts = ex.map(_nearest_members_task, tasks, payload=metric)
    if not parts:
        return np.empty(0, dtype=np.intp)
    return np.concatenate(parts)
