"""The generic string-keyed registry used across layers.

Both the API layer (workloads, schemes — :mod:`repro.api.registry`) and
the query engine (evaluation plans — :mod:`repro.engine.plans`) make
their building blocks discoverable under short stable names.  This
module holds the shared machinery: a :class:`Registry` maps names to
:class:`Entry` records (the registered object plus metadata), supports
decorator-based registration, and raises a :class:`KeyError` that lists
the valid names — so a typo in a CLI flag or a config file is
self-diagnosing.

It deliberately imports nothing from the rest of the package, so any
layer may depend on it without creating a cycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple


@dataclass(frozen=True)
class Entry:
    """One registered object plus its metadata."""

    name: str
    obj: Any
    summary: str = ""
    #: free-form metadata (e.g. workload parameter defaults, problem family)
    meta: Mapping[str, Any] = field(default_factory=dict)


class Registry:
    """An ordered, string-keyed registry with decorator registration."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: Dict[str, Entry] = {}

    # -- registration --------------------------------------------------

    def register(
        self,
        name: str,
        obj: Optional[Any] = None,
        *,
        summary: str = "",
        **meta: Any,
    ):
        """Register ``obj`` under ``name``; usable as a decorator.

        ``registry.register("foo", thing)`` registers directly;
        ``@registry.register("foo")`` registers the decorated object.
        """
        if not name or not isinstance(name, str):
            raise ValueError(f"{self.kind} name must be a non-empty string")

        def _add(target: Any) -> Any:
            if name in self._entries:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered "
                    f"(to {self._entries[name].obj!r})"
                )
            doc_summary = summary
            if not doc_summary and getattr(target, "__doc__", None):
                doc_summary = target.__doc__.strip().splitlines()[0]
            self._entries[name] = Entry(name, target, doc_summary, dict(meta))
            return target

        if obj is None:
            return _add
        return _add(obj)

    def unregister(self, name: str) -> None:
        """Remove ``name`` (mainly for tests registering temporaries)."""
        self._entries.pop(name, None)

    # -- lookup --------------------------------------------------------

    def get(self, name: str) -> Entry:
        """The entry for ``name``; a KeyError listing valid names otherwise."""
        try:
            return self._entries[name]
        except KeyError:
            valid = ", ".join(sorted(self._entries)) or "<none>"
            raise KeyError(
                f"unknown {self.kind} {name!r}; valid {self.kind}s: {valid}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        """All registered names, in registration order."""
        return tuple(self._entries)

    def items(self) -> Iterator[Tuple[str, Entry]]:
        return iter(self._entries.items())

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:
        return f"Registry({self.kind!r}, {list(self._entries)})"
