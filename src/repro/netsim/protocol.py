"""Protocol surfaces for the event simulator.

Two ways to run a protocol on an :class:`~repro.netsim.network.EventNetwork`:

* :class:`EventProtocol` + :class:`EventDriver` — the event-native
  surface: handlers fire per message arrival and per timer, nothing is
  synchronized.  New protocols (the ring auditor) implement this.
* :class:`RoundAdapter` — the compatibility adapter: runs any existing
  :class:`~repro.distributed.simulator.RoundBasedProtocol` *unchanged*
  by ticking a global round cadence on the event loop.  Messages sent
  during a tick travel through the link model and are consumed by the
  first tick after they arrive; crashed nodes skip their step.  With
  zero-latency lossless links and no faults the adapter reproduces
  :class:`~repro.distributed.simulator.SynchronousNetwork` bit-for-bit
  (same per-node step order, same inbox order, same RNG stream — the
  parity property suite enforces this), and the same protocol object
  then degrades honestly under loss, latency, partitions and crashes.
"""

from __future__ import annotations

import abc
from typing import Any, Optional

from repro.distributed.simulator import Context, Message, RoundBasedProtocol, RunStats

from repro.netsim.network import EventNetwork

__all__ = ["EventDriver", "EventProtocol", "RoundAdapter"]


class EventProtocol(abc.ABC):
    """Event-native protocol: per-arrival and per-timer handlers."""

    def on_start(self, net: EventNetwork) -> None:
        """Initialize state; schedule timers; may send."""

    def on_message(self, node: int, message: Message, net: EventNetwork) -> None:
        """Handle one arrival at ``node`` (the recipient)."""

    def on_timer(self, node: int, tag: Any, net: EventNetwork) -> None:
        """Handle one timer set via :meth:`EventNetwork.set_timer`."""

    def is_done(self, net: EventNetwork) -> bool:
        """Early-termination predicate (checked between events)."""
        return False


class EventDriver:
    """Runs an :class:`EventProtocol` to quiescence, a deadline or done."""

    def __init__(self, net: EventNetwork, protocol: EventProtocol) -> None:
        self.net = net
        self.protocol = protocol
        net.set_arrival_handler(
            lambda message: protocol.on_message(message.recipient, message, net)
        )
        net.set_timer_handler(lambda node, tag: protocol.on_timer(node, tag, net))

    def run(
        self,
        until: Optional[float] = None,
        max_events: int = 1_000_000,
    ) -> RunStats:
        net, protocol = self.net, self.protocol
        protocol.on_start(net)
        net.loop.run(
            until=until,
            max_events=max_events,
            stop=lambda: protocol.is_done(net),
        )
        return RunStats(
            rounds=0,
            messages=net.messages_sent,
            probes=net.probes,
            converged=protocol.is_done(net),
            delivered=net.consumed,
            dropped=net.dropped,
            undelivered=net.undelivered(),
            wall_clock=net.now,
            seed=net.resolved_seed,
            config={"link": net.link.to_dict(), "faults": net.faults.to_dict()},
        )


class _EventContext(Context):
    """The :class:`Context` legacy protocols see, backed by the network.

    Sends route through the link/fault layers instead of a round outbox;
    probes go through Byzantine perturbation.  The RNG is the network's
    protocol generator, so the draw sequence matches the synchronous
    simulator exactly.
    """

    def __init__(self, net: EventNetwork) -> None:
        super().__init__(net.metric, net.rng)
        self._net = net

    def send(self, sender, recipient, kind, **payload) -> None:
        if not (0 <= recipient < self.n):
            raise ValueError(f"recipient {recipient} out of range")
        self.messages_sent += 1
        self._net.send(sender, recipient, kind, **payload)

    def probe(self, u, v) -> float:
        self.probes += 1
        return self._net.measure(u, v)


class RoundAdapter:
    """Drive a :class:`RoundBasedProtocol` over the event network.

    Round ``k`` fires at time ``k · round_interval``; each tick drains
    the arrivals queued since the previous tick into per-node inboxes
    and steps every *up* node in id order (exactly the synchronous
    schedule), then ``on_round_end`` and the termination check.  A
    message's round of consumption is therefore determined by its
    sampled latency — wall-clock convergence under slow links is ticks
    elapsed, not a round count on a perfect network.
    """

    def __init__(
        self,
        net: EventNetwork,
        protocol: RoundBasedProtocol,
        round_interval: float = 1.0,
        max_rounds: int = 1000,
    ) -> None:
        if round_interval <= 0:
            raise ValueError("round_interval must be positive")
        self.net = net
        self.protocol = protocol
        self.round_interval = float(round_interval)
        self.max_rounds = max_rounds
        self.ctx = _EventContext(net)
        self.rounds = 0
        self.converged = False
        self.converged_at: Optional[float] = None

    def _tick(self) -> None:
        net, ctx, protocol = self.net, self.ctx, self.protocol
        t = net.now
        for node in range(net.n):
            if not net.faults.is_up(node, t):
                continue  # down: skips its step; queued arrivals wait
            protocol.on_round(node, net.drain_pending(node), ctx)
        protocol.on_round_end(ctx)
        self.rounds += 1
        if protocol.is_done(ctx):
            self.converged = True
            self.converged_at = net.now
        elif self.rounds < self.max_rounds:
            net.loop.schedule(self.round_interval, self._tick)

    def run(self) -> RunStats:
        net, ctx, protocol = self.net, self.ctx, self.protocol
        protocol.initialize(ctx)
        self.converged = protocol.is_done(ctx)
        if self.converged:
            self.converged_at = net.now
        else:
            net.loop.schedule(self.round_interval, self._tick)
        # Stop as soon as the protocol converges: arrivals past that
        # point stay in flight and are counted undelivered, mirroring
        # the synchronous simulator's final-round outbox.
        net.loop.run(stop=lambda: self.converged)
        return RunStats(
            rounds=self.rounds,
            messages=ctx.messages_sent,
            probes=ctx.probes,
            converged=self.converged,
            delivered=net.consumed,
            dropped=net.dropped,
            undelivered=net.undelivered(),
            wall_clock=net.now,
            seed=net.resolved_seed,
            config={"link": net.link.to_dict(), "faults": net.faults.to_dict()},
        )
