"""Deterministic heapq event engine.

The core of :mod:`repro.netsim`: a single-threaded discrete-event loop.
Events are ``(time, seq, action)`` triples on a binary heap; ``seq`` is a
monotone insertion counter, so simultaneous events fire in the order they
were scheduled — the whole simulation is a pure function of the seeds,
never of hash order or wall-clock.

There is no threading and no asyncio here on purpose: the §6 experiments
need bit-for-bit reproducibility (the zero-latency parity suite diffs
protocol state against the synchronous simulator), and a heap of
callbacks is the smallest machine that provides it.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

__all__ = ["Clock", "EventLoop"]


@dataclass
class Clock:
    """Simulated time, shared by everything attached to one loop.

    Time is a unitless float ("simulated seconds"); protocols only ever
    read it, the :class:`EventLoop` advances it.
    """

    now: float = 0.0


@dataclass(order=True)
class _Event:
    when: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventLoop:
    """Run scheduled actions in deterministic ``(time, seq)`` order."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        self.clock = clock if clock is not None else Clock()
        self._heap: List[_Event] = []
        self._seq = itertools.count()
        #: total events executed over the loop's lifetime
        self.processed = 0

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def pending(self) -> int:
        """Scheduled-but-unexecuted events (cancelled ones excluded)."""
        return sum(1 for e in self._heap if not e.cancelled)

    def peek_time(self) -> Optional[float]:
        """Fire time of the next live event, or None when idle.

        Cancelled events at the heap top are discarded here (they never
        execute), keeping the peek O(log n) amortized — ``run`` calls it
        before every step.
        """
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].when if heap else None

    # -- scheduling ----------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> _Event:
        """Schedule ``action`` to fire ``delay`` after the current time."""
        return self.schedule_at(self.clock.now + delay, action)

    def schedule_at(self, when: float, action: Callable[[], None]) -> _Event:
        """Schedule ``action`` at an absolute simulated time."""
        when = float(when)
        if when < self.clock.now:
            raise ValueError(
                f"cannot schedule into the past ({when} < {self.clock.now})"
            )
        event = _Event(when, next(self._seq), action)
        heapq.heappush(self._heap, event)
        return event

    @staticmethod
    def cancel(event: _Event) -> None:
        """Mark a scheduled event dead (it stays in the heap, unexecuted)."""
        event.cancelled = True

    # -- execution -----------------------------------------------------

    def step(self) -> bool:
        """Execute the next live event; False when the heap is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.now = event.when
            self.processed += 1
            event.action()
            return True
        return False

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        stop: Optional[Callable[[], bool]] = None,
    ) -> Tuple[int, bool]:
        """Drain the heap in order.

        Stops when the heap empties, the next event lies beyond
        ``until``, ``max_events`` have been executed in this call, or
        ``stop()`` turns true (checked between events).  Returns
        ``(events_executed, exhausted)`` where ``exhausted`` is True iff
        the heap ran dry.
        """
        executed = 0
        while True:
            if stop is not None and stop():
                return executed, not self._heap
            next_time = self.peek_time()
            if next_time is None:
                return executed, True
            if until is not None and next_time > until:
                # Idle out the remaining window so `now` reflects it.
                self.clock.now = max(self.clock.now, float(until))
                return executed, False
            if max_events is not None and executed >= max_events:
                return executed, False
            self.step()
            executed += 1
