"""Named degradation scenarios and the measurement harness over them.

A :class:`Scenario` is a declarative description of one network
environment — loss, latency, jitter, crash schedules, partitions,
Byzantine fractions — that expands into a concrete
:class:`~repro.netsim.links.LinkModel` + :class:`~repro.netsim.faults.FaultPlan`
for a given node count and seed.  The registry (:data:`SCENARIOS`) holds
the suite cells: ``ideal`` (the parity baseline), ``lossy``,
``partition``, ``byzantine`` and ``crash-churn``.

:func:`measure_scenario` is the whole §6 story under one environment:
gossip ring discovery (coverage/recall + wall-clock + delivery rate),
distributed r-net construction (validity + decided fraction), the ring
audit (Byzantine detection/false-positive rates) and ring-table distance
estimates scored against the fitted scheme's ``(stretch, δ)`` guarantee.

Seeding: every random choice derives from the one ``seed`` argument.
The protocol generator is ``ensure_rng(seed)`` itself — so the ``ideal``
scenario at seed ``s`` replays the synchronous run at seed ``s`` exactly —
and the link model and fault plan get spawned children of the same
entropy, so they perturb the environment without touching the protocol
stream.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.metrics.base import MetricSpace
from repro.registry import Registry
from repro.rng import SeedLike, ensure_rng, rng_entropy

from repro.netsim.audit import RingAuditProtocol
from repro.netsim.faults import Byzantine, Crash, FaultPlan, Partition, sample_nodes
from repro.netsim.links import LinkModel, make_latency
from repro.netsim.network import EventNetwork
from repro.netsim.protocol import EventDriver, RoundAdapter

__all__ = ["SCENARIOS", "Scenario", "measure_scenario"]


@dataclass(frozen=True)
class Scenario:
    """One network environment, expandable for any (n, seed)."""

    name: str
    summary: str = ""
    # link behaviour
    drop_rate: float = 0.0
    latency: str = "constant"
    latency_mean: float = 0.0
    jitter: float = 0.0
    # crash/restart schedule
    crash_fraction: float = 0.0
    crash_at: float = 2.0
    restart_after: Optional[float] = None
    # partition window
    partition_fraction: float = 0.0
    partition_start: float = 2.0
    partition_end: float = 6.0
    # Byzantine population
    byzantine_fraction: float = 0.0
    byzantine_mode: str = "mixed"
    inflate: Tuple[float, float] = (2.0, 4.0)

    # -- expansion ------------------------------------------------------

    def link(self, seed: SeedLike = None) -> LinkModel:
        if self.latency == "constant":
            latency = make_latency("constant", value=self.latency_mean)
        elif self.latency == "uniform":
            latency = make_latency("uniform", lo=0.0, hi=2.0 * self.latency_mean)
        else:
            latency = make_latency(self.latency, mean=self.latency_mean)
        return LinkModel(
            latency=latency,
            drop_rate=self.drop_rate,
            jitter=self.jitter,
            seed=seed,
        )

    def faults(
        self, n: int, seed: SeedLike = None, protect: Iterable[int] = ()
    ) -> FaultPlan:
        """Draw the concrete fault schedule for ``n`` nodes.

        ``protect`` shields nodes from crash/Byzantine selection — the
        round adapter protects node ``n-1``, whose step advances the
        gossip protocol's round counter; crashing it would stall the
        round clock rather than degrade the protocol.
        """
        from repro.distributed.trace import ChurnEvent, ChurnTrace

        rng = ensure_rng(seed)
        shielded = frozenset(protect)
        eligible = [u for u in range(n) if u not in shielded]

        # Crash churn is expressed as a shared ChurnTrace (leave at
        # crash_at, rejoin restart_after later) and the Crash windows are
        # derived from it — the same spec the distributed epoch
        # simulation and the churn-stream suite consume.
        crashes = []
        churn_trace = None
        k = int(round(self.crash_fraction * n))
        if k:
            victims = sample_nodes(rng, eligible, k)
            events = [ChurnEvent(at=self.crash_at, leaves=victims)]
            if self.restart_after is not None:
                events.append(
                    ChurnEvent(
                        at=self.crash_at + self.restart_after, joins=victims
                    )
                )
            churn_trace = ChurnTrace(
                n=n,
                events=tuple(events),
                seed=None,
                rate=float(self.crash_fraction),
            )
            crashes = [
                Crash(node, down_at, up_at)
                for node, down_at, up_at in churn_trace.crash_windows()
            ]

        partitions = []
        k = int(round(self.partition_fraction * n))
        if k:
            group = sample_nodes(rng, range(n), k)
            partitions = [
                Partition(group, self.partition_start, self.partition_end)
            ]

        byzantine = None
        k = int(round(self.byzantine_fraction * n))
        if k:
            byzantine = Byzantine(
                sample_nodes(rng, eligible, k),
                mode=self.byzantine_mode,
                inflate=self.inflate,
            )

        return FaultPlan(
            crashes=tuple(crashes),
            partitions=tuple(partitions),
            byzantine=byzantine,
            seed=int(rng.integers(2**31)),
            churn_trace=churn_trace,
        )

    def network(self, metric: MetricSpace, seed: SeedLike = None) -> EventNetwork:
        """A ready event network: protocol RNG on the main stream, link
        and fault randomness on spawned children of the same entropy."""
        rng = ensure_rng(seed)
        link_ss, fault_ss = np.random.SeedSequence(rng_entropy(rng)).spawn(2)
        return EventNetwork(
            metric,
            link=self.link(np.random.default_rng(link_ss)),
            faults=self.faults(
                metric.n, np.random.default_rng(fault_ss), protect=(metric.n - 1,)
            ),
            seed=rng,
        )

    def to_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        out["inflate"] = list(self.inflate)
        return out


#: The scenario cells the netsim suites sweep.
SCENARIOS = Registry("scenario")

SCENARIOS.register(
    "ideal",
    Scenario("ideal", "zero-latency lossless baseline (parity with the "
                      "synchronous simulator)"),
    summary="zero-latency lossless baseline",
)
SCENARIOS.register(
    "lossy",
    Scenario(
        "lossy",
        "8% loss, uniform latency, reordering jitter",
        drop_rate=0.08,
        latency="uniform",
        latency_mean=0.4,
        jitter=0.2,
    ),
    summary="8% loss, uniform latency, reordering jitter",
)
SCENARIOS.register(
    "partition",
    Scenario(
        "partition",
        "35% of nodes split off during rounds [2, 6)",
        partition_fraction=0.35,
        partition_start=2.0,
        partition_end=6.0,
    ),
    summary="35% of nodes split off during rounds [2, 6)",
)
SCENARIOS.register(
    "byzantine",
    Scenario(
        "byzantine",
        "12% Byzantine nodes (half distance liars, half membership liars)",
        byzantine_fraction=0.12,
        byzantine_mode="mixed",
    ),
    summary="12% Byzantine: distance + membership liars",
)
SCENARIOS.register(
    "crash-churn",
    Scenario(
        "crash-churn",
        "25% of nodes crash at round 2 and warm-restart 3 rounds later",
        crash_fraction=0.25,
        crash_at=2.0,
        restart_after=3.0,
    ),
    summary="25% crash at round 2, warm restart 3 rounds later",
)


def _net_radius(metric: MetricSpace) -> float:
    """A mid-scale r-net radius for the metric (half the scale ladder)."""
    return metric.min_distance() * 2.0 ** max(0, metric.log_aspect_ratio() // 2)


def measure_scenario(
    metric: MetricSpace,
    scenario: Scenario,
    seed: int = 0,
    gossip_rounds: int = 8,
    ring_capacity: int = 6,
    audit_pairs: int = 64,
    stretch: Optional[float] = None,
    delta: Optional[float] = None,
) -> Dict[str, Any]:
    """Run the full §6 measurement battery under one scenario.

    Returns a flat dict (probe-friendly): gossip convergence/coverage,
    r-net construction health, audit detection statistics and ring-table
    estimate quality vs the scheme guarantee when ``(stretch, delta)``
    is given.
    """
    from repro.distributed import (
        DistributedNetProtocol,
        GossipRingProtocol,
        ring_coverage,
    )
    from repro.metrics.nets import is_r_net

    out: Dict[str, Any] = {"scenario": scenario.to_dict(), "seed": seed}

    # 1. Gossip ring discovery: coverage under degradation + wall-clock.
    gossip = GossipRingProtocol(
        bootstrap=3, exchange=8, ring_capacity=ring_capacity, rounds=gossip_rounds
    )
    net = scenario.network(metric, seed)
    # Churn provenance: the exact schedule this run's crash windows came
    # from (every later network at the same seed replays it bit-for-bit).
    if net.faults.churn_trace is not None:
        out["churn_trace"] = net.faults.churn_trace.describe()
    adapter = RoundAdapter(net, gossip, max_rounds=10 * gossip_rounds + 10)
    stats = adapter.run()
    coverage, recall = ring_coverage(metric, gossip, adapter.ctx)
    out.update(
        gossip_converged=bool(stats.converged),
        gossip_wall_clock=float(stats.wall_clock),
        gossip_rounds=int(stats.rounds),
        gossip_messages=int(stats.messages),
        gossip_delivery_rate=float(net.delivery_rate()),
        gossip_dropped=int(stats.dropped),
        gossip_coverage=float(coverage),
        gossip_recall=float(recall),
        resolved_seed=stats.seed,
    )

    # 2. Distributed r-net construction: does symmetry breaking survive?
    radius = _net_radius(metric)
    netproto = DistributedNetProtocol(r=radius)
    net2 = scenario.network(metric, seed)
    adapter2 = RoundAdapter(net2, netproto, max_rounds=120)
    stats2 = adapter2.run()
    members = netproto.net_members(adapter2.ctx)
    decided = sum(
        1 for u in range(metric.n) if adapter2.ctx.state[u]["status"] != "live"
    )
    out.update(
        net_converged=bool(stats2.converged),
        net_wall_clock=float(stats2.wall_clock),
        net_delivery_rate=float(net2.delivery_rate()),
        net_decided_fraction=decided / metric.n,
        net_size=len(members),
        net_valid=bool(members and is_r_net(metric, members, radius)),
    )

    # 3. Ring audit on the gossip tables — the same seed replays the
    # identical fault plan, so the audited Byzantine set is the one that
    # corrupted the tables in step 1.
    audit_net = scenario.network(metric, seed)
    audit = RingAuditProtocol(
        {u: gossip.rings_of(adapter.ctx, u) for u in range(metric.n)},
        base=metric.min_distance(),
        levels=metric.log_aspect_ratio() + 1,
    )
    EventDriver(audit_net, audit).run()
    report = audit.report(byzantine=audit_net.faults.byzantine_nodes())
    out.update(
        audit_detection_rate=float(report["detection_rate"]),
        audit_false_positive_rate=float(report["false_positive_rate"]),
        audit_flagged=report["flagged"],
        audit_issued=int(report["audits_issued"]),
        audit_answered=int(report["audits_answered"]),
        audit_mean_overlap_honest=float(report["mean_overlap_honest"]),
        audit_mean_overlap_byzantine=float(report["mean_overlap_byzantine"]),
    )

    # 4. Estimate quality: common-ring-member triangulation vs the truth.
    pair_rng = np.random.default_rng([seed, 97])
    ratios = []
    covered = within = 0
    for _ in range(audit_pairs):
        u = int(pair_rng.integers(metric.n))
        v = int(pair_rng.integers(metric.n - 1))
        if v >= u:
            v += 1
        known_u = _known_of(adapter.ctx, u)
        known_v = _known_of(adapter.ctx, v)
        common = known_u.keys() & known_v.keys()
        if not common:
            continue
        covered += 1
        est = min(known_u[w] + known_v[w] for w in common)
        ratio = est / metric.distance(u, v)
        ratios.append(ratio)
        if stretch is not None and ratio <= stretch:
            within += 1
    out.update(
        estimate_coverage=covered / audit_pairs,
        estimate_mean_ratio=float(np.mean(ratios)) if ratios else float("nan"),
        estimate_max_ratio=float(np.max(ratios)) if ratios else float("nan"),
    )
    if stretch is not None:
        out["estimate_within_stretch"] = within / audit_pairs
        out["guarantee_stretch"] = float(stretch)
    if delta is not None:
        out["guarantee_delta"] = float(delta)
        if stretch is not None:
            out["estimate_meets_guarantee"] = bool(
                within / audit_pairs >= 1.0 - delta
            )
    return out


def _known_of(ctx, u: int) -> Dict[int, float]:
    """All (node, measured distance) pairs ``u`` filed into rings."""
    merged: Dict[int, float] = {}
    for ring in ctx.state[u]["rings"].values():
        merged.update(ring)
    return merged
