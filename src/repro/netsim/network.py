"""The event network: fault-aware transport over the event loop.

:class:`EventNetwork` is the transport every netsim run shares: sends go
through the :class:`~repro.netsim.faults.FaultPlan` (partitions, crashed
recipients, Byzantine payload tampering) and the
:class:`~repro.netsim.links.LinkModel` (loss, latency, jitter), then
arrive as deliver events on the :class:`~repro.netsim.engine.EventLoop`.
Probes are metric queries filtered through Byzantine distance
perturbation.

Accounting is total: every sent message ends up in exactly one of
``consumed`` (handed to a protocol step), ``dropped_link`` /
``dropped_partition`` / ``dropped_crash`` (network discarded it) or the
in-flight/pending remainder (:meth:`undelivered` at the end of a run) —
the satellite fix to the synchronous simulator's silent folding,
enforced here by construction.

Protocol RNG (``rng``) and network RNG (inside the link model / fault
plan) are separate generators, so an ideal network leaves the protocol's
draw sequence identical to the synchronous simulator's.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, List, Optional

from repro.distributed.simulator import Message
from repro.metrics.base import MetricSpace
from repro.rng import SeedLike, ensure_rng, rng_entropy

from repro.netsim.engine import EventLoop
from repro.netsim.faults import FaultPlan
from repro.netsim.links import LinkModel

__all__ = ["EventNetwork"]


class EventNetwork:
    """Message transport + fault filter + counters for one run."""

    def __init__(
        self,
        metric: MetricSpace,
        link: Optional[LinkModel] = None,
        faults: Optional[FaultPlan] = None,
        seed: SeedLike = None,
    ) -> None:
        self.metric = metric
        self.n = metric.n
        self.loop = EventLoop()
        self.link = link if link is not None else LinkModel()
        self.faults = faults if faults is not None else FaultPlan()
        #: protocol-facing RNG (the link/fault plans own separate ones)
        self.rng = ensure_rng(seed)
        self.resolved_seed = rng_entropy(self.rng)
        #: per-node protocol state for event-native protocols
        self.state: Dict[int, Dict[str, Any]] = defaultdict(dict)

        self.messages_sent = 0
        self.consumed = 0
        self.dropped_link = 0
        self.dropped_partition = 0
        self.dropped_crash = 0
        self.probes = 0
        self._in_flight = 0
        self._pending: Dict[int, List[Message]] = defaultdict(list)
        self._on_arrival: Optional[Callable[[Message], None]] = None
        self._on_timer: Optional[Callable[[int, Any], None]] = None

    # -- clock ---------------------------------------------------------

    @property
    def now(self) -> float:
        return self.loop.now

    # -- wiring (drivers install their dispatch) -----------------------

    def set_arrival_handler(self, handler: Callable[[Message], None]) -> None:
        """Dispatch arrivals immediately (event-native protocols); when
        unset, arrivals queue per recipient until :meth:`drain_pending`."""
        self._on_arrival = handler

    def set_timer_handler(self, handler: Callable[[int, Any], None]) -> None:
        self._on_timer = handler

    # -- transport -----------------------------------------------------

    def send(self, sender: int, recipient: int, kind: str, **payload: Any) -> None:
        """Transmit one message through the fault plan and link model."""
        if not (0 <= recipient < self.n):
            raise ValueError(f"recipient {recipient} out of range")
        self.messages_sent += 1
        t = self.loop.now
        if self.faults.severed(sender, recipient, t):
            self.dropped_partition += 1
            return
        distance = (
            self.metric.distance(sender, recipient)
            if self.link.distance_factor
            else 0.0
        )
        delay = self.link.transit(sender, recipient, distance)
        if delay is None:
            self.dropped_link += 1
            return
        payload = self.faults.tamper_payload(sender, payload, self.n)
        message = Message(sender, recipient, kind, payload)
        self._in_flight += 1
        self.loop.schedule(delay, lambda: self._arrive(message))

    def _arrive(self, message: Message) -> None:
        self._in_flight -= 1
        t = self.loop.now
        if self.faults.severed(message.sender, message.recipient, t):
            self.dropped_partition += 1
            return
        if not self.faults.is_up(message.recipient, t):
            self.dropped_crash += 1
            return
        if self._on_arrival is not None:
            self.consumed += 1
            self._on_arrival(message)
        else:
            self._pending[message.recipient].append(message)

    def drain_pending(self, node: int) -> List[Message]:
        """Pop the queued arrivals for one node (round-adapter path)."""
        inbox = self._pending.pop(node, [])
        self.consumed += len(inbox)
        return inbox

    # -- measurement ---------------------------------------------------

    def probe(self, u: int, v: int) -> float:
        """A counted distance measurement by ``u`` against ``v``."""
        self.probes += 1
        return self.measure(u, v)

    def measure(self, u: int, v: int) -> float:
        """Uncounted measurement (adapters keep their own probe count):
        the true distance unless ``v`` Byzantine-misreports to ``u``."""
        return self.faults.perturb_probe(u, v, self.metric.distance(u, v))

    # -- timers --------------------------------------------------------

    def set_timer(self, node: int, delay: float, tag: Any) -> None:
        """Fire ``on_timer(node, tag)`` after ``delay`` (skipped while
        the node is crashed at fire time)."""

        def fire() -> None:
            if self._on_timer is None or not self.faults.is_up(node, self.loop.now):
                return
            self._on_timer(node, tag)

        self.loop.schedule(delay, fire)

    # -- accounting ----------------------------------------------------

    @property
    def dropped(self) -> int:
        return self.dropped_link + self.dropped_partition + self.dropped_crash

    def undelivered(self) -> int:
        """Messages neither consumed nor dropped: still in flight on the
        loop plus queued arrivals no step ever read."""
        return self._in_flight + sum(len(q) for q in self._pending.values())

    def delivery_rate(self) -> float:
        """Fraction of sent messages a protocol step actually consumed."""
        return self.consumed / self.messages_sent if self.messages_sent else 1.0

    def up_nodes(self) -> List[int]:
        t = self.loop.now
        return [u for u in range(self.n) if self.faults.is_up(u, t)]
