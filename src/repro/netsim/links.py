"""Link models: per-message latency, loss and reordering jitter.

A :class:`LinkModel` owns its own :class:`numpy.random.Generator`
(seeded through :func:`repro.rng.ensure_rng`), so network randomness
never perturbs the protocol's RNG stream — the zero-latency parity
guarantee against :class:`~repro.distributed.simulator.SynchronousNetwork`
depends on that separation.

Latency distributions are pluggable (:data:`LATENCIES`); on top of the
sampled latency a link can add a uniform reordering ``jitter`` (two
messages sent in order may arrive swapped) and scale with the metric
distance of the endpoints (``distance_factor`` — the paper's metric *is*
round-trip time, so propagation proportional to d(u, v) is the natural
model).
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional

from repro.rng import SeedLike, ensure_rng

__all__ = [
    "ConstantLatency",
    "ExponentialLatency",
    "LATENCIES",
    "LatencyModel",
    "LinkModel",
    "UniformLatency",
    "make_latency",
]


class LatencyModel(abc.ABC):
    """One-way propagation delay distribution for a message."""

    @abc.abstractmethod
    def sample(self, rng, u: int, v: int) -> float:
        """Draw one latency for a ``u → v`` message."""

    @abc.abstractmethod
    def to_dict(self) -> Dict[str, Any]:
        """JSON form (recorded in run provenance)."""


class ConstantLatency(LatencyModel):
    """Every message takes exactly ``value`` time units (default 0)."""

    def __init__(self, value: float = 0.0) -> None:
        if value < 0:
            raise ValueError("latency must be non-negative")
        self.value = float(value)

    def sample(self, rng, u: int, v: int) -> float:
        return self.value

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "constant", "value": self.value}


class UniformLatency(LatencyModel):
    """Latency uniform in ``[lo, hi]``."""

    def __init__(self, lo: float, hi: float) -> None:
        if lo < 0 or hi < lo:
            raise ValueError("need 0 <= lo <= hi")
        self.lo, self.hi = float(lo), float(hi)

    def sample(self, rng, u: int, v: int) -> float:
        return float(rng.uniform(self.lo, self.hi))

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "uniform", "lo": self.lo, "hi": self.hi}


class ExponentialLatency(LatencyModel):
    """Exponential latency with the given mean (heavy queueing tail)."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise ValueError("mean must be positive")
        self.mean = float(mean)

    def sample(self, rng, u: int, v: int) -> float:
        return float(rng.exponential(self.mean))

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": "exponential", "mean": self.mean}


#: Registered latency kinds, keyed by the names scenarios reference.
LATENCIES = {
    "constant": ConstantLatency,
    "uniform": UniformLatency,
    "exponential": ExponentialLatency,
}


def make_latency(kind: str, **params: Any) -> LatencyModel:
    """Build a latency model by registered name."""
    try:
        cls = LATENCIES[kind]
    except KeyError:
        raise KeyError(
            f"unknown latency kind {kind!r}; known: {sorted(LATENCIES)}"
        ) from None
    return cls(**params)


class LinkModel:
    """Per-message transit behaviour: loss, latency, reordering jitter.

    ``transit(u, v, distance)`` samples one traversal and returns the
    total delay, or ``None`` when the message is dropped.  The delay is

        ``latency.sample() + U(0, jitter) + distance_factor · d(u, v)``

    With the defaults (zero constant latency, no drop, no jitter) the
    model is the ideal network: nothing is drawn from the RNG and every
    message arrives instantly — the configuration under which the event
    engine reproduces the synchronous simulator bit-for-bit.
    """

    def __init__(
        self,
        latency: Optional[LatencyModel] = None,
        drop_rate: float = 0.0,
        jitter: float = 0.0,
        distance_factor: float = 0.0,
        seed: SeedLike = None,
    ) -> None:
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError("drop_rate must be in [0, 1)")
        if jitter < 0 or distance_factor < 0:
            raise ValueError("jitter/distance_factor must be non-negative")
        self.latency = latency if latency is not None else ConstantLatency(0.0)
        self.drop_rate = float(drop_rate)
        self.jitter = float(jitter)
        self.distance_factor = float(distance_factor)
        self.rng = ensure_rng(seed)

    def transit(self, u: int, v: int, distance: float = 0.0) -> Optional[float]:
        """Sample one ``u → v`` traversal: delay, or None if dropped."""
        if self.drop_rate and self.rng.random() < self.drop_rate:
            return None
        delay = self.latency.sample(self.rng, u, v)
        if self.jitter:
            delay += float(self.rng.uniform(0.0, self.jitter))
        if self.distance_factor:
            delay += self.distance_factor * float(distance)
        return delay

    def to_dict(self) -> Dict[str, Any]:
        return {
            "latency": self.latency.to_dict(),
            "drop_rate": self.drop_rate,
            "jitter": self.jitter,
            "distance_factor": self.distance_factor,
        }
