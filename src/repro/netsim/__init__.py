"""Event-driven network simulation with fault injection.

The §6 protocols were developed on a synchronous, perfectly reliable
round model (:mod:`repro.distributed.simulator`).  Real overlays run on
networks that drop, delay, reorder, partition — and among participants
that lie.  This subpackage is the bridge:

* :mod:`~repro.netsim.engine` — a deterministic heapq event loop
  (``(time, seq)`` ordering; the whole simulation is a pure function of
  its seeds);
* :mod:`~repro.netsim.links` — pluggable per-message latency, loss and
  reordering jitter;
* :mod:`~repro.netsim.faults` — crash/restart schedules, partitions,
  Byzantine distance/membership liars;
* :mod:`~repro.netsim.network` — the fault-aware transport with total
  message accounting (sent = consumed + dropped + undelivered);
* :mod:`~repro.netsim.protocol` — the event-native protocol surface and
  the :class:`RoundAdapter` that runs every existing
  :class:`~repro.distributed.simulator.RoundBasedProtocol` unchanged
  (bit-for-bit equal to the synchronous simulator on an ideal network);
* :mod:`~repro.netsim.audit` — suffix-walk spot checks that catch ring
  table liars via per-prover overlap statistics;
* :mod:`~repro.netsim.scenarios` — named degradation scenarios and the
  :func:`measure_scenario` battery the experiment suites run.
"""

from repro.netsim.engine import Clock, EventLoop
from repro.netsim.links import (
    ConstantLatency,
    ExponentialLatency,
    LATENCIES,
    LatencyModel,
    LinkModel,
    UniformLatency,
    make_latency,
)
from repro.netsim.faults import Byzantine, Crash, FaultPlan, Partition
from repro.netsim.network import EventNetwork
from repro.netsim.protocol import EventDriver, EventProtocol, RoundAdapter
from repro.netsim.audit import RingAuditProtocol, run_audit, suffix_walk
from repro.netsim.scenarios import SCENARIOS, Scenario, measure_scenario

__all__ = [
    "Byzantine",
    "Clock",
    "ConstantLatency",
    "Crash",
    "EventDriver",
    "EventLoop",
    "EventNetwork",
    "EventProtocol",
    "ExponentialLatency",
    "FaultPlan",
    "LATENCIES",
    "LatencyModel",
    "LinkModel",
    "Partition",
    "RingAuditProtocol",
    "RoundAdapter",
    "SCENARIOS",
    "Scenario",
    "UniformLatency",
    "make_latency",
    "measure_scenario",
    "run_audit",
    "suffix_walk",
]
