"""Probabilistic spot-check auditing of claimed ring tables.

The trust question §6 leaves open: in a deployed overlay a node's ring
table is *self-reported*.  A Byzantine participant can inflate the
distances measured against it (filing itself into far annuli everywhere)
or hand out fabricated membership lists during gossip.  Neither is
directly observable — but both are *statistically* checkable, because a
ring is a falsifiable claim: "these ids lie in annulus j around me".

:class:`RingAuditProtocol` runs suffix-walk spot checks over the event
network:

* each verifier fires a few randomized audits: pick a prover, a random
  scale ``j`` and a random start id, and ask for the suffix walk of the
  prover's ring-``j`` table — the ``length`` member ids at or after
  ``start`` in sorted id order (wrapping).  Randomizing the suffix means
  the prover cannot precompute which slice of a fabricated table will be
  inspected;
* the prover answers with a forward scan of its sorted ring — an honest
  answer is a cheap sorted-array scan, and the reply is a plain id list,
  so membership liars corrupt it in transit exactly like their gossip;
* the verifier re-measures each claimed member **against the prover**
  (asker = member, target = prover — the direction a distance liar must
  answer) and checks the measurement lands in annulus ``j``.  Per-pair
  deterministic lies are self-consistent to one asker but diverge across
  askers, which is exactly what the pooled per-prover overlap statistic
  catches.

A prover whose pooled overlap falls below ``overlap_threshold`` (with at
least ``min_checks`` samples) is flagged.  :meth:`report` scores flags
against the ground-truth Byzantine set: detection rate, false-positive
rate, mean honest/byzantine overlap.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from collections import defaultdict
from typing import Any, Dict, FrozenSet, List, Mapping, Optional

from repro.distributed.simulator import Message

from repro.netsim.network import EventNetwork
from repro.netsim.protocol import EventDriver, EventProtocol

__all__ = ["RingAuditProtocol", "run_audit", "suffix_walk"]


def suffix_walk(members: List[int], start: int, length: int) -> List[int]:
    """The ``length`` ids at or after ``start`` in sorted order, wrapping.

    ``members`` must be sorted.  This is the prover's whole workload: one
    bisect plus a forward scan — honest answers are cheap, which is what
    makes frequent spot checks affordable.
    """
    if not members or length <= 0:
        return []
    if len(members) <= length:
        return list(members)  # the whole table, nothing to wrap into twice
    idx = bisect_left(members, start)
    walk = members[idx : idx + length]
    if len(walk) < length:
        walk += members[: length - len(walk)]
    return walk[:length]


class RingAuditProtocol(EventProtocol):
    """Cross-check claimed ring tables via randomized suffix queries."""

    def __init__(
        self,
        rings: Mapping[int, Mapping[int, Mapping[int, float]]],
        base: float,
        levels: Optional[int] = None,
        audits_per_node: int = 6,
        walk_length: int = 6,
        window: float = 8.0,
        overlap_threshold: float = 0.5,
        min_checks: int = 4,
    ) -> None:
        if base <= 0:
            raise ValueError("base must be positive")
        self.rings = rings
        self.base = float(base)
        if levels is None:
            levels = 1 + max(
                (max(table) for table in rings.values() if table), default=0
            )
        self.levels = max(1, levels)
        self.audits_per_node = audits_per_node
        self.walk_length = walk_length
        self.window = float(window)
        self.overlap_threshold = overlap_threshold
        self.min_checks = min_checks
        self.audits_issued = 0
        self.audits_answered = 0
        self.checks: Dict[int, int] = defaultdict(int)
        self.hits: Dict[int, int] = defaultdict(int)

    # -- annulus membership (mirrors GossipRingProtocol._ring_index) ----

    def _band(self, d: float) -> int:
        if d <= self.base:
            return 0
        return int(math.ceil(math.log2(d / self.base)))

    # -- event handlers -------------------------------------------------

    def on_start(self, net: EventNetwork) -> None:
        for u in range(net.n):
            for k in range(self.audits_per_node):
                delay = float(net.rng.uniform(0.0, self.window))
                net.set_timer(u, delay, k)

    def on_timer(self, node: int, tag: Any, net: EventNetwork) -> None:
        prover = int(net.rng.integers(net.n - 1))
        if prover >= node:
            prover += 1  # uniform over everyone but the verifier
        # Query a scale the verifier's own table populates: the verifier
        # cannot see the prover's table, but annulus occupancy is a
        # property of the metric, so its own non-empty scales are the
        # ones likely to yield a non-empty (checkable) walk.
        own = sorted(
            j for j, table in self.rings.get(node, {}).items() if table
        )
        if own:
            scale = int(own[int(net.rng.integers(len(own)))])
        else:
            scale = int(net.rng.integers(self.levels))
        start = int(net.rng.integers(net.n))
        self.audits_issued += 1
        net.send(
            node,
            prover,
            "audit_query",
            scale=scale,
            start=start,
            length=self.walk_length,
            reply_to=node,
        )

    def on_message(self, node: int, message: Message, net: EventNetwork) -> None:
        payload = message.payload
        if message.kind == "audit_query":
            members = sorted(self.rings.get(node, {}).get(payload["scale"], {}))
            net.send(
                node,
                payload["reply_to"],
                "audit_reply",
                scale=payload["scale"],
                nodes=suffix_walk(members, payload["start"], payload["length"]),
            )
        elif message.kind == "audit_reply":
            self.audits_answered += 1
            prover, scale = message.sender, payload["scale"]
            for w in payload["nodes"]:
                if w == prover or not 0 <= w < net.n:
                    continue
                d = net.probe(w, prover)
                self.checks[prover] += 1
                if self._band(d) == scale:
                    self.hits[prover] += 1

    # -- verdicts -------------------------------------------------------

    def overlap(self, prover: int) -> float:
        checks = self.checks.get(prover, 0)
        return self.hits.get(prover, 0) / checks if checks else float("nan")

    def flagged(self) -> FrozenSet[int]:
        return frozenset(
            p
            for p, checks in self.checks.items()
            if checks >= self.min_checks
            and self.hits.get(p, 0) / checks < self.overlap_threshold
        )

    def report(self, byzantine: FrozenSet[int] = frozenset()) -> Dict[str, Any]:
        """Score the audit against the ground-truth Byzantine set."""
        flagged = self.flagged()
        audited = {p for p, c in self.checks.items() if c >= self.min_checks}
        honest = audited - byzantine
        byz_audited = audited & byzantine
        overlaps = {p: self.overlap(p) for p in audited}

        def _mean(group: FrozenSet[int]) -> float:
            vals = [overlaps[p] for p in group]
            return sum(vals) / len(vals) if vals else float("nan")

        return {
            "audits_issued": self.audits_issued,
            "audits_answered": self.audits_answered,
            "provers_audited": len(audited),
            "checks_total": sum(self.checks.values()),
            "flagged": sorted(flagged),
            "detection_rate": (
                len(flagged & byz_audited) / len(byz_audited) if byz_audited else 1.0
            ),
            "false_positive_rate": (
                len(flagged & honest) / len(honest) if honest else 0.0
            ),
            "mean_overlap_honest": _mean(frozenset(honest)),
            "mean_overlap_byzantine": _mean(frozenset(byz_audited)),
        }


def run_audit(
    net: EventNetwork,
    rings: Mapping[int, Mapping[int, Mapping[int, float]]],
    base: float,
    **kwargs: Any,
) -> RingAuditProtocol:
    """Run a full audit round on ``net`` and return the scored protocol."""
    protocol = RingAuditProtocol(rings, base, **kwargs)
    EventDriver(net, protocol).run()
    return protocol
