"""Fault injection: crash/restart schedules, partitions, Byzantine nodes.

A :class:`FaultPlan` is consulted by the event network at every send,
delivery and probe.  Three fault families compose freely:

* :class:`Crash` — a node is down during ``[down_at, up_at)``: it takes
  no protocol steps and messages arriving for it are lost.  Restarts are
  warm (protocol state survives — modeling a process that was
  unreachable, not wiped); what a crashed node *loses* is every message
  sent to it while down.
* :class:`Partition` — during ``[start, end)`` messages crossing the
  group boundary are cut (checked at send *and* at arrival, so a long
  in-flight message is severed when the partition rises mid-transit).
* :class:`Byzantine` — misbehaving nodes, two modes straight from the
  ring-table setting: ``"distance"`` liars distort every RTT measured
  *against* them (each interrogator gets its own consistent lie, drawn
  deterministically from ``(seed, liar, asker)`` — consistency per asker
  makes the lie plausible, divergence across askers is what overlap
  audits catch); ``"membership"`` liars replace every list of node ids
  they send (gossip samples, audit walks) with fabricated ids.

Everything is seeded through :func:`repro.rng.ensure_rng`; probe
perturbation is a pure function of ``(seed, liar, asker)`` so results
never depend on probe order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.rng import ensure_rng

if TYPE_CHECKING:  # pragma: no cover - annotation only, avoids a cycle
    from repro.distributed.trace import ChurnTrace

__all__ = ["Byzantine", "Crash", "FaultPlan", "Partition"]


@dataclass(frozen=True)
class Crash:
    """One node outage window ``[down_at, up_at)`` (default: forever)."""

    node: int
    down_at: float
    up_at: float = math.inf

    def __post_init__(self) -> None:
        if self.up_at <= self.down_at:
            raise ValueError("up_at must be after down_at")

    def down(self, t: float) -> bool:
        return self.down_at <= t < self.up_at

    def to_dict(self) -> Dict[str, Any]:
        up = None if math.isinf(self.up_at) else self.up_at
        return {"node": self.node, "down_at": self.down_at, "up_at": up}


@dataclass(frozen=True)
class Partition:
    """A two-sided network split active during ``[start, end)``.

    ``group`` is one side; everything else is the other.  Messages with
    endpoints on opposite sides are cut while the partition is up.
    """

    group: Tuple[int, ...]
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("partition end must be after start")

    def severs(self, u: int, v: int, t: float) -> bool:
        if not self.start <= t < self.end:
            return False
        return (u in self.group) != (v in self.group)

    def to_dict(self) -> Dict[str, Any]:
        return {"group": list(self.group), "start": self.start, "end": self.end}


@dataclass(frozen=True)
class Byzantine:
    """Misbehaving nodes and how they lie.

    ``mode``: ``"distance"``, ``"membership"`` or ``"mixed"`` (the first
    half of ``nodes`` lies about distances, the rest about membership).
    ``inflate`` bounds the distance lie: each (liar, asker) pair draws a
    factor uniform in ``[inflate[0], inflate[1]]``.  The default lower
    bound of 2 guarantees the lie crosses a power-of-two annulus
    boundary, the worst case for the liar under a ring audit.
    """

    nodes: Tuple[int, ...]
    mode: str = "distance"
    inflate: Tuple[float, float] = (2.0, 4.0)

    def __post_init__(self) -> None:
        if self.mode not in ("distance", "membership", "mixed"):
            raise ValueError(f"unknown byzantine mode {self.mode!r}")
        lo, hi = self.inflate
        if lo < 1.0 or hi < lo:
            raise ValueError("need 1 <= inflate[0] <= inflate[1]")

    @property
    def distance_liars(self) -> Tuple[int, ...]:
        if self.mode == "distance":
            return self.nodes
        if self.mode == "membership":
            return ()
        return self.nodes[: (len(self.nodes) + 1) // 2]

    @property
    def membership_liars(self) -> Tuple[int, ...]:
        if self.mode == "membership":
            return self.nodes
        if self.mode == "distance":
            return ()
        return self.nodes[(len(self.nodes) + 1) // 2 :]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "nodes": list(self.nodes),
            "mode": self.mode,
            "inflate": list(self.inflate),
        }


@dataclass
class FaultPlan:
    """The composed fault schedule one network run executes.

    ``churn_trace`` is the shared :class:`~repro.distributed.trace.ChurnTrace`
    the crash windows were derived from, when the scenario churns
    membership — carried for provenance so a measured run can name the
    exact schedule (and other churn consumers can replay it).
    """

    crashes: Tuple[Crash, ...] = ()
    partitions: Tuple[Partition, ...] = ()
    byzantine: Optional[Byzantine] = None
    seed: int = 0
    churn_trace: Optional["ChurnTrace"] = None

    def __post_init__(self) -> None:
        self.crashes = tuple(self.crashes)
        self.partitions = tuple(self.partitions)
        self._by_node: Dict[int, List[Crash]] = {}
        for crash in self.crashes:
            self._by_node.setdefault(crash.node, []).append(crash)
        byz = self.byzantine
        self._distance_liars = frozenset(byz.distance_liars) if byz else frozenset()
        self._membership_liars = (
            frozenset(byz.membership_liars) if byz else frozenset()
        )
        # Fabrication stream for membership lies (order-deterministic
        # within a single-threaded event run).
        self._fabricate_rng = ensure_rng(self.seed)

    # -- queries the network makes -------------------------------------

    def is_up(self, node: int, t: float) -> bool:
        return not any(c.down(t) for c in self._by_node.get(node, ()))

    def severed(self, u: int, v: int, t: float) -> bool:
        return any(p.severs(u, v, t) for p in self.partitions)

    def byzantine_nodes(self) -> frozenset:
        return self._distance_liars | self._membership_liars

    def perturb_probe(self, asker: int, target: int, d: float) -> float:
        """The distance ``asker`` measures against ``target``.

        Honest targets return ``d`` exactly (parity with the synchronous
        simulator).  A distance liar inflates by a factor drawn once per
        (liar, asker) pair — deterministic however many times and in
        whatever order the pair is probed.
        """
        if target not in self._distance_liars:
            return d
        lo, hi = self.byzantine.inflate
        pair_rng = np.random.default_rng([self.seed, int(target), int(asker)])
        return d * float(pair_rng.uniform(lo, hi))

    def tamper_payload(
        self, sender: int, payload: Dict[str, Any], n: int
    ) -> Dict[str, Any]:
        """Corrupt outgoing id lists of membership liars.

        Every payload value that is a list of ints (a gossip sample, an
        audit walk) is replaced by fabricated node ids of the same
        length.  Other senders and other payload shapes pass through
        untouched.
        """
        if sender not in self._membership_liars:
            return payload
        out = dict(payload)
        for key, value in payload.items():
            if (
                isinstance(value, list)
                and value
                and all(isinstance(x, (int, np.integer)) for x in value)
            ):
                out[key] = [
                    int(x)
                    for x in self._fabricate_rng.integers(0, n, size=len(value))
                ]
        return out

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "crashes": [c.to_dict() for c in self.crashes],
            "partitions": [p.to_dict() for p in self.partitions],
            "byzantine": None if self.byzantine is None else self.byzantine.to_dict(),
            "seed": self.seed,
        }
        if self.churn_trace is not None:
            out["churn_trace"] = self.churn_trace.to_dict()
        return out


def sample_nodes(
    rng, population: Iterable[int], count: int
) -> Tuple[int, ...]:
    """Draw ``count`` distinct nodes from ``population`` (sorted draw
    order, deterministic given the generator state)."""
    pool = np.asarray(sorted(population), dtype=np.int64)
    count = min(count, pool.size)
    if count <= 0:
        return ()
    picked = rng.choice(pool, size=count, replace=False)
    return tuple(int(x) for x in np.sort(picked))
