"""Metric persistence.

Benchmark workloads and externally supplied latency matrices are shared
as ``.npz`` files holding the full distance matrix (plus optional point
coordinates).  Loading always returns a validated
:class:`~repro.metrics.matrix.DistanceMatrixMetric`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.metrics.base import MetricSpace
from repro.metrics.matrix import DistanceMatrixMetric

PathLike = Union[str, Path]


def save_metric(metric: MetricSpace, path: PathLike) -> None:
    """Persist a metric's distance matrix (and coordinates if Euclidean)."""
    path = Path(path)
    rows = np.vstack([metric.distances_from(u) for u in range(metric.n)])
    rows = (rows + rows.T) / 2.0  # exact symmetry for the reload validator
    arrays = {"matrix": rows}
    points = getattr(metric, "points", None)
    if points is not None:
        arrays["points"] = np.asarray(points)
    np.savez_compressed(path, **arrays)


def load_metric(path: PathLike) -> DistanceMatrixMetric:
    """Load a metric saved by :func:`save_metric` (validated on load)."""
    with np.load(Path(path)) as data:
        if "matrix" not in data:
            raise ValueError(f"{path}: not a saved metric (no 'matrix' array)")
        return DistanceMatrixMetric(np.array(data["matrix"]))


def load_points(path: PathLike) -> Optional[np.ndarray]:
    """Coordinates stored alongside the matrix, if any."""
    with np.load(Path(path)) as data:
        if "points" in data:
            return np.array(data["points"])
    return None
