"""Metric persistence.

Benchmark workloads and externally supplied latency matrices are shared
on disk; loading always returns a validated
:class:`~repro.metrics.matrix.DistanceMatrixMetric`.

Writes go through the versioned container format of
:mod:`repro.serve.container` (kind ``"metric"``): a JSON header plus
64-byte-aligned raw array segments, so a reload memory-maps the matrix
instead of inflating a zip archive.  Reads sniff the file: container
files open zero-copy, while legacy ``.npz`` archives (everything this
module wrote before the container format existed) keep loading through
the old ``np.load`` path.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

import numpy as np

from repro.metrics.base import MetricSpace
from repro.metrics.matrix import DistanceMatrixMetric

PathLike = Union[str, Path]


def _is_container(path: Path) -> bool:
    from repro.serve.container import MAGIC

    try:
        with open(path, "rb") as handle:
            return handle.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def save_metric(metric: MetricSpace, path: PathLike) -> str:
    """Persist a metric's distance matrix (and coordinates if Euclidean).

    Writes a versioned container file; returns its content hash.
    """
    from repro.serve.container import write_container

    path = Path(path)
    rows = np.vstack([metric.distances_from(u) for u in range(metric.n)])
    rows = (rows + rows.T) / 2.0  # exact symmetry for the reload validator
    arrays = {"matrix": rows}
    points = getattr(metric, "points", None)
    if points is not None:
        arrays["points"] = np.asarray(points)
    meta = {"n": int(metric.n), "has_points": points is not None}
    return write_container(path, kind="metric", meta=meta, arrays=arrays)


def load_metric(path: PathLike, mmap: bool = True) -> DistanceMatrixMetric:
    """Load a metric saved by :func:`save_metric` (validated on load).

    Accepts both container files (memory-mapped when ``mmap=True``) and
    legacy ``.npz`` archives.
    """
    path = Path(path)
    if _is_container(path):
        from repro.serve.container import read_container

        container = read_container(path, mmap=mmap)
        if container.kind != "metric" or "matrix" not in container.arrays:
            raise ValueError(f"{path}: not a saved metric (no 'matrix' array)")
        # Copy out of the mapping: the metric owns a mutable matrix.
        return DistanceMatrixMetric(np.array(container.arrays["matrix"]))
    with np.load(path) as data:
        if "matrix" not in data:
            raise ValueError(f"{path}: not a saved metric (no 'matrix' array)")
        return DistanceMatrixMetric(np.array(data["matrix"]))


def load_points(path: PathLike) -> Optional[np.ndarray]:
    """Coordinates stored alongside the matrix, if any."""
    path = Path(path)
    if _is_container(path):
        from repro.serve.container import read_container

        container = read_container(path)
        points = container.arrays.get("points")
        return None if points is None else np.array(points)
    with np.load(path) as data:
        if "points" in data:
            return np.array(data["points"])
    return None
