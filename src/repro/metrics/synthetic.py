"""Synthetic metric workloads.

These generators supply the instance families the paper reasons about:

* :func:`random_hypercube_metric` / :func:`grid_metric` — constant-dimension
  Euclidean metrics, the canonical doubling metrics and the setting of
  Kleinberg's original small world [30].
* :func:`exponential_line` — the set ``{b^i}`` on the line (§1: "as an
  example of a doubling metric with high grid dimension, consider the set
  {1, 2, 4, ..., 2^n}").  Its aspect ratio is exponential in ``n``, which is
  exactly the regime Theorems 3.4, 4.2 and 5.2 are designed for.
* :func:`uniform_line` — evenly spaced points; a UL-constrained metric
  (ball growth rate bounded above and below), the setting of Theorem 5.4.
* :func:`clustered_metric` / :func:`internet_like_metric` — hierarchically
  clustered point sets with small perturbations, the standard synthetic
  stand-in for Internet latency matrices used by the triangulation line of
  work [33, 50, 57].  (Substitution documented in DESIGN.md: we have no
  production latency traces; these metrics have measured doubling dimension
  in the 2–6 range the papers assume and exercise identical code paths.)
* :func:`ring_metric` — points on a circle; low-dimensional, used for
  variety in property tests.
"""

from __future__ import annotations

import numpy as np

from repro.metrics.euclidean import EuclideanMetric
from repro.metrics.matrix import DistanceMatrixMetric
from repro.rng import SeedLike, ensure_rng


def random_hypercube_metric(
    n: int, dim: int = 2, seed: SeedLike = None, p: float = 2.0
) -> EuclideanMetric:
    """``n`` points sampled uniformly in the unit cube ``[0, 1]^dim``."""
    if n < 1:
        raise ValueError("n must be positive")
    rng = ensure_rng(seed)
    return EuclideanMetric(rng.random((n, dim)), p=p)


def grid_metric(side: int, dim: int = 2, p: float = 2.0) -> EuclideanMetric:
    """The ``side^dim`` integer grid under the l_p norm.

    The two-dimensional case is Kleinberg's original small-world substrate.
    """
    if side < 1:
        raise ValueError("side must be positive")
    axes = [np.arange(side, dtype=float)] * dim
    mesh = np.meshgrid(*axes, indexing="ij")
    points = np.stack([m.ravel() for m in mesh], axis=1)
    return EuclideanMetric(points, p=p)


def exponential_line(n: int, base: float = 2.0) -> EuclideanMetric:
    """The exponential line ``{base^0, base^1, ..., base^(n-1)}``.

    A doubling metric (dimension O(1)) whose grid dimension and aspect
    ratio are huge: ``Δ ~ base^n``.  For ``base=2`` keep ``n <= 900`` so
    distances stay within float64 range.
    """
    if n < 1:
        raise ValueError("n must be positive")
    max_exponent = (n - 1) * np.log2(base)
    if max_exponent > 1000:
        raise ValueError(
            f"base**(n-1) overflows float64 (need base^(n-1) < 2^1000, "
            f"got exponent {max_exponent:.0f})"
        )
    points = np.power(base, np.arange(n, dtype=float))
    return EuclideanMetric(points[:, None])


def uniform_line(n: int, spacing: float = 1.0) -> EuclideanMetric:
    """Evenly spaced points on a line — a UL-constrained metric."""
    if n < 1:
        raise ValueError("n must be positive")
    return EuclideanMetric((np.arange(n, dtype=float) * spacing)[:, None])


def ring_metric(n: int, radius: float = 1.0) -> EuclideanMetric:
    """``n`` points evenly spaced on a circle of the given radius."""
    if n < 1:
        raise ValueError("n must be positive")
    angles = 2 * np.pi * np.arange(n) / n
    points = radius * np.stack([np.cos(angles), np.sin(angles)], axis=1)
    return EuclideanMetric(points)


def clustered_metric(
    n: int,
    clusters: int = 8,
    dim: int = 3,
    spread: float = 0.05,
    seed: SeedLike = None,
) -> EuclideanMetric:
    """Gaussian clusters around uniform centers — a two-scale metric."""
    if n < 1:
        raise ValueError("n must be positive")
    if clusters < 1:
        raise ValueError("clusters must be positive")
    rng = ensure_rng(seed)
    centers = rng.random((clusters, dim))
    assignment = rng.integers(0, clusters, size=n)
    points = centers[assignment] + rng.normal(scale=spread, size=(n, dim))
    return EuclideanMetric(points)


def internet_like_metric(
    n: int,
    tiers: int = 3,
    branching: int = 4,
    dim: int = 3,
    jitter: float = 0.02,
    seed: SeedLike = None,
) -> DistanceMatrixMetric:
    """Hierarchically clustered metric with multiplicative jitter.

    A stand-in for Internet latency matrices: points are placed by a
    ``tiers``-level hierarchy (continent -> ISP -> site), each level
    shrinking the placement scale by ``branching``; pairwise Euclidean
    distances then get independent multiplicative jitter
    ``1 + Uniform(0, jitter)`` applied *symmetrically*, followed by one
    round of Floyd–Warshall-style smoothing to restore the triangle
    inequality (real latency matrices are near-metric, not exact).
    """
    if n < 1:
        raise ValueError("n must be positive")
    rng = ensure_rng(seed)
    points = np.zeros((n, dim))
    scale = 1.0
    group = np.zeros(n, dtype=int)
    for _ in range(tiers):
        # Each current group splits into `branching` subgroups with centers
        # drawn at the current scale.
        n_groups = int(group.max()) + 1
        centers = rng.normal(scale=scale, size=(n_groups, branching, dim))
        sub = rng.integers(0, branching, size=n)
        points += centers[group, sub]
        group = group * branching + sub
        scale /= branching
    points += rng.normal(scale=scale, size=(n, dim))

    diff = points[:, None, :] - points[None, :, :]
    matrix = np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))
    noise = 1.0 + jitter * rng.random((n, n))
    noise = np.triu(noise, 1)
    noise = noise + noise.T
    matrix = matrix * np.where(noise == 0, 1.0, noise)
    np.fill_diagonal(matrix, 0.0)

    # Restore the triangle inequality: replace d(i,j) by the shortest path
    # through the jittered matrix (one full Floyd-Warshall pass).
    for k in range(n):
        via_k = matrix[:, k][:, None] + matrix[k, :][None, :]
        np.minimum(matrix, via_k, out=matrix)
    matrix = np.minimum(matrix, matrix.T)
    return DistanceMatrixMetric(matrix)
