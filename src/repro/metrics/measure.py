"""Doubling measures (paper §1.1, Theorem 1.3).

A measure µ is *s-doubling* if ``µ(B_u(r)) <= s * µ(B_u(r/2))`` for every
ball.  Theorem 1.3 ([55, 58, 39, 44]) guarantees every metric of doubling
dimension α carries a 2^α-doubling measure, constructible in
``O(2^O(α) n log n)``.

We implement the net-tree mass-splitting construction in the spirit of
Har-Peled & Mendel [44]: build the nested hierarchy of 2^j-nets from the
minimum distance up to the diameter, link each net point to its nearest
coarser-level net point (its *parent*; every coarser point is its own
parent since the nets are nested), and push unit mass from the single root
down, splitting each point's mass equally among its children.  The leaf
masses (every node appears at the finest level) form the measure.

Each parent has at most ``2^O(α)`` children (Lemma 1.4), so the measure
shrinks by at most a ``2^O(α)`` factor per scale — the intuition behind the
doubling property, which tests verify empirically
(:meth:`DoublingMeasure.doubling_constant`).

The canonical example from the paper: on the exponential line
``{2^i : i ∈ [n]}`` the doubling measure is ``µ(2^i) = 2^(i-n)`` — the
counting measure is *not* doubling there, which is why the small-world
constructions of §5 sample long-range contacts with respect to µ rather
than uniformly.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro._types import NodeId
from repro.metrics.base import MetricSpace
from repro.metrics.nets import NestedNets
from repro.rng import SeedLike, ensure_rng


class DoublingMeasure:
    """A probability measure on the nodes of a metric space."""

    def __init__(self, metric: MetricSpace, weights: np.ndarray) -> None:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (metric.n,):
            raise ValueError(
                f"weights must have shape ({metric.n},), got {weights.shape}"
            )
        if np.any(weights <= 0):
            raise ValueError("a doubling measure must be strictly positive")
        self.metric = metric
        self.weights = weights / weights.sum()

    def mass(self, nodes: np.ndarray) -> float:
        """µ(S) for a set of node ids."""
        return float(self.weights[np.asarray(nodes, dtype=int)].sum())

    def ball_mass(self, u: NodeId, r: float) -> float:
        """µ(B_u(r)) for the closed ball."""
        return self.mass(self.metric.ball(u, r))

    def radius_for_mass(self, u: NodeId, eps: float) -> float:
        """The paper's ``r_u(eps)`` generalized to µ: smallest radius whose
        closed ball has measure at least ``eps``."""
        row = self.metric.distances_from(u)
        order = np.argsort(row, kind="stable")
        cum = np.cumsum(self.weights[order])
        idx = int(np.searchsorted(cum, eps - 1e-15, side="left"))
        idx = min(idx, self.metric.n - 1)
        return float(row[order[idx]])

    def sample_from_ball(
        self, u: NodeId, r: float, count: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``count`` i.i.d. nodes from ``B_u(r)`` with probability
        proportional to µ (the §5 "Y-type neighbor" sampling primitive)."""
        members = self.metric.ball(u, r)
        if members.size == 0:
            raise ValueError(f"ball B_{u}({r}) is empty")
        w = self.weights[members]
        return rng.choice(members, size=count, replace=True, p=w / w.sum())

    def doubling_constant(
        self, sample_centers: int = 64, scales: int = 10, seed: SeedLike = 0
    ) -> float:
        """Empirical s: max over sampled balls of µ(B_u(r)) / µ(B_u(r/2))."""
        metric = self.metric
        rng = ensure_rng(seed)
        n = metric.n
        centers = (
            range(n)
            if sample_centers >= n
            else rng.choice(n, size=sample_centers, replace=False)
        )
        radii = np.geomspace(metric.min_distance(), metric.diameter(), scales)
        worst = 1.0
        for u in centers:
            u = int(u)
            for r in radii:
                num = self.ball_mass(u, r)
                den = self.ball_mass(u, r / 2.0)
                worst = max(worst, num / den)
        return worst


def counting_measure(metric: MetricSpace) -> DoublingMeasure:
    """The normalized counting measure µ(S) = |S| / n.

    Doubling exactly when the metric is UL-constrained; used by Theorem 3.2
    and as the ablation baseline against the true doubling measure.
    """
    return DoublingMeasure(metric, np.ones(metric.n))


def doubling_measure(
    metric: MetricSpace, nets: Optional[NestedNets] = None
) -> DoublingMeasure:
    """Construct a doubling measure by net-tree mass splitting (Thm 1.3)."""
    n = metric.n
    if n == 1:
        return DoublingMeasure(metric, np.ones(1))

    if nets is None:
        min_d = metric.min_distance()
        levels = int(np.ceil(np.log2(metric.diameter() / min_d))) + 2
        nets = NestedNets(metric, levels=levels, base_radius=min_d)

    top = nets.levels - 1
    # Masses at the top level: split evenly among the (usually single) roots.
    roots = nets.net(top)
    mass: Dict[NodeId, float] = {v: 1.0 / len(roots) for v in roots}

    for j in range(top - 1, -1, -1):
        child_level = nets.net_array(j)
        parent_level = nets.net_array(j + 1)
        # Assign each child its nearest parent; nested nets ensure each
        # parent is its own child at distance 0.
        children_of: Dict[NodeId, list[NodeId]] = {int(p): [] for p in parent_level}
        for c in child_level:
            row = metric.distances_from(int(c))
            p = int(parent_level[np.argmin(row[parent_level])])
            children_of[p].append(int(c))
        new_mass: Dict[NodeId, float] = {}
        for p, kids in children_of.items():
            share = mass[p] / len(kids)
            for c in kids:
                new_mass[c] = new_mass.get(c, 0.0) + share
        mass = new_mass

    weights = np.zeros(n)
    for v, m in mass.items():
        weights[v] = m
    if np.any(weights <= 0):
        # The finest net must contain every node (its radius is the minimum
        # distance); a zero here means the hierarchy was built too shallow.
        raise RuntimeError("net hierarchy did not reach all nodes")
    return DoublingMeasure(metric, weights)
