"""Dimensionality estimators for finite metrics.

The paper's definitions (§1):

* **Doubling dimension**: the infimum of all α such that every set of
  diameter d can be covered by 2^α sets of diameter d/2.
* **Grid dimension**: the smallest α such that for any ball B,
  ``|B_u(r)| <= 2^α * |B_u(r/2)|``.

For finite metrics we estimate both by direct measurement.  The doubling
dimension estimator uses Lemma 1.1's greedy ball covers: for sampled balls
``B_u(r)`` we greedily cover with radius-``r/2`` balls and report
``max log2(cover size)``.  This upper-bounds the true doubling dimension
within a small additive constant (covering sets of diameter d by *balls* of
radius d/2 rather than sets of diameter d/2), which is the form every
lemma in the paper actually uses.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro._types import NodeId
from repro.metrics.base import MetricSpace
from repro.rng import SeedLike, ensure_rng


def greedy_ball_cover(
    metric: MetricSpace, nodes: np.ndarray, radius: float
) -> list[NodeId]:
    """Greedily cover ``nodes`` with balls of the given radius (Lemma 1.1).

    Repeatedly selects an uncovered node, adds it as a center, and removes
    every node within ``radius`` of it.  Returns the list of centers.
    """
    remaining = np.asarray(nodes, dtype=int)
    centers: list[NodeId] = []
    while remaining.size:
        center = int(remaining[0])
        centers.append(center)
        row = metric.distances_from(center)
        remaining = remaining[row[remaining] > radius]
    return centers


def doubling_dimension(
    metric: MetricSpace,
    sample_centers: Optional[int] = None,
    scales_per_center: int = 8,
    seed: SeedLike = 0,
) -> float:
    """Estimate the doubling dimension by measuring greedy cover sizes.

    For each sampled center ``u`` and a geometric range of radii ``r``, the
    ball ``B_u(r)`` (diameter <= 2r) is covered greedily by balls of radius
    ``r/2``; the estimate is ``max log2(cover size)`` over all samples.
    """
    n = metric.n
    if n <= 1:
        return 0.0
    rng = ensure_rng(seed)
    if sample_centers is None or sample_centers >= n:
        centers: Iterable[int] = range(n)
    else:
        centers = rng.choice(n, size=sample_centers, replace=False)

    diameter = metric.diameter()
    min_d = metric.min_distance()
    worst = 1.0
    for u in centers:
        u = int(u)
        radii = np.geomspace(
            max(min_d, diameter / 2**scales_per_center), diameter, scales_per_center
        )
        for r in radii:
            members = metric.ball(u, r)
            if members.size <= 1:
                continue
            cover = greedy_ball_cover(metric, members, r / 2.0)
            worst = max(worst, float(len(cover)))
    return float(np.log2(worst))


def grid_dimension(
    metric: MetricSpace,
    sample_centers: Optional[int] = None,
    scales_per_center: int = 10,
    seed: SeedLike = 0,
) -> float:
    """Estimate the grid (KR) dimension: max log2(|B(u,2r)| / |B(u,r)|).

    On the exponential line this is Θ(log n) while the doubling dimension
    stays O(1) — the separation the paper highlights in §1.
    """
    n = metric.n
    if n <= 1:
        return 0.0
    rng = ensure_rng(seed)
    if sample_centers is None or sample_centers >= n:
        centers: Iterable[int] = range(n)
    else:
        centers = rng.choice(n, size=sample_centers, replace=False)

    diameter = metric.diameter()
    min_d = metric.min_distance()
    worst_ratio = 1.0
    for u in centers:
        u = int(u)
        radii = np.geomspace(min_d, diameter, scales_per_center)
        for r in radii:
            inner = metric.ball_size(u, r)
            outer = metric.ball_size(u, 2 * r)
            if inner >= 1:
                worst_ratio = max(worst_ratio, outer / inner)
    return float(np.log2(worst_ratio))


def aspect_ratio(metric: MetricSpace) -> float:
    """Convenience wrapper for ``metric.aspect_ratio()``."""
    return metric.aspect_ratio()


def lemma_1_2_lower_bound(metric: MetricSpace, alpha: float) -> bool:
    """Check Lemma 1.2: ``1 + log Δ >= (log n) / α``.

    Returns True when the inequality holds for the measured Δ and the given
    dimension bound α (used in tests as a consistency check between the
    estimators).
    """
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    delta = metric.aspect_ratio()
    return 1 + np.log2(delta) >= np.log2(metric.n) / alpha
