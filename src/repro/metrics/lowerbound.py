"""Lower-bound metric family in the spirit of Mendel & Har-Peled [44].

§3 cites a family of doubling metrics on which any 1.9-approximate
distance labeling needs ``Ω(log n)(log log Δ − log log n)`` bits per
label, "for some Δ in every interval [(n/2)^M, n^M]".  The construction
encodes, for each node, ``Θ(log n)`` independent scale choices out of
``Θ(M)`` possibilities — any accurate labeling must store ~log M bits per
choice.

We implement the natural realization of that idea (documented
approximation — the paper's exact gadget is more careful about constant
distortion): a *scale-coded* hierarchical metric.  Nodes sit in a
balanced binary hierarchy of depth ``log2 n``; at each split level ℓ a
per-subtree random code ``c(ℓ, subtree) ∈ {0, …, M-1}`` is drawn, and the
distance between nodes whose lowest common level is ℓ is
``base^(ℓ·M + c)``, i.e. the code perturbs the separation scale by up to
M sub-scales.  Distinct codes at every level force any (1+δ)-accurate
scheme to distinguish M scales per level — the information-theoretic
content the lower bound counts.

:func:`label_entropy_bits` computes that content exactly (the number of
random code bits a perfect labeling must recover), which the bench
compares against our Theorem 3.4 labels' measured size.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.metrics.matrix import DistanceMatrixMetric
from repro.rng import SeedLike, ensure_rng


def scale_coded_metric(
    depth: int,
    scales_per_level: int,
    base: float = 2.0,
    seed: SeedLike = None,
) -> Tuple[DistanceMatrixMetric, int]:
    """Build the scale-coded hierarchical metric.

    Returns the metric on ``n = 2^depth`` nodes and the number of code
    bits it embeds (``(n - 1) * ceil(log2 scales_per_level)``, one code
    per internal subtree).  Aspect ratio is ``~base^(depth·M)`` with
    ``M = scales_per_level`` — inside the [44] window for suitable M.
    """
    if depth < 1:
        raise ValueError("depth must be at least 1")
    if scales_per_level < 1:
        raise ValueError("scales_per_level must be at least 1")
    rng = ensure_rng(seed)
    n = 2**depth
    m = scales_per_level

    # codes[level][subtree index at that level]
    codes = [
        rng.integers(0, m, size=2**level) for level in range(depth)
    ]

    matrix = np.zeros((n, n))
    for u in range(n):
        for v in range(u + 1, n):
            # Lowest common level: the most significant differing bit.
            diff = u ^ v
            split = diff.bit_length() - 1  # 0 = leaves differ only at bottom
            level_from_top = depth - 1 - split  # 0 = root split
            subtree = u >> (split + 1)
            code = int(codes[level_from_top][subtree])
            # Separation scale: deeper splits are exponentially closer;
            # the code perturbs within the level's scale band.
            exponent = split * m + code
            matrix[u, v] = matrix[v, u] = base**exponent

    # The construction is an ultrametric up to the code perturbation;
    # enforce the triangle inequality exactly by a max-smoothing pass
    # (d(u,v) <= max over w of min paths — ultrametrics need
    # d(u,v) <= max(d(u,w), d(w,v)); taking the metric closure keeps the
    # codes intact because codes only *shrink* within one scale band).
    for k in range(n):
        via = matrix[:, k][:, None] + matrix[k, :][None, :]
        np.minimum(matrix, via, out=matrix)
    np.fill_diagonal(matrix, 0.0)
    code_bits = (n - 1) * max(1, math.ceil(math.log2(max(2, m))))
    return DistanceMatrixMetric(matrix), code_bits


def label_entropy_bits(n: int, scales_per_level: int) -> float:
    """Information a node's label must carry to support exact queries.

    Each node participates in ``log2 n`` subtree codes (one per ancestor
    level), each worth ``log2 M`` bits — the Ω(log n · log M) =
    Ω(log n · (log log Δ − log log n)) shape of the [44] bound.
    """
    return math.log2(max(2, n)) * math.log2(max(2, scales_per_level))
