"""Metric backed by an explicit distance matrix."""

from __future__ import annotations

import numpy as np

from repro._types import NodeId
from repro.metrics.base import MetricSpace


class DistanceMatrixMetric(MetricSpace):
    """A finite metric given by its full ``n x n`` distance matrix.

    The matrix is validated for shape, zero diagonal and symmetry at
    construction; the triangle inequality can optionally be verified (it is
    O(n^3), so off by default).
    """

    def __init__(self, matrix: np.ndarray, check_triangle: bool = False) -> None:
        super().__init__()
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(f"distance matrix must be square, got {matrix.shape}")
        if np.any(np.diag(matrix) != 0):
            raise ValueError("distance matrix must have a zero diagonal")
        if not np.allclose(matrix, matrix.T, rtol=1e-9, atol=1e-12):
            raise ValueError("distance matrix must be symmetric")
        if np.any(matrix < 0):
            raise ValueError("distances must be non-negative")
        self._matrix = matrix
        if check_triangle:
            self._check_triangle()

    def _check_triangle(self) -> None:
        m = self._matrix
        n = m.shape[0]
        for k in range(n):
            # d(i,j) <= d(i,k) + d(k,j) for all i, j -- vectorized per k.
            via_k = m[:, k][:, None] + m[k, :][None, :]
            if np.any(m > via_k + 1e-9 * np.maximum(1.0, m)):
                raise ValueError(f"triangle inequality violated through node {k}")

    @property
    def n(self) -> int:
        return self._matrix.shape[0]

    @property
    def matrix(self) -> np.ndarray:
        """The underlying matrix (treat as read-only)."""
        return self._matrix

    def distances_from(self, u: NodeId) -> np.ndarray:
        return self._matrix[u]

    def distances_between(self, us, vs) -> np.ndarray:
        us = np.atleast_1d(np.asarray(us, dtype=np.intp))
        vs = np.atleast_1d(np.asarray(vs, dtype=np.intp))
        return self._matrix[np.ix_(us, vs)]

    def pairwise(self, pairs) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.intp).reshape(-1, 2)
        return self._matrix[pairs[:, 0], pairs[:, 1]]
