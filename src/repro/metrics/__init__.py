"""Finite metric spaces and the structural tools the paper relies on.

The paper's input is always "a finite metric space or, more generally, an
undirected weighted graph that induces a shortest-paths metric" (§1), with
low *doubling dimension*.  This subpackage provides:

* :class:`~repro.metrics.base.MetricSpace` — the abstract interface every
  algorithm in the library consumes (distances, balls, ``r_u(eps)`` radii,
  aspect ratio).
* Concrete metrics: explicit matrices, Euclidean point sets, and
  graph-induced shortest-path metrics.
* Synthetic workload generators (uniform hypercube, grids, the exponential
  line with aspect ratio exponential in ``n``, clustered "internet-like"
  metrics, UL-constrained metrics).
* The structural machinery of §1.1: :mod:`~repro.metrics.nets` (r-nets and
  nested net hierarchies), :mod:`~repro.metrics.measure` (doubling
  measures, Theorem 1.3), :mod:`~repro.metrics.packing` ((ε,µ)-packings,
  Lemma 3.1 / Appendix A), and :mod:`~repro.metrics.dimension`
  (doubling/grid dimension estimators).
"""

from repro.metrics.base import MetricSpace
from repro.metrics.matrix import DistanceMatrixMetric
from repro.metrics.euclidean import EuclideanMetric
from repro.metrics.graphmetric import ShortestPathMetric
from repro.metrics.synthetic import (
    clustered_metric,
    exponential_line,
    grid_metric,
    internet_like_metric,
    random_hypercube_metric,
    ring_metric,
    uniform_line,
)
from repro.metrics.dimension import (
    aspect_ratio,
    doubling_dimension,
    grid_dimension,
)
from repro.metrics.nets import NestedNets, greedy_net
from repro.metrics.measure import DoublingMeasure, doubling_measure
from repro.metrics.packing import EpsMuPacking, PackedBall, eps_mu_packing
from repro.metrics.lowerbound import label_entropy_bits, scale_coded_metric
from repro.metrics.io import load_metric, load_points, save_metric

__all__ = [
    "MetricSpace",
    "DistanceMatrixMetric",
    "EuclideanMetric",
    "ShortestPathMetric",
    "clustered_metric",
    "exponential_line",
    "grid_metric",
    "internet_like_metric",
    "random_hypercube_metric",
    "ring_metric",
    "uniform_line",
    "aspect_ratio",
    "doubling_dimension",
    "grid_dimension",
    "NestedNets",
    "greedy_net",
    "DoublingMeasure",
    "doubling_measure",
    "EpsMuPacking",
    "PackedBall",
    "eps_mu_packing",
    "label_entropy_bits",
    "scale_coded_metric",
    "load_metric",
    "load_points",
    "save_metric",
]
