"""r-nets and nested net hierarchies (paper §1.1).

An **r-net** on a metric is a set S such that (a) every point is within
distance r of S (covering) and (b) any two points of S are at distance at
least r (packing).  The paper constructs them greedily, optionally seeded
from an existing set of far-apart points — which is exactly what makes the
*nested* hierarchy ``G_log∆ ⊂ ... ⊂ G_1 ⊂ G_0`` of Theorem 3.2 possible:
each coarser net is a valid seed for the next finer one.

Construction runs on the batched scan of :mod:`repro.construction.nets`:
candidates are admitted a block at a time and the distance-to-net array
is updated over sharded (sources x span) blocks, bit-for-bit identical
to the sequential id-order scan for any
:class:`~repro.construction.BuildExecutor` (serial, chunked, or a
process pool) and any shard count.  :class:`NestedNets` additionally
threads the distance-to-net array from each coarser level into the next
finer one, so a whole hierarchy costs one scan's worth of updates.

Lemma 1.4 (at most ``(4 r'/r)^α`` net points in any radius-r' ball) is what
bounds every ring cardinality in the paper; tests verify it empirically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro._types import NodeId
from repro.construction.executor import BuildExecutor
from repro.construction.nets import (
    ball_members_sharded,
    greedy_scan,
    nearest_members_sharded,
)
from repro.metrics.base import MetricSpace

#: Max elements per batched distance block (~8 MB of float64) used by the
#: chunked net validators/builders, so peak memory stays bounded at any n.
_PACKING_CHUNK_ELEMS = 1 << 20


def greedy_net(
    metric: MetricSpace,
    r: float,
    seed_points: Optional[Sequence[NodeId]] = None,
    executor: Optional[BuildExecutor] = None,
) -> List[NodeId]:
    """Construct an r-net greedily (paper §1.1).

    Starts from ``seed_points`` (which must be pairwise >= r apart; this is
    the caller's responsibility and holds automatically when seeding from a
    coarser net) and adds any node at distance >= r from all current net
    points until the covering property holds.

    Nodes are scanned in id order, so the construction is deterministic —
    and independent of ``executor``, which only changes how the distance
    blocks are scheduled (see :mod:`repro.construction`).
    """
    net, _ = greedy_scan(metric, r, seed_points=seed_points, executor=executor)
    return net


def is_r_net(metric: MetricSpace, points: Sequence[NodeId], r: float) -> bool:
    """Check both net properties (covering within r, packing >= r).

    The packing check runs on batched distance blocks (chunked so memory
    stays bounded even for nets of size Θ(n)).
    """
    points = np.asarray(list(points), dtype=np.intp)
    if points.size == 0:
        return metric.n == 0
    n = metric.n
    m = points.size
    min_dist = np.full(n, np.inf)
    chunk = max(1, _PACKING_CHUNK_ELEMS // max(1, n))
    for start in range(0, m, chunk):
        block = metric.distances_between(points[start : start + chunk], np.arange(n))
        np.minimum(min_dist, block.min(axis=0), out=min_dist)
    covering = bool(np.all(min_dist <= r * (1 + 1e-9)))
    if not covering:
        return False
    # Packing: every off-diagonal pair of net points at distance >= r.
    chunk = max(1, _PACKING_CHUNK_ELEMS // m)
    for start in range(0, m, chunk):
        rows = points[start : start + chunk]
        block = metric.distances_between(rows, points)
        block[np.arange(rows.size), start + np.arange(rows.size)] = np.inf
        if bool(np.any(block < r * (1 - 1e-9))):
            return False
    return True


class NestedNets:
    """The nested hierarchy ``G_j`` of 2^j-nets used throughout the paper.

    ``G_j`` is a ``scale(j)``-net and ``G_{j+1} ⊂ G_j``.  Two conventions
    appear in the paper and both are supported via ``radius_of``:

    * Theorem 2.1 uses ``G_j`` = (Δ/2^j)-nets (finer as j grows) — pass
      ``descending=True`` with ``base_radius=Δ``.
    * Theorems 3.2/3.4 use ``G_j`` = 2^j-nets (coarser as j grows) — the
      default, with ``base_radius=1``.

    Internally the hierarchy is always built coarsest-first so nesting
    holds by construction, carrying the distance-to-net array between
    levels so each level only pays for its newly admitted points.
    """

    def __init__(
        self,
        metric: MetricSpace,
        levels: int,
        base_radius: float = 1.0,
        descending: bool = False,
        executor: Optional[BuildExecutor] = None,
    ) -> None:
        if levels < 1:
            raise ValueError("levels must be positive")
        self.metric = metric
        self.levels = levels
        self.base_radius = base_radius
        self.descending = descending
        self.executor = executor

        self._nets: Dict[int, List[NodeId]] = {}
        # Build from the coarsest level down, seeding each finer net with
        # the coarser one so that nesting holds.  The carried min-distance
        # array (capped at the coarser, i.e. larger, radius — exact
        # wherever the finer scan compares it) replaces the per-level seed
        # re-initialization.
        order = sorted(range(levels), key=self.radius_of, reverse=True)
        seed: List[NodeId] = []
        carried: Optional[np.ndarray] = None
        for j in order:
            seed, carried = greedy_scan(
                metric,
                self.radius_of(j),
                seed_points=seed,
                executor=executor,
                min_dist=carried,
            )
            self._nets[j] = seed

    def radius_of(self, j: int) -> float:
        """The net radius at level ``j``."""
        if self.descending:
            return self.base_radius / float(2**j)
        return self.base_radius * float(2**j)

    def net(self, j: int) -> List[NodeId]:
        """The level-``j`` net (a list of node ids)."""
        if j not in self._nets:
            raise KeyError(f"level {j} not in [0, {self.levels})")
        return self._nets[j]

    def net_array(self, j: int) -> np.ndarray:
        """The level-``j`` net as an int array."""
        return np.asarray(self.net(j), dtype=int)

    def members_in_ball(self, j: int, u: NodeId, r: float) -> np.ndarray:
        """Net points of level ``j`` inside the closed ball ``B_u(r)``.

        This is the paper's ring ``Y_uj = B_u(r_j) ∩ G_j`` primitive.
        """
        candidates = self.net_array(j)
        row = self.metric.distances_from(u)
        return candidates[row[candidates] <= r]

    def members_in_balls(
        self,
        j: int,
        us: Sequence[NodeId],
        r: float,
        executor: Optional[BuildExecutor] = None,
    ) -> List[np.ndarray]:
        """``members_in_ball(j, u, r)`` for many centers in one batched query.

        Computes ``(centers, |G_j|)`` distance blocks instead of one full
        row per center — the hot path of the ring builders — sharded over
        the centers when an executor is given (defaults to the one the
        hierarchy was built with).
        """
        us = np.asarray(list(us), dtype=np.intp)
        return ball_members_sharded(
            self.metric,
            us,
            self.net_array(j),
            r,
            executor=executor if executor is not None else self.executor,
        )

    def nearest_member(self, j: int, u: NodeId) -> NodeId:
        """The level-``j`` net point closest to ``u`` (covering => within radius)."""
        candidates = self.net_array(j)
        row = self.metric.distances_from(u)
        return int(candidates[np.argmin(row[candidates])])

    def nearest_members(
        self,
        j: int,
        us: Sequence[NodeId],
        executor: Optional[BuildExecutor] = None,
    ) -> np.ndarray:
        """:meth:`nearest_member` for many centers in batched blocks."""
        us = np.asarray(list(us), dtype=np.intp)
        return nearest_members_sharded(
            self.metric,
            us,
            self.net_array(j),
            executor=executor if executor is not None else self.executor,
        )

    def __len__(self) -> int:
        return self.levels
