"""Euclidean (and general l_p) point-set metrics.

Point sets in constant-dimensional l_p spaces are the canonical examples of
doubling metrics (Assouad [10], cited in the paper's §1): a k-dimensional
l_p metric has doubling dimension k + O(1).
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro._types import NodeId
from repro.metrics.base import DEFAULT_ROW_CACHE_BYTES, MetricSpace, RowCache


class EuclideanMetric(MetricSpace):
    """Metric induced by points in ``R^k`` under an l_p norm.

    Distance rows are computed lazily per node and kept in a byte-bounded
    LRU, so memory stays O(n * k + cache_budget) no matter how many rows
    are touched.  Batched queries (:meth:`distances_between`,
    :meth:`pairwise`) are computed directly from the coordinates without
    materializing rows at all.
    """

    def __init__(
        self,
        points: np.ndarray,
        p: float = 2.0,
        row_cache_bytes: int = DEFAULT_ROW_CACHE_BYTES,
    ) -> None:
        super().__init__(row_cache_bytes)
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points[:, None]
        if points.ndim != 2:
            raise ValueError(f"points must be an (n, k) array, got {points.shape}")
        if p < 1:
            raise ValueError(f"l_p norm requires p >= 1, got {p}")
        self._points = points
        self._p = p
        self._rows = RowCache(row_cache_bytes)

    @property
    def n(self) -> int:
        return self._points.shape[0]

    @property
    def dim(self) -> int:
        """Ambient dimension ``k``."""
        return self._points.shape[1]

    @property
    def points(self) -> np.ndarray:
        """The point coordinates (treat as read-only)."""
        return self._points

    def _norm(self, diff: np.ndarray) -> np.ndarray:
        """l_p norm along the last axis of ``diff``."""
        if self._p == 2.0:
            return np.sqrt(np.einsum("...i,...i->...", diff, diff))
        if np.isinf(self._p):
            return np.abs(diff).max(axis=-1)
        return np.power(np.power(np.abs(diff), self._p).sum(axis=-1), 1.0 / self._p)

    def distances_from(self, u: NodeId) -> np.ndarray:
        row = self._rows.get(u)
        if row is None:
            row = self._norm(self._points - self._points[u])
            row[u] = 0.0
            self._rows.put(u, row)
        return row

    def distances_between(
        self, us: Sequence[NodeId], vs: Sequence[NodeId]
    ) -> np.ndarray:
        us = np.atleast_1d(np.asarray(us, dtype=np.intp))
        vs = np.atleast_1d(np.asarray(vs, dtype=np.intp))
        diff = self._points[us][:, None, :] - self._points[vs][None, :, :]
        return self._norm(diff)

    def pairwise(self, pairs: Sequence[Tuple[NodeId, NodeId]]) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.intp).reshape(-1, 2)
        diff = self._points[pairs[:, 0]] - self._points[pairs[:, 1]]
        return self._norm(diff)
