"""Euclidean (and general l_p) point-set metrics.

Point sets in constant-dimensional l_p spaces are the canonical examples of
doubling metrics (Assouad [10], cited in the paper's §1): a k-dimensional
l_p metric has doubling dimension k + O(1).
"""

from __future__ import annotations

import numpy as np

from repro._types import NodeId
from repro.metrics.base import MetricSpace


class EuclideanMetric(MetricSpace):
    """Metric induced by points in ``R^k`` under an l_p norm.

    Distance rows are computed lazily per node and cached, so memory stays
    O(n * k + touched_rows * n).
    """

    def __init__(self, points: np.ndarray, p: float = 2.0) -> None:
        super().__init__()
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points[:, None]
        if points.ndim != 2:
            raise ValueError(f"points must be an (n, k) array, got {points.shape}")
        if p < 1:
            raise ValueError(f"l_p norm requires p >= 1, got {p}")
        self._points = points
        self._p = p
        self._rows: dict[int, np.ndarray] = {}

    @property
    def n(self) -> int:
        return self._points.shape[0]

    @property
    def dim(self) -> int:
        """Ambient dimension ``k``."""
        return self._points.shape[1]

    @property
    def points(self) -> np.ndarray:
        """The point coordinates (treat as read-only)."""
        return self._points

    def distances_from(self, u: NodeId) -> np.ndarray:
        row = self._rows.get(u)
        if row is None:
            diff = self._points - self._points[u]
            if self._p == 2.0:
                row = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            elif np.isinf(self._p):
                row = np.abs(diff).max(axis=1)
            else:
                row = np.power(
                    np.power(np.abs(diff), self._p).sum(axis=1), 1.0 / self._p
                )
            row[u] = 0.0
            self._rows[u] = row
        return row
