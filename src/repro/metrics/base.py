"""Abstract finite metric space.

Every algorithm in this library sees its input through this interface.
Nodes are dense integer ids ``0..n-1``.  Subclasses implement
:meth:`MetricSpace.distances_from` (a vectorized row of distances); the
base class derives pairwise distances, closed balls ``B_u(r)``, the radii
``r_u(eps)`` of the paper's §1.1 ("the radius of the smallest closed ball
around u that contains at least eps*n nodes"), diameter, minimum positive
distance and aspect ratio ``Δ``.

Per-node sorted distance rows are cached lazily, making ball-cardinality
and ``r_u`` queries O(log n) after the first touch of a node.  The library
targets laptop-scale instances (n up to a few thousand), for which this is
both simple and fast.
"""

from __future__ import annotations

import abc
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro._types import NodeId


class MetricSpace(abc.ABC):
    """A finite metric space on nodes ``0..n-1``.

    Subclasses must implement :attr:`n` and :meth:`distances_from`.
    The triangle inequality and symmetry are assumed (and property-tested
    for every concrete metric shipped in this package).
    """

    # ------------------------------------------------------------------
    # Abstract interface
    # ------------------------------------------------------------------

    @property
    @abc.abstractmethod
    def n(self) -> int:
        """Number of nodes."""

    @abc.abstractmethod
    def distances_from(self, u: NodeId) -> np.ndarray:
        """Vector of distances from ``u`` to every node (length ``n``).

        Must satisfy ``row[u] == 0`` and symmetry with other rows.  The
        returned array must be treated as read-only by callers.
        """

    # ------------------------------------------------------------------
    # Derived queries
    # ------------------------------------------------------------------

    def __init__(self) -> None:
        self._sorted_rows: Dict[NodeId, np.ndarray] = {}
        self._extremes: Optional[Tuple[float, float]] = None

    def __len__(self) -> int:
        return self.n

    def nodes(self) -> range:
        """Iterate node ids."""
        return range(self.n)

    def distance(self, u: NodeId, v: NodeId) -> float:
        """Distance between ``u`` and ``v``."""
        return float(self.distances_from(u)[v])

    def pairs(self) -> Iterator[Tuple[NodeId, NodeId]]:
        """All unordered node pairs ``(u, v)`` with ``u < v``."""
        for u in range(self.n):
            for v in range(u + 1, self.n):
                yield u, v

    # -- balls ----------------------------------------------------------

    def ball(self, u: NodeId, r: float, open_ball: bool = False) -> np.ndarray:
        """Node ids in the closed (default) or open ball of radius ``r``.

        The paper's ``B_u(r)`` is the *closed* ball (§1.1); the open
        variant is needed by Theorem 3.2, whose X/Y-neighbors live in open
        balls.
        """
        row = self.distances_from(u)
        if open_ball:
            return np.flatnonzero(row < r)
        return np.flatnonzero(row <= r)

    def ball_size(self, u: NodeId, r: float, open_ball: bool = False) -> int:
        """Cardinality of ``B_u(r)`` in O(log n) via the sorted row cache."""
        sorted_row = self._sorted_row(u)
        side = "left" if open_ball else "right"
        return int(np.searchsorted(sorted_row, r, side=side))

    def _sorted_row(self, u: NodeId) -> np.ndarray:
        cached = self._sorted_rows.get(u)
        if cached is None:
            cached = np.sort(self.distances_from(u))
            self._sorted_rows[u] = cached
        return cached

    # -- r_u(eps) radii (paper §1.1) -------------------------------------

    def radius_for_count(self, u: NodeId, k: int) -> float:
        """Radius of the smallest closed ball around ``u`` with >= k nodes.

        ``k`` is clamped to ``[1, n]``.  Note ``radius_for_count(u, 1) == 0``
        since the closed ball of radius 0 contains ``u`` itself.
        """
        k = max(1, min(self.n, k))
        return float(self._sorted_row(u)[k - 1])

    def radius_for_fraction(self, u: NodeId, eps: float) -> float:
        """The paper's ``r_u(eps)``: smallest radius capturing measure eps.

        With the counting probability measure this is the radius of the
        smallest closed ball containing at least ``ceil(eps * n)`` nodes.
        """
        k = int(np.ceil(eps * self.n))
        return self.radius_for_count(u, k)

    def rui(self, u: NodeId, i: int) -> float:
        """The paper's ``r_ui = r_u(2^-i)`` (smallest ball with >= n/2^i nodes).

        Used throughout §3 and §5.  ``i = 0`` gives the radius of a ball
        containing all nodes.
        """
        k = int(np.ceil(self.n / float(2**i)))
        return self.radius_for_count(u, k)

    # -- global shape ----------------------------------------------------

    def _compute_extremes(self) -> Tuple[float, float]:
        if self._extremes is None:
            min_d = np.inf
            max_d = 0.0
            for u in range(self.n):
                row = self.distances_from(u)
                if self.n > 1:
                    positive = row[np.arange(self.n) != u]
                    min_d = min(min_d, float(positive.min()))
                    max_d = max(max_d, float(positive.max()))
            if self.n <= 1:
                min_d, max_d = 1.0, 1.0
            self._extremes = (min_d, max_d)
        return self._extremes

    def min_distance(self) -> float:
        """Smallest positive pairwise distance."""
        return self._compute_extremes()[0]

    def diameter(self) -> float:
        """Largest pairwise distance."""
        return self._compute_extremes()[1]

    def aspect_ratio(self) -> float:
        """``Δ`` = diameter / min positive distance (paper §1.1)."""
        min_d, max_d = self._compute_extremes()
        if min_d == 0:
            raise ValueError("metric has duplicate points; aspect ratio undefined")
        return max_d / min_d

    def log_aspect_ratio(self) -> int:
        """``ceil(log2 Δ)``, the number of distance scales, at least 1."""
        return max(1, int(np.ceil(np.log2(self.aspect_ratio()))))

    # -- misc -------------------------------------------------------------

    def nearest_neighbor(self, u: NodeId) -> NodeId:
        """The node (other than ``u``) closest to ``u``."""
        row = self.distances_from(u).copy()
        row[u] = np.inf
        return int(np.argmin(row))

    def validate(self, samples: int = 200, seed: int = 0) -> None:
        """Sanity-check symmetry and the triangle inequality on a sample.

        Raises :class:`ValueError` on violation.  Exhaustive for small n.
        """
        rng = np.random.default_rng(seed)
        n = self.n
        if n < 2:
            return
        triples = rng.integers(0, n, size=(samples, 3))
        for a, b, c in triples:
            dab = self.distance(int(a), int(b))
            dba = self.distance(int(b), int(a))
            if not np.isclose(dab, dba, rtol=1e-9, atol=1e-12):
                raise ValueError(f"asymmetry at ({a},{b}): {dab} != {dba}")
            dac = self.distance(int(a), int(c))
            dcb = self.distance(int(c), int(b))
            if dab > dac + dcb + 1e-9 * max(1.0, dab):
                raise ValueError(
                    f"triangle violation: d({a},{b})={dab} > "
                    f"d({a},{c})+d({c},{b})={dac + dcb}"
                )
