"""Abstract finite metric space.

Every algorithm in this library sees its input through this interface.
Nodes are dense integer ids ``0..n-1``.  Subclasses implement
:meth:`MetricSpace.distances_from` (a vectorized row of distances); the
base class derives pairwise distances, batched block/pair queries
(:meth:`MetricSpace.distances_between` / :meth:`MetricSpace.pairwise`),
closed balls ``B_u(r)``, the radii ``r_u(eps)`` of the paper's §1.1 ("the
radius of the smallest closed ball around u that contains at least eps*n
nodes"), diameter, minimum positive distance and aspect ratio ``Δ``.

Per-node sorted distance rows are cached lazily in a memory-bounded LRU
(:class:`RowCache`), so ball-cardinality and ``r_u`` queries stay
O(log n) after the first touch of a node without ever pinning an O(n²)
distance matrix in memory.  Concrete metrics with a cheap random-access
representation (an explicit matrix, a point set) override the batched
queries with fully vectorized implementations; large runs (n >= 10^4)
should prefer those batched entry points over per-pair
:meth:`MetricSpace.distance` loops.
"""

from __future__ import annotations

import abc
from collections import OrderedDict
from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from repro._types import NodeId

#: Default byte budget for each per-metric row cache (sorted rows, raw
#: rows).  64 MiB holds every row up to n ≈ 2800 and degrades to an LRU
#: working set beyond that, keeping 10k+-node runs memory-bounded.
DEFAULT_ROW_CACHE_BYTES = 64 * 1024 * 1024


class RowCache:
    """A byte-bounded LRU cache of per-node distance rows.

    Rows are independent immutable-by-convention arrays, so evicting an
    entry never invalidates references callers already hold.  The cache
    always retains at least one row, so a budget smaller than one row
    degrades to "cache the most recent row" rather than thrashing to
    zero.
    """

    def __init__(self, budget_bytes: int = DEFAULT_ROW_CACHE_BYTES) -> None:
        if budget_bytes < 0:
            raise ValueError(f"budget_bytes must be >= 0, got {budget_bytes}")
        self.budget_bytes = budget_bytes
        self._rows: "OrderedDict[NodeId, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        #: high-water marks over the cache's lifetime (survive clear()),
        #: the "peak resident rows" number the build benchmarks record.
        self.peak_rows = 0
        self.peak_bytes = 0

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def nbytes(self) -> int:
        return self._bytes

    def get(self, key: NodeId) -> Optional[np.ndarray]:
        row = self._rows.get(key)
        if row is None:
            self.misses += 1
            return None
        self.hits += 1
        self._rows.move_to_end(key)
        return row

    def put(self, key: NodeId, row: np.ndarray) -> np.ndarray:
        old = self._rows.pop(key, None)
        if old is not None:
            self._bytes -= old.nbytes
        self._rows[key] = row
        self._bytes += row.nbytes
        while self._bytes > self.budget_bytes and len(self._rows) > 1:
            _, evicted = self._rows.popitem(last=False)
            self._bytes -= evicted.nbytes
        self.peak_rows = max(self.peak_rows, len(self._rows))
        self.peak_bytes = max(self.peak_bytes, self._bytes)
        return row

    def clear(self) -> None:
        self._rows.clear()
        self._bytes = 0

    def stats(self) -> dict:
        """Occupancy/traffic counters (peaks are lifetime high-water marks)."""
        return {
            "rows": len(self._rows),
            "bytes": self._bytes,
            "budget_bytes": self.budget_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "peak_rows": self.peak_rows,
            "peak_bytes": self.peak_bytes,
        }


class MetricSpace(abc.ABC):
    """A finite metric space on nodes ``0..n-1``.

    Subclasses must implement :attr:`n` and :meth:`distances_from`.
    The triangle inequality and symmetry are assumed (and property-tested
    for every concrete metric shipped in this package).
    """

    # ------------------------------------------------------------------
    # Abstract interface
    # ------------------------------------------------------------------

    @property
    @abc.abstractmethod
    def n(self) -> int:
        """Number of nodes."""

    @abc.abstractmethod
    def distances_from(self, u: NodeId) -> np.ndarray:
        """Vector of distances from ``u`` to every node (length ``n``).

        Must satisfy ``row[u] == 0`` and symmetry with other rows.  The
        returned array must be treated as read-only by callers.
        """

    # ------------------------------------------------------------------
    # Derived queries
    # ------------------------------------------------------------------

    def __init__(self, row_cache_bytes: int = DEFAULT_ROW_CACHE_BYTES) -> None:
        self._sorted_rows = RowCache(row_cache_bytes)
        self._extremes: Optional[Tuple[float, float]] = None

    def __len__(self) -> int:
        return self.n

    def nodes(self) -> range:
        """Iterate node ids."""
        return range(self.n)

    def distance(self, u: NodeId, v: NodeId) -> float:
        """Distance between ``u`` and ``v``."""
        return float(self.distances_from(u)[v])

    def pairs(self) -> Iterator[Tuple[NodeId, NodeId]]:
        """All unordered node pairs ``(u, v)`` with ``u < v``."""
        for u in range(self.n):
            for v in range(u + 1, self.n):
                yield u, v

    # -- batched queries -------------------------------------------------

    def distances_between(
        self, us: Sequence[NodeId], vs: Sequence[NodeId]
    ) -> np.ndarray:
        """The ``(len(us), len(vs))`` block of pairwise distances.

        The generic implementation assembles one :meth:`distances_from`
        row per source; matrix- and point-backed metrics override it with
        a single vectorized gather.  Treat the result as read-only.
        """
        us = np.atleast_1d(np.asarray(us, dtype=np.intp))
        vs = np.atleast_1d(np.asarray(vs, dtype=np.intp))
        out = np.empty((us.size, vs.size))
        for i, u in enumerate(us):
            out[i] = self.distances_from(int(u))[vs]
        return out

    def pairwise(self, pairs: Sequence[Tuple[NodeId, NodeId]]) -> np.ndarray:
        """Distances for an ``(m, 2)`` array of node pairs, one per row.

        The generic implementation groups pairs by source so each needed
        row is computed once regardless of how many pairs share it.
        """
        pairs = np.asarray(pairs, dtype=np.intp).reshape(-1, 2)
        out = np.empty(pairs.shape[0])
        if pairs.shape[0] == 0:
            return out
        order = np.argsort(pairs[:, 0], kind="stable")
        sources = pairs[order, 0]
        bounds = np.flatnonzero(np.diff(sources)) + 1
        for group in np.split(order, bounds):
            row = self.distances_from(int(pairs[group[0], 0]))
            out[group] = row[pairs[group, 1]]
        return out

    # -- balls ----------------------------------------------------------

    def ball(self, u: NodeId, r: float, open_ball: bool = False) -> np.ndarray:
        """Node ids in the closed (default) or open ball of radius ``r``.

        The paper's ``B_u(r)`` is the *closed* ball (§1.1); the open
        variant is needed by Theorem 3.2, whose X/Y-neighbors live in open
        balls.
        """
        row = self.distances_from(u)
        if open_ball:
            return np.flatnonzero(row < r)
        return np.flatnonzero(row <= r)

    def ball_size(self, u: NodeId, r: float, open_ball: bool = False) -> int:
        """Cardinality of ``B_u(r)`` in O(log n) via the sorted row cache."""
        sorted_row = self._sorted_row(u)
        side = "left" if open_ball else "right"
        return int(np.searchsorted(sorted_row, r, side=side))

    def ball_sizes(self, u: NodeId, radii: Sequence[float]) -> np.ndarray:
        """``|B_u(r)|`` for many radii at once (one searchsorted call)."""
        sorted_row = self._sorted_row(u)
        return np.searchsorted(sorted_row, np.asarray(radii), side="right")

    def _sorted_row(self, u: NodeId) -> np.ndarray:
        cached = self._sorted_rows.get(u)
        if cached is None:
            cached = self._sorted_rows.put(u, np.sort(self.distances_from(u)))
        return cached

    # -- r_u(eps) radii (paper §1.1) -------------------------------------

    def radius_for_count(self, u: NodeId, k: int) -> float:
        """Radius of the smallest closed ball around ``u`` with >= k nodes.

        ``k`` is clamped to ``[1, n]``.  Note ``radius_for_count(u, 1) == 0``
        since the closed ball of radius 0 contains ``u`` itself.
        """
        k = max(1, min(self.n, k))
        return float(self._sorted_row(u)[k - 1])

    def radius_for_fraction(self, u: NodeId, eps: float) -> float:
        """The paper's ``r_u(eps)``: smallest radius capturing measure eps.

        With the counting probability measure this is the radius of the
        smallest closed ball containing at least ``ceil(eps * n)`` nodes.
        """
        k = int(np.ceil(eps * self.n))
        return self.radius_for_count(u, k)

    def rui(self, u: NodeId, i: int) -> float:
        """The paper's ``r_ui = r_u(2^-i)`` (smallest ball with >= n/2^i nodes).

        Used throughout §3 and §5.  ``i = 0`` gives the radius of a ball
        containing all nodes.
        """
        k = int(np.ceil(self.n / float(2**i)))
        return self.radius_for_count(u, k)

    # -- global shape ----------------------------------------------------

    def _compute_extremes(self) -> Tuple[float, float]:
        if self._extremes is None:
            min_d = np.inf
            max_d = 0.0
            for u in range(self.n):
                row = self.distances_from(u)
                if self.n > 1:
                    positive = row[np.arange(self.n) != u]
                    min_d = min(min_d, float(positive.min()))
                    max_d = max(max_d, float(positive.max()))
            if self.n <= 1:
                min_d, max_d = 1.0, 1.0
            self._extremes = (min_d, max_d)
        return self._extremes

    def min_distance(self) -> float:
        """Smallest positive pairwise distance."""
        return self._compute_extremes()[0]

    def diameter(self) -> float:
        """Largest pairwise distance."""
        return self._compute_extremes()[1]

    def aspect_ratio(self) -> float:
        """``Δ`` = diameter / min positive distance (paper §1.1)."""
        min_d, max_d = self._compute_extremes()
        if min_d == 0:
            raise ValueError("metric has duplicate points; aspect ratio undefined")
        return max_d / min_d

    def log_aspect_ratio(self) -> int:
        """``ceil(log2 Δ)``, the number of distance scales, at least 1."""
        return max(1, int(np.ceil(np.log2(self.aspect_ratio()))))

    # -- misc -------------------------------------------------------------

    def nearest_neighbor(self, u: NodeId) -> NodeId:
        """The node (other than ``u``) closest to ``u``."""
        row = self.distances_from(u).copy()
        row[u] = np.inf
        return int(np.argmin(row))

    def validate(self, samples: int = 200, seed: int = 0) -> None:
        """Sanity-check symmetry and the triangle inequality on a sample.

        Raises :class:`ValueError` on violation.  Exhaustive for small n.
        """
        rng = np.random.default_rng(seed)
        n = self.n
        if n < 2:
            return
        triples = rng.integers(0, n, size=(samples, 3))
        for a, b, c in triples:
            dab = self.distance(int(a), int(b))
            dba = self.distance(int(b), int(a))
            if not np.isclose(dab, dba, rtol=1e-9, atol=1e-12):
                raise ValueError(f"asymmetry at ({a},{b}): {dab} != {dba}")
            dac = self.distance(int(a), int(c))
            dcb = self.distance(int(c), int(b))
            if dab > dac + dcb + 1e-9 * max(1.0, dab):
                raise ValueError(
                    f"triangle violation: d({a},{b})={dab} > "
                    f"d({a},{c})+d({c},{b})={dac + dcb}"
                )
