"""(ε,µ)-packings — Lemma 3.1 / Appendix A of the paper.

An (ε,µ)-packing is a family F of *disjoint* balls, each of measure at
least ``ε / 2^O(α)``, such that for every node u some ball
``B_v(r) ∈ F`` satisfies ``d_uv + r <= 6 r_u(ε)`` (the strengthened form
of Lemma A.1 needed by Theorem 4.2).

The construction follows Appendix A exactly:

1. For each node u with ``r = r_u(ε)``, find either a *u-zooming ball*
   (a ball ``B_v(r')`` ⊆ ``B_u(3r)`` with ``µ >= ε/16^α`` whose 4x
   inflation has measure <= ε) or a single *heavy* node of measure >= ε,
   by the iterated cover-and-descend argument: cover the current ball by
   radius/8 balls (Lemma 1.1 greedy), move to the heaviest, halve.
2. Take a maximal disjoint subfamily of the candidate balls, scanning in
   node order.

Balls are treated as node sets, and disjointness means set disjointness,
as in the paper's proof.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro._types import NodeId
from repro.metrics.base import MetricSpace
from repro.metrics.dimension import greedy_ball_cover
from repro.metrics.measure import DoublingMeasure, counting_measure


@dataclass(frozen=True)
class PackedBall:
    """One ball of an (ε,µ)-packing.

    ``center`` is the node the paper calls ``h_B`` — the fixed
    representative used as an X-neighbor; ``radius`` may be 0 (the heavy
    single-node case of Appendix A).
    """

    center: NodeId
    radius: float
    members: Tuple[NodeId, ...]
    measure: float

    def __contains__(self, node: NodeId) -> bool:
        return node in set(self.members)


class EpsMuPacking:
    """A constructed (ε,µ)-packing with its covering guarantee."""

    def __init__(
        self, metric: MetricSpace, eps: float, balls: List[PackedBall]
    ) -> None:
        self.metric = metric
        self.eps = eps
        self.balls = balls

    def __len__(self) -> int:
        return len(self.balls)

    def __iter__(self):
        return iter(self.balls)

    def covering_ball_for(self, u: NodeId) -> Tuple[PackedBall, float]:
        """The ball minimizing ``d(u, center) + radius`` and that value.

        Lemma A.1 guarantees the value is at most ``6 r_u(ε)``.
        """
        row = self.metric.distances_from(u)
        best: Optional[PackedBall] = None
        best_reach = np.inf
        for ball in self.balls:
            reach = float(row[ball.center]) + ball.radius
            if reach < best_reach:
                best, best_reach = ball, reach
        if best is None:
            raise ValueError("empty packing")
        return best, best_reach

    def verify_disjoint(self) -> bool:
        """True iff all member sets are pairwise disjoint."""
        seen: set[NodeId] = set()
        for ball in self.balls:
            for v in ball.members:
                if v in seen:
                    return False
                seen.add(v)
        return True


def _candidate_ball(
    metric: MetricSpace, mu: DoublingMeasure, u: NodeId, eps: float
) -> PackedBall:
    """Appendix A's per-node candidate: a u-zooming ball or a heavy node."""
    r_u = mu.radius_for_mass(u, eps)
    min_d = metric.min_distance()

    # Start from B_u(r_u) itself; r_u may be 0 (a single node can already
    # carry measure eps), in which case the first check below returns the
    # singleton {u} immediately.
    center, radius = u, r_u
    while True:
        # "radius < 4 min_d" is the paper's radius/8 < min_d/2 written so
        # it cannot underflow to a never-true comparison when min_d is
        # denormal; radius <= 0 guards the same degenerate regime.
        if radius < 4.0 * min_d or radius <= 0.0:
            # Ball of radius < min distance is a single node.  Descend to
            # the heaviest node of the current ball; by the invariant the
            # current ball has measure >= eps/16^alpha at every step, and
            # the paper's argument shows a heavy *node* (measure >= eps /
            # cover-size) exists here.
            members = metric.ball(center, radius)
            heavy = int(members[np.argmax(mu.weights[members])])
            return PackedBall(
                center=heavy,
                radius=0.0,
                members=(heavy,),
                measure=float(mu.weights[heavy]),
            )
        members = metric.ball(center, radius)
        cover = greedy_ball_cover(metric, members, radius / 8.0)
        # The heaviest cover ball B_v(radius/8); its measure is at least
        # mu(current ball) / |cover| >= eps / 16^alpha.
        best_v, best_mass = None, -1.0
        for v in cover:
            m = mu.ball_mass(v, radius / 8.0)
            if m > best_mass:
                best_v, best_mass = v, m
        assert best_v is not None
        if mu.ball_mass(best_v, radius / 2.0) <= eps:
            inner = metric.ball(best_v, radius / 8.0)
            return PackedBall(
                center=int(best_v),
                radius=radius / 8.0,
                members=tuple(int(x) for x in inner),
                measure=float(best_mass),
            )
        next_radius = radius / 2.0
        if next_radius >= radius:
            # Float halving stalled (denormal range); fall back to the
            # heaviest single node of the current ball.
            members = metric.ball(center, radius)
            heavy = int(members[np.argmax(mu.weights[members])])
            return PackedBall(
                center=heavy, radius=0.0, members=(heavy,),
                measure=float(mu.weights[heavy]),
            )
        center, radius = best_v, next_radius


def eps_mu_packing(
    metric: MetricSpace, eps: float, mu: Optional[DoublingMeasure] = None
) -> EpsMuPacking:
    """Construct an (ε,µ)-packing (Lemma 3.1 / A.1).

    ``mu`` defaults to the normalized counting measure, which is what
    Theorem 3.2 uses ("we will use (ε,µ)-packings such that µ is the
    normalized counting measure").
    """
    if not 0 < eps <= 1:
        raise ValueError(f"eps must be in (0, 1], got {eps}")
    if mu is None:
        mu = counting_measure(metric)

    # Per-node candidates, deduplicated by (center, radius): many nodes
    # yield the same ball and the maximal-disjoint scan only needs each once.
    candidates: Dict[Tuple[NodeId, float], PackedBall] = {}
    order: List[Tuple[NodeId, float]] = []
    for u in range(metric.n):
        ball = _candidate_ball(metric, mu, u, eps)
        key = (ball.center, ball.radius)
        if key not in candidates:
            candidates[key] = ball
            order.append(key)

    chosen: List[PackedBall] = []
    used: set[NodeId] = set()
    for key in order:
        ball = candidates[key]
        if used.isdisjoint(ball.members):
            chosen.append(ball)
            used.update(ball.members)
    return EpsMuPacking(metric, eps, chosen)
