"""Shortest-path metrics induced by weighted graphs.

The routing results of the paper (§2, §4) work on "doubling graphs":
weighted undirected graphs whose shortest-path metric has low doubling
dimension.  :class:`ShortestPathMetric` wraps a
:class:`repro.graphs.graph.WeightedGraph` and exposes its all-pairs
shortest-path distances through the :class:`~repro.metrics.base.MetricSpace`
interface, computed once with Dijkstra.
"""

from __future__ import annotations

import numpy as np

from repro._types import NodeId
from repro.metrics.base import MetricSpace


class ShortestPathMetric(MetricSpace):
    """All-pairs shortest-path metric of a weighted undirected graph."""

    def __init__(self, graph) -> None:
        """``graph`` is a :class:`repro.graphs.graph.WeightedGraph`."""
        super().__init__()
        # Local import: repro.graphs imports nothing from repro.metrics, but
        # keeping the import here makes the layering obvious.
        from repro.graphs.shortest_paths import all_pairs_shortest_paths

        self._graph = graph
        self._matrix = all_pairs_shortest_paths(graph)
        if not np.all(np.isfinite(self._matrix)):
            raise ValueError("graph is not connected; shortest-path metric undefined")

    @property
    def n(self) -> int:
        return self._matrix.shape[0]

    @property
    def graph(self):
        """The underlying :class:`~repro.graphs.graph.WeightedGraph`."""
        return self._graph

    @property
    def matrix(self) -> np.ndarray:
        """The APSP distance matrix (treat as read-only)."""
        return self._matrix

    def distances_from(self, u: NodeId) -> np.ndarray:
        return self._matrix[u]

    def distances_between(self, us, vs) -> np.ndarray:
        us = np.atleast_1d(np.asarray(us, dtype=np.intp))
        vs = np.atleast_1d(np.asarray(vs, dtype=np.intp))
        return self._matrix[np.ix_(us, vs)]

    def pairwise(self, pairs) -> np.ndarray:
        pairs = np.asarray(pairs, dtype=np.intp).reshape(-1, 2)
        return self._matrix[pairs[:, 0], pairs[:, 1]]
